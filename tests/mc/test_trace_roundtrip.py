"""Trace -> request replay round-trip (PR satellite).

A v2 address trace pushed through the mc layer at infinite queue depth
with the FCFS scheduler must be *bit-identical* to the open-loop
replay path (:func:`repro.trace.replay_addresses` /
:func:`repro.sim.perf.run_trace`): same activation ordering — every
(issue time, sub-channel, bank, row) — and same end-of-run statistics.
This pins the controller's timing model to the established replay
semantics: the closed-loop layer adds queueing on top, it never
perturbs the stream it is fed when nothing contends.
"""

import pytest

from repro.mc import McConfig, MemoryController
from repro.sim.mapping import CoffeeLakeMapping
from repro.sim.mc import McRunConfig, build_mc_channel, run_mc_trace
from repro.sim.perf import RunConfig, run_trace
from repro.trace import replay_addresses
from repro.workloads.generator import generate_address_trace
from repro.workloads.profiles import profile_by_name
from repro.workloads.requests import requests_from_trace

MAPPING = CoffeeLakeMapping()
#: Infinite depth + FCFS = the open-loop replay discipline.
REPLAY_MC = McConfig(queue_depth=None, scheduler="fcfs", row_policy="closed")


def record_activations(channel, log):
    """Wrap every sub-channel's activate to log (time, sub, bank, row)."""
    for index, sub in enumerate(channel.subchannels):
        original = sub.activate

        def wrapped(row, bank=0, not_before=0.0, _orig=original, _sub=index):
            result = _orig(row, bank=bank, not_before=not_before)
            log.append((result.time, _sub, bank, row))
            return result

        sub.activate = wrapped


@pytest.fixture(scope="module")
def trace():
    return generate_address_trace(
        profile_by_name("mcf"), MAPPING, n_trefi=48, seed=3
    )


def _fresh_channel(config):
    return build_mc_channel(
        config,
        num_subchannels=MAPPING.num_subchannels,
        num_banks=MAPPING.num_banks,
        rows_per_bank=1 << MAPPING.row_bits,
        mapping=MAPPING,
    )


class TestRoundTrip:
    def test_activation_ordering_bit_identical(self, trace):
        config = McRunConfig(ath=64)

        open_loop = _fresh_channel(config)
        open_log = []
        record_activations(open_loop, open_log)
        replay_addresses(trace, open_loop)

        closed_loop = _fresh_channel(config)
        closed_log = []
        record_activations(closed_loop, closed_log)
        MemoryController(closed_loop, REPLAY_MC).run(
            requests_from_trace(trace, MAPPING)
        )

        assert len(open_log) == len(trace)
        assert open_log == closed_log
        assert open_loop.stats() == closed_loop.stats()

    def test_run_mc_trace_matches_run_trace(self, trace):
        perf = run_trace(trace, RunConfig(ath=64), mapping=MAPPING)
        mc = run_mc_trace(
            trace,
            McRunConfig(ath=64, queue_depth=None, scheduler="fcfs",
                        row_policy="closed"),
            mapping=MAPPING,
        )
        assert mc.alerts == perf.alerts
        assert mc.total_acts == perf.total_acts
        assert mc.elapsed_ns == perf.elapsed_ns
        assert mc.n_trefi == perf.n_trefi
        assert mc.stall_ns == perf.stall_ns
        assert mc.subchannels == perf.subchannels
        assert mc.workload == perf.workload

    def test_latencies_are_well_formed(self, trace):
        mc = run_mc_trace(
            trace,
            McRunConfig(ath=64, queue_depth=None, scheduler="fcfs"),
            mapping=MAPPING,
        )
        assert mc.requests == len(trace)
        assert mc.read_p50_ns <= mc.read_p99_ns <= mc.read_max_ns
        assert mc.read_mean_ns > 0

    def test_frfcfs_preserves_totals_not_ordering(self, trace):
        """Reordering schedulers serve the same work (same ACT count)
        even though the per-command sequence may differ."""
        mc = run_mc_trace(
            trace,
            McRunConfig(ath=64, queue_depth=32, scheduler="frfcfs"),
            mapping=MAPPING,
        )
        assert mc.requests == len(trace)
        assert mc.total_acts == len(trace)
