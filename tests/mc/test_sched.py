"""Tests for the pluggable scheduling-policy layer.

Registry contents and validation (the single source of truth every
config front-end shares), the :class:`SchedSpec` spelling, unit
semantics of the three QoS kinds, and two property-based guarantees of
``priority`` scheduling: round-robin fairness among equal classes and
the age-based starvation bound under an adversarial high-priority
flood.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.mc import McConfig, MemoryController, Request
from repro.mc.sched import (
    SCHEDULERS,
    BwCapSched,
    FcfsSched,
    FrfcfsSched,
    PrioritySched,
    SchedSpec,
    SloSched,
    is_fast_path_sched,
    make_sched,
    normalize_sched_params,
    sched_descriptions,
    sched_display,
    sched_kinds,
    slo_budget_ns,
    validate_sched,
)
from repro.mitigations.null import NullPolicy
from repro.sim.channel import ChannelConfig, ChannelSim
from repro.sim.engine import SimConfig

T_COL = 10.0


def make_channel(num_banks=2, rows=1024):
    """A quiet channel: null mitigation, so no ALERT noise in timing."""
    return ChannelSim(
        ChannelConfig(
            sim=SimConfig(
                num_banks=num_banks,
                rows_per_bank=rows,
                num_refresh_groups=rows,
                track_danger=False,
                dense_counters=True,
            ),
        ),
        NullPolicy,
    )


class TestRegistry:
    def test_registered_kinds(self):
        assert SCHEDULERS == ("fcfs", "frfcfs", "priority", "bw-cap", "slo")
        assert sched_kinds() == SCHEDULERS

    def test_fast_path_covers_exactly_the_order_schedulers(self):
        assert is_fast_path_sched("fcfs")
        assert is_fast_path_sched("frfcfs")
        for qos in ("priority", "bw-cap", "slo"):
            assert not is_fast_path_sched(qos)

    def test_descriptions_cover_every_kind(self):
        table = sched_descriptions()
        assert set(table) == set(SCHEDULERS)
        for entry in table.values():
            assert entry["description"]
        assert table["fcfs"]["params"] == ""
        assert "budget_ns=10000" in table["slo"]["params"]
        assert "gbps=1" in table["bw-cap"]["params"]

    def test_make_sched_builds_the_registered_classes(self):
        built = {
            kind: make_sched(kind, (), [0, 0], T_COL, depth=32)
            for kind in SCHEDULERS
        }
        assert type(built["fcfs"]) is FcfsSched
        assert type(built["frfcfs"]) is FrfcfsSched
        assert type(built["priority"]) is PrioritySched
        assert type(built["bw-cap"]) is BwCapSched
        assert type(built["slo"]) is SloSched

    def test_make_sched_coerces_slo_window_to_int(self):
        sched = make_sched("slo", (("window", 64.0),), [0], T_COL, depth=8)
        assert sched.window == 64 and isinstance(sched.window, int)


class TestValidation:
    def test_unknown_scheduler_message_is_pinned(self):
        with pytest.raises(
            ValueError,
            match=r"unknown scheduler 'elevator'; "
            r"known: fcfs, frfcfs, priority, bw-cap, slo",
        ):
            validate_sched("elevator")

    def test_unknown_param_message_names_known_params(self):
        with pytest.raises(
            ValueError,
            match=r"unknown sched param 'bogus' for 'slo'; "
            r"known: budget_ns, window",
        ):
            validate_sched("slo", (("bogus", 1.0),))

    def test_unknown_param_message_offers_indexed_spelling(self):
        with pytest.raises(ValueError, match=r"gbps<i>"):
            validate_sched("bw-cap", (("rate", 1.0),))

    def test_order_schedulers_take_no_params(self):
        with pytest.raises(ValueError, match=r"known: \(none\)"):
            validate_sched("frfcfs", (("gbps", 1.0),))

    def test_indexed_spelling_accepted_for_bw_cap_only(self):
        validate_sched("bw-cap", (("gbps2", 0.5),))
        with pytest.raises(ValueError, match="unknown sched param"):
            validate_sched("slo", (("budget_ns2", 1.0),))

    def test_duplicate_param_rejected(self):
        with pytest.raises(ValueError, match="duplicate sched param"):
            validate_sched("slo", (("window", 8), ("window", 16)))

    def test_non_numeric_and_non_positive_rejected(self):
        with pytest.raises(ValueError, match="must be a number"):
            validate_sched("slo", (("window", "big"),))
        with pytest.raises(ValueError, match="must be a number"):
            validate_sched("slo", (("window", True),))
        with pytest.raises(ValueError, match="must be positive"):
            validate_sched("slo", (("window", 0),))

    def test_indexed_param_beyond_client_count_fails_at_build(self):
        with pytest.raises(ValueError, match="targets client 5"):
            make_sched("bw-cap", (("gbps5", 0.5),), [0, 0], T_COL)

    def test_config_frontends_share_the_validator(self):
        """Every config spells scheduler errors identically (satellite:
        no drifting copies of the name list)."""
        from repro.sim.mc import McRunConfig
        from repro.system.sim import SystemRunConfig

        for build in (
            lambda: McConfig(scheduler="elevator"),
            lambda: McRunConfig(scheduler="elevator"),
            lambda: SystemRunConfig(scheduler="elevator"),
        ):
            with pytest.raises(ValueError, match="unknown scheduler"):
                build()


class TestSchedSpec:
    def test_params_canonicalized_and_hashable(self):
        spec = SchedSpec("slo", (("window", 64), ("budget_ns", 5000.0)))
        assert spec.params == (("budget_ns", 5000.0), ("window", 64))
        assert spec == SchedSpec.of("slo", budget_ns=5000.0, window=64)
        assert hash(spec) == hash(SchedSpec.of("slo", budget_ns=5000.0,
                                               window=64))

    def test_validates_on_construction(self):
        with pytest.raises(ValueError, match="unknown scheduler"):
            SchedSpec("elevator")
        with pytest.raises(ValueError, match="unknown sched param"):
            SchedSpec.of("frfcfs", gbps=1.0)

    def test_display_name(self):
        assert SchedSpec().display_name() == "frfcfs"
        assert (
            SchedSpec.of("bw-cap", gbps=8.0, gbps2=0.1).display_name()
            == "bw-cap(gbps=8,gbps2=0.1)"
        )

    def test_paramless_display_matches_pre_refactor_spelling(self):
        """Keys and baselines from before the policy layer survive."""
        for kind in SCHEDULERS:
            assert sched_display(kind, ()) == kind

    def test_normalize_sorts_by_name(self):
        assert normalize_sched_params([("b", 2), ("a", 1)]) == (
            ("a", 1), ("b", 2),
        )


class TestSloBudget:
    def test_only_slo_runs_have_a_budget(self):
        assert slo_budget_ns("frfcfs") is None
        assert slo_budget_ns("priority") is None

    def test_default_and_override(self):
        assert slo_budget_ns("slo") == 10_000.0
        assert slo_budget_ns("slo", (("budget_ns", 2500.0),)) == 2500.0


class TestBwCapUnit:
    def make(self, **kw):
        return BwCapSched([0, 0], T_COL, **kw)

    def req(self, t=0.0):
        return Request(issue_ns=t)

    def test_bucket_starts_full_and_drains(self):
        sched = self.make(gbps=1.0, burst=2.0)
        assert sched.admit_ok(0, self.req(), 0.0)
        sched.note_admit(0, self.req(), 0.0)
        sched.note_admit(0, self.req(), 0.0)
        # Two credits spent at t=0: the bucket is dry.
        assert not sched.admit_ok(0, self.req(), 0.0)
        # 1 GB/s over 64-byte lines refills a credit every 64 ns.
        assert sched.admit_ok(0, self.req(), 64.0)

    def test_clients_have_independent_buckets(self):
        sched = self.make(gbps=1.0, burst=1.0)
        sched.note_admit(0, self.req(), 0.0)
        assert not sched.admit_ok(0, self.req(), 0.0)
        assert sched.admit_ok(1, self.req(), 0.0)

    def test_indexed_override_targets_one_client(self):
        sched = self.make(gbps=8.0, burst=1.0, gbps1=0.1)
        sched.note_admit(0, self.req(), 0.0)
        sched.note_admit(1, self.req(), 0.0)
        # Client 0 refills a credit in 64/8 = 8 ns; client 1 in 640 ns.
        assert sched.admit_ok(0, self.req(), 8.0)
        assert not sched.admit_ok(1, self.req(), 8.0)
        assert sched.admit_ok(1, self.req(), 640.0)

    def test_admit_horizon_predicts_refill(self):
        sched = self.make(gbps=1.0, burst=1.0)
        sched.note_admit(0, self.req(), 0.0)
        horizon = sched.admit_horizon(0, self.req(0.0), 0.0)
        assert horizon == pytest.approx(64.0)
        # A full bucket's horizon is just the arrival time.
        assert sched.admit_horizon(1, self.req(5.0), 0.0) == 5.0

    def test_admit_horizon_always_moves_time_forward(self):
        """The idle-jump target must exceed ``now`` even when refill
        arithmetic underflows (the nextafter guard)."""
        sched = self.make(gbps=1e9, burst=1.0)
        now = 1e9
        # A dry-by-a-hair bucket at an enormous refill rate: the wait
        # is ~6e-18 ns, which vanishes against now in float addition.
        sched._tokens[0] = 1.0 - 1e-10
        sched._last[0] = now
        assert not sched.admit_ok(0, self.req(0.0), now)
        assert sched.admit_horizon(0, self.req(0.0), now) > now


class TestSloUnit:
    def make(self, budget_ns=100.0, window=4):
        return SloSched([0, 0], T_COL, depth=8,
                        budget_ns=budget_ns, window=window)

    def complete(self, sched, client, latency):
        sched.note_complete(
            Request(issue_ns=0.0, client=client), float(latency)
        )

    def test_demotes_when_p99_exceeds_budget(self):
        sched = self.make(budget_ns=100.0, window=4)
        self.complete(sched, 0, 50.0)
        assert not sched._demoted[0]
        self.complete(sched, 0, 500.0)
        # Nearest-rank p99 of [50, 500] is the max: over budget.
        assert sched._demoted[0]
        assert sched._demoted[1] is False

    def test_recovers_when_the_window_slides_past_the_spike(self):
        sched = self.make(budget_ns=100.0, window=4)
        self.complete(sched, 0, 500.0)
        assert sched._demoted[0]
        for _ in range(4):
            self.complete(sched, 0, 10.0)
        assert not sched._demoted[0]

    def test_writes_do_not_count_against_the_budget(self):
        sched = self.make(budget_ns=100.0, window=4)
        sched.note_complete(
            Request(issue_ns=0.0, client=0, is_write=True), 9999.0
        )
        assert not sched._demoted[0]

    def test_demoted_client_is_squeezed_to_one_entry_per_bank(self):
        sched = self.make()
        req = Request(issue_ns=0.0, client=0, bank=1)
        self.complete(sched, 0, 1e6)
        assert sched.admit_ok(0, req, 0.0)
        sched.note_admit(0, req, 0.0)
        assert not sched.admit_ok(0, req, 0.0)
        # Another bank's queue is a separate occupancy bucket.
        assert sched.admit_ok(0, Request(issue_ns=0.0, client=0), 0.0)

    def test_demotion_drops_the_admission_boost(self):
        sched = self.make()
        in_budget = sched.admit_priority(0, Request(issue_ns=0.0), 0.0)
        self.complete(sched, 0, 1e6)
        demoted = sched.admit_priority(0, Request(issue_ns=0.0), 0.0)
        assert in_budget > demoted


class TestPriorityUnit:
    def test_share_cap_is_a_fraction_of_queue_depth(self):
        sched = PrioritySched([0], T_COL, depth=32, share=0.75)
        assert sched._limit == 24
        # Degenerate depths still admit at least one entry.
        assert PrioritySched([0], T_COL, depth=1, share=0.5)._limit == 1
        assert PrioritySched([0], T_COL, depth=None)._limit is None

    def test_head_age_tracks_request_identity(self):
        """Age counts waiting at the crossbar, not time since issue —
        a backlogged stream's old issue stamps never read as starved."""
        sched = PrioritySched([0], T_COL, depth=32, age_bound_ns=100.0)
        old = Request(issue_ns=0.0)
        # First sighting at t=1000: age starts now, not at issue_ns.
        assert sched._head_age(0, old, 1000.0) == 0.0
        assert sched._head_age(0, old, 1050.0) == 50.0
        # A different head resets the clock.
        assert sched._head_age(0, Request(issue_ns=0.0, row=7), 1060.0) == 0.0

    def test_starved_head_bypasses_the_share_cap(self):
        sched = PrioritySched([0], T_COL, depth=4, share=0.5,
                              age_bound_ns=100.0)
        req = Request(issue_ns=0.0)
        for _ in range(2):
            sched.note_admit(0, req, 0.0)
        assert not sched.admit_ok(0, req, 0.0)  # at the 50% cap
        sched._head_age(0, req, 0.0)
        assert sched.admit_ok(0, req, 200.0)  # starved: cap waived

    def test_admission_clears_head_tracking(self):
        sched = PrioritySched([0], T_COL, depth=32, age_bound_ns=100.0)
        req = Request(issue_ns=0.0)
        sched._head_age(0, req, 0.0)
        sched.note_admit(0, req, 50.0)
        assert 0 not in sched._head


def run_priority_streams(streams, priorities, sched_params=(),
                         queue_depth=32, num_banks=2):
    mc = MemoryController(
        make_channel(num_banks=num_banks),
        McConfig(
            scheduler="priority",
            sched_params=sched_params,
            queue_depth=queue_depth,
        ),
    )
    return mc.run_streams(streams, priorities)


class TestPriorityProperties:
    """The two scheduling guarantees the QoS narrative leans on,
    checked over hypothesis-random contention patterns."""

    @given(
        n_clients=st.integers(min_value=2, max_value=4),
        per_client=st.integers(min_value=3, max_value=10),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=25, deadline=None)
    def test_round_robin_fairness_among_equal_priorities(
        self, n_clients, per_client, seed
    ):
        """Equal-priority clients saturating one bank are served in
        rotation: within every service-order prefix the per-client
        completion counts differ by at most one."""
        streams = [
            [
                Request(issue_ns=0.0, bank=0,
                        row=1 + (seed + c * 97 + i * 13) % 500,
                        client=c)
                for i in range(per_client)
            ]
            for c in range(n_clients)
        ]
        done = run_priority_streams(streams, [0] * n_clients)
        assert len(done) == n_clients * per_client
        served = sorted(done, key=lambda c: c.start_ns)
        counts = [0] * n_clients
        for completion in served:
            counts[completion.request.client] += 1
            assert max(counts) - min(counts) <= 1, counts

    @given(
        victim_times=st.lists(
            st.floats(min_value=0.0, max_value=2000.0,
                      allow_nan=False, allow_infinity=False),
            min_size=1, max_size=8,
        ),
        period=st.floats(min_value=4.0, max_value=8.0),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=25, deadline=None)
    def test_starvation_bound_under_high_priority_flood(
        self, victim_times, period, seed
    ):
        """An adversarial flood at the *highest* priority cannot hold a
        queued low-priority entry past the age bound: once an entry has
        waited ``age_bound_ns`` it outranks every class, waiting only
        behind *older* starved entries (the starved class is FCFS by
        enqueue time) — at most a bank queue's worth of service — plus
        a REF the engine defers over. The wait bound is a constant;
        without the age rank it would scale with the flood length
        (~20 us of service here)."""
        from repro.dram.timing import DDR5_PRAC_TIMING

        age_bound, depth = 2000.0, 32
        attacker = [
            Request(issue_ns=i * period, bank=0,
                    row=600 + (seed + i) % 300, client=0)
            for i in range(400)
        ]
        victims = [
            Request(issue_ns=t, bank=0, row=1 + (seed + i * 31) % 500,
                    client=1)
            for i, t in enumerate(sorted(victim_times))
        ]
        done = run_priority_streams(
            [attacker, victims], [10, 0],
            sched_params=(("age_bound_ns", age_bound),),
            queue_depth=depth,
        )
        drain = depth * DDR5_PRAC_TIMING.t_rc  # older starved entries
        slack = 1000.0  # in-flight command + a deferred REF
        for completion in done:
            if completion.request.client != 1:
                continue
            queue_wait = completion.start_ns - completion.enqueue_ns
            assert queue_wait <= age_bound + drain + slack, queue_wait
