"""Integration tests of the closed-loop front-end (:mod:`repro.sim.mc`):
metric sanity, the ABO-level latency staircase, and the cross-check
against the open-loop stall-fraction front-end."""

import math

import pytest

from repro.mitigations.registry import PolicySpec
from repro.sim.mc import McRunConfig, run_mc, run_mc_requests
from repro.sim.perf import RunConfig, run_workload
from repro.sweep.mc_spec import HAMMER_WORKLOAD
from repro.workloads.generator import generate_schedule
from repro.workloads.profiles import profile_by_name
from repro.workloads.requests import McWorkload, requests_from_schedule

QUIET = McWorkload(reads_per_trefi_per_bank=16.0)


class TestMetricSanity:
    def test_moat_smoke(self):
        result = run_mc(McRunConfig(workload=QUIET, banks=2, n_trefi=256))
        assert result.requests > 0
        assert result.reads + result.writes == result.requests
        assert result.read_p50_ns <= result.read_p99_ns <= result.read_max_ns
        assert result.read_mean_ns > 0
        assert result.achieved_gbps > 0
        assert result.avg_queue_occupancy >= 0
        assert result.total_acts == result.requests  # closed page: 1 ACT each
        assert result.policy == "moat"

    def test_null_baseline_never_alerts(self):
        result = run_mc(
            McRunConfig(policy=PolicySpec("null"), workload=HAMMER_WORKLOAD,
                        banks=2, n_trefi=256)
        )
        assert result.alerts == 0
        assert result.stall_fraction == 0.0
        assert result.read_p99_ns > 0

    def test_hammer_mix_raises_alerts_under_moat(self):
        result = run_mc(
            McRunConfig(ath=32, workload=HAMMER_WORKLOAD, banks=2,
                        n_trefi=256)
        )
        assert result.alerts > 0
        assert result.alerts_per_trefi > 0
        assert result.stall_fraction > 0

    def test_write_fraction_partitions_requests(self):
        workload = McWorkload(reads_per_trefi_per_bank=16.0,
                              write_fraction=0.3)
        result = run_mc(McRunConfig(workload=workload, banks=2, n_trefi=128))
        assert result.writes > 0
        assert result.reads > 0

    def test_open_page_hits_hot_mix(self):
        hot = McWorkload(reads_per_trefi_per_bank=24.0, hot_fraction=0.6,
                         hot_rows=2)
        closed = run_mc(McRunConfig(policy=PolicySpec("null"), workload=hot,
                                    row_policy="closed", banks=2, n_trefi=128))
        opened = run_mc(McRunConfig(policy=PolicySpec("null"), workload=hot,
                                    row_policy="open", banks=2, n_trefi=128))
        assert closed.row_hit_rate == 0.0
        assert opened.row_hit_rate > 0.0
        assert opened.total_acts < closed.total_acts
        assert opened.read_mean_ns < closed.read_mean_ns

    def test_bursty_process_runs(self):
        bursty = McWorkload(process="bursty", reads_per_trefi_per_bank=16.0)
        result = run_mc(McRunConfig(workload=bursty, banks=2, n_trefi=256))
        assert result.requests > 0
        # Bursts pile onto the queues: worse tail than smooth Poisson
        # at the same mean rate.
        smooth = run_mc(McRunConfig(workload=QUIET, banks=2, n_trefi=256))
        assert result.read_p99_ns > smooth.read_p99_ns

    def test_determinism(self):
        config = McRunConfig(workload=QUIET, banks=2, n_trefi=128)
        a, b = run_mc(config), run_mc(config)
        assert a.as_metrics() == b.as_metrics()

    def test_empty_metrics_are_nan_not_zero(self):
        config = McRunConfig(workload=QUIET, banks=1, n_trefi=64)
        result = run_mc_requests([], config)
        assert math.isnan(result.read_p99_ns)
        assert result.requests == 0


class TestAboLatencyStaircase:
    """The acceptance criterion of the subsystem: at a fixed arrival
    rate, longer ALERT recovery (ABO level 1 -> 2 -> 4) must be
    visible as strictly increasing p99 read latency — the queueing
    effect the open-loop stall fraction cannot express."""

    @pytest.fixture(scope="class")
    def by_level(self):
        return {
            level: run_mc(
                McRunConfig(ath=32, abo_level=level,
                            workload=HAMMER_WORKLOAD, banks=4, n_trefi=512)
            )
            for level in (1, 2, 4)
        }

    def test_p99_strictly_increasing(self, by_level):
        assert (by_level[1].read_p99_ns
                < by_level[2].read_p99_ns
                < by_level[4].read_p99_ns)

    def test_mean_latency_increases(self, by_level):
        assert (by_level[1].read_mean_ns
                < by_level[2].read_mean_ns
                < by_level[4].read_mean_ns)

    def test_stall_fraction_increases(self, by_level):
        """Figure 17's direction: fewer but longer ALERTs cost more."""
        assert (by_level[1].stall_fraction
                < by_level[2].stall_fraction
                < by_level[4].stall_fraction)

    def test_alert_count_drops_as_each_services_more(self, by_level):
        """MOAT-L4 mitigates 4 rows per episode (Appendix D)."""
        assert by_level[4].alerts < by_level[1].alerts

    def test_null_is_level_invariant(self):
        results = [
            run_mc(
                McRunConfig(ath=32, abo_level=level,
                            policy=PolicySpec("null"),
                            workload=HAMMER_WORKLOAD, banks=2, n_trefi=256)
            )
            for level in (1, 2, 4)
        ]
        assert len({r.read_p99_ns for r in results}) == 1
        assert all(r.alerts == 0 for r in results)


class TestPerfCrossCheck:
    """At matched activation streams the closed-loop controller and the
    open-loop perf front-end must agree exactly: same ACT sequence,
    same ALERTs, same stall time."""

    @pytest.mark.parametrize("workload,ath", [("mcf", 32), ("roms", 64)])
    def test_alerts_and_stall_match_run_workload(self, workload, ath):
        n_trefi = 256
        schedule = generate_schedule(
            profile_by_name(workload), n_trefi=n_trefi, seed=0
        )
        perf = run_workload(
            profile_by_name(workload),
            RunConfig(ath=ath, model_cross_bank_service=False,
                      n_trefi=n_trefi),
            schedule=schedule,
        )
        mc = run_mc_requests(
            requests_from_schedule(schedule),
            McRunConfig(ath=ath, queue_depth=None, scheduler="fcfs",
                        row_policy="closed", banks=1, subchannels=1,
                        n_trefi=n_trefi),
            workload_name=workload,
        )
        assert mc.alerts == perf.alerts
        assert mc.total_acts == perf.total_acts
        assert mc.stall_ns == perf.stall_ns
        assert mc.elapsed_ns == perf.elapsed_ns

    def test_stall_fraction_matches_slowdown_when_unscaled(self):
        """With every bank simulated the two metrics are the same
        quantity (no partial-simulation scaling)."""
        n_trefi = 256
        schedule = generate_schedule(
            profile_by_name("mcf"), n_trefi=n_trefi, seed=0
        )
        perf = run_workload(
            profile_by_name("mcf"),
            RunConfig(ath=32, model_cross_bank_service=False,
                      banks_per_subchannel=1, n_trefi=n_trefi),
            schedule=schedule,
        )
        mc = run_mc_requests(
            requests_from_schedule(schedule),
            McRunConfig(ath=32, queue_depth=None, scheduler="fcfs",
                        banks=1, n_trefi=n_trefi),
        )
        assert mc.stall_fraction == pytest.approx(perf.slowdown)
