"""Struct-of-arrays serve path vs the retained scalar reference.

:meth:`MemoryController.serve_streams` dispatches eligible runs (one
client, closed page, bounded queues, one sub-channel, pristine
channel) to a struct-of-arrays fast path, optionally kernel-backed;
everything else stays on :meth:`run_streams_reference`, the pinned
scalar loop. These tests pin the two halves of that design:

* **Equivalence** — the fast path (under every backend) produces
  completions, policy state, and engine state bit-identical to the
  reference, across policies, schedulers, queue depths, and
  hypothesis-random request streams.
* **Dispatch** — eligible configurations actually take the fast path,
  and every ineligible shape (multi-stream, open page, unbounded
  queue, pre-driven channel) falls back to the reference rather than
  producing a subtly wrong fast run.
"""

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.mc.controller import MemoryController
from repro.mc.request import Request
from repro.mitigations.registry import policy_kinds, PolicySpec
from repro.sim.mc import McRunConfig, build_mc_channel
from repro.workloads.requests import McWorkload, generate_requests

BACKENDS = ("pure", "kernel", "numba")

#: A mix hot enough to drive MOAT past ATH=16 within a short window.
HOT_WORKLOAD = McWorkload(
    reads_per_trefi_per_bank=30.0, hot_fraction=0.6, hot_rows=2
)


def make_config(backend=None, **overrides) -> McRunConfig:
    params = dict(
        ath=16, workload=HOT_WORKLOAD, banks=2, n_trefi=48, backend=backend
    )
    params.update(overrides)
    return McRunConfig(**params)


def make_requests(config: McRunConfig):
    return generate_requests(
        config.workload,
        num_subchannels=config.subchannels,
        banks_per_subchannel=config.banks,
        n_trefi=config.n_trefi,
        rows_per_bank=config.rows_per_bank,
        seed=config.seed,
        trefi_ns=config.timing.t_refi,
    )


def build(config: McRunConfig):
    channel = build_mc_channel(config)
    return channel, MemoryController(channel, config.mc_config())


def completion_key(completed):
    """Everything observable about a served stream, in service order."""
    return [
        (
            c.request.issue_ns,
            c.request.bank,
            c.request.row,
            c.request.is_write,
            c.enqueue_ns,
            c.start_ns,
            c.complete_ns,
            c.row_hit,
        )
        for c in completed
    ]


def run_reference(config, requests):
    channel, controller = build(config)
    completed = controller.run_streams_reference([list(requests)])
    sub = channel.subchannels[0]
    return completion_key(completed), sub.stats(), channel.now


def run_fast(config, requests):
    channel, controller = build(config)
    batch = controller.serve(list(requests))
    sub = channel.subchannels[0]
    return completion_key(batch.completions()), sub.stats(), channel.now


class TestEquivalence:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("kind", sorted(policy_kinds()))
    def test_every_policy_kind(self, kind, backend):
        config = make_config(policy=PolicySpec(kind))
        requests = make_requests(config)
        reference = run_reference(config, requests)
        fast = run_fast(make_config(backend=backend,
                                    policy=PolicySpec(kind)), requests)
        assert fast == reference

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("scheduler", ["fcfs", "frfcfs"])
    @pytest.mark.parametrize("depth", [4, 32])
    def test_schedulers_and_depths(self, scheduler, depth, backend):
        config = make_config(scheduler=scheduler, queue_depth=depth)
        requests = make_requests(config)
        reference = run_reference(config, requests)
        fast = run_fast(
            make_config(backend=backend, scheduler=scheduler,
                        queue_depth=depth),
            requests,
        )
        assert fast == reference

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_abo_level_4(self, backend):
        config = make_config(abo_level=4)
        requests = make_requests(config)
        assert run_fast(
            make_config(backend=backend, abo_level=4), requests
        ) == run_reference(config, requests)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_writes_in_the_mix(self, backend):
        workload = McWorkload(
            reads_per_trefi_per_bank=30.0, hot_fraction=0.5, hot_rows=4,
            write_fraction=0.3,
        )
        config = make_config(workload=workload)
        requests = make_requests(config)
        assert run_fast(
            make_config(backend=backend, workload=workload), requests
        ) == run_reference(config, requests)

    def test_batch_summaries_match_completions(self):
        """The ServedBatch summary helpers (used by ``_summarize``)
        must replicate the reference's float-summation order exactly,
        on both the fast and the fallback path."""
        config = make_config()
        requests = make_requests(config)
        for cfg in (config, make_config(backend="kernel")):
            _, controller = build(cfg)
            batch = controller.serve(list(requests))
            completed = batch.completions()
            reads = [c for c in completed if not c.request.is_write]
            assert batch.read_latencies_sorted() == sorted(
                c.latency_ns for c in reads
            )
            assert batch.queue_ns_total() == sum(
                c.queue_ns for c in completed
            )
            assert batch.row_hit_count() == sum(
                1 for c in completed if c.row_hit
            )
            assert len(batch) == len(completed)


#: Random request tuples: arrival time, bank, row, is_write. Times are
#: floats on purpose — the serving loop mixes them with engine floats.
random_requests = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=1e6,
                  allow_nan=False, allow_infinity=False),
        st.integers(min_value=0, max_value=1),
        st.integers(min_value=0, max_value=15),
        st.booleans(),
    ),
    max_size=120,
)


class TestRandomStreams:
    @given(
        reqs=random_requests,
        scheduler=st.sampled_from(["fcfs", "frfcfs"]),
        backend=st.sampled_from(BACKENDS),
    )
    @settings(max_examples=40, deadline=None)
    def test_random_streams_bit_identical(self, reqs, scheduler, backend):
        requests = [
            Request(issue_ns=t, bank=bank, row=row, is_write=write)
            for t, bank, row, write in reqs
        ]
        config = make_config(scheduler=scheduler, queue_depth=4, ath=8)
        reference = run_reference(config, requests)
        fast = run_fast(
            make_config(backend=backend, scheduler=scheduler,
                        queue_depth=4, ath=8),
            requests,
        )
        assert fast == reference


class TestDispatch:
    def _spy(self, monkeypatch):
        calls = []
        original = MemoryController._run_fast

        def wrapper(self, stream):
            calls.append(len(stream))
            return original(self, stream)

        monkeypatch.setattr(MemoryController, "_run_fast", wrapper)
        return calls

    def test_eligible_config_takes_fast_path(self, monkeypatch):
        calls = self._spy(monkeypatch)
        config = make_config()
        _, controller = build(config)
        controller.serve(make_requests(config))
        assert calls

    @pytest.mark.parametrize(
        "overrides",
        [
            {"row_policy": "open"},
            {"queue_depth": None},
        ],
        ids=["open-page", "unbounded-queue"],
    )
    def test_ineligible_config_falls_back(self, monkeypatch, overrides):
        calls = self._spy(monkeypatch)
        config = make_config(**overrides)
        requests = make_requests(config)
        _, controller = build(config)
        batch = controller.serve(list(requests))
        assert not calls
        # The fallback still returns the full batch.
        assert len(batch) == len(requests)

    def test_multi_stream_falls_back(self, monkeypatch):
        calls = self._spy(monkeypatch)
        config = make_config()
        requests = make_requests(config)
        _, controller = build(config)
        half = len(requests) // 2
        batch = controller.serve_streams(
            [list(requests[:half]), list(requests[half:])]
        )
        assert not calls
        assert len(batch) == len(requests)

    def test_pre_driven_channel_falls_back(self, monkeypatch):
        """Once the channel has served anything, the pristine-state
        mirrors the fast path relies on no longer hold — the dispatch
        must notice and stay on the reference."""
        calls = self._spy(monkeypatch)
        config = make_config()
        requests = make_requests(config)
        channel, controller = build(config)
        channel.activate(row=3, bank=0, subchannel=0)
        batch = controller.serve(list(requests))
        assert not calls
        assert len(batch) == len(requests)

    def test_pre_driven_channel_matches_reference(self):
        """And the fallback result equals the reference run from the
        same pre-driven state."""
        config = make_config()
        requests = make_requests(config)

        def pre_driven():
            channel, controller = build(config)
            channel.activate(row=3, bank=0, subchannel=0)
            return channel, controller

        channel, controller = pre_driven()
        served = completion_key(controller.serve(list(requests)).completions())
        channel2, controller2 = pre_driven()
        reference = completion_key(
            controller2.run_streams_reference([list(requests)])
        )
        assert served == reference

    def test_run_streams_is_serve_streams(self):
        """The legacy list-of-completions API and the batch API stay
        one implementation."""
        config = make_config()
        requests = make_requests(config)
        _, controller = build(config)
        completed = controller.run_streams([list(requests)])
        _, controller2 = build(config)
        batch = controller2.serve_streams([list(requests)])
        assert completion_key(completed) == completion_key(
            batch.completions()
        )


class TestResultPurity:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_batch_fields_are_plain_python(self, backend):
        """Kernel-mode numpy scalars must not leak into results (they
        would break JSON artifact serialization downstream)."""
        config = make_config(backend=backend)
        _, controller = build(config)
        batch = controller.serve(make_requests(config))
        for values in (batch.enqueue_ns, batch.start_ns, batch.complete_ns):
            assert all(type(v) is float for v in values)
        assert all(type(i) is int for i in batch.ridx)
        completed = batch.completions()
        assert all(
            type(c.start_ns) is float and type(c.complete_ns) is float
            for c in completed
        )

    def test_config_hash_ignores_backend(self):
        """Backends are equivalence-gated, so they can never split a
        sweep cache or baseline identity."""
        from repro.sweep.mc_spec import McSweepPoint

        base = McSweepPoint(config=make_config())
        for backend in BACKENDS:
            point = McSweepPoint(config=make_config(backend=backend))
            assert point.config_hash() == base.config_hash()
            assert point.key == base.key
