"""Unit tests of the memory-controller layer (queues, schedulers,
row-buffer policies, back-pressure)."""

import pytest

from repro.mc import McConfig, MemoryController, Request
from repro.mitigations.null import NullPolicy
from repro.sim.channel import ChannelConfig, ChannelSim
from repro.sim.engine import SimConfig


def make_channel(num_banks=2, num_subchannels=1, rows=1024):
    return ChannelSim(
        ChannelConfig(
            sim=SimConfig(
                num_banks=num_banks,
                rows_per_bank=rows,
                num_refresh_groups=rows,
                track_danger=False,
                dense_counters=True,
            ),
            num_subchannels=num_subchannels,
        ),
        NullPolicy,
    )


class TestConfigValidation:
    def test_rejects_unknown_scheduler(self):
        with pytest.raises(ValueError, match="scheduler"):
            McConfig(scheduler="elevator")

    def test_rejects_unknown_row_policy(self):
        with pytest.raises(ValueError, match="row policy"):
            McConfig(row_policy="ajar")

    def test_rejects_zero_depth(self):
        with pytest.raises(ValueError, match="queue_depth"):
            McConfig(queue_depth=0)

    def test_rejects_bad_t_col(self):
        with pytest.raises(ValueError, match="t_col"):
            McConfig(t_col=0.0)

    def test_request_out_of_geometry(self):
        mc = MemoryController(make_channel(num_banks=2))
        with pytest.raises(ValueError, match="bank 5"):
            mc.run([Request(issue_ns=0.0, bank=5, row=1)])
        with pytest.raises(ValueError, match="row"):
            mc.run([Request(issue_ns=0.0, bank=0, row=4096)])
        with pytest.raises(ValueError, match="sub-channel"):
            mc.run([Request(issue_ns=0.0, subchannel=1, row=1)])


class TestFcfsOrdering:
    def test_issues_in_arrival_order(self):
        """FCFS never reorders, even when a later bank is free earlier."""
        mc = MemoryController(
            make_channel(num_banks=2),
            McConfig(scheduler="fcfs", queue_depth=None),
        )
        # Two back-to-back requests to bank 0 (second waits out tRC),
        # then one to idle bank 1: FCFS still serves bank 1 last.
        reqs = [
            Request(issue_ns=0.0, bank=0, row=1),
            Request(issue_ns=0.0, bank=0, row=2),
            Request(issue_ns=0.0, bank=1, row=3),
        ]
        done = mc.run(reqs)
        assert [c.request.row for c in done] == [1, 2, 3]
        assert done[2].start_ns > done[1].start_ns

    def test_latency_includes_queueing(self):
        mc = MemoryController(
            make_channel(), McConfig(scheduler="fcfs", queue_depth=None)
        )
        t_rc = 52.0
        done = mc.run([
            Request(issue_ns=0.0, bank=0, row=1),
            Request(issue_ns=0.0, bank=0, row=2),
        ])
        assert done[0].latency_ns == pytest.approx(t_rc)
        # The second request waits a full tRC behind the first.
        assert done[1].queue_ns == pytest.approx(t_rc)
        assert done[1].latency_ns == pytest.approx(2 * t_rc)


class TestFrFcfs:
    def test_exploits_bank_parallelism(self):
        """FR-FCFS issues to the idle bank while bank 0 recovers."""
        mc = MemoryController(
            make_channel(num_banks=2),
            McConfig(scheduler="frfcfs", queue_depth=None),
        )
        reqs = [
            Request(issue_ns=0.0, bank=0, row=1),
            Request(issue_ns=0.0, bank=0, row=2),
            Request(issue_ns=0.0, bank=1, row=3),
        ]
        done = mc.run(reqs)
        assert [c.request.row for c in done] == [1, 3, 2]

    def test_open_page_prefers_row_hits(self):
        """A queued hit to the open row jumps ahead of an older miss."""
        mc = MemoryController(
            make_channel(num_banks=1),
            McConfig(scheduler="frfcfs", row_policy="open", queue_depth=None),
        )
        reqs = [
            Request(issue_ns=0.0, bank=0, row=7),   # opens row 7
            Request(issue_ns=0.0, bank=0, row=9),   # older miss
            Request(issue_ns=0.0, bank=0, row=7),   # younger hit
        ]
        done = mc.run(reqs)
        assert [c.request.row for c in done] == [7, 7, 9]
        assert [c.row_hit for c in done] == [False, True, False]

    def test_closed_page_never_hits(self):
        mc = MemoryController(
            make_channel(num_banks=1),
            McConfig(scheduler="frfcfs", row_policy="closed",
                     queue_depth=None),
        )
        done = mc.run([Request(issue_ns=0.0, row=7),
                       Request(issue_ns=60.0, row=7)])
        assert all(not c.row_hit for c in done)

    def test_row_hits_skip_activation(self):
        channel = make_channel(num_banks=1)
        mc = MemoryController(
            channel,
            McConfig(scheduler="frfcfs", row_policy="open",
                     queue_depth=None),
        )
        mc.run([Request(issue_ns=0.0, row=7),
                Request(issue_ns=60.0, row=7),
                Request(issue_ns=120.0, row=7)])
        # One ACT opened the row; the two hits were column accesses.
        assert channel.total_acts == 1

    def test_ref_boundary_closes_open_row(self):
        """REF refreshes (and precharges) every bank, so a row opened
        before a tREFI boundary must not score a hit after it."""
        channel = make_channel(num_banks=1)
        mc = MemoryController(
            channel,
            McConfig(scheduler="frfcfs", row_policy="open",
                     queue_depth=None),
        )
        done = mc.run([Request(issue_ns=0.0, row=7),
                       Request(issue_ns=4500.0, row=7)])
        # The second access straddles the 3900 ns REF: row re-opened.
        assert [c.row_hit for c in done] == [False, False]
        assert channel.total_acts == 2

    def test_hit_survives_within_one_interval(self):
        channel = make_channel(num_banks=1)
        mc = MemoryController(
            channel,
            McConfig(scheduler="frfcfs", row_policy="open",
                     queue_depth=None),
        )
        done = mc.run([Request(issue_ns=0.0, row=7),
                       Request(issue_ns=3000.0, row=7)])
        assert [c.row_hit for c in done] == [False, True]

    def test_hits_are_faster_than_misses(self):
        channel = make_channel(num_banks=1)
        mc = MemoryController(
            channel,
            McConfig(scheduler="frfcfs", row_policy="open",
                     queue_depth=None),
        )
        done = mc.run([Request(issue_ns=0.0, row=7),
                       Request(issue_ns=200.0, row=7)])
        assert done[1].row_hit
        assert done[1].latency_ns < done[0].latency_ns


class TestQueueDepth:
    def test_full_queue_blocks_admission(self):
        """Depth-1 queues serialize admission: enqueue times lag
        arrival by the predecessor's service."""
        mc = MemoryController(
            make_channel(num_banks=1), McConfig(queue_depth=1)
        )
        reqs = [Request(issue_ns=0.0, bank=0, row=r) for r in (1, 2, 3)]
        done = mc.run(reqs)
        assert done[1].enqueue_ns >= done[0].start_ns
        assert done[2].enqueue_ns >= done[1].start_ns

    def test_blocked_bank_stalls_other_banks(self):
        """In-order front-end: a full bank-0 queue delays a younger
        bank-1 request behind it."""
        deep = MemoryController(
            make_channel(num_banks=2), McConfig(queue_depth=None)
        )
        shallow = MemoryController(
            make_channel(num_banks=2), McConfig(queue_depth=1)
        )
        reqs = [Request(issue_ns=0.0, bank=0, row=r) for r in (1, 2, 3)]
        reqs.append(Request(issue_ns=0.0, bank=1, row=9))
        free = {c.request.row: c for c in deep.run(reqs)}
        blocked = {c.request.row: c for c in shallow.run(list(reqs))}
        assert blocked[9].enqueue_ns > free[9].enqueue_ns

    def test_infinite_depth_admits_at_arrival(self):
        mc = MemoryController(
            make_channel(num_banks=1), McConfig(queue_depth=None)
        )
        reqs = [Request(issue_ns=0.0, bank=0, row=r) for r in range(20)]
        done = mc.run(reqs)
        assert all(c.enqueue_ns == c.request.issue_ns for c in done)


class TestProbeIssue:
    def test_would_defer_reports_event_crossing(self):
        """would_defer flags a command that would cross a REF without
        executing any event or claiming the issue slot."""
        channel = make_channel(num_banks=1)
        assert not channel.would_defer(12.0, bank=0)
        channel.advance_to(3895.0)  # 5 ns before the first REF
        assert channel.would_defer(12.0, bank=0)
        # Pure peek: the REF was not executed, so a longer command
        # issued now still defers across it exactly as it must.
        assert channel.activate(1, bank=0).time >= 3900.0 + 410.0

    def test_open_page_run_partitions_requests(self):
        """Every request is served exactly once: as a hit (column
        access) or as an activation — probe demotions flip a hit to
        an ACT, never drop or double-serve it."""
        channel = make_channel(num_banks=2)
        mc = MemoryController(
            channel,
            McConfig(scheduler="frfcfs", row_policy="open"),
        )
        reqs = [
            Request(issue_ns=i * 37.0, bank=i % 2, row=(i // 3) % 4)
            for i in range(300)
        ]
        done = mc.run(reqs)
        hits = sum(1 for c in done if c.row_hit)
        assert len(done) == 300
        assert hits + channel.total_acts == 300
        assert hits > 0


class TestRunStreamsAlias:
    def test_run_equals_single_stream(self):
        """run() is the 1-stream alias of run_streams() — the identity
        the system layer's 1-client pin rests on."""
        reqs = [
            Request(issue_ns=17.0 * i, bank=i % 2, row=(i * 11) % 512)
            for i in range(150)
        ]
        via_run = MemoryController(
            make_channel(), McConfig(queue_depth=2)
        ).run(list(reqs))
        via_streams = MemoryController(
            make_channel(), McConfig(queue_depth=2)
        ).run_streams([list(reqs)])
        assert via_run == via_streams

    def test_streams_need_at_least_one(self):
        mc = MemoryController(make_channel(), McConfig())
        with pytest.raises(ValueError, match="at least one"):
            mc.run_streams([])


class TestTiming:
    def test_idle_gap_reproduces(self):
        """Arrival timestamps floor the issue times (idle gaps pass)."""
        mc = MemoryController(make_channel(), McConfig())
        done = mc.run([Request(issue_ns=0.0, row=1),
                       Request(issue_ns=5000.0, row=2)])
        assert done[1].start_ns >= 5000.0

    def test_ref_defers_requests(self):
        """A request arriving just before the first REF waits out tRFC."""
        mc = MemoryController(make_channel(), McConfig())
        # tREFI=3900, tRFC=410: an ACT at 3890 cannot complete before
        # the REF, so it issues after the REF window.
        done = mc.run([Request(issue_ns=3890.0, row=1)])
        assert done[0].start_ns >= 3900.0 + 410.0

    def test_writes_complete_but_are_flagged(self):
        mc = MemoryController(make_channel(), McConfig())
        done = mc.run([Request(issue_ns=0.0, row=1, is_write=True),
                       Request(issue_ns=100.0, row=2)])
        assert done[0].request.is_write and not done[1].request.is_write

    def test_empty_stream(self):
        assert MemoryController(make_channel(), McConfig()).run([]) == []
