"""Tests for the ALERT-Back-Off protocol (paper §2.6, Figures 2 and 8)."""

import pytest

from repro.abo.protocol import AboConfig, AboProtocol


class TestAboConfig:
    @pytest.mark.parametrize("level,expected", [(1, 4), (2, 5), (4, 7)])
    def test_min_acts_between_alerts_fig8(self, level, expected):
        # Figure 8: 3 pre-RFM ACTs + level post-RFM ACTs.
        assert AboConfig(level=level).min_acts_between_alerts == expected

    def test_three_acts_fit_in_180ns_window(self):
        assert AboConfig(level=1).pre_rfm_acts == 3

    @pytest.mark.parametrize("level", [0, 3, 5])
    def test_illegal_levels_rejected(self, level):
        with pytest.raises(ValueError):
            AboConfig(level=level)

    @pytest.mark.parametrize(
        "level,duration", [(1, 530.0), (2, 880.0), (4, 1580.0)]
    )
    def test_alert_duration(self, level, duration):
        assert AboConfig(level=level).alert_duration == duration

    @pytest.mark.parametrize("level,stall", [(1, 350.0), (2, 700.0), (4, 1400.0)])
    def test_stall_duration(self, level, stall):
        assert AboConfig(level=level).stall_duration == stall

    def test_inter_alert_time_level1(self):
        assert AboConfig(level=1).inter_alert_time == 582.0

    def test_rfms_equal_level(self):
        assert AboConfig(level=4).rfms_per_alert == 4


class TestAboProtocol:
    def test_no_alert_without_request(self):
        abo = AboProtocol(AboConfig(level=1))
        assert abo.try_begin_alert(0.0, banks=[]) is None

    def test_request_then_assert(self):
        abo = AboProtocol(AboConfig(level=1))
        abo.request_alert()
        for _ in range(4):
            abo.note_activation()
        episode = abo.try_begin_alert(100.0, banks=[0])
        assert episode is not None
        assert episode.assert_time == 100.0
        assert episode.end_time == 630.0
        assert episode.rfms == 1

    def test_min_act_constraint_blocks_early_assert(self):
        abo = AboProtocol(AboConfig(level=1))
        abo.request_alert()
        for _ in range(4):
            abo.note_activation()
        assert abo.try_begin_alert(0.0, banks=[]) is not None
        # Second alert needs 4 fresh activations.
        abo.request_alert()
        for _ in range(3):
            abo.note_activation()
            assert abo.try_begin_alert(1000.0, banks=[]) is None
        abo.note_activation()
        assert abo.try_begin_alert(1000.0, banks=[]) is not None

    def test_acts_until_alert_allowed(self):
        abo = AboProtocol(AboConfig(level=2))
        abo.request_alert()
        for _ in range(5):
            abo.note_activation()
        abo.try_begin_alert(0.0, banks=[])
        assert abo.acts_until_alert_allowed() == 5
        abo.note_activation()
        assert abo.acts_until_alert_allowed() == 4

    def test_assert_time_respects_previous_episode(self):
        abo = AboProtocol(AboConfig(level=1))
        abo.request_alert()
        for _ in range(4):
            abo.note_activation()
        first = abo.try_begin_alert(0.0, banks=[])
        abo.request_alert()
        for _ in range(4):
            abo.note_activation()
        second = abo.try_begin_alert(10.0, banks=[])
        # The next episode cannot begin before the previous one ends.
        assert second.assert_time >= first.end_time

    def test_cancel_pending(self):
        abo = AboProtocol(AboConfig(level=1))
        abo.request_alert()
        abo.cancel_pending()
        for _ in range(10):
            abo.note_activation()
        assert abo.try_begin_alert(0.0, banks=[]) is None

    def test_episode_log(self):
        abo = AboProtocol(AboConfig(level=1))
        for _ in range(3):
            abo.request_alert()
            for _ in range(4):
                abo.note_activation()
            abo.try_begin_alert(0.0, banks=[1, 2])
        assert abo.alerts_issued == 3
        assert abo.episodes[0].requesting_banks == [1, 2]
