"""Scenario tests for ALERT episode sequencing through the engine."""

import pytest

from repro.dram.timing import DDR5_PRAC_TIMING
from repro.mitigations.moat import MoatPolicy
from repro.sim.engine import SimConfig, SubchannelSim


def moat_sim(ath=64, level=1) -> SubchannelSim:
    return SubchannelSim(
        SimConfig(rows_per_bank=64 * 1024, num_refresh_groups=8192, abo_level=level),
        lambda: MoatPolicy(ath=ath, level=level),
    )


class TestConsecutiveAlerts:
    def test_back_to_back_alerts_spaced_by_min_acts(self):
        """Two rows primed to ATH: their ALERTs are separated by at
        least the level's minimum activation count (Figure 8)."""
        sim = moat_sim(ath=64)
        rows = (9000, 9008)
        for row in rows:
            for _ in range(64):
                sim.activate(row)
        assert sim.alerts == 0
        # Cross both rows over ATH; alternate so both stay observed.
        first_alert_acts = None
        second_alert_acts = None
        for i in range(40):
            sim.activate(rows[i % 2])
            if sim.alerts >= 1 and first_alert_acts is None:
                first_alert_acts = sim.total_acts
            if sim.alerts >= 2 and second_alert_acts is None:
                second_alert_acts = sim.total_acts
                break
        sim.flush()
        assert sim.alerts >= 2
        # Figure 8 (level 1): at least 4 activations between ALERTs.
        assert second_alert_acts - first_alert_acts >= 4

    @pytest.mark.parametrize("level", [1, 2, 4])
    def test_stall_scales_with_level(self, level):
        sim = moat_sim(ath=64, level=level)
        times = []
        for _ in range(80):
            times.append(sim.activate(9000).time)
        gaps = [b - a for a, b in zip(times, times[1:])]
        # The largest gap is the RFM stall: level x 350 ns (plus the
        # remnant of the 180 ns window).
        assert max(gaps) >= level * DDR5_PRAC_TIMING.t_rfm

    @pytest.mark.parametrize("level", [2, 4])
    def test_higher_level_mitigates_more_rows_per_alert(self, level):
        sim = moat_sim(ath=64, level=level)
        rows = [9000 + 8 * i for i in range(level)]
        # Prime `level` rows above ETH; the last one crosses ATH.
        for row in rows[:-1]:
            for _ in range(40):
                sim.activate(row)
        for _ in range(65):
            sim.activate(rows[-1])
        sim.flush()
        assert sim.alerts == 1
        assert sim.reactive_count == level


class TestAlertWindowSemantics:
    def test_triggering_act_count_is_ath_plus_one(self):
        sim = moat_sim(ath=64)
        counts = [sim.activate(9000).count for _ in range(65)]
        assert counts[-1] == 65
        sim.flush()
        assert sim.alerts == 1

    def test_window_acts_do_not_restart_alert(self):
        """The 3 in-window activations above ATH must not spawn a
        second (spurious) ALERT once the row is mitigated."""
        sim = moat_sim(ath=64)
        for _ in range(69):
            sim.activate(9000)
        # Let time pass with no further crossings.
        sim.advance_to(sim.now + 20 * DDR5_PRAC_TIMING.t_refi)
        assert sim.alerts == 1
        assert sim.reactive_count == 1
