"""Attaching a recorder observes the run — it never changes it.

The null-object contract: every component defaults to
:data:`repro.obs.NULL_RECORDER`, emission sites are guarded on cold
paths only, and ``serve_streams`` dispatch is recorder-blind. So a run
with a live :class:`~repro.obs.TraceRecorder` must be bit-identical to
the same run without one — across every mitigation policy, kernel
backend, and scheduling policy — and the ALERT events must reconcile
exactly with the run's ``alerts`` counter (every execution path
funnels ALERT assertion through ``_maybe_assert_alert``, the single
emission site).
"""

from __future__ import annotations

import dataclasses

from hypothesis import given, settings, strategies as st

from repro.mc.sched import sched_kinds
from repro.mitigations.registry import PolicySpec, policy_kinds
from repro.obs import EVENT_KINDS, TraceRecorder
from repro.sim.backend import BACKEND_NAMES
from repro.sim.mc import McRunConfig, run_mc
from repro.sweep.mc_spec import HAMMER_WORKLOAD
from repro.system import ClientSpec, SystemRunConfig, run_system

#: Small but ALERT-provoking closed-loop scale (ath=16 over the hammer
#: mix asserts ALERTs within a few dozen tREFI).
_N_TREFI = 48


def _config(policy: str, backend: str, scheduler: str) -> McRunConfig:
    return McRunConfig(
        ath=16,
        policy=PolicySpec(policy),
        workload=HAMMER_WORKLOAD,
        scheduler=scheduler,
        banks=2,
        n_trefi=_N_TREFI,
        backend=backend,
    )


@given(
    policy=st.sampled_from(sorted(policy_kinds())),
    backend=st.sampled_from(BACKEND_NAMES),
    scheduler=st.sampled_from(sorted(sched_kinds())),
)
@settings(max_examples=20, deadline=None)
def test_recorder_never_changes_mc_results(policy, backend, scheduler):
    config = _config(policy, backend, scheduler)
    plain = run_mc(config)
    recorder = TraceRecorder()
    traced = run_mc(config, recorder=recorder)

    assert dataclasses.asdict(traced) == dataclasses.asdict(plain)
    assert recorder.count("alert") == traced.alerts
    assert set(event.kind for event in recorder.events) <= set(EVENT_KINDS)


def test_alert_events_reconcile_under_pressure():
    """A run with many ALERTs: one event per counter increment."""
    config = _config("moat", "pure", "frfcfs")
    recorder = TraceRecorder()
    result = run_mc(config, recorder=recorder)
    assert result.alerts > 0
    alerts = recorder.of_kind("alert")
    assert len(alerts) == result.alerts
    # ALERT durations are the engine's stall windows, in sim time.
    assert all(event.dur_ns > 0 for event in alerts)
    assert all(0 <= event.ts_ns for event in alerts)


def test_ref_events_follow_the_refresh_schedule():
    recorder = TraceRecorder()
    result = run_mc(_config("moat", "pure", "frfcfs"), recorder=recorder)
    refs = recorder.of_kind("ref")
    # One REF per elapsed tREFI per sub-channel (minus edge windows).
    assert result.requests > 0
    assert _N_TREFI - 2 <= len(refs) <= _N_TREFI


def test_recorder_never_changes_system_results():
    config = SystemRunConfig(
        clients=(
            ClientSpec(name="tenant0", seed=0),
            ClientSpec(name="tenant1", seed=1),
        ),
        channels=2,
        ath=16,
        banks=2,
        n_trefi=_N_TREFI,
    )
    plain = run_system(config, jobs=1)
    recorder = TraceRecorder()
    traced = run_system(config, jobs=1, recorder=recorder)

    assert dataclasses.asdict(traced.aggregate) == dataclasses.asdict(
        plain.aggregate
    )
    assert [dataclasses.asdict(c) for c in traced.clients] == [
        dataclasses.asdict(c) for c in plain.clients
    ]
    # Crossbar grants are derived per completion, with the channel's
    # sub-channel base offset applied.
    grants = recorder.of_kind("grant")
    assert len(grants) == traced.aggregate.requests
    assert {g.sub for g in grants} == set(
        range(config.channels * config.subchannels)
    )
    assert recorder.count("alert") == traced.aggregate.alerts
