"""Exactness properties of the log histogram and per-tREFI series."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs import LogHistogram, TraceRecorder, histogram_of
from repro.obs.metrics import per_trefi_series

#: Sample values spanning subnormal-to-huge magnitudes plus the
#: non-positive edge cases the ``zeros`` bucket absorbs.
_samples = st.lists(
    st.one_of(
        st.floats(min_value=0.0, max_value=1e12, allow_nan=False),
        st.floats(min_value=-100.0, max_value=100.0, allow_nan=False),
        st.just(0.0),
    ),
    max_size=200,
)


def _hist(values) -> LogHistogram:
    hist = LogHistogram()
    hist.add_many(values)
    return hist


@given(a=_samples, b=_samples)
@settings(max_examples=200, deadline=None)
def test_merge_equals_whole_run_histogram(a, b):
    """merge(hist(a), hist(b)) must equal hist(a + b) exactly."""
    merged = _hist(a)
    merged.merge(_hist(b))
    assert merged == _hist(a + b)


@given(parts=st.lists(_samples, max_size=6))
@settings(max_examples=50, deadline=None)
def test_merge_is_order_independent(parts):
    forward = LogHistogram()
    for part in parts:
        forward.merge(_hist(part))
    backward = LogHistogram()
    for part in reversed(parts):
        backward.merge(_hist(part))
    assert forward == backward


@given(values=_samples)
@settings(max_examples=100, deadline=None)
def test_json_roundtrip_is_exact(values):
    hist = _hist(values)
    assert LogHistogram.from_json(hist.to_json()) == hist
    assert hist.total == len(values)


def test_bucket_bounds_contain_their_samples():
    hist = _hist([1.0, 3.0, 1000.0, 0.5])
    for exponent, count in hist.counts.items():
        assert count > 0
        lo, hi = LogHistogram.bucket_bounds(exponent)
        assert lo * 2 == hi


def test_quantile_brackets_exact_percentile():
    values = [float(v) for v in range(1, 1001)]
    hist = _hist(values)
    for q in (0.5, 0.9, 0.99):
        exact = values[int(q * len(values)) - 1]
        estimate = hist.quantile(q)
        # Bucket upper bound: within a factor of two above the truth.
        assert exact <= estimate <= exact * 2


def test_empty_histogram():
    hist = LogHistogram()
    assert hist.total == 0
    assert hist.quantile(0.5) != hist.quantile(0.5)  # NaN
    assert LogHistogram.from_json(hist.to_json()) == hist


def test_per_trefi_series_attribution():
    recorder = TraceRecorder()
    recorder.emit("alert", ts_ns=50.0, dur_ns=30.0)
    recorder.emit("alert", ts_ns=150.0, dur_ns=10.0)
    recorder.emit("ref", ts_ns=120.0, dur_ns=40.0)
    recorder.emit("act-burst", ts_ns=10.0, value=5.0)
    recorder.emit("queue-stall", ts_ns=160.0, dur_ns=20.0)
    recorder.emit("queue-issue", ts_ns=170.0, dur_ns=5.0, value=50.0)
    # Past-horizon events fold into the last window (end-of-run flush).
    recorder.emit("alert", ts_ns=999.0, dur_ns=1.0)

    series = per_trefi_series(recorder.events, n_trefi=2, t_refi_ns=100.0)
    assert series["alerts"] == [1.0, 2.0]
    assert series["alert_stall_ns"] == [30.0, 11.0]
    assert series["refs"] == [0.0, 1.0]
    assert series["acts"] == [5.0, 0.0]
    assert series["queue_stall_ns"] == [0.0, 20.0]
    assert series["occupancy"] == [0.0, 0.5]


def test_per_trefi_series_validates_arguments():
    with pytest.raises(ValueError):
        per_trefi_series([], n_trefi=0, t_refi_ns=100.0)
    with pytest.raises(ValueError):
        per_trefi_series([], n_trefi=4, t_refi_ns=0.0)


def test_histogram_of_selects_kind_and_field():
    recorder = TraceRecorder()
    recorder.emit("complete", 10.0, value=100.0)
    recorder.emit("complete", 20.0, value=200.0)
    recorder.emit("queue-stall", 30.0, dur_ns=50.0)
    assert histogram_of(recorder.events, "complete").total == 2
    stalls = histogram_of(recorder.events, "queue-stall", "dur_ns")
    assert stalls.total == 1
    assert stalls.max_value == 50.0
