"""Tests for the observability CLI surface.

``mc run --trace-out``/``--obs``, ``system run --trace-out``, sweep
``--obs`` provenance, and the ``repro obs summarize``/``export``
commands.
"""

import json

from repro.cli import main
from repro.obs import OBS_SCHEMA

RUN = ["mc", "run", "--trefi", "48", "--banks", "2", "--ath", "16"]


def test_mc_run_trace_out_writes_obs_artifact(tmp_path, capsys):
    trace = tmp_path / "t.json"
    assert main([*RUN, "--trace-out", str(trace)]) == 0
    artifact = json.loads(trace.read_text())
    assert artifact["schema"] == OBS_SCHEMA
    assert artifact["events"]
    # The artifact itself is Perfetto-loadable.
    assert artifact["traceEvents"]
    assert artifact["displayTimeUnit"] == "ns"
    # ALERT events reconcile with the run's counter by construction.
    assert artifact["counts"]["alert"] == sum(
        1 for row in artifact["events"] if row[0] == "alert"
    )
    assert "trace artifact" in capsys.readouterr().err


def test_mc_run_obs_prints_summary(capsys):
    assert main([*RUN, "--obs"]) == 0
    out = capsys.readouterr().out
    assert "Observability summary" in out
    assert "events:complete" in out
    assert "prov:backend" in out


def test_system_run_trace_out(tmp_path):
    trace = tmp_path / "s.json"
    assert main([
        "system", "run", "--clients", "2", "--channels", "2",
        "--trefi", "32", "--banks", "2", "--jobs", "1", "--quiet",
        "--trace-out", str(trace),
    ]) == 0
    artifact = json.loads(trace.read_text())
    assert artifact["schema"] == OBS_SCHEMA
    assert artifact["counts"]["grant"] > 0
    # Both channels' sub-channels appear, offset by the channel base.
    subs = {row[3] for row in artifact["events"]}
    assert subs == {0, 1}


def test_obs_summarize_and_export(tmp_path, capsys):
    trace = tmp_path / "t.json"
    assert main([*RUN, "--trace-out", str(trace)]) == 0
    capsys.readouterr()

    assert main(["obs", "summarize", str(trace)]) == 0
    out = capsys.readouterr().out
    assert "events" in out and "prov:backend" in out

    exported = tmp_path / "t.perfetto.json"
    assert main(["obs", "export", str(trace),
                 "--out", str(exported)]) == 0
    pure = json.loads(exported.read_text())
    assert set(pure) >= {"traceEvents", "displayTimeUnit"}
    phases = {event["ph"] for event in pure["traceEvents"]}
    assert phases <= {"X", "i", "M"}


def test_obs_rejects_non_obs_artifacts(tmp_path, capsys):
    bogus = tmp_path / "bogus.json"
    bogus.write_text(json.dumps({"schema": "repro.sweep/v1"}))
    assert main(["obs", "summarize", str(bogus)]) == 2
    assert "error" in capsys.readouterr().err


def test_sweep_obs_records_provenance(tmp_path):
    out = tmp_path / "BENCH_mc.json"
    argv = ["mc", "sweep", "mc-smoke", "--trefi", "96", "--jobs", "1",
            "--quiet", "--out", str(out),
            "--cache-dir", str(tmp_path / "cache"), "--obs"]
    assert main(argv) == 0
    artifact = json.loads(out.read_text())
    provenance = artifact["provenance"]
    assert provenance["provenance_version"] == 1
    assert provenance["config_hash"]
    assert provenance["cache"]["misses"] == len(artifact["points"])
    assert provenance["cache"]["hits"] == 0
    assert provenance["preset"] == "mc-smoke"

    # A cache-hit rerun records the hits; without --obs the artifact
    # carries no provenance key at all (byte-identity with older runs).
    assert main(argv) == 0
    rerun = json.loads(out.read_text())
    assert rerun["provenance"]["cache"]["hits"] == len(rerun["points"])
    assert main(argv[:-1]) == 0
    assert "provenance" not in json.loads(out.read_text())
