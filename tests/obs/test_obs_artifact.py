"""``repro.obs/v1`` artifact round-trip and Perfetto export schema."""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    EVENT_KINDS,
    OBS_SCHEMA,
    TraceRecorder,
    artifact_events,
    artifact_histograms,
    histogram_of,
    load_obs_artifact,
    make_obs_artifact,
    summarize_obs,
    to_perfetto,
    write_perfetto,
)
from repro.obs.events import TraceEvent
from repro.obs.perfetto import _KIND_TID
from repro.sweep.artifacts import write_artifact


def _sample_recorder() -> TraceRecorder:
    """One event of every kind, spread over two sub-channels."""
    recorder = TraceRecorder(meta={"workload": "sample", "n_trefi": 4})
    recorder.emit("act-burst", 100.0, sub=0, bank=1, value=3.0)
    recorder.emit("ref", 200.0, 410.0, sub=0)
    recorder.emit("alert", 350.0, 180.0, sub=1, value=2.0)
    recorder.emit("queue-stall", 400.0, 50.0, sub=1, bank=2, client=0)
    recorder.emit("queue-admit", 450.0, sub=1, bank=2, client=0)
    recorder.emit("queue-issue", 500.0, 60.0, sub=1, bank=2, client=0,
                  value=50.0)
    recorder.emit("grant", 450.0, sub=1, bank=2, client=0)
    recorder.emit("complete", 560.0, sub=1, bank=2, client=0, value=160.0)
    return recorder


def test_artifact_json_roundtrip(tmp_path):
    recorder = _sample_recorder()
    artifact = make_obs_artifact(recorder, n_trefi=4, t_refi_ns=3900.0)
    path = tmp_path / "trace.json"
    write_artifact(path, artifact)

    loaded = load_obs_artifact(path)
    assert loaded["schema"] == OBS_SCHEMA
    assert artifact_events(loaded) == recorder.events
    assert loaded["counts"] == recorder.counts()
    assert loaded["meta"]["workload"] == "sample"
    revived = artifact_histograms(loaded)
    assert revived["request_latency_ns"] == histogram_of(
        recorder.events, "complete", "value"
    )
    assert loaded["series"]["n_trefi"] == 4
    assert len(loaded["series"]["alerts"]) == 4
    # Provenance is always present on observability artifacts.
    assert loaded["provenance"]["provenance_version"] == 1
    assert "backend" in loaded["provenance"]


def test_artifact_counts_keep_zero_kinds():
    recorder = TraceRecorder()
    recorder.emit("ref", 0.0, 410.0)
    artifact = make_obs_artifact(recorder)
    assert set(artifact["counts"]) == set(EVENT_KINDS)
    assert artifact["counts"]["ref"] == 1
    assert artifact["counts"]["alert"] == 0


def test_load_rejects_wrong_schema(tmp_path):
    path = tmp_path / "other.json"
    write_artifact(path, {"schema": "repro.sweep/v1", "points": []})
    with pytest.raises(ValueError):
        load_obs_artifact(path)


def test_event_row_roundtrip():
    event = TraceEvent(kind="complete", ts_ns=12.5, dur_ns=0.0, sub=3,
                       bank=7, client=2, value=160.25)
    assert TraceEvent.from_row(event.to_row()) == event


def test_summarize_rows_cover_counts_and_provenance():
    artifact = make_obs_artifact(_sample_recorder(), n_trefi=4,
                                 t_refi_ns=3900.0)
    rows = dict(summarize_obs(artifact))
    assert rows["schema"] == OBS_SCHEMA
    assert rows["events"] == 8
    assert rows["events:alert"] == 1
    assert "prov:backend" in rows
    assert rows["meta:workload"] == "sample"


def test_perfetto_export_schema():
    recorder = _sample_recorder()
    trace = to_perfetto(recorder.events, meta=recorder.meta)
    assert trace["displayTimeUnit"] == "ns"
    assert trace["otherData"]["workload"] == "sample"

    events = trace["traceEvents"]
    real = [e for e in events if e["ph"] in ("X", "i")]
    meta = [e for e in events if e["ph"] == "M"]
    assert len(real) == len(recorder.events)
    # Chrome trace-event timestamps are microseconds.
    ref = next(e for e in real if e["name"] == "ref")
    assert ref["ph"] == "X"
    assert ref["ts"] == 200.0 / 1000.0
    assert ref["dur"] == 410.0 / 1000.0
    admit = next(e for e in real if e["name"] == "queue-admit")
    assert admit["ph"] == "i" and admit["s"] == "t"
    for event in real:
        assert event["pid"] in (0, 1)
        assert event["tid"] == _KIND_TID[event["name"]]
        assert set(event["args"]) == {"bank", "client", "value"}
    # Every (sub, kind) lane is named for the viewer.
    names = {e["name"] for e in meta}
    assert names == {"process_name", "thread_name"}


def test_perfetto_embedded_in_artifact_and_file_export(tmp_path):
    recorder = _sample_recorder()
    artifact = make_obs_artifact(recorder)
    # The artifact itself is Perfetto-loadable: the JSON loader reads
    # traceEvents and ignores the repro-specific keys.
    assert artifact["displayTimeUnit"] == "ns"
    assert [e for e in artifact["traceEvents"] if e["ph"] != "M"]

    out = write_perfetto(tmp_path / "t.perfetto.json", recorder.events)
    loaded = json.loads(out.read_text())
    assert set(loaded) == {"traceEvents", "displayTimeUnit"}
    assert len(loaded["traceEvents"]) == len(artifact["traceEvents"])
