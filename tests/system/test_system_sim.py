"""System-level pins: the 1-client identity, sharded parallel ==
serial, per-client seeding discipline, and the noisy-neighbor
degradation the system family exists to measure."""

import dataclasses
import math

import pytest

from repro.attacks.registry import AttackSpec
from repro.sim.mc import McRunConfig, run_mc
from repro.system import (
    ClientSpec,
    SystemRunConfig,
    SystemSim,
    run_system,
)
from repro.workloads.requests import McWorkload

#: Small-but-busy scale shared by the pins below.
FAST = dict(banks=2, n_trefi=256)

TENANT = McWorkload(
    reads_per_trefi_per_bank=24.0, hot_fraction=0.3, hot_rows=8
)


def duo(**overrides):
    kwargs = dict(
        clients=(
            ClientSpec(name="t0", workload=TENANT),
            ClientSpec(name="t1", workload=TENANT, seed=1),
        ),
        **FAST,
    )
    kwargs.update(overrides)
    return SystemRunConfig(**kwargs)


class TestConfigValidation:
    def test_needs_a_client(self):
        with pytest.raises(ValueError, match="at least one client"):
            SystemRunConfig(clients=())

    def test_unique_names(self):
        with pytest.raises(ValueError, match="unique"):
            SystemRunConfig(
                clients=(ClientSpec(name="a"), ClientSpec(name="a"))
            )

    def test_channels_positive(self):
        with pytest.raises(ValueError, match="channels"):
            SystemRunConfig(channels=0)

    def test_eth_defaults_to_half_ath(self):
        assert SystemRunConfig(ath=48).eth_resolved == 24
        assert SystemRunConfig(ath=48, eth=40).eth_resolved == 40


class TestIdentityPin:
    """One client, one channel: bit-identical to run_mc."""

    def test_matches_run_mc(self):
        workload = McWorkload(reads_per_trefi_per_bank=20.0,
                              hot_fraction=0.25, write_fraction=0.1)
        system = run_system(SystemRunConfig(
            clients=(ClientSpec(name="only", workload=workload),),
            seed=3, **FAST,
        ))
        mc = run_mc(McRunConfig(workload=workload, seed=3, **FAST))
        assert system.aggregate == mc

    def test_as_metrics_extends_run_mc(self):
        system = run_system(SystemRunConfig(
            clients=(ClientSpec(name="only", workload=TENANT),), **FAST
        ))
        mc = run_mc(McRunConfig(workload=TENANT, **FAST))
        got = system.as_metrics()
        assert got.pop("channels") == 1.0
        base = {k: v for k, v in got.items() if ":" not in k}
        assert base == mc.as_metrics()
        # And the single client's slice agrees with the aggregate.
        assert got["only:read_p99_ns"] == base["read_p99_ns"]
        assert got["only:requests"] == base["requests"]


class TestSharding:
    def test_parallel_equals_serial(self, tmp_path):
        config = duo(channels=3)
        serial = run_system(config, jobs=1)
        parallel = run_system(
            config, jobs=3, cache_dir=tmp_path / "cache"
        )
        assert parallel.aggregate == serial.aggregate
        assert [dataclasses.asdict(c) for c in parallel.clients] == [
            dataclasses.asdict(c) for c in serial.clients
        ]

    def test_cache_round_trip_is_bit_identical(self, tmp_path):
        config = duo(channels=2)
        cache = tmp_path / "cache"
        fresh = run_system(config, cache_dir=cache)
        assert fresh.cache_hits == 0
        cached = run_system(config, cache_dir=cache)
        assert cached.cache_hits == 2
        assert cached.aggregate == fresh.aggregate
        assert cached.clients == fresh.clients

    def test_channels_scale_throughput(self):
        one = run_system(duo(channels=1))
        four = run_system(duo(channels=4))
        # Four independent channels serve ~4x the requests at the same
        # horizon; per-config streams differ by channel reseeding, so
        # allow a generous tolerance.
        ratio = four.aggregate.requests / one.aggregate.requests
        assert 3.5 < ratio < 4.5
        assert four.aggregate.subchannels == 4 * one.aggregate.subchannels

    def test_shard_grid_is_one_cell_per_channel(self):
        sim = SystemSim(duo(channels=3))
        shards = sim.shards()
        assert [s.channel for s in shards] == [0, 1, 2]
        hashes = {s.config_hash() for s in shards}
        assert len(hashes) == 3  # the channel is part of the identity


class TestSeedingDiscipline:
    def test_client_stream_invariant_to_other_clients(self):
        """Client t0's metrics do not move when t1 changes its seed —
        stream synthesis must depend only on the client's own spec and
        the system seed, not on who else shares the crossbar.

        Null policy and unbounded queues keep the *service* side
        contention-free too, so the pin is exact, not statistical.
        """
        from repro.mitigations.registry import PolicySpec

        def t0_metrics(other_seed):
            config = duo(
                clients=(
                    ClientSpec(name="t0", workload=TENANT),
                    ClientSpec(name="t1", workload=TENANT,
                               seed=other_seed),
                ),
                policy=PolicySpec(kind="null"),
                queue_depth=None,
            )
            return run_system(config).client("t0")

        a = t0_metrics(1)
        b = t0_metrics(5)
        assert a.requests == b.requests
        assert a.reads == b.reads

    def test_same_seed_same_workload_coincide(self):
        """The documented footgun: two clients sharing workload and
        seed salt draw identical streams."""
        config = duo(
            clients=(
                ClientSpec(name="t0", workload=TENANT),
                ClientSpec(name="twin", workload=TENANT),
            ),
        )
        result = run_system(config)
        assert (result.client("t0").requests
                == result.client("twin").requests)

    def test_system_seed_moves_every_stream(self):
        a = run_system(duo(seed=0)).aggregate
        b = run_system(duo(seed=99)).aggregate
        assert a.requests != b.requests


class TestNoisyNeighbor:
    """The headline scenario: a PRAC hammer degrades its neighbors'
    tail latency through ALERT back-pressure."""

    ATTACKER = ClientSpec(
        name="attacker",
        attack=AttackSpec.of("kernel-single", total_acts=200_000),
    )

    def run_pair(self, with_attacker):
        victims = (
            ClientSpec(name="victim0", workload=TENANT),
            ClientSpec(name="victim1", workload=TENANT, seed=1),
        )
        clients = victims + ((self.ATTACKER,) if with_attacker else ())
        return run_system(SystemRunConfig(
            clients=clients, ath=32, n_trefi=512, banks=2,
        ))

    def test_attacker_degrades_victim_p99(self):
        quiet = self.run_pair(with_attacker=False)
        noisy = self.run_pair(with_attacker=True)
        assert noisy.aggregate.alerts > quiet.aggregate.alerts
        for victim in ("victim0", "victim1"):
            before = quiet.client(victim)
            after = noisy.client(victim)
            # The gated contrast: at least 2x p99 degradation (the
            # committed baseline records ~350x at this scale).
            assert after.read_p99_ns > 2.0 * before.read_p99_ns
            assert after.achieved_gbps < before.achieved_gbps

    def test_victim_metrics_stay_finite(self):
        noisy = self.run_pair(with_attacker=True)
        for metrics in noisy.clients:
            for key, value in metrics.as_metrics().items():
                assert math.isfinite(value), (metrics.name, key)
