"""Crossbar unit tests: grant order under contention, the client
stream synthesizer, and the attack -> request-stream adapter."""

import pytest

from repro.attacks.registry import AttackSpec
from repro.mc import McConfig, MemoryController, Request
from repro.mitigations.null import NullPolicy
from repro.sim.channel import ChannelConfig, ChannelSim
from repro.sim.engine import SimConfig
from repro.system import (
    ATTACK_ROW_BASE,
    CHANNEL_SEED_STRIDE,
    CLIENT_SEED_STRIDE,
    STREAMABLE_ATTACKS,
    ClientSpec,
    attack_request_stream,
    client_requests,
)
from repro.dram.timing import DDR5_PRAC_TIMING
from repro.workloads.requests import McWorkload


def make_channel(num_banks=2, rows=4096):
    return ChannelSim(
        ChannelConfig(
            sim=SimConfig(
                num_banks=num_banks,
                rows_per_bank=rows,
                num_refresh_groups=rows,
                track_danger=False,
                dense_counters=True,
            ),
            num_subchannels=1,
        ),
        NullPolicy,
    )


def burst(client, rows, bank=0, t=0.0):
    """Same-instant requests from one client (forces grant decisions)."""
    return [
        Request(issue_ns=t, bank=bank, row=row, client=client)
        for row in rows
    ]


class TestClientSpecValidation:
    def test_rejects_empty_name(self):
        with pytest.raises(ValueError, match="non-empty"):
            ClientSpec(name="")

    def test_rejects_reserved_separators(self):
        with pytest.raises(ValueError, match="reserved"):
            ClientSpec(name="a:b")
        with pytest.raises(ValueError, match="reserved"):
            ClientSpec(name="a|b")

    def test_rejects_adaptive_attacks(self):
        with pytest.raises(ValueError, match="adaptive"):
            ClientSpec(name="atk", attack=AttackSpec.of("feinting"))

    def test_display_name_prefers_attack(self):
        benign = ClientSpec(name="t0")
        hammer = ClientSpec(
            name="atk", attack=AttackSpec.of("kernel-single")
        )
        assert benign.display_name() == McWorkload().display_name()
        assert "kernel" in hammer.display_name()


class TestGrantOrder:
    def test_equal_priority_round_robin(self):
        """Same-instant admission from equal clients alternates; the
        per-bank queue then serves the interleaved arrivals FCFS."""
        mc = MemoryController(
            make_channel(num_banks=1),
            McConfig(scheduler="fcfs", queue_depth=1),
        )
        done = mc.run_streams(
            [burst(0, [1, 2, 3]), burst(1, [11, 12, 13])]
        )
        order = [c.request.row for c in sorted(done, key=lambda c: c.start_ns)]
        assert order == [1, 11, 2, 12, 3, 13]

    def test_priority_admits_first(self):
        """Under a full queue, the higher-priority client's whole
        burst is admitted before the low-priority one's."""
        mc = MemoryController(
            make_channel(num_banks=1),
            McConfig(scheduler="fcfs", queue_depth=1),
        )
        done = mc.run_streams(
            [burst(0, [1, 2, 3]), burst(1, [11, 12, 13])],
            priorities=[0, 5],
        )
        order = [c.request.row for c in sorted(done, key=lambda c: c.start_ns)]
        assert order == [11, 12, 13, 1, 2, 3]

    def test_full_queue_stalls_only_owner(self):
        """Client 0 jams bank 0; client 1's bank-1 stream is admitted
        at arrival, not behind the jam (per-client in-order, not
        global in-order)."""
        mc = MemoryController(
            make_channel(num_banks=2), McConfig(queue_depth=1)
        )
        jam = burst(0, [1, 2, 3, 4], bank=0)
        side = burst(1, [21, 22], bank=1)
        together = {
            c.request.row: c for c in mc.run_streams([jam, side])
        }
        alone = {
            c.request.row: c
            for c in MemoryController(
                make_channel(num_banks=2), McConfig(queue_depth=1)
            ).run_streams([side])
        }
        # The side client pays only shared command-bus serialization
        # (a few ns per command), never a jammed-queue stall (a full
        # ~52 ns tRC per blocked entry would show up here).
        for row in (21, 22):
            delay = together[row].complete_ns - alone[row].complete_ns
            assert 0.0 <= delay < 10.0
        # The jammed client itself serializes behind the depth-1 queue.
        assert together[4].enqueue_ns > 0.0

    def test_within_client_order_is_preserved(self):
        mc = MemoryController(
            make_channel(num_banks=2), McConfig(queue_depth=2)
        )
        streams = [
            [Request(issue_ns=7.0 * i, bank=i % 2, row=i, client=0)
             for i in range(40)],
            [Request(issue_ns=11.0 * i, bank=(i + 1) % 2, row=100 + i,
                     client=1) for i in range(40)],
        ]
        done = mc.run_streams(streams)
        for client in (0, 1):
            mine = [c for c in sorted(done, key=lambda c: c.enqueue_ns)
                    if c.request.client == client]
            rows = [c.request.row for c in mine]
            assert rows == sorted(rows)

    def test_priorities_length_mismatch_rejected(self):
        mc = MemoryController(make_channel(), McConfig())
        with pytest.raises(ValueError, match="priorities"):
            mc.run_streams([burst(0, [1])], priorities=[0, 1])

    def test_single_stream_matches_run(self):
        reqs = [
            Request(issue_ns=13.0 * i, bank=i % 2, row=(i * 7) % 64)
            for i in range(200)
        ]
        a = MemoryController(make_channel(), McConfig()).run(list(reqs))
        b = MemoryController(make_channel(), McConfig()).run_streams(
            [list(reqs)]
        )
        assert a == b


class TestAttackStream:
    def test_paced_at_t_rc(self):
        spec = AttackSpec.of("kernel-single", total_acts=100)
        stream = attack_request_stream(
            spec, horizon_ns=1e9, timing=DDR5_PRAC_TIMING,
            rows_per_bank=64 * 1024,
        )
        assert len(stream) == 100
        t_rc = DDR5_PRAC_TIMING.t_rc
        assert [r.issue_ns for r in stream[:3]] == [0.0, t_rc, 2 * t_rc]
        assert all(r.row == ATTACK_ROW_BASE for r in stream)

    def test_horizon_clips_budget(self):
        spec = AttackSpec.of("kernel-single", total_acts=10**9)
        horizon = 100 * DDR5_PRAC_TIMING.t_rc
        stream = attack_request_stream(
            spec, horizon_ns=horizon, timing=DDR5_PRAC_TIMING,
            rows_per_bank=64 * 1024,
        )
        assert stream, "attack stream must not be empty"
        assert all(r.issue_ns < horizon for r in stream)

    def test_multi_row_kernel_cycles_rows(self):
        spec = AttackSpec.of("kernel-multi", rows=3, total_acts=9)
        stream = attack_request_stream(
            spec, horizon_ns=1e9, timing=DDR5_PRAC_TIMING,
            rows_per_bank=64 * 1024,
        )
        assert [r.row - ATTACK_ROW_BASE for r in stream] == [
            0, 1, 2, 0, 1, 2, 0, 1, 2,
        ]

    def test_trespass_budget(self):
        spec = AttackSpec.of(
            "trespass", num_aggressors=4, acts_per_aggressor=8
        )
        stream = attack_request_stream(
            spec, horizon_ns=1e9, timing=DDR5_PRAC_TIMING,
            rows_per_bank=64 * 1024,
        )
        assert len(stream) == 32
        assert {r.row - ATTACK_ROW_BASE for r in stream} == {0, 1, 2, 3}

    def test_adaptive_kind_rejected(self):
        with pytest.raises(ValueError, match="adaptive"):
            attack_request_stream(
                AttackSpec.of("feinting"), horizon_ns=1e6,
                timing=DDR5_PRAC_TIMING, rows_per_bank=64 * 1024,
            )

    def test_small_banks_rejected(self):
        with pytest.raises(ValueError, match="rows"):
            attack_request_stream(
                AttackSpec.of("kernel-single"), horizon_ns=1e6,
                timing=DDR5_PRAC_TIMING, rows_per_bank=512,
            )

    def test_streamable_kinds_all_stream(self):
        for kind in STREAMABLE_ATTACKS:
            stream = attack_request_stream(
                AttackSpec.of(kind), horizon_ns=1e6,
                timing=DDR5_PRAC_TIMING, rows_per_bank=64 * 1024,
            )
            assert stream, kind


class TestClientRequests:
    KWARGS = dict(
        subchannels=1, banks=2, n_trefi=64, rows_per_bank=4096,
        seed=7, channel=0, timing=DDR5_PRAC_TIMING,
    )

    def test_tags_every_request(self):
        stream = client_requests(ClientSpec(name="t0"), 3, **self.KWARGS)
        assert stream and all(r.client == 3 for r in stream)

    def test_seed_zero_channel_zero_is_identity(self):
        """Client seed 0 on channel 0 draws at the bare system seed —
        the anchor of the 1-client == run_mc pin."""
        from repro.workloads.requests import generate_requests

        stream = client_requests(ClientSpec(name="t0"), 0, **self.KWARGS)
        base = generate_requests(
            McWorkload(), num_subchannels=1, banks_per_subchannel=2,
            n_trefi=64, rows_per_bank=4096, seed=7,
            trefi_ns=DDR5_PRAC_TIMING.t_refi,
        )
        assert stream == base

    def test_client_and_channel_seeds_decorrelate(self):
        a = client_requests(ClientSpec(name="t0"), 0, **self.KWARGS)
        b = client_requests(
            ClientSpec(name="t1", seed=1), 1, **self.KWARGS
        )
        kwargs = dict(self.KWARGS, channel=1)
        c = client_requests(ClientSpec(name="t0"), 0, **kwargs)
        issue = lambda s: [r.issue_ns for r in s]
        assert issue(a) != issue(b)
        assert issue(a) != issue(c)
        assert CLIENT_SEED_STRIDE != CHANNEL_SEED_STRIDE
