"""Tests for the feinting bound (paper Table 2)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.feinting_model import (
    PAPER_TABLE2,
    feinting_bound,
    feinting_bound_exact,
    feinting_table,
    harmonic,
)
from repro.dram.timing import DramTiming


class TestHarmonic:
    def test_small_values(self):
        assert harmonic(0) == 0.0
        assert harmonic(1) == 1.0
        assert harmonic(2) == 1.5

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            harmonic(-1)

    @given(m=st.integers(min_value=1, max_value=2000))
    @settings(max_examples=30, deadline=None)
    def test_logarithmic_growth_bounds(self, m):
        import math

        h = harmonic(m)
        assert math.log(m) < h <= math.log(m) + 1.0


class TestTable2:
    @pytest.mark.parametrize("rate,expected", sorted(PAPER_TABLE2.items()))
    def test_bound_matches_paper(self, rate, expected):
        # Closed form within 1% of the published Table 2 values.
        assert feinting_bound(rate) == pytest.approx(expected, rel=0.01)

    @pytest.mark.parametrize("rate", [1, 2, 3, 4, 5])
    def test_exact_close_to_closed_form(self, rate):
        exact = feinting_bound_exact(rate)
        closed = feinting_bound(rate)
        assert abs(exact - closed) / closed < 0.01

    def test_table_helper(self):
        table = feinting_table()
        assert sorted(table) == [1, 2, 3, 4, 5]
        assert table[4] == pytest.approx(2195, rel=0.01)

    def test_bound_monotone_in_rate(self):
        values = [feinting_bound(k) for k in range(1, 6)]
        assert values == sorted(values)

    def test_rate_must_be_positive(self):
        with pytest.raises(ValueError):
            feinting_bound(0)
        with pytest.raises(ValueError):
            feinting_bound_exact(-1)


class TestScaledWindows:
    def test_scales_with_window(self, fast_timing):
        # 64 REFs per window, rate 4 -> 16 periods of 268 ACTs.
        bound = feinting_bound(4, timing=fast_timing)
        assert bound == pytest.approx(268 * harmonic(16))

    @given(k=st.integers(min_value=1, max_value=8))
    @settings(max_examples=20, deadline=None)
    def test_exact_never_exceeds_closed_form(self, k):
        timing = DramTiming(t_refw=256 * 3900.0)
        assert feinting_bound_exact(k, timing) <= feinting_bound(k, timing) + 1
