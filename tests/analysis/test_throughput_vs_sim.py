"""Cross-checks: §7 analytical throughput models vs the simulated
kernels (Figure 13), parametrized over ABO levels 1/2/4.

The analytical model charges each ALERT's RFM stall against the
(ATH+1) useful activations that triggered it; the simulator adds the
REF stream and window accounting on top, so the simulated normalized
throughput sits slightly above the closed form. The checks pin both
the absolute agreement and the model's structural claims (rows
invariance at level 1, the ALERT-window floor in the continuous-ALERT
regime).
"""

import pytest

from repro.analysis.throughput import (
    alert_window_throughput,
    single_bank_attack_throughput,
)
from repro.attacks.kernels import run_multi_row_kernel, run_single_row_kernel

LEVELS = (1, 2, 4)


class TestKernelVsClosedForm:
    @pytest.mark.parametrize("level", LEVELS)
    def test_single_row_matches_model(self, level):
        sim = run_single_row_kernel(ath=64, total_acts=6000, abo_level=level)
        model = single_bank_attack_throughput(ath=64, rows=1, level=level)
        assert sim.details["normalized_throughput"] == pytest.approx(
            model, abs=0.05
        )

    @pytest.mark.parametrize("level", LEVELS)
    def test_simulation_never_below_model(self, level):
        # The model is the pessimistic bound: it assumes zero overlap
        # between the RFM stall and useful work.
        sim = run_single_row_kernel(ath=64, total_acts=6000, abo_level=level)
        model = single_bank_attack_throughput(ath=64, rows=1, level=level)
        assert sim.details["normalized_throughput"] >= model - 1e-9


class TestRowsInvariance:
    """Figure 13: the loss is independent of the row count (§7.2)."""

    @pytest.mark.parametrize("rows", (1, 2, 5, 8))
    def test_model_exactly_invariant(self, rows):
        assert single_bank_attack_throughput(
            ath=64, rows=rows, level=1
        ) == pytest.approx(
            single_bank_attack_throughput(ath=64, rows=1, level=1), rel=0
        )

    def test_simulated_kernels_agree_at_level1(self):
        single = run_single_row_kernel(ath=64, total_acts=6000, abo_level=1)
        multi = run_multi_row_kernel(rows=5, ath=64, total_acts=6000,
                                     abo_level=1)
        assert single.details["normalized_throughput"] == pytest.approx(
            multi.details["normalized_throughput"], abs=0.05
        )

    @pytest.mark.parametrize("level", (2, 4))
    def test_multi_row_benefits_from_multi_entry_tracker(self, level):
        # At level L the generalized tracker services L rows per ALERT,
        # so the multi-row pattern beats the one-row-per-ALERT model —
        # the invariance claim is specific to level 1.
        multi = run_multi_row_kernel(rows=5, ath=64, total_acts=6000,
                                     abo_level=level)
        model = single_bank_attack_throughput(ath=64, rows=5, level=level)
        assert multi.details["normalized_throughput"] > model


class TestAlertWindowFloor:
    """§7.1: throughput inside a continuous ALERT torrent."""

    @pytest.mark.parametrize("level", LEVELS)
    def test_continuous_alert_regime_floored_by_window_model(self, level):
        # ATH=1 makes every other activation trigger an ALERT — the
        # continuous-ALERT regime the window model describes. The
        # simulation keeps the triggering ACT and the REF stream, so it
        # sits at or slightly above the model's floor.
        sim = run_single_row_kernel(ath=1, total_acts=3000, abo_level=level)
        floor = alert_window_throughput(level)
        assert sim.details["normalized_throughput"] >= floor - 1e-9
        assert sim.details["normalized_throughput"] == pytest.approx(
            floor, abs=0.1
        )

    def test_floor_tightens_with_level(self):
        # More RFMs per ALERT -> the window model dominates the
        # simulated behavior (the gap shrinks monotonically).
        gaps = []
        for level in LEVELS:
            sim = run_single_row_kernel(ath=1, total_acts=3000,
                                        abo_level=level)
            gaps.append(
                sim.details["normalized_throughput"]
                - alert_window_throughput(level)
            )
        assert gaps[0] > gaps[1] > gaps[2] >= 0
