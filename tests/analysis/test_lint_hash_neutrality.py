"""Fixture tests for the ``hash-neutrality`` lint rule.

The final test is the acceptance demo from the issue: deleting a
field's consumption from the *real* ``sweep/spec.py`` identity path
must produce a finding.
"""

from __future__ import annotations

import ast
from pathlib import Path

import repro
from repro.analysis.lint.core import FileContext
from repro.analysis.lint.hash_neutrality import check

REPO_ROOT = Path(repro.__file__).resolve().parents[2]

CLEAN_SPEC = """
    from dataclasses import dataclass

    _NEUTRAL_AXES = {"subchannels": 1}

    @dataclass(frozen=True)
    class DemoSweepSpec:
        name: str
        description: str
        seed: int
        subchannels: int

        def points(self):
            return [{"name": self.name, "seed": self.seed}]
"""


def test_clean_spec_passes(lint_rule):
    assert lint_rule(check, CLEAN_SPEC, rel_path="sweep/demo.py") == []


def test_unconsumed_field_flagged(lint_rule):
    findings = lint_rule(check, """
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class DemoSweepSpec:
            name: str
            stray_axis: int

            def points(self):
                return [{"name": self.name}]
    """, rel_path="sweep/demo.py")
    assert len(findings) == 1
    assert "stray_axis" in findings[0].message
    assert "_NEUTRAL_AXES" in findings[0].message


def test_neutral_axis_passes(lint_rule):
    findings = lint_rule(check, """
        from dataclasses import dataclass

        _NEUTRAL_AXES = {"stray_axis": 0}

        @dataclass(frozen=True)
        class DemoSweepSpec:
            name: str
            stray_axis: int

            def points(self):
                return [{"name": self.name}]
    """, rel_path="sweep/demo.py")
    assert findings == []


def test_description_exempt_by_default(lint_rule):
    findings = lint_rule(check, """
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class DemoSweepSpec:
            name: str
            description: str

            def key(self):
                return self.name
    """, rel_path="sweep/demo.py")
    assert findings == []


def test_non_dataclass_and_non_spec_classes_ignored(lint_rule):
    findings = lint_rule(check, """
        from dataclasses import dataclass

        class LooseSweepSpec:
            field_a: int

        @dataclass
        class NotASpec:
            field_b: int
    """, rel_path="sweep/demo.py")
    assert findings == []


def test_identity_credit_spans_point_classes(lint_rule):
    # points() forwards fields into a Point whose key()/config_hash()
    # consume them; any identity function in the module gives credit.
    findings = lint_rule(check, """
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class DemoPoint:
            ath: int

            def config_hash(self):
                return hash(self.ath)

        @dataclass(frozen=True)
        class DemoSweepSpec:
            name: str
            ath: int

            def points(self):
                return [DemoPoint(ath=self.ath) for _ in [self.name]]
    """, rel_path="sweep/demo.py")
    assert findings == []


def _lint_real_spec_source(source: str):
    ctx = FileContext(
        path=REPO_ROOT / "src/repro/sweep/spec.py",
        rel_path="src/repro/sweep/spec.py",
        source=source,
        tree=ast.parse(source),
    )
    return [f for f in check(ctx) if not ctx.is_suppressed(f)]


def test_real_spec_is_clean_at_head():
    source = (REPO_ROOT / "src/repro/sweep/spec.py").read_text(
        encoding="utf-8")
    assert _lint_real_spec_source(source) == []


def test_deleting_real_field_consumption_fails():
    """Acceptance demo: drop ``seed`` from the real spec's identity
    path — both the ``seed=self.seed`` forwarding in ``points()`` and
    the ``seed=`` segment of ``SweepPoint.key`` — and the rule must
    fire on the now-unhashed field."""
    source = (REPO_ROOT / "src/repro/sweep/spec.py").read_text(
        encoding="utf-8")
    assert "seed=self.seed," in source
    assert "|seed={c.seed}" in source
    broken = source.replace("seed=self.seed,", "seed=0,")
    broken = broken.replace("|seed={c.seed}", "")
    findings = _lint_real_spec_source(broken)
    assert any("'seed'" in f.message for f in findings), findings
