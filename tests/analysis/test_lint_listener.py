"""Fixture tests for the ``listener-hygiene`` lint rule."""

from __future__ import annotations

from repro.analysis.lint.listener_hygiene import check


def test_raw_append_flagged(lint_rule):
    findings = lint_rule(check, """
        def run(sim, cb):
            sim.mitigation_listeners.append(cb)
    """, rel_path="attacks/demo.py")
    assert len(findings) == 1
    assert "listener list" in findings[0].message


def test_subscribe_call_flagged(lint_rule):
    findings = lint_rule(check, """
        def run(bus, cb):
            bus.subscribe(cb)
    """, rel_path="attacks/demo.py")
    assert len(findings) == 1
    assert ".subscribe()" in findings[0].message


def test_contextmanager_sanctions(lint_rule):
    findings = lint_rule(check, """
        import contextlib

        @contextlib.contextmanager
        def subscribed(listeners, cb):
            listeners.append(cb)
            try:
                yield
            finally:
                listeners.remove(cb)
    """, rel_path="attacks/base.py")
    assert findings == []


def test_exit_owner_class_sanctions(lint_rule):
    findings = lint_rule(check, """
        class Log:
            def __init__(self, sim):
                sim.mitigation_listeners.append(self._on_event)

            def __enter__(self):
                return self

            def __exit__(self, *exc):
                return False
    """, rel_path="attacks/base.py")
    assert findings == []


def test_class_without_exit_still_flagged(lint_rule):
    findings = lint_rule(check, """
        class Leaky:
            def __init__(self, sim):
                sim.mitigation_listeners.append(self._on_event)
    """, rel_path="attacks/demo.py")
    assert len(findings) == 1


def test_with_statement_sanctions(lint_rule):
    findings = lint_rule(check, """
        def run(bus, cb):
            with bus.subscribe(cb):
                pass
    """, rel_path="attacks/demo.py")
    assert findings == []


def test_non_listener_append_ignored(lint_rule):
    findings = lint_rule(check, """
        def run(rows, value):
            rows.append(value)
    """, rel_path="attacks/demo.py")
    assert findings == []


def test_suppression_applies(lint_rule):
    findings = lint_rule(check, """
        def run(sim, cb):
            sim.mitigation_listeners.append(cb)  # repro-lint: disable=listener-hygiene
    """, rel_path="attacks/demo.py")
    assert findings == []
