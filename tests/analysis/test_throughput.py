"""Tests for the Section 7 / Appendix D throughput models."""

import pytest

from repro.analysis.throughput import (
    alert_window_throughput,
    benign_slowdown_model,
    continuous_alert_slowdown,
    mixed_throughput,
    single_bank_attack_throughput,
)


class TestAlertWindowThroughput:
    def test_level1_is_4_per_11_units(self):
        # Section 7.1: 4 ACTs per ~11 tRC units = 0.36x.
        assert alert_window_throughput(1) == pytest.approx(4 / 11.19, rel=0.02)

    def test_decreases_with_level(self):
        assert (
            alert_window_throughput(1)
            > alert_window_throughput(2)
            > alert_window_throughput(4)
        )


class TestContinuousAlertSlowdown:
    @pytest.mark.parametrize("level,expected", [(1, 2.8), (2, 3.8), (4, 4.9)])
    def test_appendix_d_values(self, level, expected):
        assert continuous_alert_slowdown(level) == pytest.approx(expected, rel=0.02)


class TestKernelThroughput:
    def test_single_row_kernel_loses_about_10_percent(self):
        tp = single_bank_attack_throughput(ath=64, rows=1)
        assert tp == pytest.approx(0.90, abs=0.02)

    def test_multi_row_kernel_matches_single(self):
        # Figure 13: the five-row kernel has the same ~10% loss.
        single = single_bank_attack_throughput(ath=64, rows=1)
        multi = single_bank_attack_throughput(ath=64, rows=5)
        assert multi == pytest.approx(single)

    def test_higher_ath_costs_less(self):
        assert single_bank_attack_throughput(ath=128) > single_bank_attack_throughput(ath=64)

    def test_validates_inputs(self):
        with pytest.raises(ValueError):
            single_bank_attack_throughput(ath=0)
        with pytest.raises(ValueError):
            single_bank_attack_throughput(ath=64, level=3)


class TestMixedThroughput:
    def test_ten_percent_alert_residency(self):
        # Section 7.1: 0.9 + 0.1 * 0.36 = 0.936x.
        assert mixed_throughput(0.1) == pytest.approx(0.936, abs=0.005)

    def test_full_alert_residency(self):
        assert mixed_throughput(1.0) == alert_window_throughput(1)

    def test_no_alerts(self):
        assert mixed_throughput(0.0) == 1.0

    def test_fraction_validated(self):
        with pytest.raises(ValueError):
            mixed_throughput(1.5)


class TestBenignModel:
    def test_acts_per_alert_for_benign_workloads(self):
        # Section 7.4: 99.6% benign activations -> >6500 ACTs per ALERT.
        model = benign_slowdown_model(0.996, ath=64)
        assert model.acts_per_alert > 6500

    def test_attack_has_65_acts_per_alert(self):
        model = benign_slowdown_model(0.0, ath=64)
        assert model.acts_per_alert == 65

    def test_fully_benign_never_alerts(self):
        assert benign_slowdown_model(1.0).acts_per_alert == float("inf")
