"""Tests for storage/energy accounting (paper Section 6.5, Appendix D)."""

import pytest

from repro.analysis.energy import (
    activation_energy_overhead,
    moat_sram_bytes,
    moat_sram_bytes_per_chip,
)


class TestSram:
    @pytest.mark.parametrize("level,per_bank", [(1, 7), (2, 10), (4, 16)])
    def test_per_bank(self, level, per_bank):
        assert moat_sram_bytes(level) == per_bank

    @pytest.mark.parametrize("level,per_chip", [(1, 224), (2, 320), (4, 512)])
    def test_per_chip(self, level, per_chip):
        assert moat_sram_bytes_per_chip(level) == per_chip

    def test_invalid_level(self):
        with pytest.raises(ValueError):
            moat_sram_bytes(3)


class TestEnergy:
    def test_activation_overhead(self):
        overhead = activation_energy_overhead(1000, 23)
        assert overhead.activation_overhead == pytest.approx(0.023)

    def test_total_energy_overhead_bound(self):
        # Section 6.5: 2.3% extra ACTs at <20% activation-energy share
        # keeps total energy overhead under 0.5%.
        overhead = activation_energy_overhead(1000, 23)
        assert overhead.total_energy_overhead < 0.005

    def test_zero_baseline(self):
        assert activation_energy_overhead(0, 10).activation_overhead == 0.0
