"""Fixture tests for the ``determinism`` lint rule."""

from __future__ import annotations

from repro.analysis.lint.determinism import check


def test_module_level_random_flagged(lint_rule):
    findings = lint_rule(check, """
        import random
        x = random.random()
    """, rel_path="mc/controller.py")
    assert len(findings) == 1
    assert findings[0].rule == "determinism"
    assert "process-global RNG" in findings[0].message
    assert findings[0].line == 3


def test_from_import_alias_flagged(lint_rule):
    findings = lint_rule(check, """
        from random import shuffle as mix
        mix(items)
    """, rel_path="attacks/feinting.py")
    assert len(findings) == 1


def test_seeded_random_instance_allowed(lint_rule):
    findings = lint_rule(check, """
        import random
        rng = random.Random(cfg.seed)
        value = rng.random()
    """, rel_path="sim/engine.py")
    assert findings == []


def test_unseeded_random_instance_flagged(lint_rule):
    findings = lint_rule(check, """
        import random
        rng = random.Random()
    """, rel_path="sim/engine.py")
    assert len(findings) == 1
    assert "unseeded" in findings[0].message


def test_system_random_flagged(lint_rule):
    findings = lint_rule(check, """
        import random
        rng = random.SystemRandom()
    """, rel_path="system/scenario.py")
    assert len(findings) == 1


def test_wall_clock_flagged_perf_counter_allowed(lint_rule):
    findings = lint_rule(check, """
        import time
        start = time.perf_counter()
        stamp = time.time()
        ns = time.time_ns()
    """, rel_path="workloads/requests.py")
    assert [f.line for f in findings] == [4, 5]


def test_datetime_now_flagged(lint_rule):
    findings = lint_rule(check, """
        import datetime
        stamp = datetime.datetime.now()
    """, rel_path="mc/sched.py")
    assert len(findings) == 1
    assert "host date" in findings[0].message


def test_set_iteration_flagged(lint_rule):
    findings = lint_rule(check, """
        for bank in {1, 2, 3}:
            touch(bank)
        rows = [r for r in set(dirty)]
        safe = [r for r in sorted(set(dirty))]
    """, rel_path="sim/mc.py")
    assert len(findings) == 2
    assert all("sorted" in f.message for f in findings)


def test_outside_scoped_packages_ignored(lint_rule):
    findings = lint_rule(check, """
        import random
        x = random.random()
    """, rel_path="report/tables.py")
    assert findings == []


def test_scope_matches_directories_not_filenames(lint_rule):
    # A file *named* sim.py outside the packages is out of scope...
    assert lint_rule(check, "import random\nx = random.random()\n",
                     rel_path="report/sim.py") == []
    # ...while any nesting under a scoped directory is in scope.
    assert len(lint_rule(check, "import random\nx = random.random()\n",
                         rel_path="repro/sim/deep/helper.py")) == 1


def test_same_line_suppression(lint_rule):
    findings = lint_rule(check, """
        import random
        x = random.random()  # repro-lint: disable=determinism
        y = random.random()
    """, rel_path="mc/controller.py")
    assert [f.line for f in findings] == [4]


def test_suppression_all_wildcard(lint_rule):
    findings = lint_rule(check, """
        import time
        t = time.time()  # repro-lint: disable=all
    """, rel_path="sim/perf.py")
    assert findings == []
