"""Fixture tests for the ``telemetry-purity`` lint rule."""

from __future__ import annotations

from repro.analysis.lint.telemetry_purity import check


def test_perf_counter_outside_telemetry_flagged(lint_rule):
    findings = lint_rule(check, """
        import time
        started = time.perf_counter()
    """, rel_path="sweep/attack_runner.py")
    assert len(findings) == 1
    assert findings[0].rule == "telemetry-purity"
    assert "wall_timer" in findings[0].message


def test_every_clock_variant_flagged(lint_rule):
    findings = lint_rule(check, """
        import time
        a = time.perf_counter_ns()
        b = time.monotonic()
        c = time.process_time()
        d = time.thread_time_ns()
    """, rel_path="report/pipeline.py")
    assert [f.line for f in findings] == [3, 4, 5, 6]


def test_from_import_alias_flagged(lint_rule):
    findings = lint_rule(check, """
        from time import monotonic as clock
        t = clock()
    """, rel_path="mc/controller.py")
    assert len(findings) == 1


def test_applies_outside_simulation_packages_too(lint_rule):
    # Unlike determinism, the rule has no package scope guard: a
    # wall-clock read anywhere outside the allowlist is a finding.
    findings = lint_rule(check, """
        import time
        t = time.monotonic()
    """, rel_path="cli.py")
    assert len(findings) == 1


def test_obs_package_allowed(lint_rule):
    findings = lint_rule(check, """
        import time
        t = time.perf_counter()
    """, rel_path="obs/provenance.py")
    assert findings == []


def test_sweep_runner_allowed_by_path_suffix(lint_rule):
    findings = lint_rule(check, """
        import time
        def wall_timer():
            return time.perf_counter()
    """, rel_path="sweep/runner.py")
    assert findings == []


def test_other_sweep_modules_not_allowed(lint_rule):
    findings = lint_rule(check, """
        import time
        t = time.perf_counter()
    """, rel_path="sweep/mc_runner.py")
    assert len(findings) == 1


def test_benchmarks_allowed(lint_rule):
    findings = lint_rule(check, """
        import time
        t = time.perf_counter()
    """, rel_path="benchmarks/test_mc_hotpath.py")
    assert findings == []


def test_sim_clock_reads_not_confused_with_host_clock(lint_rule):
    # engine.now, methods named monotonic on other objects, and
    # time.time (determinism's jurisdiction) are not this rule's.
    findings = lint_rule(check, """
        import time
        now = engine.now
        x = clocksource.monotonic()
        stamp = time.time()
    """, rel_path="sim/engine.py")
    assert findings == []


def test_suppression_honored(lint_rule):
    findings = lint_rule(check, """
        import time
        t = time.perf_counter()  # repro-lint: disable=telemetry-purity
    """, rel_path="sim/perf.py")
    assert findings == []


def test_custom_allowlist_param(lint_rule):
    findings = lint_rule(check, """
        import time
        t = time.perf_counter()
    """, rel_path="sweep/mc_runner.py", allowed=("sweep",))
    assert findings == []
