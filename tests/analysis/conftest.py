"""Shared helpers for the lint fixture tests: build a FileContext
from an inline snippet without touching the real tree."""

from __future__ import annotations

import ast
from pathlib import Path
from textwrap import dedent
from typing import List

import pytest

from repro.analysis.lint.core import FileContext, Finding


def make_context(source: str, rel_path: str = "sim/snippet.py") -> FileContext:
    """A FileContext for an inline snippet at a pretend location."""
    cleaned = dedent(source)
    return FileContext(
        path=Path("/fixture") / rel_path,
        rel_path=rel_path,
        source=cleaned,
        tree=ast.parse(cleaned),
    )


def run_rule(checker, source: str,
             rel_path: str = "sim/snippet.py", **params) -> List[Finding]:
    """Run one file-scope checker over a snippet, suppressions applied."""
    ctx = make_context(source, rel_path)
    return [f for f in checker(ctx, **params) if not ctx.is_suppressed(f)]


@pytest.fixture
def lint_ctx():
    return make_context


@pytest.fixture
def lint_rule():
    return run_rule
