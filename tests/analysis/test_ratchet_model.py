"""Tests for the Ratchet analytical model (paper Appendix A, Table 7)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.ratchet_model import (
    PAPER_TABLE7_SAFE_TRH,
    RatchetModel,
    ratchet_safe_trh,
    ratchet_sweep,
    usable_window_ns,
)


class TestModelComponents:
    def test_inter_alert_acts(self):
        assert RatchetModel(level=1).inter_alert_acts == 4
        assert RatchetModel(level=2).inter_alert_acts == 5
        assert RatchetModel(level=4).inter_alert_acts == 7

    def test_inter_alert_time_level1(self):
        assert RatchetModel(level=1).inter_alert_time == 582.0

    def test_priming_time_eq1(self):
        model = RatchetModel(level=1)
        assert model.priming_time(100, 64) == 100 * 64 * 52.0

    def test_alert_phase_time_eq2(self):
        model = RatchetModel(level=2)
        assert model.alert_phase_time(100) == pytest.approx(50 * model.inter_alert_time)

    def test_total_time_eq3(self):
        model = RatchetModel(level=1)
        assert model.total_time(10, 64) == model.priming_time(10, 64) + model.alert_phase_time(10)

    def test_usable_window_is_about_28_6ms(self):
        # Appendix A: tREFW minus refresh time = 28.64 ms.
        assert usable_window_ns() == pytest.approx(28.64e6, rel=0.005)

    def test_invalid_level(self):
        with pytest.raises(ValueError):
            RatchetModel(level=3)

    def test_invalid_ath(self):
        with pytest.raises(ValueError):
            RatchetModel(level=1).safe_trh(0)


class TestTable7:
    @pytest.mark.parametrize(
        "ath,level,expected", [(a, l, v) for (a, l), v in sorted(PAPER_TABLE7_SAFE_TRH.items())]
    )
    def test_safe_trh_matches_paper(self, ath, level, expected):
        # Within one activation of every Table 7 cell (the paper's
        # rounding of the fractional log term is not specified).
        assert abs(ratchet_safe_trh(ath, level) - expected) <= 1

    @pytest.mark.parametrize("ath,expected", [(32, 69), (64, 99), (128, 161)])
    def test_level1_column_exact(self, ath, expected):
        assert ratchet_safe_trh(ath, 1) == expected

    def test_headline_trh_99(self):
        # Section 5.3: MOAT with ATH=64 tolerates T_RH of 99.
        assert ratchet_safe_trh(64, 1) == 99

    def test_fig10_ath128(self):
        assert ratchet_safe_trh(128, 1) == 161


class TestSweep:
    def test_sweep_structure(self):
        sweep = ratchet_sweep(ath_values=[32, 64], levels=[1, 4])
        assert set(sweep) == {1, 4}
        assert sweep[1][64] == 99

    @given(ath=st.integers(min_value=8, max_value=256))
    @settings(max_examples=40, deadline=None)
    def test_trh_strictly_above_ath(self, ath):
        # Delayed ALERTs always cost something: T_RH > ATH + M.
        for level in (1, 2, 4):
            model = RatchetModel(level=level)
            assert model.safe_trh(ath) > ath + model.inter_alert_acts - 1

    @given(ath=st.integers(min_value=8, max_value=128))
    @settings(max_examples=30, deadline=None)
    def test_trh_monotone_in_ath(self, ath):
        assert ratchet_safe_trh(ath + 8, 1) > ratchet_safe_trh(ath, 1)

    def test_pool_shrinks_with_ath(self):
        model = RatchetModel(level=1)
        assert model.max_pool(32) > model.max_pool(64) > model.max_pool(128)

    def test_sub_50_trh_impractical(self):
        """Section 5.3: tolerating T_RH below ~40-50 is impractical
        because even tiny ATH leaves a delayed-ALERT tail."""
        assert ratchet_safe_trh(1, 1) > 35
