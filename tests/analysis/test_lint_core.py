"""Tests for the lint core: suppressions, the rule registry, the
``repro.lint/v1`` artifact, and the ``repro lint`` CLI surface."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.lint import (
    LINT_SCHEMA,
    PARSE_RULE,
    make_lint_artifact,
    resolve_rules,
    rule_descriptions,
    rule_names,
    run_lint,
)
from repro.analysis.lint.core import parse_suppressions
from repro.cli import main

EXPECTED_RULES = (
    "determinism",
    "hash-neutrality",
    "numba-subset",
    "registry-coverage",
    "listener-hygiene",
    "telemetry-purity",
)


def test_rule_registry_complete():
    assert rule_names() == EXPECTED_RULES
    descriptions = rule_descriptions()
    for name in EXPECTED_RULES:
        assert descriptions[name]["description"].strip()
        assert descriptions[name]["scope"] in ("file", "repo")


def test_resolve_select_and_ignore():
    assert [s.name for s in resolve_rules(select=["determinism"])] == [
        "determinism"]
    assert "numba-subset" not in [
        s.name for s in resolve_rules(ignore=["numba-subset"])]


def test_resolve_unknown_rule_message():
    with pytest.raises(ValueError) as exc:
        resolve_rules(select=["nope"])
    assert str(exc.value) == (
        "unknown lint rule(s): nope (known: determinism, "
        "hash-neutrality, numba-subset, registry-coverage, "
        "listener-hygiene, telemetry-purity)"
    )


def test_parse_rule_is_not_a_registered_rule():
    # parse-error findings cannot be selected away or suppressed.
    assert PARSE_RULE not in rule_names()
    with pytest.raises(ValueError):
        resolve_rules(ignore=[PARSE_RULE])


def test_parse_suppressions():
    source = (
        "x = 1\n"
        "y = 2  # repro-lint: disable=determinism\n"
        "z = 3  # repro-lint: disable=determinism,numba-subset\n"
        "w = 4  # repro-lint: disable=all\n"
    )
    sup = parse_suppressions(source)
    assert sup == {
        2: {"determinism"},
        3: {"determinism", "numba-subset"},
        4: {"all"},
    }


def _write_dirty_tree(tmp_path: Path) -> Path:
    pkg = tmp_path / "src" / "mc"
    pkg.mkdir(parents=True)
    (pkg / "dirty.py").write_text(
        "import random\n"
        "x = random.random()\n"
        "y = random.random()  # repro-lint: disable=determinism\n",
        encoding="utf-8",
    )
    return tmp_path


def test_run_lint_counts_and_artifact(tmp_path):
    root = _write_dirty_tree(tmp_path)
    result = run_lint(paths=[root / "src"], root=root,
                      select=["determinism"])
    assert result.files == 1
    assert len(result.findings) == 1
    assert result.suppressed == 1
    assert not result.clean

    artifact = make_lint_artifact(result)
    assert artifact["schema"] == LINT_SCHEMA
    assert artifact["counts"] == {"determinism": 1}
    assert artifact["suppressed"] == 1
    assert artifact["clean"] is False
    finding = artifact["findings"][0]
    assert finding["path"] == "src/mc/dirty.py"
    assert finding["line"] == 2
    assert finding["rule"] == "determinism"
    # Round-trips through JSON unchanged.
    assert json.loads(json.dumps(artifact)) == artifact


def test_parse_error_reported(tmp_path):
    pkg = tmp_path / "src"
    pkg.mkdir()
    (pkg / "broken.py").write_text("def f(:\n", encoding="utf-8")
    result = run_lint(paths=[pkg], root=tmp_path,
                      select=["determinism"])
    assert len(result.findings) == 1
    assert result.findings[0].rule == PARSE_RULE


def test_cli_json_artifact_and_exit_code(tmp_path, capsys):
    root = _write_dirty_tree(tmp_path)
    out_file = tmp_path / "lint.json"
    code = main([
        "lint", "--root", str(root), "--select", "determinism",
        "--format", "json", "--out", str(out_file),
        str(root / "src"),
    ])
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["schema"] == LINT_SCHEMA
    assert payload == json.loads(out_file.read_text(encoding="utf-8"))


def test_cli_unknown_rule_exits_2(capsys):
    code = main(["lint", "--ignore", "bogus"])
    captured = capsys.readouterr()
    assert code == 2
    assert captured.err.startswith("error: unknown lint rule(s): bogus")


def test_cli_list_rules(capsys):
    code = main(["lint", "--list-rules"])
    out = capsys.readouterr().out
    assert code == 0
    assert "Registered lint rules" in out
    for name in EXPECTED_RULES:
        assert name in out
    for info in rule_descriptions().values():
        assert str(info["description"]) in out


def test_cli_text_report_lists_findings(tmp_path, capsys):
    root = _write_dirty_tree(tmp_path)
    code = main(["lint", "--root", str(root), "--select", "determinism",
                 str(root / "src")])
    out = capsys.readouterr().out
    assert code == 1
    assert "src/mc/dirty.py:2:5: determinism:" in out
    assert "1 finding in 1 files (1 rules, 1 suppressed)" in out
