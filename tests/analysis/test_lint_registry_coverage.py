"""Fixture tests for the ``registry-coverage`` lint rule.

The collect/judge split lets these tests fabricate broken registry
states as plain dicts and assert on :func:`coverage_findings` without
mutating the real registries; the live-state tests then pin that the
real repo both collects correctly and judges clean.
"""

from __future__ import annotations

from pathlib import Path

import repro
from repro.analysis.lint.registry_coverage import (
    check,
    collect_state,
    coverage_findings,
)

REPO_ROOT = Path(repro.__file__).resolve().parents[2]


def _base_state():
    return {
        "registries": {
            "widget": {
                "source": "src/widgets.py",
                "kinds": {"alpha": "the alpha widget"},
            },
        },
        "families": {
            "demo": {
                "source": "src/family.py",
                "description": "demo family",
                "presets": {
                    "p1": {"baseline": "benchmarks/baselines/p1.json",
                           "exists": True},
                },
            },
        },
        "figures": {
            "fig1": {
                "source": "src/figures.py",
                "title": "Figure 1",
                "section": "4.1",
                "sources": ["demo:p1"],
            },
        },
        "cli_choices": {"alpha"},
        "preset_kind_refs": set(),
        "list_titles": {"demo"},
    }


# The fabricated figure state maps its family through the real
# figure-family table, so reuse a mapped name.
def _mapped_state():
    state = _base_state()
    state["families"]["sweep"] = state["families"].pop("demo")
    state["figures"]["fig1"]["sources"] = ["sweep:p1"]
    state["list_titles"] = {"sweep"}
    return state


def test_clean_state_yields_nothing():
    assert list(coverage_findings(_mapped_state())) == []


def test_missing_description_flagged():
    state = _mapped_state()
    state["registries"]["widget"]["kinds"]["alpha"] = "  "
    findings = list(coverage_findings(state))
    assert any("has no description" in f.message for f in findings)


def test_unreachable_kind_flagged():
    state = _mapped_state()
    state["cli_choices"] = set()
    findings = list(coverage_findings(state))
    assert any("not CLI-reachable" in f.message for f in findings)


def test_preset_reachability_counts():
    state = _mapped_state()
    state["cli_choices"] = set()
    state["preset_kind_refs"] = {"alpha"}
    assert list(coverage_findings(state)) == []


def test_missing_baseline_flagged():
    state = _mapped_state()
    state["families"]["sweep"]["presets"]["p1"]["exists"] = False
    findings = list(coverage_findings(state))
    assert any("no committed baseline" in f.message for f in findings)


def test_unlisted_family_flagged():
    state = _mapped_state()
    state["list_titles"] = set()
    findings = list(coverage_findings(state))
    assert any("_LIST_TITLES" in f.message for f in findings)


def test_dangling_figure_source_flagged():
    state = _mapped_state()
    state["figures"]["fig1"]["sources"] = ["sweep:nope"]
    findings = list(coverage_findings(state))
    assert any("no such preset" in f.message for f in findings)


def test_untitled_figure_flagged():
    state = _mapped_state()
    state["figures"]["fig1"]["title"] = ""
    findings = list(coverage_findings(state))
    assert any("missing its title" in f.message for f in findings)


def test_live_state_shape():
    state = collect_state(REPO_ROOT)
    registries = state["registries"]
    assert set(registries) == {
        "mitigation", "attack", "sched", "backend", "model",
    }
    assert len(registries["mitigation"]["kinds"]) >= 7
    assert len(registries["attack"]["kinds"]) >= 8
    assert len(registries["sched"]["kinds"]) >= 4
    assert len(registries["backend"]["kinds"]) == 3
    assert set(state["families"]) == {
        "sweep", "attack", "model", "mc", "system",
    }
    assert len(state["figures"]) >= 21
    assert state["cli_choices"], "CLI choices walk found nothing"


def test_live_repo_judges_clean():
    assert check(REPO_ROOT) == []


def test_deleting_backend_description_would_fail():
    """Removing the description satellite fix must re-open a finding."""
    state = collect_state(REPO_ROOT)
    state["registries"]["backend"]["kinds"]["kernel"] = ""
    findings = list(coverage_findings(state, REPO_ROOT))
    assert any("backend kind 'kernel' has no description" in f.message
               for f in findings)
