"""Fixture tests for the ``numba-subset`` lint rule, plus the pin
that the real backend kernels are in scope and clean."""

from __future__ import annotations

import ast
from pathlib import Path

import repro
from repro.analysis.lint.core import FileContext
from repro.analysis.lint.numba_subset import _kernel_names, check

REPO_ROOT = Path(repro.__file__).resolve().parents[2]

CLEAN_KERNEL = """
    def _burst(arr, n):
        total = 0
        for i in range(n):
            if arr[i] > 0:
                total += arr[i]
        return total

    REGISTRY = Backend(name="kernel", use_kernels=True, compiled=False,
                       act_burst=_burst)
"""


def test_clean_kernel_passes(lint_rule):
    assert lint_rule(check, CLEAN_KERNEL, rel_path="sim/backend.py") == []


def test_unregistered_function_not_checked(lint_rule):
    # Same forbidden constructs, but the function is never registered
    # as a kernel slot -> out of scope.
    findings = lint_rule(check, """
        def helper(n):
            return {i: i for i in range(n)}
    """, rel_path="sim/backend.py")
    assert findings == []


def test_dict_in_kernel_flagged(lint_rule):
    findings = lint_rule(check, """
        def _burst(arr):
            cache = {}
            return cache

        B = Backend(name="kernel", use_kernels=True, compiled=False,
                    act_burst=_burst)
    """, rel_path="sim/backend.py")
    assert len(findings) == 1
    assert "dict literal" in findings[0].message


def test_njit_wrapped_function_checked(lint_rule):
    findings = lint_rule(check, """
        def _burst(arr):
            return [x for x in arr]

        fast = njit(cache=True)(_burst)
    """, rel_path="sim/backend.py")
    assert len(findings) == 1
    assert "list comprehension" in findings[0].message


def test_signature_and_call_violations_flagged(lint_rule):
    findings = lint_rule(check, """
        def _burst(arr, **kwargs):
            value = getattr(arr, "sum")
            return value

        B = Backend(name="kernel", use_kernels=True, compiled=False,
                    act_burst=_burst)
    """, rel_path="sim/backend.py")
    messages = " | ".join(f.message for f in findings)
    assert "**kwargs" in messages
    assert "getattr()" in messages


def test_closure_and_try_flagged(lint_rule):
    findings = lint_rule(check, """
        def _burst(arr):
            def inner(x):
                return x
            try:
                return inner(arr[0])
            except IndexError:
                return 0

        B = Backend(name="k", use_kernels=True, compiled=False,
                    act_burst=_burst)
    """, rel_path="sim/backend.py")
    messages = " | ".join(f.message for f in findings)
    assert "closure" in messages
    assert "try/except" in messages


def test_real_backend_kernels_in_scope_and_clean():
    """The rule must actually *see* the production kernels — an
    empty kernel set would make the clean gate vacuous."""
    path = REPO_ROOT / "src/repro/sim/backend.py"
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source)
    kernels = _kernel_names(tree)
    assert {"_act_burst", "_serve_closed"} <= kernels
    ctx = FileContext(path=path, rel_path="src/repro/sim/backend.py",
                      source=source, tree=tree)
    assert [f for f in check(ctx) if not ctx.is_suppressed(f)] == []


def test_real_kernel_with_injected_dict_fails():
    """Injecting a dict into a real kernel body must trip the rule."""
    path = REPO_ROOT / "src/repro/sim/backend.py"
    source = path.read_text(encoding="utf-8")
    assert "def _act_burst(" in source
    broken = source
    marker = "def _act_burst("
    idx = broken.index(marker)
    line_end = broken.index("\n", broken.index("):", idx))
    broken = (broken[:line_end + 1]
              + "    _scratch = {}\n"
              + broken[line_end + 1:])
    ctx = FileContext(path=path, rel_path="src/repro/sim/backend.py",
                      source=broken, tree=ast.parse(broken))
    findings = [f for f in check(ctx) if not ctx.is_suppressed(f)]
    assert any("dict literal" in f.message for f in findings)
