"""Tests for the ``repro report`` command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.report.figures import FIGURES


def run_report_cli(tmp_path, *extra, action="run", figures=("fig8",)):
    argv = ["report", action, *figures,
            "--quiet", "--jobs", "1", "--no-cache",
            "--out", str(tmp_path / "BENCH_report.json"),
            "--md", str(tmp_path / "BENCH_report.md"),
            *extra]
    return main(argv)


class TestParser:
    def test_report_requires_an_action(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["report"])

    def test_run_defaults(self):
        args = build_parser().parse_args(["report", "run", "fig8"])
        assert args.figures == ["fig8"]
        assert args.trefi == 512
        assert not args.check

    def test_check_and_write_baselines_mutually_exclusive(self):
        """Combining the gate with baseline regeneration would let a
        drifted run overwrite its own baselines and pass."""
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["report", "all", "--check", "--write-baselines"]
            )


class TestList:
    def test_lists_every_registered_figure(self, capsys):
        assert main(["report", "list"]) == 0
        out = capsys.readouterr().out
        for name in FIGURES:
            assert name in out


class TestRun:
    def test_unknown_figure_rejected(self, tmp_path, capsys):
        assert run_report_cli(tmp_path, figures=("fig99",)) == 2
        assert "unknown figures" in capsys.readouterr().err

    def test_no_figures_rejected(self, tmp_path, capsys):
        assert run_report_cli(tmp_path, figures=()) == 2
        assert "at least one figure" in capsys.readouterr().err

    def test_bad_trefi_rejected(self, tmp_path, capsys):
        assert run_report_cli(tmp_path, "--trefi", "0") == 2
        assert "--trefi" in capsys.readouterr().err

    def test_renders_tables_and_artifacts(self, tmp_path, capsys):
        assert run_report_cli(tmp_path) == 0
        out = capsys.readouterr().out
        assert "Figure 8" in out
        artifact = json.loads((tmp_path / "BENCH_report.json").read_text())
        assert artifact["schema"] == "repro.report/v1"
        assert "fig8" in artifact["figures"]
        markdown = (tmp_path / "BENCH_report.md").read_text()
        assert "# Paper reproduction report" in markdown


class TestGate:
    def test_write_then_check_round_trips(self, tmp_path):
        root = tmp_path / "repo"
        assert run_report_cli(
            tmp_path, "--write-baselines", "--baseline-root", str(root)
        ) == 0
        assert (root / "benchmarks" / "baselines" / "model_fig8.json").is_file()
        assert run_report_cli(
            tmp_path, "--check", "--baseline-root", str(root)
        ) == 0

    def test_drifted_baseline_fails_the_gate(self, tmp_path, capsys):
        root = tmp_path / "repo"
        run_report_cli(
            tmp_path, "--write-baselines", "--baseline-root", str(root)
        )
        path = root / "benchmarks" / "baselines" / "model_fig8.json"
        baseline = json.loads(path.read_text())
        point = next(iter(baseline["points"].values()))
        point["metrics"]["min_acts_between_alerts"] += 2.0
        path.write_text(json.dumps(baseline))
        assert run_report_cli(
            tmp_path, "--check", "--baseline-root", str(root)
        ) == 1
        assert "REPORT BASELINE CHECK FAILED" in capsys.readouterr().err

    def test_missing_baseline_fails_the_gate(self, tmp_path, capsys):
        assert run_report_cli(
            tmp_path, "--check", "--baseline-root", str(tmp_path / "empty")
        ) == 1
        assert "baseline not found" in capsys.readouterr().err
