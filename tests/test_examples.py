"""Smoke tests: every example script runs to completion.

Examples are the public face of the library; these tests keep them
importable and executable (with reduced work where the scripts allow).
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "address_level_hammer.py",
    "provisioning_study.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip()


def test_quickstart_reports_safety():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert "SAFE" in result.stdout


def test_all_examples_compile():
    for script in EXAMPLES.glob("*.py"):
        source = script.read_text()
        compile(source, str(script), "exec")
    assert len(list(EXAMPLES.glob("*.py"))) >= 5
