"""Tests for the attack registry and the run_attack front-end."""

import math

import pytest

from repro.attacks.base import AttackResult, AttackRunConfig
from repro.attacks.registry import (
    AttackSpec,
    attack_descriptions,
    attack_kinds,
)
from repro.sim.attack_perf import run_attack


class TestAttackSpec:
    def test_known_kinds(self):
        assert set(attack_kinds()) == {
            "jailbreak", "jailbreak-randomized", "ratchet", "feinting",
            "postponement", "tsa", "kernel-single", "kernel-multi",
            "trespass",
        }

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown attack kind"):
            AttackSpec("rowpress")

    def test_missing_required_params_rejected_at_construction(self):
        """Runners with non-defaulted parameters fail as a clean
        ValueError at spec time, not a TypeError inside execute()."""
        with pytest.raises(ValueError, match="requires parameters"):
            AttackSpec("jailbreak-randomized")
        spec = AttackSpec.of(
            "jailbreak-randomized",
            initial_counters=(112,) * 8,
            attack_row_counter=96,
        )
        assert spec.param_dict()["attack_row_counter"] == 96

    def test_unknown_param_rejected_at_construction(self):
        with pytest.raises(ValueError, match="no parameter"):
            AttackSpec.of("ratchet", pool=16)  # the real name is pool_size

    def test_geometry_params_are_not_sweepable(self):
        # Geometry comes from AttackRunConfig, never from spec params.
        with pytest.raises(ValueError, match="no parameter"):
            AttackSpec.of("jailbreak", rows_per_bank=1024)

    def test_params_sorted_and_hashable(self):
        a = AttackSpec.of("ratchet", pool_size=16, ath=64)
        b = AttackSpec.of("ratchet", ath=64, pool_size=16)
        assert a == b
        assert hash(a) == hash(b)
        assert a.display_name() == "ratchet(ath=64,pool_size=16)"

    def test_adaptivity_and_figure_metadata(self):
        assert AttackSpec("ratchet").adaptive
        assert not AttackSpec("kernel-single").adaptive
        assert AttackSpec("jailbreak").figure == "Figure 5"

    def test_descriptions_cover_every_kind(self):
        info = attack_descriptions()
        assert set(info) == set(attack_kinds())
        for kind, entry in info.items():
            assert entry["description"]
            assert entry["figure"]


class TestRunAttack:
    def test_string_kind_with_params(self):
        result = run_attack("ratchet", pool_size=8)
        assert result.acts_on_attack_row > 64  # above ATH: the ratchet worked

    def test_spec_matches_direct_call(self):
        from repro.attacks.ratchet import run_ratchet

        via_registry = run_attack(AttackSpec.of("ratchet", pool_size=8))
        direct = run_ratchet(pool_size=8)
        assert via_registry.acts_on_attack_row == direct.acts_on_attack_row
        assert via_registry.elapsed_ns == direct.elapsed_ns

    def test_params_rejected_with_ready_spec(self):
        with pytest.raises(TypeError):
            run_attack(AttackSpec("ratchet"), pool_size=8)

    def test_run_config_geometry_reaches_the_attack(self):
        small = AttackRunConfig(rows_per_bank=8192, num_refresh_groups=1024)
        result = run_attack("postponement", run=small)
        assert result.acts_on_attack_row > 128

    def test_small_geometry_places_rows_in_range(self):
        # Row placement derives from the geometry: a bank far smaller
        # than the paper's must still work (or fail with a clear
        # ValueError), never crash with an out-of-range row.
        small = AttackRunConfig(rows_per_bank=8192, num_refresh_groups=1024)
        tsa = run_attack("tsa", num_banks=2, cycles=1, run=small)
        assert tsa.total_acts > 0
        jailbreak = run_attack(
            "jailbreak",
            run=AttackRunConfig(rows_per_bank=4096, num_refresh_groups=512),
        )
        assert jailbreak.acts_on_attack_row > 0

    def test_impossible_geometry_is_a_clear_error(self):
        tiny = AttackRunConfig(rows_per_bank=128, num_refresh_groups=128)
        with pytest.raises(ValueError, match="cannot place"):
            run_attack("trespass", num_aggressors=64, run=tiny)

    def test_open_loop_attacks_replicate_across_subchannels(self):
        one = run_attack("trespass", acts_per_aggressor=64,
                         run=AttackRunConfig(subchannels=1))
        two = run_attack("trespass", acts_per_aggressor=64,
                         run=AttackRunConfig(subchannels=2))
        assert two.subchannels == 2
        # The pattern replicates per sub-channel: twice the traffic,
        # same per-sub-channel tracker pressure.
        assert two.total_acts == 2 * one.total_acts
        assert two.max_danger == one.max_danger

    def test_adaptive_attacks_reject_multi_subchannel(self):
        # An adaptive attack's feedback loop is defined against one
        # sub-channel; relabeling a 1-sub-channel run as N would
        # fabricate a channel result.
        for kind in ("jailbreak", "ratchet", "feinting", "postponement",
                     "tsa"):
            with pytest.raises(ValueError, match="adaptive"):
                run_attack(kind, run=AttackRunConfig(subchannels=2))


class TestAttackResultThroughput:
    def test_never_advanced_is_nan_not_zero(self):
        # elapsed == 0 means the sim never advanced: the rate is
        # undefined, not zero.
        stuck = AttackResult(name="x", total_acts=0, elapsed_ns=0.0)
        assert math.isnan(stuck.throughput)

    def test_genuine_zero_throughput_is_zero(self):
        # A run that idled through real time without activating has a
        # well-defined throughput of exactly zero.
        idle = AttackResult(name="x", total_acts=0, elapsed_ns=1000.0)
        assert idle.throughput == 0.0

    def test_metrics_omit_undefined_throughput(self):
        stuck = AttackResult(name="x", total_acts=0, elapsed_ns=0.0)
        assert "throughput" not in stuck.as_metrics()
        live = AttackResult(name="x", total_acts=10, elapsed_ns=100.0)
        assert live.as_metrics()["throughput"] == pytest.approx(0.1)

    def test_metrics_omit_nonfinite_details(self):
        # A detail derived from an undefined rate (NaN/inf) must stay
        # out of artifacts: json.dumps would emit non-RFC-8259 NaN
        # tokens and every later baseline check would fail confusingly.
        result = AttackResult(
            name="x", total_acts=0, elapsed_ns=0.0,
            details={"throughput_loss": float("nan"),
                     "baseline_ns": float("inf"),
                     "threshold": 64},
        )
        metrics = result.as_metrics()
        assert "detail:throughput_loss" not in metrics
        assert "detail:baseline_ns" not in metrics
        assert metrics["detail:threshold"] == 64.0
        import json
        json.loads(json.dumps(metrics, allow_nan=False))  # strict-JSON safe

    def test_metrics_flatten_numeric_details(self):
        result = AttackResult(
            name="x", total_acts=1, elapsed_ns=1.0,
            details={"threshold": 128, "note": "text"},
        )
        metrics = result.as_metrics()
        assert metrics["detail:threshold"] == 128.0
        assert "detail:note" not in metrics
