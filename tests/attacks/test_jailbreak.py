"""Tests for the Jailbreak attack on Panopticon (paper Section 3)."""

import pytest

from repro.attacks.jailbreak import (
    is_heavy_weight,
    iteration_acts_closed_form,
    randomized_jailbreak_curve,
    run_deterministic_jailbreak,
    run_randomized_jailbreak_iteration,
)


class TestDeterministicJailbreak:
    @pytest.fixture(scope="class")
    def result(self):
        return run_deterministic_jailbreak()

    def test_many_times_threshold(self, result):
        # Paper: 1152 ACTs (9x the 128 queueing threshold); our timing
        # model achieves >8.5x without triggering any ALERT.
        assert result.acts_on_attack_row >= 8.5 * 128

    def test_no_alert_raised(self, result):
        # The pattern is paced to avoid queue overflow.
        assert result.alerts == 0

    def test_ground_truth_danger_matches(self, result):
        assert result.max_danger >= result.acts_on_attack_row - 2

    def test_smaller_queue_hurts_less(self):
        small = run_deterministic_jailbreak(queue_entries=2)
        full = run_deterministic_jailbreak(queue_entries=8)
        # The paper's recommendation: shorter queues are safer.
        assert small.acts_on_attack_row < full.acts_on_attack_row


class TestHeavyWeight:
    def test_probability_is_one_quarter(self):
        heavy = sum(1 for c in range(256) if is_heavy_weight(c))
        assert heavy / 256 == 0.25

    def test_crossing_semantics(self):
        assert is_heavy_weight(96)
        assert is_heavy_weight(127)
        assert not is_heavy_weight(95)
        assert is_heavy_weight(224)
        assert not is_heavy_weight(128)


class TestRandomizedIteration:
    def test_all_heavy_reaches_many_times_threshold(self):
        result = run_randomized_jailbreak_iteration(
            initial_counters=[120] * 8, attack_row_counter=0
        )
        assert result.acts_on_attack_row >= 6 * 128
        assert result.alerts == 0

    def test_no_heavy_is_bounded(self):
        result = run_randomized_jailbreak_iteration(
            initial_counters=[0] * 8, attack_row_counter=0
        )
        assert result.acts_on_attack_row <= 3 * 128

    def test_closed_form_tracks_simulation(self):
        """The sampled curve's per-iteration model stays within one
        service period of the full simulation."""
        for heavy in (0, 4, 8):
            counters = [120] * heavy + [0] * (8 - heavy)
            sim = run_randomized_jailbreak_iteration(
                initial_counters=counters, attack_row_counter=64
            )
            model = iteration_acts_closed_form(heavy, 64)
            assert abs(sim.acts_on_attack_row - model) <= 2 * 128

    def test_wrong_decoy_count_rejected(self):
        with pytest.raises(ValueError):
            run_randomized_jailbreak_iteration([0] * 3, 0)


class TestRandomizedCurve:
    def test_curve_monotone(self):
        curve = randomized_jailbreak_curve([4, 64, 1024, 16384], seed=1)
        values = [curve[n] for n in (4, 64, 1024, 16384)]
        assert values == sorted(values)

    def test_enough_iterations_breaks_threshold(self):
        # Figure 5: by ~2^17 iterations the attacker reaches ~1145 ACTs.
        curve = randomized_jailbreak_curve([2**17], seed=0)
        assert curve[2**17] >= 8 * 128

    def test_deterministic_given_seed(self):
        a = randomized_jailbreak_curve([256], seed=5)
        b = randomized_jailbreak_curve([256], seed=5)
        assert a == b
