"""Property-based security invariants.

The central claim of the paper: MOAT with ALERT threshold ATH tolerates
a Rowhammer threshold of ``safe_trh(ATH)`` — no access pattern can push
any victim's exposure beyond the Appendix A bound. We fuzz the engine
with adversarial-ish random patterns and check the invariant, and we
check that Panopticon (same SRAM ballpark) does NOT enjoy such a bound.
"""

from hypothesis import given, settings, strategies as st

from repro.analysis.ratchet_model import ratchet_safe_trh
from repro.dram.refresh import CounterResetPolicy
from repro.mitigations.moat import MoatPolicy
from repro.sim.engine import SimConfig, SubchannelSim


def moat_sim(ath: int, level: int = 1) -> SubchannelSim:
    config = SimConfig(
        rows_per_bank=64 * 1024,
        num_refresh_groups=8192,
        reset_policy=CounterResetPolicy.SAFE,
        trefi_per_mitigation=5,
        abo_level=level,
    )
    return SubchannelSim(config, lambda: MoatPolicy(ath=ath, level=level))


# Patterns focus activations on a handful of nearby rows — the worst
# case for a single-entry tracker — with occasional idle gaps that let
# REFs and proactive mitigation interleave unpredictably.
pattern_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=7),  # which of 8 attack rows
        st.integers(min_value=1, max_value=80),  # burst length
        st.booleans(),  # idle one tREFI afterwards?
    ),
    min_size=1,
    max_size=40,
)


class TestMoatSecurityInvariant:
    @given(pattern=pattern_strategy)
    @settings(max_examples=25, deadline=None)
    def test_no_pattern_exceeds_safe_trh_ath64(self, pattern):
        sim = moat_sim(ath=64)
        rows = [4096 + 8 * i for i in range(8)]
        for row_index, burst, idle in pattern:
            for _ in range(burst):
                sim.activate(rows[row_index])
            if idle:
                sim.idle(sim.timing.t_refi)
        sim.flush()
        assert sim.bank.max_danger <= ratchet_safe_trh(64, 1)

    @given(pattern=pattern_strategy)
    @settings(max_examples=15, deadline=None)
    def test_no_pattern_exceeds_safe_trh_ath32(self, pattern):
        sim = moat_sim(ath=32)
        rows = [4096 + 8 * i for i in range(8)]
        for row_index, burst, idle in pattern:
            for _ in range(burst):
                sim.activate(rows[row_index])
            if idle:
                sim.idle(sim.timing.t_refi)
        sim.flush()
        assert sim.bank.max_danger <= ratchet_safe_trh(32, 1)

    @given(
        pattern=pattern_strategy,
        level=st.sampled_from([2, 4]),
    )
    @settings(max_examples=10, deadline=None)
    def test_generalized_moat_levels_hold_their_bound(self, pattern, level):
        sim = moat_sim(ath=64, level=level)
        rows = [4096 + 8 * i for i in range(8)]
        for row_index, burst, idle in pattern:
            for _ in range(burst):
                sim.activate(rows[row_index])
            if idle:
                sim.idle(sim.timing.t_refi)
        sim.flush()
        assert sim.bank.max_danger <= ratchet_safe_trh(64, level)


class TestSingleRowCeiling:
    def test_single_row_hammer_capped_at_ath_plus_window(self):
        """Pure single-row hammering is capped at ATH + 1 + 3 window
        activations (Section 4.4)."""
        sim = moat_sim(ath=64)
        for _ in range(50_000):
            sim.activate(9000)
        sim.flush()
        assert sim.bank.max_danger <= 68
