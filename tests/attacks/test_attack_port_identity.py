"""Bit-identity pins across the ChannelSim port of the attack harness.

These expectations were captured from the pre-port attack modules (the
ones that constructed a bare ``SubchannelSim`` with private ``SimConfig``
instances). The port routes every attack through
:class:`~repro.sim.channel.ChannelSim`, which is bit-identical to the
bare engine at one sub-channel, so every number here — including the
float time bases — must survive the refactor exactly. A drift in any of
them means the port changed simulation semantics, not just plumbing.
"""

import pytest

from repro.attacks import (
    run_deterministic_jailbreak,
    run_feinting,
    run_many_aggressor_attack,
    run_multi_row_kernel,
    run_postponement_attack,
    run_ratchet,
    run_single_row_kernel,
    run_tsa,
)

exact = pytest.approx  # floats are deterministic; no tolerance


def check(result, acts, danger, alerts, elapsed, total):
    assert result.acts_on_attack_row == acts
    assert result.max_danger == danger
    assert result.alerts == alerts
    assert result.elapsed_ns == exact(elapsed, rel=0, abs=0)
    assert result.total_acts == total


class TestAdaptiveAttackIdentity:
    """The adaptive attacks the tentpole must keep bit-identical."""

    def test_deterministic_jailbreak(self):
        result = run_deterministic_jailbreak()
        check(result, acts=1121, danger=1120, alerts=0,
              elapsed=187610.0, total=2017)

    def test_ratchet_level1(self):
        result = run_ratchet(ath=64, pool_size=16)
        check(result, acts=76, danger=76, alerts=16,
              elapsed=76838.0, total=1215)

    def test_ratchet_level4(self):
        result = run_ratchet(ath=64, pool_size=8, abo_level=4)
        check(result, acts=66, danger=66, alerts=2,
              elapsed=33398.0, total=524)

    def test_feinting(self):
        result = run_feinting(trefi_per_mitigation=4, periods=64)
        check(result, acts=1265, danger=1234, alerts=0,
              elapsed=998400.0, total=17152)
        assert result.details["survivors"] == 0

    def test_tsa(self):
        result = run_tsa(num_banks=4, cycles=2)
        check(result, acts=0, danger=0, alerts=40,
              elapsed=83526.0, total=3104)
        assert result.details["throughput_loss"] == exact(
            0.28488800559772476, rel=0, abs=0
        )


class TestOpenLoopAttackIdentity:
    """Non-adaptive patterns (candidates for activate_many batching)."""

    def test_postponement(self):
        result = run_postponement_attack()
        check(result, acts=329, danger=328, alerts=0,
              elapsed=24630.0, total=329)

    def test_trespass(self):
        result = run_many_aggressor_attack(
            num_aggressors=32, tracker_entries=16, acts_per_aggressor=256
        )
        check(result, acts=256, danger=256, alerts=0,
              elapsed=476678.0, total=8192)

    def test_single_row_kernel(self):
        result = run_single_row_kernel(ath=64, total_acts=6000)
        check(result, acts=0, danger=0, alerts=90,
              elapsed=367880.0, total=6000)
        assert result.details["baseline_ns"] == exact(348966.0, rel=0, abs=0)
        assert result.details["throughput_loss"] == exact(
            0.05141350440360992, rel=0, abs=0
        )

    def test_multi_row_kernel(self):
        result = run_multi_row_kernel(rows=5, ath=64, total_acts=6000)
        check(result, acts=0, danger=0, alerts=90,
              elapsed=383650.0, total=6000)
        assert result.details["baseline_ns"] == exact(348966.0, rel=0, abs=0)
        assert result.details["throughput_loss"] == exact(
            0.09040531734653967, rel=0, abs=0
        )
