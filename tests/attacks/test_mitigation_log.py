"""Regression tests for mitigation-listener lifecycle (the stale-
listener bug): a reused engine must not keep feeding logs or raw
listeners attached by a previous attack."""

from repro.attacks.base import AttackRunConfig, MitigationLog, build_channel, subscribed
from repro.dram.refresh import CounterResetPolicy
from repro.mitigations.moat import MoatPolicy
from repro.sim.engine import SimConfig, SubchannelSim


def small_channel(subchannels: int = 1):
    run = AttackRunConfig(
        rows_per_bank=1024, num_refresh_groups=128, subchannels=subchannels
    )
    return build_channel(
        run,
        lambda: MoatPolicy(ath=8, level=1),
        reset_policy=CounterResetPolicy.SAFE,
        trefi_per_mitigation=5,
    )


def hammer_until_mitigation(sim, row: int) -> None:
    with MitigationLog(sim) as probe:
        while not probe.was_mitigated(row):
            sim.activate(row)


class TestDetach:
    def test_context_manager_detaches(self):
        sim = small_channel()
        with MitigationLog(sim) as log:
            assert log.attached
            hammer_until_mitigation(sim, 100)
        assert not log.attached
        events_after_first = len(log.events)
        assert events_after_first > 0
        # Second "attack" on the same engine: the detached log must not
        # keep counting.
        hammer_until_mitigation(sim, 200)
        assert len(log.events) == events_after_first

    def test_detach_is_idempotent(self):
        sim = small_channel()
        log = MitigationLog(sim)
        log.detach()
        log.detach()
        assert not log.attached

    def test_two_sequential_attacks_do_not_double_count(self):
        """The original bug: two attacks sharing one engine each
        attached a log; the first attack's listener survived into the
        second run and double-counted every event."""
        sim = small_channel()
        with MitigationLog(sim) as first:
            hammer_until_mitigation(sim, 100)
        first_events = len(first.events)
        with MitigationLog(sim) as second:
            hammer_until_mitigation(sim, 200)
        # The second log sees only the second attack's events...
        assert all(row == 200 for _, row, _, _ in second.events)
        # ...and the engine carries no stale listeners afterwards.
        assert len(first.events) == first_events
        assert all(not sub.mitigation_listeners for sub in sim.subchannels)

    def test_works_on_bare_engine(self):
        config = SimConfig(rows_per_bank=1024, num_refresh_groups=128,
                           trefi_per_mitigation=5)
        sim = SubchannelSim(config, lambda: MoatPolicy(ath=8, level=1))
        with MitigationLog(sim) as log:
            while not log.was_mitigated(100):
                sim.activate(100)
        assert not sim.mitigation_listeners

    def test_subscribes_to_every_subchannel(self):
        sim = small_channel(subchannels=2)
        with MitigationLog(sim) as log:
            assert all(len(sub.mitigation_listeners) == 1
                       for sub in sim.subchannels)
            while not log.was_mitigated(100):
                sim.activate(100, subchannel=1)
        assert all(not sub.mitigation_listeners for sub in sim.subchannels)


class TestSubscribed:
    def test_raw_listener_detaches_even_on_error(self):
        sim = small_channel()
        seen = []

        def listener(bank, row, reactive, time):
            seen.append(row)

        try:
            with subscribed(sim, listener):
                raise RuntimeError("attack aborted")
        except RuntimeError:
            pass
        assert all(not sub.mitigation_listeners for sub in sim.subchannels)

    def test_raw_listener_receives_events_while_attached(self):
        sim = small_channel()
        seen = []
        with subscribed(sim, lambda b, r, re, t: seen.append(r)):
            hammer_until_mitigation(sim, 100)
        assert 100 in seen
        count_inside = len(seen)
        hammer_until_mitigation(sim, 200)
        assert len(seen) == count_inside
