"""Tests for the Ratchet attack simulation (paper Section 5)."""

import pytest

from repro.analysis.ratchet_model import RatchetModel
from repro.attacks.ratchet import ratchet_growth_curve, run_ratchet


class TestRatchetLevel1:
    @pytest.fixture(scope="class")
    def result(self):
        return run_ratchet(ath=64, pool_size=32, abo_level=1)

    def test_exceeds_ath(self, result):
        # Delayed ALERTs let the attacker go beyond ATH.
        assert result.acts_on_attack_row > 64 + 4

    def test_bounded_by_analytical_model(self, result):
        model = RatchetModel(level=1)
        assert result.acts_on_attack_row <= model.safe_trh(64) + 1

    def test_alert_chain_fired(self, result):
        assert result.alerts >= 16


class TestGrowth:
    def test_logarithmic_growth_with_pool(self):
        curve = ratchet_growth_curve(ath=64, pool_sizes=[4, 16, 64])
        assert curve[4] <= curve[16] <= curve[64]
        # Logarithmic: quadrupling the pool adds a few ACTs, not 4x.
        assert curve[64] - curve[4] < 32

    def test_higher_ath_shifts_curve(self):
        low = run_ratchet(ath=32, pool_size=16)
        high = run_ratchet(ath=64, pool_size=16)
        assert high.acts_on_attack_row - low.acts_on_attack_row >= 24


class TestMisconfiguredLevel:
    def test_level4_with_single_entry_tracker(self):
        """Footnote 1 / Figure 9: a single-entry MOAT driven at ABO
        level 4 gives the attacker 7 ACTs per ALERT."""
        result = run_ratchet(ath=64, pool_size=4, abo_level=4, tracker_level=1)
        # More inter-ALERT budget than level 1 on the same pool.
        baseline = run_ratchet(ath=64, pool_size=4, abo_level=1)
        assert result.acts_on_attack_row >= baseline.acts_on_attack_row
        assert result.acts_on_attack_row > 64 + 7

    def test_generalized_moat_l4_contains_ratchet(self):
        """Appendix D: MOAT-L4 (4 tracker entries) mitigates 4 rows per
        ALERT, blunting the pool."""
        misconfigured = run_ratchet(ath=64, pool_size=16, abo_level=4, tracker_level=1)
        generalized = run_ratchet(ath=64, pool_size=16, abo_level=4, tracker_level=4)
        assert generalized.acts_on_attack_row <= misconfigured.acts_on_attack_row
