"""Tests for the feinting attack simulation (paper Table 2)."""

import pytest

from repro.analysis.feinting_model import feinting_bound
from repro.attacks.feinting import run_feinting
from repro.dram.timing import DramTiming


class TestScaledFeinting:
    @pytest.fixture(scope="class")
    def result(self):
        # 64 periods at rate 4 = a small refresh window.
        return run_feinting(trefi_per_mitigation=4, periods=64)

    def test_survivor_tracks_harmonic_bound(self, result):
        bound = 268 * sum(1.0 / i for i in range(1, 65))
        # The simulated attack achieves most of the analytical bound
        # (losses: REF interruptions, integer splits).
        assert result.acts_on_attack_row >= 0.85 * bound
        assert result.acts_on_attack_row <= bound + 268

    def test_far_exceeds_single_period_budget(self, result):
        # The whole point: one row accumulates many periods' worth.
        assert result.acts_on_attack_row > 3 * 268

    def test_no_alerts_in_transparent_scheme(self, result):
        assert result.alerts == 0


class TestRateSweep:
    def test_higher_rate_tolerates_less(self):
        fast = run_feinting(trefi_per_mitigation=1, periods=32)
        slow = run_feinting(trefi_per_mitigation=4, periods=32)
        # Same period count: the rate-4 scheme lets each period carry
        # 4x the activations.
        assert slow.acts_on_attack_row > 2 * fast.acts_on_attack_row

    def test_full_small_window(self, fast_timing):
        result = run_feinting(trefi_per_mitigation=4, timing=fast_timing)
        bound = feinting_bound(4, fast_timing)
        assert result.acts_on_attack_row >= 0.8 * bound


class TestValidation:
    def test_periods_positive(self):
        with pytest.raises(ValueError):
            run_feinting(periods=0)

    def test_bank_capacity_check(self):
        with pytest.raises(ValueError):
            run_feinting(periods=4096, rows_per_bank=1024, num_groups=128)
