"""Tests for the performance attacks: kernels, TSA, postponement,
many-aggressor thrashing (paper Section 7 and Appendices)."""

import pytest

from repro.attacks.kernels import run_multi_row_kernel, run_single_row_kernel
from repro.attacks.postponement import run_postponement_attack
from repro.attacks.trespass import run_many_aggressor_attack
from repro.attacks.tsa import run_tsa


class TestKernels:
    def test_single_row_loss_near_ten_percent(self):
        result = run_single_row_kernel(ath=64, total_acts=10_000)
        assert 0.03 <= result.details["throughput_loss"] <= 0.15

    def test_multi_row_loss_similar(self):
        single = run_single_row_kernel(ath=64, total_acts=10_000)
        multi = run_multi_row_kernel(rows=5, ath=64, total_acts=10_000)
        assert abs(
            multi.details["throughput_loss"] - single.details["throughput_loss"]
        ) < 0.06

    def test_higher_ath_reduces_loss(self):
        low = run_single_row_kernel(ath=32, total_acts=6_000)
        high = run_single_row_kernel(ath=128, total_acts=6_000)
        assert high.details["throughput_loss"] < low.details["throughput_loss"]

    def test_alert_rate_matches_ath(self):
        result = run_single_row_kernel(ath=64, total_acts=10_000)
        acts_per_alert = result.total_acts / result.alerts
        assert 60 <= acts_per_alert <= 75


class TestTsa:
    def test_staggering_beats_single_bank(self):
        single = run_tsa(num_banks=1, cycles=3)
        staggered = run_tsa(num_banks=4, cycles=3)
        assert (
            staggered.details["throughput_loss"]
            > single.details["throughput_loss"]
        )

    def test_four_banks_near_paper_value(self):
        # Figure 12: ~24% loss at 4 banks.
        result = run_tsa(num_banks=4, cycles=3)
        assert 0.15 <= result.details["throughput_loss"] <= 0.35

    def test_loss_grows_with_banks(self):
        four = run_tsa(num_banks=4, cycles=2)
        eight = run_tsa(num_banks=8, cycles=2)
        assert eight.details["throughput_loss"] > four.details["throughput_loss"]

    def test_loss_bounded_by_continuous_alert_ceiling(self):
        # Section 7.1: even 100% ALERT residency caps at ~64% loss.
        result = run_tsa(num_banks=8, cycles=2)
        assert result.details["throughput_loss"] < 0.64


class TestPostponement:
    def test_breaks_drain_all_panopticon(self):
        result = run_postponement_attack()
        # Figure 16: 128 + ~200 = ~328 ACTs (2.6x the threshold).
        assert 300 <= result.acts_on_attack_row <= 340

    def test_danger_matches_issued_acts(self):
        result = run_postponement_attack()
        assert result.max_danger >= result.acts_on_attack_row - 2

    def test_scales_with_threshold(self):
        small = run_postponement_attack(threshold=64)
        large = run_postponement_attack(threshold=128)
        assert large.acts_on_attack_row - small.acts_on_attack_row >= 32


class TestManyAggressor:
    def test_thrashing_blinds_tracker(self):
        result = run_many_aggressor_attack(
            num_aggressors=32, tracker_entries=16, acts_per_aggressor=600
        )
        # Every aggressor sails through unmitigated.
        assert result.max_danger >= 590

    def test_few_aggressors_are_caught(self):
        result = run_many_aggressor_attack(
            num_aggressors=4, tracker_entries=16, acts_per_aggressor=600
        )
        # The tracker mitigates them; exposure stays well below total.
        assert result.max_danger < 450
