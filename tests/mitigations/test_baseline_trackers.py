"""Tests for IdealPerRow, TRR (Misra-Gries) and PARA baselines."""

import random

import pytest

from repro.mitigations.ideal_perrow import IdealPerRowPolicy
from repro.mitigations.null import NullPolicy
from repro.mitigations.para import ParaPolicy
from repro.mitigations.trr import TrrTracker


class TestIdealPerRow:
    def test_mitigates_global_max(self):
        pol = IdealPerRowPolicy()
        pol.on_activate(1, 10)
        pol.on_activate(2, 30)
        pol.on_activate(3, 20)
        assert pol.select_proactive() == 2
        assert pol.select_proactive() == 3

    def test_eth_filter(self):
        pol = IdealPerRowPolicy(eth=25)
        pol.on_activate(1, 10)
        assert pol.select_proactive() is None

    def test_refresh_drops_counts(self):
        pol = IdealPerRowPolicy()
        pol.on_activate(1, 50)
        pol.on_ref([1])
        assert pol.select_proactive() is None

    def test_wants_refresh_notifications(self):
        assert IdealPerRowPolicy.wants_refresh_notifications

    def test_no_reactive(self):
        pol = IdealPerRowPolicy()
        pol.on_activate(1, 50)
        assert pol.select_reactive(4) == []


class TestTrrTracker:
    def test_tracks_within_capacity(self):
        trr = TrrTracker(entries=4, mitigation_threshold=3)
        for _ in range(5):
            trr.on_activate(7, 0)
        assert trr.select_proactive() == 7

    def test_below_threshold_not_mitigated(self):
        trr = TrrTracker(entries=4, mitigation_threshold=10)
        trr.on_activate(7, 0)
        assert trr.select_proactive() is None

    def test_misra_gries_decrement_on_conflict(self):
        trr = TrrTracker(entries=2, mitigation_threshold=1)
        trr.on_activate(1, 0)
        trr.on_activate(2, 0)
        trr.on_activate(3, 0)  # decrements 1 and 2 to zero, drops them
        assert trr._table == {}

    def test_thrashing_keeps_tracker_blind(self):
        """More aggressors than entries: no row accumulates evidence."""
        trr = TrrTracker(entries=4, mitigation_threshold=8)
        for _ in range(100):
            for row in range(8):
                trr.on_activate(row, 0)
        assert trr.select_proactive() is None

    def test_entries_positive(self):
        with pytest.raises(ValueError):
            TrrTracker(entries=0)

    def test_sram_bytes(self):
        assert TrrTracker(entries=16).sram_bytes() == 48


class TestPara:
    def test_probability_bounds(self):
        with pytest.raises(ValueError):
            ParaPolicy(probability=1.5)

    def test_deterministic_with_probability_one(self):
        para = ParaPolicy(probability=1.0)
        para.on_activate(5, 0)
        assert para.select_proactive() == 5

    def test_never_fires_with_probability_zero(self):
        para = ParaPolicy(probability=0.0)
        for _ in range(100):
            para.on_activate(5, 0)
        assert para.select_proactive() is None

    def test_failure_probability(self):
        para = ParaPolicy(probability=0.001)
        # (1 - p)^T: chance a row reaches T activations unmitigated.
        assert para.failure_probability(4800) == pytest.approx(
            0.999**4800
        )

    def test_seedable(self):
        a = ParaPolicy(probability=0.5, rng=random.Random(7))
        b = ParaPolicy(probability=0.5, rng=random.Random(7))
        for _ in range(50):
            a.on_activate(1, 0)
            b.on_activate(1, 0)
        assert a._pending == b._pending

    def test_no_sram(self):
        assert ParaPolicy().sram_bytes() == 0


class TestNullPolicy:
    def test_does_nothing(self):
        null = NullPolicy()
        null.on_activate(1, 10**6)
        assert not null.alert_requested
        assert null.select_proactive() is None
        assert null.select_reactive(4) == []
        assert null.sram_bytes() == 0
        assert not null.needs_alert()
