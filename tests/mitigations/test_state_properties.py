"""Property-based tests of the array-backed policy state (PR 2's
flat-array refactor), driven by randomized ACT sequences.

The layered-core refactor replaced dict-backed tracking with
preallocated parallel arrays whose *observable semantics* must remain
those of an insertion-ordered dict: first-touch iteration order,
first-max tie-breaking, stable compaction of surviving slots. These
invariants were pinned point-wise when the refactor landed; here
hypothesis hammers them with arbitrary activation/removal sequences
against straightforward dict reference models.
"""

from hypothesis import given, settings, strategies as st

from repro.mitigations.base import CounterTable
from repro.mitigations.graphene import make_graphene
from repro.mitigations.moat import MoatPolicy
from repro.mitigations.trr import TrrTracker

ROWS = 48  # small row space => plenty of collisions and evictions

#: A randomized ACT stream over a deliberately tiny row space.
act_sequences = st.lists(
    st.integers(min_value=0, max_value=ROWS - 1), max_size=400
)

#: Interleaved CounterTable operations.
table_ops = st.lists(
    st.tuples(
        st.sampled_from(["inc", "remove"]),
        st.integers(min_value=0, max_value=ROWS - 1),
    ),
    max_size=400,
)


class DictCounterReference:
    """Insertion-ordered dict model of :class:`CounterTable`."""

    def __init__(self) -> None:
        self.counts = {}

    def increment(self, row: int, delta: int = 1) -> int:
        self.counts[row] = self.counts.get(row, 0) + delta
        return self.counts[row]

    def remove(self, row: int) -> bool:
        return self.counts.pop(row, None) is not None

    def argmax(self):
        best = None
        for row, count in self.counts.items():
            if best is None or count > best[1]:
                best = (row, count)
        return best


def reference_misra_gries(sequence, entries):
    """Dict-based Misra-Gries with stable decrement-all compaction."""
    table = {}
    for row in sequence:
        if row in table:
            table[row] += 1
        elif len(table) < entries:
            table[row] = 1
        else:
            table = {r: c - 1 for r, c in table.items() if c - 1 > 0}
    return table


class TestCounterTableProperties:
    @given(ops=table_ops)
    @settings(max_examples=60, deadline=None)
    def test_matches_dict_reference(self, ops):
        """Every operation's return value and the final ordered state
        agree with an insertion-ordered dict."""
        table = CounterTable(ROWS)
        reference = DictCounterReference()
        for op, row in ops:
            if op == "inc":
                assert table.increment(row) == reference.increment(row)
            else:
                assert table.remove(row) == reference.remove(row)
        assert table.as_dict() == reference.counts
        assert list(table.items()) == list(reference.counts.items())
        assert len(table) == len(reference.counts)
        for row in range(ROWS):
            assert (row in table) == (row in reference.counts)
            assert table.get(row) == reference.counts.get(row, 0)

    @given(ops=table_ops)
    @settings(max_examples=60, deadline=None)
    def test_argmax_ties_break_to_first_touch(self, ops):
        table = CounterTable(ROWS)
        reference = DictCounterReference()
        for op, row in ops:
            if op == "inc":
                table.increment(row)
                reference.increment(row)
            else:
                table.remove(row)
                reference.remove(row)
            assert table.argmax() == reference.argmax()
            found = table.argmax()
            assert table.max_count() == (found[1] if found else 0)

    @given(rows=act_sequences)
    @settings(max_examples=40, deadline=None)
    def test_reinsertion_moves_to_back(self, rows):
        """remove + increment re-tracks a row at the back of the order,
        exactly like ``del d[row]; d[row] = 1``."""
        table = CounterTable(ROWS)
        reference = DictCounterReference()
        for i, row in enumerate(rows):
            if i % 3 == 2:
                table.remove(row)
                reference.remove(row)
            else:
                table.increment(row)
                reference.increment(row)
        assert list(table.items()) == list(reference.counts.items())

    @given(rows=st.lists(st.integers(0, ROWS - 1), min_size=200,
                         max_size=600))
    @settings(max_examples=20, deadline=None)
    def test_compaction_preserves_order(self, rows):
        """Drive enough churn to trigger the lazy-compaction path (>64
        stale entries) and confirm survivors keep first-touch order."""
        table = CounterTable(ROWS)
        reference = DictCounterReference()
        for row in rows:
            table.increment(row)
            reference.increment(row)
            # Remove a sibling row every step: maximal staleness churn.
            victim = (row + 7) % ROWS
            table.remove(victim)
            reference.remove(victim)
        assert list(table.items()) == list(reference.counts.items())


class TestMisraGriesSlotProperties:
    @given(rows=act_sequences,
           entries=st.sampled_from([1, 2, 4, 8, 16]))
    @settings(max_examples=60, deadline=None)
    def test_trr_matches_dict_reference(self, rows, entries):
        """The TRR parallel-array sketch is dict-order identical to the
        reference Misra-Gries for any ACT sequence."""
        tracker = TrrTracker(entries=entries, mitigation_threshold=4)
        for row in rows:
            tracker.on_activate(row, 0)
        assert tracker._table == reference_misra_gries(rows, entries)

    @given(rows=act_sequences)
    @settings(max_examples=30, deadline=None)
    def test_graphene_is_trr_at_secure_size(self, rows):
        """Graphene reuses the same slot arrays; at thousands of
        entries no eviction ever fires for short sequences, so the
        table is exact counting."""
        tracker = make_graphene(trh=64)
        for row in rows:
            tracker.on_activate(row, 0)
        exact = {}
        for row in rows:
            exact[row] = exact.get(row, 0) + 1
        assert tracker._table == exact

    @given(rows=act_sequences,
           entries=st.sampled_from([2, 4, 8]),
           period=st.integers(min_value=5, max_value=40))
    @settings(max_examples=40, deadline=None)
    def test_interleaved_service_keeps_order_identity(self, rows, entries,
                                                      period):
        """Proactive selection (mitigate-max, stable slot removal)
        interleaved with activations stays identical to the dict
        model: select the first maximal entry above threshold, delete
        it, keep the rest in order."""
        threshold = 3
        tracker = TrrTracker(entries=entries,
                             mitigation_threshold=threshold)
        reference = {}

        def reference_activate(row):
            nonlocal reference
            if row in reference:
                reference[row] += 1
            elif len(reference) < entries:
                reference[row] = 1
            else:
                reference = {r: c - 1 for r, c in reference.items()
                             if c - 1 > 0}

        def reference_select():
            best = None
            for row, count in reference.items():
                if best is None or count > best[1]:
                    best = (row, count)
            if best is None or best[1] < threshold:
                return None
            del reference[best[0]]
            return best[0]

        for i, row in enumerate(rows):
            tracker.on_activate(row, 0)
            reference_activate(row)
            if i % period == period - 1:
                assert tracker.select_proactive() == reference_select()
                assert tracker._table == reference
        assert tracker._table == reference

    @given(rows=act_sequences, entries=st.sampled_from([1, 4, 16]))
    @settings(max_examples=40, deadline=None)
    def test_misra_gries_detection_guarantee(self, rows, entries):
        """The sketch's defining property: any row activated more than
        ``len(rows) / (entries + 1)`` times is still tracked."""
        tracker = TrrTracker(entries=entries, mitigation_threshold=1)
        counts = {}
        for row in rows:
            tracker.on_activate(row, 0)
            counts[row] = counts.get(row, 0) + 1
        bound = len(rows) / (entries + 1)
        table = tracker._table
        for row, count in counts.items():
            if count > bound:
                assert row in table, (row, count, bound)

    @given(rows=act_sequences, entries=st.sampled_from([2, 8]))
    @settings(max_examples=30, deadline=None)
    def test_slot_index_consistent(self, rows, entries):
        """The row -> slot index and the parallel arrays never drift."""
        tracker = TrrTracker(entries=entries, mitigation_threshold=4)
        for row in rows:
            tracker.on_activate(row, 0)
            assert len(tracker._slot) == tracker._fill
            for r, slot in tracker._slot.items():
                assert tracker._rows[slot] == r
                assert tracker._counts[slot] > 0


class ListMoatReference:
    """Slot-ordered list model of the MOAT register file.

    Mirrors the documented hardware rules: a tracked row's counter is
    kept live; an untracked row above ETH displaces the first-minimal
    entry only if stronger; a row crossing ATH is force-tracked
    (unconditional displacement) and latches the ALERT request.
    """

    def __init__(self, level: int, ath: int, eth: int) -> None:
        self.level, self.ath, self.eth = level, ath, eth
        self.entries = []  # [row, count] in slot order
        self.alert_requested = False
        self.alerts_requested = 0

    def _insert(self, row, count, only_if_stronger=False):
        if len(self.entries) < self.level:
            self.entries.append([row, count])
            return
        weakest = min(range(len(self.entries)),
                      key=lambda i: self.entries[i][1])
        if only_if_stronger and count <= self.entries[weakest][1]:
            return
        self.entries[weakest] = [row, count]

    def on_activate(self, row, count):
        slot = next(
            (i for i, e in enumerate(self.entries) if e[0] == row), -1
        )
        if slot >= 0:
            self.entries[slot][1] = count
        elif count > self.eth:
            self._insert(row, count, only_if_stronger=True)
        if count > self.ath and not self.alert_requested:
            if all(e[0] != row for e in self.entries):
                self._insert(row, count)
            self.alert_requested = True
            self.alerts_requested += 1

    def select_proactive(self):
        if self.entries:
            best = max(range(len(self.entries)),
                       key=lambda i: self.entries[i][1])
            # first maximal in slot order, like the hardware argmax
            for i, e in enumerate(self.entries):
                if e[1] == self.entries[best][1]:
                    best = i
                    break
            self.cma = self.entries.pop(best)[0]
        else:
            self.cma = None


#: Randomized (row, PRAC count) observations as the engine feeds them.
moat_observations = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=11),
        st.integers(min_value=0, max_value=40),
    ),
    max_size=300,
)


class TestMoatRegisterFileProperties:
    """The ``array('q')``-backed MOAT tracker (the storage the kernel
    backends alias through :meth:`state_views`) must keep the exact
    slot semantics of the documented register file."""

    @given(obs=moat_observations, level=st.sampled_from([1, 2, 4]))
    @settings(max_examples=60, deadline=None)
    def test_matches_list_reference(self, obs, level):
        policy = MoatPolicy(ath=24, eth=12, level=level)
        reference = ListMoatReference(level=level, ath=24, eth=12)
        for row, count in obs:
            policy.on_activate(row, count)
            reference.on_activate(row, count)
            # clear the latch like the engine's ALERT machinery does
            policy.alert_requested = False
            reference.alert_requested = False
            assert [
                [e.row, e.count] for e in policy.tracker
            ] == reference.entries
        assert policy.alerts_requested == reference.alerts_requested

    @given(obs=moat_observations, level=st.sampled_from([1, 2, 4]),
           period=st.integers(min_value=3, max_value=25))
    @settings(max_examples=40, deadline=None)
    def test_proactive_selection_keeps_slot_order(self, obs, level, period):
        policy = MoatPolicy(ath=1000, eth=12, level=level)
        reference = ListMoatReference(level=level, ath=1000, eth=12)
        for i, (row, count) in enumerate(obs):
            policy.on_activate(row, count)
            reference.on_activate(row, count)
            if i % period == period - 1:
                policy.select_proactive()
                reference.select_proactive()
                assert policy.cma == reference.cma
                assert [
                    [e.row, e.count] for e in policy.tracker
                ] == reference.entries

    @given(obs=moat_observations, level=st.sampled_from([1, 2, 4]))
    @settings(max_examples=40, deadline=None)
    def test_state_views_alias_live_storage(self, obs, level):
        """The numpy views the kernels mutate are the policy's own
        register file: reads agree with the tracker at every step, and
        a write through the view is a write to the policy."""
        policy = MoatPolicy(ath=24, eth=12, level=level)
        rows_view, counts_view = policy.state_views()
        assert len(rows_view) == len(counts_view) == level
        for row, count in obs:
            policy.on_activate(row, count)
            fill = policy._fill
            assert [
                [e.row, e.count] for e in policy.tracker
            ] == [
                [int(rows_view[i]), int(counts_view[i])] for i in range(fill)
            ]
        if policy._fill:
            counts_view[0] = 77
            assert policy.tracker[0].count == 77
