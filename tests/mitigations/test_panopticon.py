"""Tests for the Panopticon policy (paper Section 3, Appendix B)."""

import pytest

from repro.mitigations.panopticon import PanopticonPolicy


class TestConstruction:
    def test_defaults(self):
        pan = PanopticonPolicy()
        assert pan.queue_threshold == 128
        assert pan.queue_entries == 8

    @pytest.mark.parametrize("threshold", [0, 100, -128])
    def test_threshold_must_be_power_of_two(self, threshold):
        with pytest.raises(ValueError):
            PanopticonPolicy(queue_threshold=threshold)

    def test_queue_entries_positive(self):
        with pytest.raises(ValueError):
            PanopticonPolicy(queue_entries=0)


class TestEnqueue:
    def test_enqueue_on_threshold_crossing(self):
        pan = PanopticonPolicy(queue_threshold=128)
        pan.on_activate(5, 127)
        assert list(pan.queue) == []
        pan.on_activate(5, 128)
        assert list(pan.queue) == [5]

    def test_enqueue_on_every_multiple(self):
        pan = PanopticonPolicy(queue_threshold=128)
        pan.on_activate(5, 128)
        pan.on_activate(5, 256)
        assert list(pan.queue) == [5, 5]

    def test_count_zero_does_not_enqueue(self):
        pan = PanopticonPolicy(queue_threshold=128)
        pan.on_activate(5, 0)
        assert list(pan.queue) == []

    def test_fifo_order(self):
        pan = PanopticonPolicy(queue_threshold=128)
        for row in (3, 1, 2):
            pan.on_activate(row, 128)
        assert pan.select_proactive() == 3
        assert pan.select_proactive() == 1
        assert pan.select_proactive() == 2

    def test_overflow_raises_alert(self):
        pan = PanopticonPolicy(queue_threshold=128, queue_entries=2)
        pan.on_activate(1, 128)
        pan.on_activate(2, 128)
        assert not pan.alert_requested
        pan.on_activate(3, 128)
        assert pan.alert_requested
        assert pan.overflows == 1
        # The overflowing insertion is dropped (no counter in queue to
        # merge into).
        assert list(pan.queue) == [1, 2]


class TestService:
    def test_proactive_empty(self):
        assert PanopticonPolicy().select_proactive() is None

    def test_reactive_pops_fifo(self):
        pan = PanopticonPolicy(queue_threshold=128)
        for row in (1, 2, 3):
            pan.on_activate(row, 128)
        assert pan.select_reactive(2) == [1, 2]
        assert list(pan.queue) == [3]

    def test_on_mitigated_removes_one_copy(self):
        pan = PanopticonPolicy(queue_threshold=128)
        pan.on_activate(5, 128)
        pan.on_activate(5, 256)
        pan.on_mitigated(5)
        assert list(pan.queue) == [5]
        pan.on_mitigated(5)
        pan.on_mitigated(5)  # no-op when absent
        assert list(pan.queue) == []


class TestDrainAllVariant:
    def test_proactive_batch_is_two(self):
        assert PanopticonPolicy(drain_all_on_ref=True).proactive_batch == 2
        assert PanopticonPolicy().proactive_batch == 1

    def test_needs_alert_when_queue_exceeds_ref_capacity(self):
        pan = PanopticonPolicy(queue_threshold=128, drain_all_on_ref=True)
        for row in (1, 2):
            pan.on_activate(row, 128)
        assert not pan.needs_alert()
        pan.on_activate(3, 128)
        assert pan.needs_alert()

    def test_on_ref_requests_alert(self):
        pan = PanopticonPolicy(queue_threshold=128, drain_all_on_ref=True)
        for row in (1, 2, 3):
            pan.on_activate(row, 128)
        pan.on_ref([])
        assert pan.alert_requested

    def test_base_design_on_ref_is_quiet(self):
        pan = PanopticonPolicy(queue_threshold=128)
        for row in (1, 2, 3):
            pan.on_activate(row, 128)
        pan.on_ref([])
        assert not pan.alert_requested


class TestSram:
    def test_sram_two_bytes_per_entry(self):
        assert PanopticonPolicy(queue_entries=8).sram_bytes() == 16
