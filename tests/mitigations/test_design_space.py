"""Tests for the Figure 1(a) design-space baselines: victim counting
(TRR-Ideal, §8) and SRAM-optimal Graphene sizing (§2.4)."""

import pytest

from repro.mitigations.graphene import (
    graphene_entries_required,
    graphene_sram_bytes,
    make_graphene,
)
from repro.mitigations.moat import MoatPolicy
from repro.mitigations.victim_counter import VictimCounterPolicy
from repro.sim.engine import SimConfig, SubchannelSim


class TestVictimCounterPolicy:
    def test_activation_charges_neighbours(self):
        pol = VictimCounterPolicy(num_rows=64)
        pol.on_activate(10, 1)
        assert pol.victim_counts == {8: 1, 9: 1, 11: 1, 12: 1}

    def test_double_sided_accumulates_in_one_counter(self):
        pol = VictimCounterPolicy(num_rows=64)
        pol.on_activate(9, 1)
        pol.on_activate(11, 1)
        # Row 10 is the shared victim: both sides counted.
        assert pol.victim_counts[10] == 2

    def test_mitigate_max_victim(self):
        pol = VictimCounterPolicy(num_rows=64)
        for _ in range(3):
            pol.on_activate(9, 1)
        pol.on_activate(20, 1)
        assert pol.select_proactive() in (7, 8, 10, 11)

    def test_eth_filter(self):
        pol = VictimCounterPolicy(num_rows=64, eth=5)
        pol.on_activate(9, 1)
        assert pol.select_proactive() is None

    def test_refresh_resets_victim_counter(self):
        pol = VictimCounterPolicy(num_rows=64)
        pol.on_activate(9, 1)
        pol.on_ref([8, 10])
        assert 8 not in pol.victim_counts
        assert 10 not in pol.victim_counts

    def test_blast_radius_validation(self):
        with pytest.raises(ValueError):
            VictimCounterPolicy(blast_radius=0)


class TestVictimCountingInEngine:
    def double_sided(self, policy_factory, acts=600):
        sim = SubchannelSim(
            SimConfig(rows_per_bank=64 * 1024, num_refresh_groups=8192,
                      trefi_per_mitigation=1),
            policy_factory,
        )
        for _ in range(acts):
            sim.activate(9000)
            sim.activate(9002)
        sim.flush()
        return sim

    def test_victim_counter_sees_combined_exposure(self):
        """Section 8 contrast: under double-sided hammering the victim
        counter equals the shared victim's true exposure, while each
        per-aggressor PRAC counter sees only half of it."""
        sim = SubchannelSim(
            SimConfig(rows_per_bank=64 * 1024, num_refresh_groups=8192,
                      trefi_per_mitigation=0),
            lambda: VictimCounterPolicy(num_rows=64 * 1024),
        )
        for _ in range(30):
            sim.activate(9000)
            sim.activate(9002)
        policy = sim.policy
        true_exposure = sim.bank.danger_count(9001)
        assert policy.victim_counts[9001] == true_exposure == 60
        # Activation counting: each aggressor's counter shows 30.
        assert sim.bank.prac_count(9000) == 30
        assert sim.bank.prac_count(9002) == 30

    def test_transparent_victim_counting_is_feinting_bounded(self):
        """Without ALERTs, victim counting remains bounded by the
        feinting limit like any purely transparent scheme (§2.5)."""
        from repro.analysis.feinting_model import feinting_bound

        sim = self.double_sided(lambda: VictimCounterPolicy(num_rows=64 * 1024))
        assert sim.bank.max_danger <= feinting_bound(1)

    def test_direct_refresh_clears_victim(self):
        sim = self.double_sided(
            lambda: VictimCounterPolicy(num_rows=64 * 1024), acts=300
        )
        # Mitigations happened and the engine refreshed victims directly.
        assert sim.proactive_count > 0
        assert sim.bank.mitigation_activations == sim.proactive_count


class TestGrapheneSizing:
    def test_entries_scale_inversely_with_trh(self):
        assert graphene_entries_required(99) > graphene_entries_required(4800)

    def test_low_trh_needs_thousands_of_entries(self):
        # Figure 1(a): SRAM-optimal trackers are impractical at the
        # thresholds MOAT targets.
        entries = graphene_entries_required(99)
        assert entries > 5_000
        assert graphene_sram_bytes(99) > 20_000  # >20 KB per bank

    def test_moat_is_three_orders_cheaper(self):
        assert graphene_sram_bytes(99) / MoatPolicy().sram_bytes() > 1_000

    def test_high_trh_is_cheap(self):
        # At DDR4-era thresholds (139K) a handful of entries suffice —
        # which is why TRR-style trackers used to be viable.
        assert graphene_entries_required(139_000) < 10

    def test_make_graphene_policy_works(self):
        tracker = make_graphene(trh=10_000)
        for _ in range(6_000):
            tracker.on_activate(5, 0)
        assert tracker.select_proactive() == 5

    def test_trh_validation(self):
        with pytest.raises(ValueError):
            graphene_entries_required(1)
