"""Tests for the MOAT policy (paper Section 4 and Appendix D)."""

import pytest

from repro.mitigations.moat import MoatPolicy, TrackerEntry


class TestConstruction:
    def test_defaults(self):
        moat = MoatPolicy()
        assert moat.ath == 64
        assert moat.eth == 32
        assert moat.level == 1

    def test_eth_defaults_to_half_ath(self):
        assert MoatPolicy(ath=128).eth == 64

    def test_explicit_eth(self):
        assert MoatPolicy(ath=64, eth=48).eth == 48

    @pytest.mark.parametrize("level", [0, 3, 8])
    def test_bad_level(self, level):
        with pytest.raises(ValueError):
            MoatPolicy(level=level)

    def test_bad_ath(self):
        with pytest.raises(ValueError):
            MoatPolicy(ath=0)

    def test_eth_must_not_exceed_ath(self):
        with pytest.raises(ValueError):
            MoatPolicy(ath=64, eth=65)


class TestTracking:
    def test_below_eth_not_tracked(self):
        moat = MoatPolicy(ath=64, eth=32)
        moat.on_activate(5, 32)
        assert moat.tracker == []

    def test_above_eth_tracked(self):
        moat = MoatPolicy(ath=64, eth=32)
        moat.on_activate(5, 33)
        assert moat.tracker == [TrackerEntry(5, 33)]

    def test_tracked_count_follows_activations(self):
        moat = MoatPolicy(ath=64, eth=32)
        moat.on_activate(5, 33)
        moat.on_activate(5, 40)
        assert moat.tracker[0].count == 40

    def test_higher_count_replaces_entry_at_level1(self):
        moat = MoatPolicy(ath=64, eth=32)
        moat.on_activate(5, 33)
        moat.on_activate(9, 50)
        assert moat.tracker == [TrackerEntry(9, 50)]

    def test_lower_count_does_not_replace(self):
        moat = MoatPolicy(ath=64, eth=32)
        moat.on_activate(5, 50)
        moat.on_activate(9, 34)
        assert moat.tracker == [TrackerEntry(5, 50)]

    def test_tie_does_not_replace(self):
        moat = MoatPolicy(ath=64, eth=32)
        moat.on_activate(5, 50)
        moat.on_activate(9, 50)
        assert moat.tracker[0].row == 5

    def test_level4_tracks_four_rows(self):
        moat = MoatPolicy(ath=64, eth=32, level=4)
        for row, count in [(1, 33), (2, 40), (3, 50), (4, 60)]:
            moat.on_activate(row, count)
        assert len(moat.tracker) == 4
        moat.on_activate(5, 45)  # replaces the minimum (row 1 at 33)
        rows = {e.row for e in moat.tracker}
        assert rows == {2, 3, 4, 5}


class TestAlertCondition:
    def test_crossing_ath_requests_alert(self):
        moat = MoatPolicy(ath=64, eth=32)
        moat.on_activate(5, 65)
        assert moat.alert_requested
        assert moat.alerts_requested == 1

    def test_at_ath_does_not_request(self):
        moat = MoatPolicy(ath=64, eth=32)
        moat.on_activate(5, 64)
        assert not moat.alert_requested

    def test_offending_row_force_tracked(self):
        moat = MoatPolicy(ath=64, eth=32)
        moat.on_activate(1, 60)
        moat.on_activate(2, 65)
        # Row 2 must be present so the reactive mitigation services it.
        assert any(e.row == 2 for e in moat.tracker)

    def test_needs_alert_tracks_over_ath_entries(self):
        moat = MoatPolicy(ath=64, eth=32)
        moat.on_activate(5, 65)
        assert moat.needs_alert()
        moat.select_reactive(1)
        assert not moat.needs_alert()


class TestProactiveSelection:
    def test_pipeline_cta_to_cma(self):
        moat = MoatPolicy(ath=64, eth=32)
        moat.on_activate(5, 40)
        # First boundary: nothing completes, row 5 latched into CMA.
        assert moat.select_proactive() is None
        assert moat.cma == 5
        # Second boundary: row 5's mitigation completes.
        assert moat.select_proactive() == 5
        assert moat.cma is None

    def test_highest_count_latched(self):
        moat = MoatPolicy(ath=64, eth=32, level=4)
        for row, count in [(1, 33), (2, 55), (3, 44)]:
            moat.on_activate(row, count)
        moat.select_proactive()
        assert moat.cma == 2

    def test_empty_tracker_idles(self):
        moat = MoatPolicy()
        assert moat.select_proactive() is None
        assert moat.cma is None


class TestReactiveSelection:
    def test_reactive_services_max(self):
        moat = MoatPolicy(ath=64, eth=32)
        moat.on_activate(5, 65)
        assert moat.select_reactive(1) == [5]
        assert moat.tracker == []

    def test_reactive_includes_cma(self):
        moat = MoatPolicy(ath=64, eth=32)
        moat.on_activate(5, 40)
        moat.select_proactive()  # row 5 now in CMA
        assert moat.select_reactive(1) == [5]
        assert moat.cma is None

    def test_reactive_keeps_unserviced_cma(self):
        moat = MoatPolicy(ath=64, eth=32)
        moat.on_activate(5, 40)
        moat.select_proactive()  # CMA = 5
        moat.on_activate(9, 70)  # tracked above ATH
        rows = moat.select_reactive(1)
        assert rows == [9]
        # The in-flight proactive mitigation of row 5 is preserved.
        assert moat.cma == 5

    def test_reactive_level4_services_up_to_four(self):
        moat = MoatPolicy(ath=64, eth=32, level=4)
        for row, count in [(1, 40), (2, 50), (3, 60), (4, 70)]:
            moat.on_activate(row, count)
        rows = moat.select_reactive(4)
        assert rows == [4, 3, 2, 1]

    def test_on_mitigated_drops_state(self):
        moat = MoatPolicy(ath=64, eth=32)
        moat.on_activate(5, 40)
        moat.select_proactive()
        moat.on_activate(6, 50)
        moat.on_mitigated(6)
        moat.on_mitigated(5)
        assert moat.tracker == []
        assert moat.cma is None


class TestSram:
    @pytest.mark.parametrize("level,expected", [(1, 7), (2, 10), (4, 16)])
    def test_sram_bytes_per_bank(self, level, expected):
        # Section 6.5 / Appendix D: 7/10/16 bytes per bank.
        assert MoatPolicy(level=level).sram_bytes() == expected

    def test_describe_mentions_sram(self):
        assert "7 B/bank" in MoatPolicy().describe()
