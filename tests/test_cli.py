"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_attack_choices(self):
        args = build_parser().parse_args(["attack", "jailbreak"])
        assert args.name == "jailbreak"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["attack", "nonexistent"])


class TestModelCommands:
    def test_table2(self, capsys):
        assert main(["model", "table2"]) == 0
        out = capsys.readouterr().out
        assert "Feinting" in out
        assert "2,198" in out or "2198" in out

    def test_safe_trh(self, capsys):
        assert main(["model", "safe-trh"]) == 0
        out = capsys.readouterr().out
        assert "99" in out

    def test_throughput(self, capsys):
        assert main(["model", "throughput"]) == 0
        out = capsys.readouterr().out
        assert "2.8x" in out


class TestWorkloadsCommand:
    def test_lists_all_21(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "roms" in out and "ConnComp" in out
        assert len([l for l in out.splitlines() if l.strip()]) >= 23


class TestAttackCommands:
    def test_postponement(self, capsys):
        assert main(["attack", "postponement"]) == 0
        out = capsys.readouterr().out
        assert "329" in out

    def test_ratchet_small(self, capsys):
        assert main(["attack", "ratchet", "--pool", "8"]) == 0
        out = capsys.readouterr().out
        assert "ACTs on attack row" in out

    def test_feinting_small(self, capsys):
        assert main(["attack", "feinting", "--periods", "32"]) == 0
        out = capsys.readouterr().out
        assert "feinting" in out


class TestPerfCommand:
    def test_quiet_workload(self, capsys):
        assert main(["perf", "tc", "--trefi", "512"]) == 0
        out = capsys.readouterr().out
        assert "slowdown" in out
        assert "TriCount" in out
