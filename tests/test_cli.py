"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_attack_choices(self):
        args = build_parser().parse_args(["attack", "run", "jailbreak"])
        assert args.name == "jailbreak"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["attack", "run", "nonexistent"])


class TestModelCommands:
    def test_table2(self, capsys):
        assert main(["model", "table2"]) == 0
        out = capsys.readouterr().out
        assert "Feinting" in out
        assert "2,198" in out or "2198" in out

    def test_safe_trh(self, capsys):
        assert main(["model", "safe-trh"]) == 0
        out = capsys.readouterr().out
        assert "99" in out

    def test_throughput(self, capsys):
        assert main(["model", "throughput"]) == 0
        out = capsys.readouterr().out
        assert "2.8x" in out


class TestWorkloadsCommand:
    def test_lists_all_21(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "roms" in out and "ConnComp" in out
        assert len([l for l in out.splitlines() if l.strip()]) >= 23


class TestAttackCommands:
    # The full attack run/sweep/list surface is covered by
    # tests/test_cli_attack.py; this keeps one end-to-end smoke here.
    def test_postponement(self, capsys):
        assert main(["attack", "run", "postponement"]) == 0
        out = capsys.readouterr().out
        assert "329" in out


class TestPerfCommand:
    def test_quiet_workload(self, capsys):
        assert main(["perf", "tc", "--trefi", "512"]) == 0
        out = capsys.readouterr().out
        assert "slowdown" in out
        assert "TriCount" in out


class TestRegistryDrivenListings:
    def test_list_policies_matches_registry(self, capsys):
        from repro.mitigations.registry import policy_kinds

        assert main(["perf", "--list-policies"]) == 0
        out = capsys.readouterr().out
        for kind in policy_kinds():
            assert kind in out

    def test_list_presets_matches_presets(self, capsys):
        from repro.sweep.spec import PRESETS

        assert main(["sweep", "--list-presets"]) == 0
        out = capsys.readouterr().out
        for name in PRESETS:
            assert name in out

    def test_perf_without_workload_errors(self, capsys):
        assert main(["perf"]) == 2
        assert "workload" in capsys.readouterr().err


class TestPerfChannels:
    def test_channels_flag(self, capsys):
        assert main(["perf", "tc", "--trefi", "128", "--channels", "2"]) == 0
        out = capsys.readouterr().out
        assert "2 sub-channels" in out

    def test_channels_must_be_positive(self, capsys):
        assert main(["perf", "tc", "--channels", "0"]) == 2


class TestTraceCommands:
    def test_synth_info_perf_roundtrip(self, tmp_path, capsys):
        out_path = str(tmp_path / "tc.trace.jsonl")
        assert main(["trace", "synth", "tc", "--trefi", "32",
                     "--banks", "1", "--out", out_path]) == 0
        capsys.readouterr()
        assert main(["trace", "info", out_path]) == 0
        info = capsys.readouterr().out
        assert "address" in info
        assert main(["perf", "--trace", out_path, "--trefi", "32"]) == 0
        perf_out = capsys.readouterr().out
        assert "slowdown" in perf_out
        assert "tc" in perf_out

    def test_perf_rejects_activation_trace(self, tmp_path, capsys):
        from repro.trace import ActivationTrace

        path = tmp_path / "act.jsonl"
        ActivationTrace(events=[(0.0, 0, 1)]).save(path)
        assert main(["perf", "--trace", str(path)]) == 2
        assert "address trace" in capsys.readouterr().err

    def test_synth_requires_workload(self, capsys):
        assert main(["trace", "synth"]) == 2
