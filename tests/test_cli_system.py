"""Tests for the ``repro system`` command-line interface and the
shared sweep-flag surface of the family-driven parsers."""

import json

import pytest

from repro.cli import build_parser, main
from repro.sweep.system_spec import SYSTEM_PRESETS

SMOKE = ["--trefi", "96", "--jobs", "1", "--quiet"]


def run_system_sweep_cli(tmp_path, *extra, preset="system-smoke"):
    out = tmp_path / "BENCH_system.json"
    argv = ["system", "sweep", preset, *SMOKE, "--out", str(out),
            "--cache-dir", str(tmp_path / "cache"), *extra]
    return main(argv), out


class TestParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(["system", "run"])
        assert args.clients == 1
        assert args.channels == 1
        assert args.attacker is None
        assert args.policy == "moat"
        assert args.trefi == 1024

    def test_sweep_defaults(self):
        args = build_parser().parse_args(
            ["system", "sweep", "system-smoke"]
        )
        assert args.preset == "system-smoke"
        assert not args.check

    def test_action_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["system"])

    def test_adaptive_attacker_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["system", "run", "--attacker", "feinting"]
            )


class TestListPresets:
    def test_lists_every_preset(self, capsys):
        assert main(["system", "list-presets"]) == 0
        out = capsys.readouterr().out
        for name in SYSTEM_PRESETS:
            assert name in out

    def test_sweep_list_flag_matches(self, capsys):
        assert main(["system", "sweep", "--list-presets"]) == 0
        out = capsys.readouterr().out
        for name in SYSTEM_PRESETS:
            assert name in out


class TestRun:
    def test_reports_per_client_rows(self, capsys):
        assert main(["system", "run", "--clients", "2", "--trefi", "64",
                     "--banks", "2", "--jobs", "1", "--quiet"]) == 0
        out = capsys.readouterr().out
        for needle in ("tenant0", "tenant1", "SYSTEM", "p99 ns",
                       "2 clients x 1 channels"):
            assert needle in out

    def test_attacker_joins_the_mix(self, capsys):
        assert main(["system", "run", "--clients", "1",
                     "--attacker", "kernel-single",
                     "--attacker-acts", "50000", "--ath", "32",
                     "--trefi", "64", "--banks", "2",
                     "--jobs", "1", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "attacker" in out
        assert "ALERTs" in out

    def test_bad_client_count_is_usage_error(self, capsys):
        assert main(["system", "run", "--clients", "0"]) == 2
        assert "error" in capsys.readouterr().err


class TestSweep:
    def test_artifact_written(self, tmp_path, capsys):
        code, out = run_system_sweep_cli(tmp_path)
        assert code == 0
        artifact = json.loads(out.read_text())
        assert artifact["schema"] == "repro.system/v1"
        assert artifact["preset"] == "system-smoke"
        point = next(iter(artifact["points"].values()))
        assert point["n_trefi"] == 96
        assert any(":" in k for k in point["metrics"])
        stdout = capsys.readouterr().out
        assert "System sweep system-smoke" in stdout

    def test_unknown_preset(self, capsys):
        assert main(["system", "sweep", "system-nope", "--quiet"]) == 2
        assert "unknown system preset" in capsys.readouterr().err

    def test_write_baseline_then_check_passes(self, tmp_path, capsys):
        baseline = tmp_path / "system_system-smoke.json"
        code, _ = run_system_sweep_cli(
            tmp_path, "--write-baselines", "--baseline", str(baseline)
        )
        assert code == 0 and baseline.is_file()
        code, _ = run_system_sweep_cli(
            tmp_path, "--check", "--baseline", str(baseline),
            "--rtol", "0", "--atol", "0",
        )
        assert code == 0
        assert "baseline check passed" in capsys.readouterr().err

    def test_check_fails_on_drifted_per_client_metric(self, tmp_path,
                                                      capsys):
        baseline = tmp_path / "system_system-smoke.json"
        code, _ = run_system_sweep_cli(
            tmp_path, "--write-baselines", "--baseline", str(baseline)
        )
        assert code == 0
        data = json.loads(baseline.read_text())
        key = next(iter(data["points"]))
        metrics = data["points"][key]["metrics"]
        client_key = next(k for k in metrics if k.endswith(":read_p99_ns"))
        metrics[client_key] *= 3.0
        baseline.write_text(json.dumps(data))
        code, _ = run_system_sweep_cli(
            tmp_path, "--check", "--baseline", str(baseline)
        )
        assert code == 1
        assert "BASELINE CHECK FAILED" in capsys.readouterr().err

    def test_cache_hits_on_rerun(self, tmp_path, capsys):
        run_system_sweep_cli(tmp_path)
        capsys.readouterr()
        code, _ = run_system_sweep_cli(tmp_path)
        assert code == 0
        assert "3 cached" in capsys.readouterr().out


class TestSharedFlagSurface:
    """The common argparse parent: every family sweep accepts the same
    spellings (canonical and legacy aliases)."""

    FAMILY_SWEEPS = (
        ["sweep", "table5"],
        ["attack", "sweep", "fig5"],
        ["model", "sweep", "fig8"],
        ["mc", "sweep", "mc-smoke"],
        ["system", "sweep", "system-smoke"],
    )

    @pytest.mark.parametrize("argv", FAMILY_SWEEPS,
                             ids=lambda argv: argv[0])
    def test_common_flags_parse_everywhere(self, argv):
        parser = build_parser()
        args = parser.parse_args(
            argv + ["--check", "--rtol", "0", "--atol", "0",
                    "--cache-root", "/tmp/x", "--quiet", "--jobs", "2"]
        )
        assert args.check and args.quiet
        assert args.rtol == 0.0 and args.atol == 0.0
        assert args.cache_root == "/tmp/x"

    @pytest.mark.parametrize("spelling",
                             ["--write-baseline", "--write-baselines"])
    @pytest.mark.parametrize("argv", FAMILY_SWEEPS,
                             ids=lambda argv: argv[0])
    def test_write_baseline_spellings_alias(self, argv, spelling):
        args = build_parser().parse_args(argv + [spelling])
        assert args.write_baseline

    @pytest.mark.parametrize("argv", FAMILY_SWEEPS,
                             ids=lambda argv: argv[0])
    def test_check_and_write_are_exclusive(self, argv):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                argv + ["--check", "--write-baselines"]
            )

    @pytest.mark.parametrize("argv", FAMILY_SWEEPS,
                             ids=lambda argv: argv[0])
    def test_list_presets_spellings(self, argv, capsys):
        family_argv = argv[:-1]  # drop the preset
        assert main(family_argv + ["--list"]) == 0
        assert main(family_argv + ["--list-presets"]) == 0
        assert capsys.readouterr().out

    def test_cache_root_routes_per_family(self, tmp_path, capsys):
        root = tmp_path / "root"
        code, _ = run_system_sweep_cli(
            tmp_path, "--cache-root", str(root),
            "--cache-dir", ".repro-cache/system",  # the family default
        )
        assert code == 0
        assert (root / "system").is_dir()

    def test_explicit_cache_dir_beats_cache_root(self, tmp_path):
        root = tmp_path / "root"
        explicit = tmp_path / "explicit"
        code, _ = run_system_sweep_cli(
            tmp_path, "--cache-root", str(root),
            "--cache-dir", str(explicit),
        )
        assert code == 0
        assert explicit.is_dir()
        assert not (root / "system").exists()


class TestScheds:
    def test_sched_flag_reaches_the_system_run(self, capsys):
        assert main(["system", "run", "--clients", "2",
                     "--sched", "bw-cap:gbps=8,gbps1=0.5",
                     "--trefi", "64", "--banks", "2", "--jobs", "1",
                     "--quiet"]) == 0
        assert "bw-cap(gbps=8,gbps1=0.5)" in capsys.readouterr().out

    def test_indexed_param_beyond_clients_is_a_usage_error(self, capsys):
        assert main(["system", "run", "--clients", "2",
                     "--sched", "bw-cap:gbps5=0.5",
                     "--trefi", "64", "--banks", "2", "--jobs", "1",
                     "--quiet"]) == 2
        assert "targets client 5" in capsys.readouterr().err
