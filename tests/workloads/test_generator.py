"""Tests for the synthetic activation-stream generator."""

import pytest

from repro.workloads.generator import generate_schedule, measure_characteristics
from repro.workloads.profiles import profile_by_name


class TestCalibration:
    @pytest.fixture(scope="class")
    def roms_schedule(self):
        return generate_schedule(profile_by_name("roms"), n_trefi=8192, seed=0)

    def test_hot_row_counts_match_table4(self, roms_schedule):
        profile = profile_by_name("roms")
        chars = measure_characteristics(roms_schedule)
        assert chars["act_32_plus"] == pytest.approx(profile.act_32_plus, rel=0.05)
        assert chars["act_64_plus"] == pytest.approx(profile.act_64_plus, rel=0.05)
        assert chars["act_128_plus"] == pytest.approx(profile.act_128_plus, rel=0.05)

    def test_total_acts_at_least_pki_budget(self, roms_schedule):
        # The hot-row histogram is authoritative: for several Table 4
        # workloads the hot rows alone imply more activations than the
        # ACT-PKI budget, so the generator treats PKI as a floor.
        profile = profile_by_name("roms")
        budget = profile.acts_per_trefi_per_bank() * 8192
        assert roms_schedule.total_acts >= 0.98 * budget

    def test_cold_traffic_fills_pki_budget(self):
        # bwaves has few hot activations relative to its PKI: the cold
        # tail must fill the difference.
        profile = profile_by_name("bwaves")
        schedule = generate_schedule(profile, n_trefi=2048, seed=0)
        budget = profile.acts_per_trefi_per_bank() * 2048
        assert schedule.total_acts == pytest.approx(budget, rel=0.03)

    def test_scaled_window_preserves_rates(self):
        profile = profile_by_name("mcf")
        quarter = generate_schedule(profile, n_trefi=2048, seed=0)
        chars = measure_characteristics(quarter)
        # Counts are scaled back to a full window for comparison.
        assert chars["act_64_plus"] == pytest.approx(profile.act_64_plus, rel=0.25)


class TestStructure:
    def test_per_trefi_length(self):
        schedule = generate_schedule(profile_by_name("tc"), n_trefi=512, seed=0)
        assert schedule.n_trefi == 512
        assert len(schedule.per_trefi) == 512

    def test_deterministic_for_seed(self):
        a = generate_schedule(profile_by_name("gcc"), n_trefi=512, seed=3)
        b = generate_schedule(profile_by_name("gcc"), n_trefi=512, seed=3)
        assert a.per_trefi == b.per_trefi

    def test_different_seeds_differ(self):
        a = generate_schedule(profile_by_name("gcc"), n_trefi=512, seed=3)
        b = generate_schedule(profile_by_name("gcc"), n_trefi=512, seed=4)
        assert a.per_trefi != b.per_trefi

    def test_planned_counts_sum_matches_stream(self):
        schedule = generate_schedule(profile_by_name("bc"), n_trefi=512, seed=0)
        streamed = sum(len(rows) for rows in schedule.per_trefi)
        assert streamed == schedule.total_acts

    def test_rows_within_bank(self):
        schedule = generate_schedule(
            profile_by_name("x264"), n_trefi=256, seed=0, rows_per_bank=4096
        )
        for rows in schedule.per_trefi:
            assert all(0 <= row < 4096 for row in rows)

    def test_n_trefi_positive(self):
        with pytest.raises(ValueError):
            generate_schedule(profile_by_name("tc"), n_trefi=0)


class TestBurstPacing:
    def test_no_interval_wildly_over_capacity(self):
        """Generated load per tREFI stays near the 67-ACT bank budget
        (small excursions are absorbed by engine backpressure)."""
        schedule = generate_schedule(profile_by_name("bwaves"), n_trefi=2048, seed=0)
        overloaded = sum(1 for rows in schedule.per_trefi if len(rows) > 3 * 67)
        assert overloaded / schedule.n_trefi < 0.02


class TestChannelSchedules:
    def test_shape(self):
        from repro.workloads.generator import generate_channel_schedules
        from repro.workloads.profiles import profile_by_name

        grid = generate_channel_schedules(
            profile_by_name("tc"), num_subchannels=2,
            banks_per_subchannel=3, n_trefi=64,
        )
        assert len(grid) == 2
        assert all(len(bank_row) == 3 for bank_row in grid)
        assert all(s.n_trefi == 64 for row in grid for s in row)

    def test_subchannel_zero_matches_single_subchannel_run(self):
        """Seeding is sub-channel-major: the first sub-channel of a
        wide run is bit-identical to a narrow run."""
        from repro.workloads.generator import (
            generate_channel_schedules,
            generate_schedule,
        )
        from repro.workloads.profiles import profile_by_name

        profile = profile_by_name("roms")
        wide = generate_channel_schedules(
            profile, num_subchannels=2, banks_per_subchannel=2,
            n_trefi=128, seed=7,
        )
        assert wide[0][0].per_trefi == generate_schedule(
            profile, n_trefi=128, seed=7
        ).per_trefi
        assert wide[0][1].per_trefi == generate_schedule(
            profile, n_trefi=128, seed=8
        ).per_trefi
        # Sub-channel 1 continues the seed sequence.
        assert wide[1][0].per_trefi == generate_schedule(
            profile, n_trefi=128, seed=9
        ).per_trefi

    def test_rejects_bad_geometry(self):
        import pytest

        from repro.workloads.generator import generate_channel_schedules
        from repro.workloads.profiles import profile_by_name

        with pytest.raises(ValueError):
            generate_channel_schedules(
                profile_by_name("tc"), num_subchannels=0
            )
        with pytest.raises(ValueError):
            generate_channel_schedules(
                profile_by_name("tc"), banks_per_subchannel=0
            )


class TestAddressTraceGeneration:
    def test_events_cover_all_subchannels_and_banks(self):
        from repro.sim.mapping import CoffeeLakeMapping
        from repro.workloads.generator import generate_address_trace
        from repro.workloads.profiles import profile_by_name

        mapping = CoffeeLakeMapping()
        trace = generate_address_trace(
            profile_by_name("tc"), mapping, n_trefi=32,
            banks_per_subchannel=2,
        )
        seen = {
            (d.subchannel, d.bank)
            for d in (mapping.decode(addr) for _, addr in trace.events)
        }
        assert seen == {(0, 0), (0, 1), (1, 0), (1, 1)}

    def test_timestamps_are_monotone(self):
        from repro.sim.mapping import CoffeeLakeMapping
        from repro.workloads.generator import generate_address_trace
        from repro.workloads.profiles import profile_by_name

        trace = generate_address_trace(
            profile_by_name("tc"), CoffeeLakeMapping(), n_trefi=16,
            banks_per_subchannel=1,
        )
        times = [t for t, _ in trace.events]
        assert times == sorted(times)

    def test_rejects_too_many_banks(self):
        import pytest

        from repro.sim.mapping import CoffeeLakeMapping
        from repro.workloads.generator import generate_address_trace
        from repro.workloads.profiles import profile_by_name

        with pytest.raises(ValueError):
            generate_address_trace(
                profile_by_name("tc"), CoffeeLakeMapping(), n_trefi=8,
                banks_per_subchannel=64,
            )
