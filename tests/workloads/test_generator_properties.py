"""Property-based tests for the workload generator."""

from hypothesis import given, settings, strategies as st

from repro.workloads.generator import generate_schedule, measure_characteristics
from repro.workloads.profiles import WorkloadProfile

profiles = st.builds(
    lambda pki, n128, n64, n32: WorkloadProfile(
        name=f"synthetic-{pki}-{n32}-{n64}-{n128}",
        suite="spec",
        act_pki=pki,
        act_32_plus=n32 + n64 + n128,
        act_64_plus=n64 + n128,
        act_128_plus=n128,
    ),
    pki=st.floats(min_value=0.5, max_value=30.0),
    n128=st.integers(min_value=0, max_value=50),
    n64=st.integers(min_value=0, max_value=100),
    n32=st.integers(min_value=0, max_value=200),
)


class TestGeneratorProperties:
    @given(profile=profiles, seed=st.integers(0, 5))
    @settings(max_examples=15, deadline=None)
    def test_stream_matches_plan(self, profile, seed):
        schedule = generate_schedule(profile, n_trefi=1024, seed=seed)
        streamed = sum(len(rows) for rows in schedule.per_trefi)
        assert streamed == schedule.total_acts
        assert streamed == sum(schedule.planned_row_acts.values())

    @given(profile=profiles)
    @settings(max_examples=15, deadline=None)
    def test_histogram_order_preserved(self, profile):
        schedule = generate_schedule(profile, n_trefi=8192, seed=0)
        chars = measure_characteristics(schedule)
        assert chars["act_32_plus"] >= chars["act_64_plus"] >= chars["act_128_plus"]

    @given(profile=profiles, seed=st.integers(0, 3))
    @settings(max_examples=10, deadline=None)
    def test_full_window_calibration(self, profile, seed):
        schedule = generate_schedule(profile, n_trefi=8192, seed=seed)
        chars = measure_characteristics(schedule)
        # Hot-row histogram within a few rows of the profile at full
        # window (cold traffic can only add, never remove, hot rows —
        # and the permutation draw prevents additions).
        assert abs(chars["act_128_plus"] - profile.act_128_plus) <= 3
        assert abs(chars["act_64_plus"] - profile.act_64_plus) <= 6
        assert abs(chars["act_32_plus"] - profile.act_32_plus) <= 12

    @given(seed=st.integers(0, 100))
    @settings(max_examples=10, deadline=None)
    def test_zero_hot_profile_is_all_cold(self, seed):
        profile = WorkloadProfile("cold", "spec", 5.0, 0, 0, 0)
        schedule = generate_schedule(profile, n_trefi=1024, seed=seed)
        chars = measure_characteristics(schedule)
        assert chars["act_32_plus"] == 0
