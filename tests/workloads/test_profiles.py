"""Tests for the Table 4 workload profiles."""

import pytest

from repro.workloads.profiles import (
    TABLE4_PROFILES,
    WorkloadProfile,
    average_profile,
    profile_by_name,
)


class TestTable4Data:
    def test_21_workloads(self):
        assert len(TABLE4_PROFILES) == 21

    def test_15_spec_6_gap(self):
        suites = [p.suite for p in TABLE4_PROFILES]
        assert suites.count("spec") == 15
        assert suites.count("gap") == 6

    def test_roms_row(self):
        roms = profile_by_name("roms")
        assert roms.act_pki == 9.6
        assert (roms.act_32_plus, roms.act_64_plus, roms.act_128_plus) == (
            2302,
            995,
            431,
        )

    def test_gap_display_names(self):
        assert profile_by_name("cc").display_name == "ConnComp"
        assert profile_by_name("ConnComp").name == "cc"

    def test_hot_row_counts_non_increasing(self):
        for profile in TABLE4_PROFILES:
            assert profile.act_32_plus >= profile.act_64_plus >= profile.act_128_plus

    def test_average_row_matches_paper(self):
        avg = average_profile()
        # Table 4 'Average' row: 14.4 PKI, 1506/417/106 hot rows.
        assert avg.act_pki == pytest.approx(14.4, abs=0.1)
        assert avg.act_32_plus == pytest.approx(1506, abs=2)
        assert avg.act_64_plus == pytest.approx(417, abs=2)
        assert avg.act_128_plus == pytest.approx(106, abs=2)

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            profile_by_name("doom")


class TestRates:
    def test_acts_per_ns(self):
        # bwaves: 29.3 PKI at 32 instructions/ns.
        assert profile_by_name("bwaves").acts_per_ns() == pytest.approx(0.9376)

    def test_acts_per_trefi_per_bank(self):
        rate = profile_by_name("bwaves").acts_per_trefi_per_bank()
        # Must fit within the 67-ACT bank capacity (Section 2.2).
        assert 50 < rate < 67

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadProfile("bad", "spec", -1.0, 10, 5, 1)
        with pytest.raises(ValueError):
            WorkloadProfile("bad", "spec", 1.0, 5, 10, 1)
