"""Tests of the closed-loop request generators."""

import pytest

from repro.workloads.requests import (
    McWorkload,
    generate_requests,
)


def stream_of(requests, subchannel, bank):
    return [
        (r.issue_ns, r.row, r.is_write)
        for r in requests
        if r.subchannel == subchannel and r.bank == bank
    ]


class TestWorkloadValidation:
    def test_rejects_bad_process(self):
        with pytest.raises(ValueError, match="arrival process"):
            McWorkload(process="constant")

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError, match="positive"):
            McWorkload(reads_per_trefi_per_bank=0.0)

    def test_rejects_bad_fractions(self):
        with pytest.raises(ValueError):
            McWorkload(hot_fraction=1.5)
        with pytest.raises(ValueError):
            McWorkload(write_fraction=-0.1)


class TestGeneration:
    def test_sorted_and_in_horizon(self):
        reqs = generate_requests(McWorkload(), banks_per_subchannel=2,
                                 n_trefi=64)
        times = [r.issue_ns for r in reqs]
        assert times == sorted(times)
        assert all(0.0 <= t < 64 * 3900.0 for t in times)

    def test_mean_rate_calibrated(self):
        workload = McWorkload(reads_per_trefi_per_bank=24.0)
        reqs = generate_requests(workload, banks_per_subchannel=2,
                                 n_trefi=512)
        expected = 24.0 * 2 * 512
        assert abs(len(reqs) - expected) / expected < 0.1

    def test_bursty_mean_rate_calibrated(self):
        """The ON rate is duty-cycle scaled, so the long-run mean
        matches the configured rate."""
        workload = McWorkload(process="bursty",
                              reads_per_trefi_per_bank=24.0)
        reqs = generate_requests(workload, banks_per_subchannel=2,
                                 n_trefi=1024)
        expected = 24.0 * 2 * 1024
        assert abs(len(reqs) - expected) / expected < 0.15

    def test_hot_set_respected(self):
        workload = McWorkload(hot_fraction=1.0, hot_rows=4)
        reqs = generate_requests(workload, banks_per_subchannel=1,
                                 n_trefi=64)
        assert all(r.row < 4 for r in reqs)

    def test_cold_rows_avoid_hot_set(self):
        workload = McWorkload(hot_fraction=0.0, hot_rows=4)
        reqs = generate_requests(workload, banks_per_subchannel=1,
                                 n_trefi=64)
        assert all(r.row >= 4 for r in reqs)

    def test_deterministic(self):
        workload = McWorkload(hot_fraction=0.3)
        a = generate_requests(workload, n_trefi=64)
        b = generate_requests(workload, n_trefi=64)
        assert a == b


class TestSeedingDiscipline:
    """The documented stability guarantees of sub-channel-major
    seeding (``seed + sub * banks + bank``)."""

    def test_adding_subchannels_preserves_streams(self):
        small = generate_requests(McWorkload(), num_subchannels=1,
                                  banks_per_subchannel=2, n_trefi=32)
        large = generate_requests(McWorkload(), num_subchannels=2,
                                  banks_per_subchannel=2, n_trefi=32)
        for bank in range(2):
            assert stream_of(small, 0, bank) == stream_of(large, 0, bank)

    def test_sub0_streams_survive_bank_growth(self):
        small = generate_requests(McWorkload(), num_subchannels=2,
                                  banks_per_subchannel=2, n_trefi=32)
        large = generate_requests(McWorkload(), num_subchannels=2,
                                  banks_per_subchannel=4, n_trefi=32)
        for bank in range(2):
            assert stream_of(small, 0, bank) == stream_of(large, 0, bank)
        # Higher sub-channels re-seed when the bank count changes —
        # the documented limit of the discipline.
        assert stream_of(small, 1, 0) != stream_of(large, 1, 0)
