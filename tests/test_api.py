"""Public API surface tests."""

import repro


def test_version():
    assert repro.__version__ == "1.0.0"


def test_all_exports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_quickstart_snippet():
    """The docstring quickstart must work verbatim."""
    from repro import MoatPolicy, SimConfig, SubchannelSim

    sim = SubchannelSim(SimConfig(), lambda: MoatPolicy(ath=64))
    for _ in range(200):
        sim.activate(row=1000)
    stats = sim.stats()
    assert stats["total_acts"] == 200
    assert stats["max_danger"] <= 99  # the paper's tolerated T_RH


def test_system_and_family_exports():
    """PR 6 additions: the system layer and the sweep-family registry
    are part of the top-level API."""
    from repro import (
        FAMILIES,
        ClientSpec,
        SweepFamily,
        SystemResult,
        SystemRunConfig,
        SystemSim,
        get_family,
        run_system,
    )

    assert callable(run_system)
    assert SystemSim is not None and SystemResult is not None
    config = SystemRunConfig(clients=(ClientSpec(name="t0"),))
    assert config.eth_resolved == 32
    assert set(FAMILIES) == {"sweep", "attack", "model", "mc", "system"}
    for family in FAMILIES.values():
        assert isinstance(family, SweepFamily)
        assert family is get_family(family.name)
    assert get_family("system").schema == "repro.system/v1"


def test_policy_classes_share_interface():
    from repro import (
        IdealPerRowPolicy,
        MitigationPolicy,
        MoatPolicy,
        NullPolicy,
        PanopticonPolicy,
        ParaPolicy,
        TrrTracker,
    )

    for cls in (
        IdealPerRowPolicy,
        MoatPolicy,
        NullPolicy,
        PanopticonPolicy,
        ParaPolicy,
        TrrTracker,
    ):
        policy = cls()
        assert isinstance(policy, MitigationPolicy)
        assert isinstance(policy.sram_bytes(), int)
        assert isinstance(policy.describe(), str)
