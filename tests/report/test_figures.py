"""Tests for the figure registry, its paper-value ownership partition,
and the report pipeline."""

import json

import pytest

from repro.report import paper_values
from repro.report.figures import FIGURES, FigureRow, SourceRef, figure
from repro.report.pipeline import (
    ReportOptions,
    check_result,
    make_report_artifact,
    render_figure_text,
    render_markdown,
    run_figure,
    run_figures,
    write_baselines,
)
from repro.sweep.attack_spec import ATTACK_PRESETS
from repro.sweep.model_spec import MODEL_PRESETS
from repro.sweep.spec import PRESETS
from repro.sweep.system_spec import SYSTEM_PRESETS

#: Model-only figures cheap enough to execute end-to-end in a unit test.
CHEAP_FIGURES = ("fig8", "table1", "table3", "sec71", "fig15")

_PRESET_TABLES = {"sweep": PRESETS, "attack": ATTACK_PRESETS,
                  "model": MODEL_PRESETS, "system": SYSTEM_PRESETS}


def public_paper_values():
    return {name for name in vars(paper_values) if name.isupper()}


class TestRegistry:
    def test_lookup_error_names_known_figures(self):
        with pytest.raises(KeyError, match="fig11"):
            figure("fig99")

    def test_every_source_resolves_to_a_registered_preset(self):
        for spec in FIGURES.values():
            assert spec.sources, spec.name
            for ref in spec.sources:
                table = _PRESET_TABLES[ref.family]
                assert ref.preset in table, (spec.name, ref.key)

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError, match="unknown source family"):
            SourceRef("benchmark", "fig11")

    def test_every_numbered_paper_artifact_is_registered(self):
        assert set(FIGURES) == {
            "fig1", "fig5", "fig8", "fig9", "fig10", "fig11", "fig12",
            "fig13", "fig15", "fig16", "fig17", "table1", "table2",
            "table3", "table4", "table5", "table6", "table7",
            "motivation", "qos", "sec65", "sec71",
        }


class TestPaperValueCoverage:
    """The satellite guarantee: the paper-value partition is exact."""

    def test_every_figure_owns_at_least_one_paper_value(self):
        for spec in FIGURES.values():
            assert spec.paper_values, (
                f"{spec.name} declares no paper values; a figure without "
                "ground truth cannot report drift"
            )

    def test_every_declared_paper_value_exists(self):
        known = public_paper_values()
        for spec in FIGURES.values():
            for name in spec.paper_values:
                assert name in known, (spec.name, name)

    def test_no_paper_value_owned_twice(self):
        owners = {}
        for spec in FIGURES.values():
            for name in spec.paper_values:
                assert name not in owners, (
                    f"{name} owned by both {owners[name]} and {spec.name}"
                )
                owners[name] = spec.name

    def test_no_orphaned_paper_values(self):
        declared = {
            name
            for spec in FIGURES.values()
            for name in spec.paper_values
        }
        orphans = public_paper_values() - declared
        assert not orphans, (
            f"paper values not consumed by any registered figure: "
            f"{sorted(orphans)} — add them to a FigureSpec or delete them"
        )


class TestFigureRow:
    def test_rel_delta(self):
        assert FigureRow("x", paper=2.0, measured=2.2).rel_delta == pytest.approx(0.1)
        assert FigureRow("x", paper=-2.0, measured=-1.0).rel_delta == pytest.approx(0.5)

    def test_rel_delta_undefined_without_both_values(self):
        assert FigureRow("x", paper=None, measured=1.0).rel_delta is None
        assert FigureRow("x", paper=1.0, measured=None).rel_delta is None

    def test_rel_delta_at_zero_paper(self):
        assert FigureRow("x", paper=0.0, measured=0.0).rel_delta == 0.0
        # Divergence from an exact-zero paper value must not vanish
        # from the delta column: it reports as full (±100%) drift.
        assert FigureRow("x", paper=0.0, measured=0.1).rel_delta == 1.0
        assert FigureRow("x", paper=0.0, measured=-0.1).rel_delta == -1.0


class TestPipeline:
    OPTIONS = ReportOptions(cache_root=None, jobs=1)

    @pytest.mark.parametrize("name", CHEAP_FIGURES)
    def test_cheap_figures_render_end_to_end(self, name):
        result = run_figure(name, self.OPTIONS)
        assert result.rows
        text = render_figure_text(result)
        assert result.spec.title in text
        # Analytic figures reproduce their paper values within 2%.
        for row in result.rows:
            if row.rel_delta is not None:
                assert abs(row.rel_delta) < 0.02, (name, row.label)

    def test_shared_source_is_run_once(self):
        results = run_figures(["fig8", "fig8"], self.OPTIONS)
        assert results[0].artifacts["model:fig8"] is results[1].artifacts[
            "model:fig8"
        ]

    def test_report_artifact_schema(self):
        results = run_figures(["fig8"], self.OPTIONS)
        artifact = make_report_artifact(results, self.OPTIONS)
        assert artifact["schema"] == "repro.report/v1"
        entry = artifact["figures"]["fig8"]
        assert entry["rows"]
        assert entry["max_abs_rel_delta"] == 0.0
        assert not entry["checked"]
        json.dumps(artifact)  # must be serializable

    def test_markdown_contains_every_row(self):
        results = run_figures(["fig8"], self.OPTIONS)
        markdown = render_markdown(results)
        assert "# Paper reproduction report" in markdown
        for row in results[0].rows:
            assert row.label in markdown

    def test_check_against_written_baselines_round_trips(self, tmp_path):
        results = run_figures(["fig8"], self.OPTIONS)
        write_baselines(results, root=tmp_path)
        checked = check_result(results[0], baseline_root=tmp_path)
        assert checked.checked and checked.ok, checked.problems

    def test_check_flags_metric_drift(self, tmp_path):
        results = run_figures(["fig8"], self.OPTIONS)
        paths = write_baselines(results, root=tmp_path)
        baseline = json.loads(paths[0].read_text())
        point = next(iter(baseline["points"].values()))
        point["metrics"]["min_acts_between_alerts"] += 1.0
        paths[0].write_text(json.dumps(baseline))
        checked = check_result(results[0], baseline_root=tmp_path)
        assert not checked.ok
        assert any("min_acts_between_alerts" in p for p in checked.problems)

    def test_check_flags_missing_baseline(self, tmp_path):
        results = run_figures(["fig8"], self.OPTIONS)
        checked = check_result(results[0], baseline_root=tmp_path)
        assert not checked.ok
        assert any("baseline not found" in p for p in checked.problems)

    def test_shared_source_is_gated_once(self, tmp_path, monkeypatch):
        """A source referenced by several figures is read and diffed
        exactly once per check pass (every dependent figure still
        carries the findings)."""
        import repro.report.pipeline as pipeline

        results = run_figures(["fig8", "fig8"], self.OPTIONS)
        write_baselines(results, root=tmp_path)
        calls = []
        real = pipeline.check_against_baseline

        def counting(*args, **kwargs):
            calls.append(args)
            return real(*args, **kwargs)

        monkeypatch.setattr(pipeline, "check_against_baseline", counting)
        checked = pipeline.check_results(results, baseline_root=tmp_path)
        assert len(calls) == 1
        assert all(r.checked and r.ok for r in checked)

    def test_write_baselines_defaults_to_cwd_with_baseline_dir(
        self, tmp_path, monkeypatch
    ):
        """The default write root resolves like the check path: CWD
        when it holds benchmarks/baselines/, so write-then-check from
        the same directory round-trips."""
        (tmp_path / "benchmarks" / "baselines").mkdir(parents=True)
        monkeypatch.chdir(tmp_path)
        results = run_figures(["fig8"], self.OPTIONS)
        paths = write_baselines(results)
        assert [p.resolve() for p in paths] == [
            (tmp_path / "benchmarks" / "baselines" / "model_fig8.json")
            .resolve()
        ]
        assert check_result(results[0]).ok

    def test_write_baselines_falls_back_to_the_checkout(
        self, tmp_path, monkeypatch
    ):
        """Outside any baseline-bearing directory the write anchors at
        the repo toplevel — the same files --check resolves — instead
        of silently scattering baselines under the CWD."""
        import repro.report.pipeline as pipeline

        fake_checkout = tmp_path / "checkout"
        (fake_checkout / "benchmarks" / "baselines").mkdir(parents=True)
        cwd = tmp_path / "elsewhere"
        cwd.mkdir()
        monkeypatch.chdir(cwd)
        monkeypatch.setattr(
            pipeline, "git_toplevel", lambda: fake_checkout
        )
        results = run_figures(["fig8"], self.OPTIONS)
        paths = write_baselines(results)
        assert paths == [
            fake_checkout / "benchmarks" / "baselines" / "model_fig8.json"
        ]
