"""Tests for report formatting and paper ground-truth constants."""

from repro.report import paper_values
from repro.report.tables import format_table, paper_vs_measured


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["name", "value"], [["a", 1], ["bb", 22]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].endswith("value")
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_title(self):
        out = format_table(["x"], [[1]], title="Table 9")
        assert out.splitlines()[0] == "Table 9"

    def test_float_formatting(self):
        out = format_table(["v"], [[0.0028], [0.5], [1234.0], [0]])
        assert "0.0028" in out
        assert "0.500" in out
        assert "1,234" in out

    def test_non_finite_rendered_as_dash(self):
        """NaN/±inf are "no data", not numbers, and must not leak
        "nan"/"inf" strings into a rendered table."""
        out = format_table(
            ["v"], [[float("nan")], [float("inf")], [float("-inf")]]
        )
        assert "nan" not in out and "inf" not in out
        assert out.count("—") == 3

    def test_none_rendered_as_dash(self):
        assert "—" in format_table(["v"], [[None]])

    def test_negative_precision_matches_positive(self):
        """Precision keys off abs(cell): a negative value renders with
        exactly the digits of its positive counterpart."""
        for value in (0.0028, 0.5, 1234.5, 12.0):
            positive = format_table(["v"], [[value]]).splitlines()[-1].strip()
            negative = format_table(["v"], [[-value]]).splitlines()[-1].strip()
            assert negative == f"-{positive}", (value, positive, negative)

    def test_negative_zero_is_zero(self):
        assert format_table(["v"], [[-0.0]]).splitlines()[-1].strip() == "0"

    def test_paper_vs_measured(self):
        out = paper_vs_measured("T", "k", [["a", 1, 2]])
        header = out.splitlines()[1]
        assert "paper" in header and "measured" in header


class TestPaperValues:
    def test_table2_keys(self):
        assert sorted(paper_values.TABLE2_FEINTING) == [1, 2, 3, 4, 5]

    def test_table7_complete(self):
        assert len(paper_values.TABLE7_SLOWDOWN) == 9
        assert len(paper_values.TABLE7_SAFE_TRH) == 9
        assert sorted(paper_values.TABLE7_SLOWDOWN) == sorted(
            paper_values.TABLE7_SAFE_TRH
        )
        assert paper_values.TABLE7_SLOWDOWN[(64, 1)] == 0.0028
        assert paper_values.TABLE7_SAFE_TRH[(64, 1)] == 99

    def test_headline_constants(self):
        assert paper_values.JAILBREAK_DETERMINISTIC_ACTS == 1152
        assert paper_values.POSTPONEMENT_ACTS == 328
        assert paper_values.FIG10_SAFE_TRH[64] == 99
        assert paper_values.MOAT_SRAM_BYTES_PER_BANK[1] == 7
        assert paper_values.TSA_LOSS[17] == 0.52
