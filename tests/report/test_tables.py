"""Tests for report formatting and paper ground-truth constants."""

from repro.report import paper_values
from repro.report.tables import format_table, paper_vs_measured


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["name", "value"], [["a", 1], ["bb", 22]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].endswith("value")
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_title(self):
        out = format_table(["x"], [[1]], title="Table 9")
        assert out.splitlines()[0] == "Table 9"

    def test_float_formatting(self):
        out = format_table(["v"], [[0.0028], [0.5], [1234.0], [0]])
        assert "0.0028" in out
        assert "0.500" in out
        assert "1,234" in out

    def test_paper_vs_measured(self):
        out = paper_vs_measured("T", "k", [["a", 1, 2]])
        header = out.splitlines()[1]
        assert "paper" in header and "measured" in header


class TestPaperValues:
    def test_table2_keys(self):
        assert sorted(paper_values.TABLE2_FEINTING) == [1, 2, 3, 4, 5]

    def test_table7_complete(self):
        assert len(paper_values.TABLE7_ATH_LEVEL) == 9
        assert paper_values.TABLE7_ATH_LEVEL[(64, 1)] == (0.0028, 99)

    def test_headline_constants(self):
        assert paper_values.JAILBREAK_DETERMINISTIC_ACTS == 1152
        assert paper_values.POSTPONEMENT_ACTS == 328
        assert paper_values.FIG10_SAFE_TRH[64] == 99
        assert paper_values.MOAT_SRAM_BYTES_PER_BANK[1] == 7
        assert paper_values.TSA_LOSS[17] == 0.52
