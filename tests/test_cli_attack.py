"""Tests for the ``repro attack run|sweep|list`` CLI."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_attack_requires_action(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["attack"])

    def test_run_choices_come_from_registry(self):
        from repro.attacks.registry import attack_kinds

        for kind in attack_kinds():
            args = build_parser().parse_args(["attack", "run", kind])
            assert args.name == kind
        with pytest.raises(SystemExit):
            build_parser().parse_args(["attack", "run", "nonexistent"])


class TestAttackList:
    def test_lists_registry(self, capsys):
        from repro.attacks.registry import attack_kinds

        assert main(["attack", "list"]) == 0
        out = capsys.readouterr().out
        for kind in attack_kinds():
            assert kind in out


class TestAttackRun:
    def test_postponement(self, capsys):
        assert main(["attack", "run", "postponement"]) == 0
        out = capsys.readouterr().out
        assert "329" in out

    def test_ratchet_small(self, capsys):
        assert main(["attack", "run", "ratchet", "--pool", "8"]) == 0
        out = capsys.readouterr().out
        assert "ACTs on attack row" in out

    def test_feinting_small(self, capsys):
        assert main(["attack", "run", "feinting", "--periods", "32"]) == 0
        out = capsys.readouterr().out
        assert "feinting" in out

    def test_set_overrides_any_registry_param(self, capsys):
        assert main(["attack", "run", "trespass",
                     "--set", "num_aggressors=8",
                     "--set", "acts_per_aggressor=64"]) == 0
        out = capsys.readouterr().out
        assert "8 aggressors" in out

    def test_set_rejects_malformed(self, capsys):
        assert main(["attack", "run", "ratchet", "--set", "pool_size"]) == 2
        assert "name=value" in capsys.readouterr().err

    def test_set_rejects_unknown_param(self, capsys):
        assert main(["attack", "run", "ratchet", "--set", "bogus=1"]) == 2
        assert "no parameter" in capsys.readouterr().err

    def test_subchannels_must_be_positive(self, capsys):
        assert main(["attack", "run", "postponement",
                     "--subchannels", "0"]) == 2

    def test_subchannels_flag_scales_open_loop_attacks(self, capsys):
        assert main(["attack", "run", "trespass",
                     "--set", "acts_per_aggressor=64",
                     "--subchannels", "2"]) == 0
        assert "trrespass" in capsys.readouterr().out

    def test_subchannels_rejected_for_adaptive_attacks(self, capsys):
        assert main(["attack", "run", "postponement",
                     "--subchannels", "2"]) == 2
        assert "adaptive" in capsys.readouterr().err

    def test_set_rejects_non_numeric_value(self, capsys):
        assert main(["attack", "run", "ratchet",
                     "--set", "pool_size=abc"]) == 2
        assert "integer" in capsys.readouterr().err

    def test_jailbreak_randomized_runs_with_cli_defaults(self, capsys):
        """The CLI supplies the paper's all-heavy iteration for the
        counter-state parameters the library leaves mandatory."""
        assert main(["attack", "run", "jailbreak-randomized"]) == 0
        assert "ACTs on attack row" in capsys.readouterr().out

    def test_set_accepts_tuple_values(self, capsys):
        counters = ",".join(["64"] * 8)
        assert main(["attack", "run", "jailbreak-randomized",
                     "--set", f"initial_counters={counters}"]) == 0
        capsys.readouterr()

    def test_set_coerces_integral_floats_in_tuples_like_scalars(
        self, capsys
    ):
        counters = ",".join(["64.0"] * 8)
        assert main(["attack", "run", "jailbreak-randomized",
                     "--set", f"initial_counters={counters}",
                     "--set", "attack_row_counter=96.0"]) == 0
        capsys.readouterr()

    def test_set_rejects_non_integer_tuple(self, capsys):
        assert main(["attack", "run", "jailbreak-randomized",
                     "--set", "initial_counters=a,b"]) == 2
        assert "integer" in capsys.readouterr().err

    def test_set_rejects_tuple_for_scalar_param(self, capsys):
        """A comma value for a scalar parameter is a clean error, not
        a TypeError traceback inside the attack."""
        assert main(["attack", "run", "ratchet",
                     "--set", "pool_size=4,8"]) == 2
        assert "single value" in capsys.readouterr().err


class TestAttackSweep:
    def test_list_presets_matches_registry(self, capsys):
        from repro.sweep.attack_spec import ATTACK_PRESETS

        assert main(["attack", "sweep", "--list-presets"]) == 0
        out = capsys.readouterr().out
        for name in ATTACK_PRESETS:
            assert name in out

    def test_requires_preset(self, capsys):
        assert main(["attack", "sweep"]) == 2
        assert "preset" in capsys.readouterr().err

    def test_unknown_preset(self, capsys):
        assert main(["attack", "sweep", "fig99"]) == 2
        assert "unknown attack preset" in capsys.readouterr().err

    def test_sweep_writes_artifact(self, tmp_path, capsys):
        out_path = tmp_path / "BENCH_attack_postponement.json"
        assert main(["attack", "sweep", "postponement", "--jobs", "1",
                     "--quiet", "--no-cache", "--out", str(out_path)]) == 0
        artifact = json.loads(out_path.read_text())
        assert artifact["schema"] == "repro.attack/v1"
        assert artifact["preset"] == "postponement"
        assert len(artifact["points"]) == 2

    def test_sweep_checks_committed_baseline(self, tmp_path, capsys):
        # The smoke baselines committed under benchmarks/baselines/
        # must gate a fresh run cleanly (resolved via git toplevel, so
        # this works from any working directory).
        out_path = tmp_path / "artifact.json"
        assert main(["attack", "sweep", "postponement", "--jobs", "1",
                     "--quiet", "--no-cache", "--check",
                     "--out", str(out_path)]) == 0
        assert "baseline check passed" in capsys.readouterr().err

    def test_check_fails_against_wrong_baseline(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        out_path = tmp_path / "artifact.json"
        assert main(["attack", "sweep", "postponement", "--jobs", "1",
                     "--quiet", "--no-cache", "--write-baseline",
                     "--baseline", str(baseline),
                     "--out", str(out_path)]) == 0
        data = json.loads(baseline.read_text())
        key = next(iter(data["points"]))
        data["points"][key]["metrics"]["acts_on_attack_row"] += 100
        baseline.write_text(json.dumps(data))
        capsys.readouterr()
        assert main(["attack", "sweep", "postponement", "--jobs", "1",
                     "--quiet", "--no-cache", "--check",
                     "--baseline", str(baseline),
                     "--out", str(out_path)]) == 1
        assert "BASELINE CHECK FAILED" in capsys.readouterr().err
