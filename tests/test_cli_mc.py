"""Tests for the ``repro mc`` command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.sweep.mc_spec import MC_PRESETS

SMOKE = ["--trefi", "96", "--jobs", "1", "--quiet"]


def run_mc_sweep_cli(tmp_path, *extra, preset="mc-smoke"):
    out = tmp_path / "BENCH_mc.json"
    argv = ["mc", "sweep", preset, *SMOKE, "--out", str(out),
            "--cache-dir", str(tmp_path / "cache"), *extra]
    return main(argv), out


class TestParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(["mc", "run"])
        assert args.policy == "moat"
        assert args.scheduler == "frfcfs"
        assert args.row_policy == "closed"
        assert args.queue_depth == 32

    def test_sweep_defaults(self):
        args = build_parser().parse_args(["mc", "sweep", "mc-smoke"])
        assert args.preset == "mc-smoke"
        assert not args.check

    def test_action_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["mc"])

    def test_bad_scheduler_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["mc", "run", "--scheduler", "lifo"])


class TestListPresets:
    def test_lists_every_preset(self, capsys):
        assert main(["mc", "list-presets"]) == 0
        out = capsys.readouterr().out
        for name in MC_PRESETS:
            assert name in out

    def test_sweep_list_flag_matches(self, capsys):
        assert main(["mc", "sweep", "--list-presets"]) == 0
        out = capsys.readouterr().out
        for name in MC_PRESETS:
            assert name in out


class TestRun:
    def test_reports_latency_and_bandwidth(self, capsys):
        assert main(["mc", "run", "--trefi", "64", "--banks", "2"]) == 0
        out = capsys.readouterr().out
        for needle in ("read latency mean", "read latency p50",
                       "read latency p99", "achieved bandwidth",
                       "ALERT stall fraction", "moat"):
            assert needle in out

    def test_null_baseline(self, capsys):
        assert main(["mc", "run", "--policy", "null", "--trefi", "64",
                     "--banks", "2"]) == 0
        out = capsys.readouterr().out
        assert "null" in out
        assert "0.0000" in out  # no ALERTs without a policy

    def test_open_page_reports_hit_rate(self, capsys):
        assert main(["mc", "run", "--row-policy", "open", "--trefi", "64",
                     "--banks", "2", "--hot-fraction", "0.5",
                     "--hot-rows", "2"]) == 0
        assert "row-buffer hit rate" in capsys.readouterr().out

    def test_queue_depth_zero_is_unbounded(self, capsys):
        assert main(["mc", "run", "--queue-depth", "0", "--trefi", "64",
                     "--banks", "2"]) == 0
        assert "unbounded" in capsys.readouterr().out

    def test_negative_depth_is_usage_error(self, capsys):
        assert main(["mc", "run", "--queue-depth", "-3"]) == 2
        assert "--queue-depth" in capsys.readouterr().err

    def test_bad_workload_parameters_are_usage_errors(self, capsys):
        assert main(["mc", "run", "--rate", "0"]) == 2
        assert "error" in capsys.readouterr().err

    def test_trace_replay(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        assert main(["trace", "synth", "mcf", "--trefi", "16",
                     "--out", str(trace)]) == 0
        assert main(["mc", "run", "--trace", str(trace),
                     "--queue-depth", "0", "--scheduler", "fcfs"]) == 0
        out = capsys.readouterr().out
        assert "mcf" in out and "read latency p99" in out

    def test_activation_trace_rejected(self, tmp_path, capsys):
        from repro.trace import ActivationTrace

        path = tmp_path / "act.jsonl"
        ActivationTrace(events=[(0.0, 0, 1)]).save(path)
        assert main(["mc", "run", "--trace", str(path)]) == 2
        assert "address trace" in capsys.readouterr().err


class TestSweep:
    def test_artifact_written(self, tmp_path, capsys):
        code, out = run_mc_sweep_cli(tmp_path)
        assert code == 0
        artifact = json.loads(out.read_text())
        assert artifact["schema"] == "repro.mc/v1"
        assert artifact["preset"] == "mc-smoke"
        assert artifact["n_trefi"] == 96
        stdout = capsys.readouterr().out
        assert "MC sweep mc-smoke" in stdout
        assert "p99 ns" in stdout

    def test_preset_required(self, capsys):
        assert main(["mc", "sweep", "--quiet"]) == 2

    def test_unknown_preset(self, capsys):
        assert main(["mc", "sweep", "mc-nope", "--quiet"]) == 2
        assert "unknown mc preset" in capsys.readouterr().err

    def test_write_baseline_then_check_passes(self, tmp_path, capsys):
        baseline = tmp_path / "mc_mc-smoke.json"
        code, _ = run_mc_sweep_cli(
            tmp_path, "--write-baseline", "--baseline", str(baseline)
        )
        assert code == 0 and baseline.is_file()
        code, _ = run_mc_sweep_cli(
            tmp_path, "--check", "--baseline", str(baseline),
            "--rtol", "0", "--atol", "0",
        )
        assert code == 0
        assert "baseline check passed" in capsys.readouterr().err

    def test_check_fails_on_drifted_baseline(self, tmp_path, capsys):
        baseline = tmp_path / "mc_mc-smoke.json"
        code, _ = run_mc_sweep_cli(
            tmp_path, "--write-baseline", "--baseline", str(baseline)
        )
        assert code == 0
        data = json.loads(baseline.read_text())
        key = next(iter(data["points"]))
        data["points"][key]["metrics"]["read_p99_ns"] *= 3.0
        baseline.write_text(json.dumps(data))
        code, _ = run_mc_sweep_cli(
            tmp_path, "--check", "--baseline", str(baseline)
        )
        assert code == 1
        assert "BASELINE CHECK FAILED" in capsys.readouterr().err

    def test_cache_hits_on_rerun(self, tmp_path, capsys):
        run_mc_sweep_cli(tmp_path)
        capsys.readouterr()
        code, _ = run_mc_sweep_cli(tmp_path)
        assert code == 0
        assert "4 cached" in capsys.readouterr().out


class TestScheds:
    def test_list_scheds_covers_the_registry(self, capsys):
        from repro.mc.sched import SCHEDULERS

        assert main(["mc", "list-scheds"]) == 0
        out = capsys.readouterr().out
        for name in SCHEDULERS:
            assert name in out
        # Defaults are printed so --sched params are discoverable.
        assert "budget_ns=10000" in out
        assert "gbps=1" in out

    def test_sched_flag_runs_a_parameterized_policy(self, capsys):
        assert main(["mc", "run", "--sched", "slo:budget_ns=5000",
                     "--trefi", "64", "--banks", "2"]) == 0
        assert "slo(budget_ns=5000)" in capsys.readouterr().out

    def test_sched_flag_overrides_scheduler_flag(self, capsys):
        assert main(["mc", "run", "--scheduler", "fcfs",
                     "--sched", "priority", "--trefi", "64",
                     "--banks", "2"]) == 0
        assert "priority" in capsys.readouterr().out

    def test_unknown_sched_kind_is_a_usage_error(self, capsys):
        assert main(["mc", "run", "--sched", "elevator"]) == 2
        err = capsys.readouterr().err
        assert "unknown scheduler 'elevator'" in err
        assert "fcfs, frfcfs, priority, bw-cap, slo" in err

    def test_unknown_sched_param_is_a_usage_error(self, capsys):
        assert main(["mc", "run", "--sched", "slo:bogus=1"]) == 2
        assert "unknown sched param 'bogus'" in capsys.readouterr().err

    def test_malformed_sched_param_is_a_usage_error(self, capsys):
        assert main(["mc", "run", "--sched", "slo:budget_ns"]) == 2
        assert "expected k=v" in capsys.readouterr().err
