"""Tests for the refresh engine: groups, postponement, counter reset."""

import pytest

from repro.dram.bank import Bank
from repro.dram.refresh import CounterResetPolicy, RefreshEngine


def make(policy=CounterResetPolicy.SAFE, rows=64, groups=8):
    bank = Bank(num_rows=rows)
    return bank, RefreshEngine(bank, num_groups=groups, reset_policy=policy)


class TestGroups:
    def test_rows_per_group(self):
        _, engine = make()
        assert engine.rows_per_group == 8

    def test_group_rows(self):
        _, engine = make()
        assert engine.group_rows(0) == list(range(8))
        assert engine.group_rows(7) == list(range(56, 64))

    def test_group_out_of_range(self):
        _, engine = make()
        with pytest.raises(IndexError):
            engine.group_rows(8)

    def test_rows_must_divide_evenly(self):
        bank = Bank(num_rows=60)
        with pytest.raises(ValueError):
            RefreshEngine(bank, num_groups=8)

    def test_pointer_advances_and_wraps(self):
        _, engine = make()
        for expected in list(range(8)) + [0, 1]:
            assert engine.execute_ref() == expected
        assert engine.refs_executed == 10


class TestDataRefresh:
    def test_refresh_clears_victim_exposure(self):
        bank, engine = make()
        bank.activate(3)  # exposes rows 1,2,4,5
        engine.execute_ref()  # group 0 = rows 0..7
        for victim in (1, 2, 4, 5):
            assert bank.danger_count(victim) == 0

    def test_refresh_only_covers_its_group(self):
        bank, engine = make()
        bank.activate(10)  # group 1
        engine.execute_ref()  # refreshes group 0 only
        assert bank.danger_count(9) == 1


class TestCounterResetPolicies:
    def test_free_running_never_resets(self):
        bank, engine = make(CounterResetPolicy.FREE_RUNNING)
        bank.activate(2)
        engine.execute_ref()
        assert bank.prac_count(2) == 1

    def test_unsafe_resets_group_counters(self):
        bank, engine = make(CounterResetPolicy.UNSAFE)
        bank.activate(2)
        engine.execute_ref()
        assert bank.prac_count(2) == 0

    def test_safe_resets_but_shadows_boundary_rows(self):
        bank, engine = make(CounterResetPolicy.SAFE)
        for _ in range(5):
            bank.activate(6)  # second-to-last row of group 0
            engine.note_activation(6)
        engine.execute_ref()
        assert bank.prac_count(6) == 0
        assert engine.shadow == {6: 5, 7: 0}

    def test_shadow_count_matches_blast_radius(self):
        bank, engine = make(CounterResetPolicy.SAFE)
        engine.execute_ref()
        assert len(engine.shadow) == bank.blast_radius

    def test_shadow_dropped_at_next_group(self):
        bank, engine = make(CounterResetPolicy.SAFE)
        engine.execute_ref()  # shadows rows 6, 7
        engine.execute_ref()  # group 1 refreshed: rows 6,7 now safe
        assert set(engine.shadow) == {14, 15}


class TestEffectiveCount:
    def test_effective_count_uses_shadow(self):
        bank, engine = make(CounterResetPolicy.SAFE)
        for _ in range(9):
            bank.activate(7)
            engine.note_activation(7)
        engine.execute_ref()
        # Counter reset, but the shadow holds the true count.
        assert bank.prac_count(7) == 0
        assert engine.effective_count(7) == 9

    def test_note_activation_increments_shadow(self):
        bank, engine = make(CounterResetPolicy.SAFE)
        for _ in range(4):
            bank.activate(7)
            engine.note_activation(7)
        engine.execute_ref()
        bank.activate(7)
        assert engine.note_activation(7) == 5
        assert engine.effective_count(7) == 5

    def test_effective_count_without_shadow(self):
        bank, engine = make(CounterResetPolicy.SAFE)
        bank.activate(30)
        assert engine.effective_count(30) == 1

    def test_clear_shadow(self):
        bank, engine = make(CounterResetPolicy.SAFE)
        engine.execute_ref()
        engine.clear_shadow(7)
        assert 7 not in engine.shadow


class TestPostponement:
    def test_postpone_up_to_limit(self):
        _, engine = make()
        assert engine.postpone()
        assert engine.postpone()
        assert not engine.postpone()
        assert engine.postponed == 2

    def test_batch_executes_all_postponed(self):
        _, engine = make()
        engine.postpone()
        engine.postpone()
        groups = engine.execute_postponed_batch()
        assert groups == [0, 1, 2]
        assert engine.postponed == 0

    def test_execute_ref_reduces_deficit(self):
        _, engine = make()
        engine.postpone()
        engine.execute_ref()
        assert engine.postponed == 0

    def test_custom_postpone_limit(self):
        bank = Bank(num_rows=64)
        engine = RefreshEngine(bank, num_groups=8, max_postponed=0)
        assert not engine.postpone()
