"""Tests for the command vocabulary."""

from repro.dram.commands import Command, CommandKind


def test_act_constructor():
    cmd = Command.act(row=42, bank=3)
    assert cmd.kind is CommandKind.ACT
    assert cmd.row == 42
    assert cmd.bank == 3


def test_nop_constructor():
    cmd = Command.nop(duration=100.0)
    assert cmd.kind is CommandKind.NOP
    assert cmd.duration == 100.0


def test_commands_are_immutable():
    cmd = Command.act(1)
    try:
        cmd.row = 2
        assert False, "should be frozen"
    except AttributeError:
        pass


def test_kind_values():
    assert {k.value for k in CommandKind} == {"act", "pre", "ref", "rfm", "nop"}
