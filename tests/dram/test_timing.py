"""Tests for DDR5 timing parameters (paper Table 1 and Section 2.6)."""

import pytest

from repro.dram.timing import (
    BASELINE_SYSTEM,
    DDR5_LEGACY_TIMING,
    DDR5_PRAC_TIMING,
    DramTiming,
    SystemConfig,
)


class TestTable1Values:
    def test_tact(self):
        assert DDR5_PRAC_TIMING.t_act == 12.0

    def test_tpre_includes_prac_update(self):
        # PRAC raises tPRE from 16 ns to 36 ns (Section 2.6).
        assert DDR5_PRAC_TIMING.t_pre == 36.0
        assert DDR5_LEGACY_TIMING.t_pre == 16.0

    def test_tras_reduced_under_prac(self):
        assert DDR5_PRAC_TIMING.t_ras == 16.0
        assert DDR5_LEGACY_TIMING.t_ras == 32.0

    def test_trc(self):
        assert DDR5_PRAC_TIMING.t_rc == 52.0
        assert DDR5_LEGACY_TIMING.t_rc == 48.0

    def test_trefw_is_about_32ms(self):
        # Table 1 rounds tREFW to 32 ms; the model keeps the identity
        # tREFW = 8192 * tREFI exactly.
        assert DDR5_PRAC_TIMING.t_refw == 8192 * 3900.0
        assert DDR5_PRAC_TIMING.t_refw == pytest.approx(32e6, rel=0.002)

    def test_trefi(self):
        assert DDR5_PRAC_TIMING.t_refi == 3900.0

    def test_trfc(self):
        assert DDR5_PRAC_TIMING.t_rfc == 410.0


class TestDerivedQuantities:
    def test_67_acts_per_trefi(self):
        # Section 2.2: (3900 - 410) / 52 = 67 activations per tREFI.
        assert DDR5_PRAC_TIMING.acts_per_trefi == 67

    def test_8192_refs_per_window(self):
        assert DDR5_PRAC_TIMING.refs_per_refw == 8192

    def test_acts_per_window(self):
        assert DDR5_PRAC_TIMING.acts_per_refw == 67 * 8192

    def test_1638_mitigations_per_window(self):
        # Section 6.4: up to 1638 aggressor rows per tREFW per bank at
        # one aggressor per 5 tREFI.
        assert DDR5_PRAC_TIMING.mitigations_per_refw(5) == 1638

    def test_2048_mitigations_at_rate_4(self):
        assert DDR5_PRAC_TIMING.mitigations_per_refw(4) == 2048

    def test_mitigation_rate_must_be_positive(self):
        with pytest.raises(ValueError):
            DDR5_PRAC_TIMING.mitigations_per_refw(0)


class TestAlertTimings:
    def test_alert_duration_level1_is_530ns(self):
        assert DDR5_PRAC_TIMING.alert_duration(1) == 530.0

    def test_alert_duration_level4_is_1580ns(self):
        # Recommendations section: tALERT of 1580 ns at level 4.
        assert DDR5_PRAC_TIMING.alert_duration(4) == 1580.0

    def test_inter_alert_time_level1(self):
        # Appendix A: tA2A = 180 + (350 + 52) * 1 = 582 ns.
        assert DDR5_PRAC_TIMING.inter_alert_time(1) == 582.0

    def test_inter_alert_time_level4(self):
        assert DDR5_PRAC_TIMING.inter_alert_time(4) == 180.0 + 402.0 * 4

    @pytest.mark.parametrize("level", [0, 3, 5, -1])
    def test_illegal_abo_levels_rejected(self, level):
        with pytest.raises(ValueError):
            DDR5_PRAC_TIMING.alert_duration(level)


class TestSystemConfig:
    def test_table3_defaults(self):
        cfg = BASELINE_SYSTEM
        assert cfg.cores == 8
        assert cfg.core_freq_ghz == 4.0
        assert cfg.rob_entries == 256
        assert cfg.llc_bytes == 8 * 1024 * 1024
        assert cfg.llc_ways == 16
        assert cfg.memory_gb == 32
        assert cfg.banks == 32
        assert cfg.subchannels == 2
        assert cfg.rows_per_bank == 64 * 1024
        assert cfg.row_bytes == 8 * 1024
        assert cfg.closed_page

    def test_total_banks(self):
        assert BASELINE_SYSTEM.total_banks == 64

    def test_instruction_rate(self):
        # 8 cores x 4 GHz at IPC 1 = 32 instructions per ns.
        assert BASELINE_SYSTEM.instructions_per_ns == 32.0

    def test_custom_config(self):
        cfg = SystemConfig(cores=4, banks=16)
        assert cfg.total_banks == 32
        assert cfg.instructions_per_ns == 16.0


class TestCustomTiming:
    def test_frozen(self):
        with pytest.raises(Exception):
            DDR5_PRAC_TIMING.t_rc = 10.0

    def test_small_window(self, fast_timing):
        assert fast_timing.refs_per_refw == 64

    def test_acts_scale_with_trc(self):
        slow = DramTiming(t_rc=104.0)
        assert slow.acts_per_trefi == 33
