"""Reproduce the Figure 7 counter-reset security analysis (Section 4.3).

Unsafe reset-on-refresh lets a row accumulate 2T activations across a
refresh boundary while the defense-visible counter never exceeds T;
MOAT's safe reset (SRAM shadow counters for the last two rows of the
refreshed group) keeps the defense-visible count truthful.
"""

from repro.dram.bank import Bank
from repro.dram.refresh import CounterResetPolicy, RefreshEngine


def hammer(bank, engine, row, times):
    observed = 0
    for _ in range(times):
        bank.activate(row)
        observed = engine.note_activation(row)
    return observed


class TestUnsafeReset:
    def test_counter_underreports_after_reset(self):
        """T activations before and after the reset: counter shows T,
        but the victim in the next (not yet refreshed) group saw 2T."""
        bank = Bank(num_rows=64)
        engine = RefreshEngine(bank, num_groups=8, reset_policy=CounterResetPolicy.UNSAFE)
        t = 50
        # Row 7 is the last row of group 0; its victims 8, 9 are in
        # group 1, which is refreshed *after* group 0.
        hammer(bank, engine, row=7, times=t)
        engine.execute_ref()  # refresh group 0, reset row 7's counter
        observed = hammer(bank, engine, row=7, times=t)
        assert observed == t  # defense sees only T
        assert bank.danger_count(8) == 2 * t  # ground truth is 2T

    def test_vulnerability_window_is_group_boundary(self):
        """Interior rows are safe: their victims were refreshed too."""
        bank = Bank(num_rows=64)
        engine = RefreshEngine(bank, num_groups=8, reset_policy=CounterResetPolicy.UNSAFE)
        t = 50
        hammer(bank, engine, row=3, times=t)  # interior of group 0
        engine.execute_ref()
        hammer(bank, engine, row=3, times=t)
        # Victims 1,2,4,5 were refreshed along with the group, so their
        # exposure is only the post-refresh T.
        assert bank.danger_count(4) == t


class TestSafeReset:
    def test_shadow_reports_true_count(self):
        bank = Bank(num_rows=64)
        engine = RefreshEngine(bank, num_groups=8, reset_policy=CounterResetPolicy.SAFE)
        t = 50
        hammer(bank, engine, row=7, times=t)
        engine.execute_ref()
        observed = hammer(bank, engine, row=7, times=t)
        # The SRAM shadow carries the pre-reset count across the REF.
        assert observed == 2 * t
        assert engine.effective_count(7) == bank.danger_count(8)

    def test_two_sram_counters_suffice(self):
        """Only the last blast_radius rows of the refreshed group can
        under-report; everything else is safe (Figure 7b)."""
        bank = Bank(num_rows=64)
        engine = RefreshEngine(bank, num_groups=8, reset_policy=CounterResetPolicy.SAFE)
        t = 30
        for row in range(8):
            hammer(bank, engine, row=row, times=t)
        engine.execute_ref()
        # Interior rows: reset is safe because their victims were
        # refreshed; the defense may forget their history.
        for row in range(6):
            max_exposure = max(
                bank.danger_count(v) for v in bank.victims_of(row)
            )
            assert max_exposure <= engine.effective_count(row) + 2 * t
        # Boundary rows: shadows must match the worst victim exposure.
        for row in (6, 7):
            worst = max(bank.danger_count(v) for v in bank.victims_of(row))
            assert engine.effective_count(row) >= worst - 2 * t

    def test_safe_reset_sram_cost_is_two_bytes(self):
        """The shadow register file never exceeds blast_radius entries
        (2 one-byte counters = the paper's 2 B per bank)."""
        bank = Bank(num_rows=64)
        engine = RefreshEngine(bank, num_groups=8, reset_policy=CounterResetPolicy.SAFE)
        for _ in range(20):
            engine.execute_ref()
            assert len(engine.shadow) <= bank.blast_radius
