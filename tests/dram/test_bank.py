"""Tests for the bank model: PRAC counters and danger accounting."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dram.bank import Bank, RowState


class TestConstruction:
    def test_defaults(self):
        bank = Bank()
        assert bank.num_rows == 64 * 1024
        assert bank.blast_radius == 2

    @pytest.mark.parametrize("rows", [0, -5])
    def test_rejects_bad_row_count(self, rows):
        with pytest.raises(ValueError):
            Bank(num_rows=rows)

    def test_rejects_zero_blast_radius(self):
        with pytest.raises(ValueError):
            Bank(num_rows=16, blast_radius=0)

    def test_sparse_construction_is_cheap(self):
        bank = Bank(num_rows=2**30)
        assert bank.prac_count(2**29) == 0


class TestCounters:
    def test_activate_increments(self, small_bank):
        assert small_bank.activate(10) == 1
        assert small_bank.activate(10) == 2
        assert small_bank.prac_count(10) == 2

    def test_independent_rows(self, small_bank):
        small_bank.activate(10)
        assert small_bank.prac_count(11) == 0

    def test_reset_prac(self, small_bank):
        small_bank.activate(10)
        small_bank.reset_prac(10)
        assert small_bank.prac_count(10) == 0

    def test_total_activations(self, small_bank):
        for _ in range(5):
            small_bank.activate(1)
        small_bank.activate(2)
        assert small_bank.total_activations == 6

    def test_initial_counter_function(self):
        bank = Bank(num_rows=16, initial_counter=lambda row: row * 10)
        assert bank.prac_count(3) == 30
        assert bank.activate(3) == 31

    def test_initial_counter_materialized_once(self):
        calls = []

        def init(row):
            calls.append(row)
            return 7

        bank = Bank(num_rows=16, initial_counter=init)
        bank.prac_count(5)
        bank.prac_count(5)
        assert calls == [5]

    @pytest.mark.parametrize("row", [-1, 256, 1000])
    def test_out_of_range_rows_rejected(self, small_bank, row):
        with pytest.raises(IndexError):
            small_bank.activate(row)


class TestDangerAccounting:
    def test_activation_exposes_victims(self, small_bank):
        small_bank.activate(10)
        assert small_bank.danger_count(9) == 1
        assert small_bank.danger_count(11) == 1
        assert small_bank.danger_count(8) == 1
        assert small_bank.danger_count(12) == 1
        assert small_bank.danger_count(10) == 0

    def test_blast_radius_limits_exposure(self, small_bank):
        small_bank.activate(10)
        assert small_bank.danger_count(7) == 0
        assert small_bank.danger_count(13) == 0

    def test_exposure_accumulates_from_both_sides(self, small_bank):
        small_bank.activate(10)
        small_bank.activate(12)
        # Row 11 is a victim of both aggressors.
        assert small_bank.danger_count(11) == 2

    def test_max_danger_highwater(self, small_bank):
        for _ in range(5):
            small_bank.activate(10)
        assert small_bank.max_danger == 5
        assert small_bank.max_danger_row in (8, 9, 11, 12)

    def test_refresh_clears_exposure(self, small_bank):
        small_bank.activate(10)
        small_bank.refresh_row_data(11)
        assert small_bank.danger_count(11) == 0
        # High-water mark is sticky (it is the security verdict).
        assert small_bank.max_danger == 1

    def test_boundary_rows(self, small_bank):
        small_bank.activate(0)
        assert small_bank.danger_count(1) == 1
        small_bank.activate(255)
        assert small_bank.danger_count(254) == 1

    def test_track_danger_disabled(self):
        bank = Bank(num_rows=16, track_danger=False)
        bank.activate(5)
        assert bank.danger_count(6) == 0
        assert bank.max_danger == 0


class TestMitigation:
    def test_mitigate_refreshes_victims(self, small_bank):
        for _ in range(10):
            small_bank.activate(20)
        extra = small_bank.mitigate_aggressor(20)
        assert extra == 5  # 4 victims + 1 counter reset
        for victim in (18, 19, 21, 22):
            assert small_bank.danger_count(victim) == 0
        assert small_bank.prac_count(20) == 0

    def test_mitigate_without_counter_reset(self, small_bank):
        for _ in range(10):
            small_bank.activate(20)
        extra = small_bank.mitigate_aggressor(20, reset_counter=False)
        assert extra == 4
        assert small_bank.prac_count(20) == 10

    def test_mitigation_activation_accounting(self, small_bank):
        small_bank.activate(20)
        small_bank.mitigate_aggressor(20)
        assert small_bank.mitigation_activations == 5

    def test_victims_of_interior_row(self, small_bank):
        assert list(small_bank.victims_of(10)) == [8, 9, 11, 12]

    def test_victims_of_edge_row(self, small_bank):
        assert list(small_bank.victims_of(0)) == [1, 2]
        assert list(small_bank.victims_of(255)) == [253, 254]


class TestIntrospection:
    def test_row_state(self, small_bank):
        small_bank.activate(5)
        state = small_bank.row_state(5)
        assert state == RowState(row=5, prac=1, danger=0)

    def test_touched_rows(self, small_bank):
        small_bank.activate(1)
        small_bank.activate(2)
        small_bank.activate(2)
        assert small_bank.touched_rows() == {1: 1, 2: 2}

    def test_rows_with_prac_at_least(self, small_bank):
        for _ in range(5):
            small_bank.activate(1)
        small_bank.activate(2)
        assert small_bank.rows_with_prac_at_least(2) == 1
        assert small_bank.rows_with_prac_at_least(1) == 2
        assert small_bank.rows_with_prac_at_least(6) == 0


class TestDangerInvariants:
    @given(
        acts=st.lists(st.integers(min_value=2, max_value=60), min_size=1, max_size=80)
    )
    @settings(max_examples=50, deadline=None)
    def test_victim_exposure_equals_neighbor_activations(self, acts):
        """danger(v) == total activations of v's aggressor neighbours."""
        bank = Bank(num_rows=64)
        for row in acts:
            bank.activate(row)
        for victim in range(64):
            expected = sum(
                1
                for row in acts
                if row != victim and abs(row - victim) <= bank.blast_radius
            )
            assert bank.danger_count(victim) == expected

    @given(
        acts=st.lists(st.integers(min_value=0, max_value=31), min_size=1, max_size=60)
    )
    @settings(max_examples=50, deadline=None)
    def test_max_danger_is_highwater(self, acts):
        bank = Bank(num_rows=32)
        running_max = 0
        for row in acts:
            bank.activate(row)
            current = max(bank.danger_count(v) for v in range(32))
            running_max = max(running_max, current)
        assert bank.max_danger == running_max
