"""Tests for the ``repro sweep`` command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.sweep.spec import PRESETS

SMOKE = ["--trefi", "256", "--workloads", "tc,roms", "--jobs", "1", "--quiet"]


def run_sweep_cli(tmp_path, *extra, preset="table5"):
    out = tmp_path / "BENCH_sweep.json"
    argv = ["sweep", preset, *SMOKE, "--out", str(out),
            "--cache-dir", str(tmp_path / "cache"), *extra]
    return main(argv), out


class TestParser:
    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep", "fig11"])
        assert args.preset == "fig11"
        assert args.jobs >= 1
        assert not args.check

    def test_bad_jobs_type_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "fig11", "--jobs", "two"])

    def test_check_and_write_baseline_mutually_exclusive(self):
        """Combining the gate with baseline regeneration would let a
        regressed run overwrite its own baseline and pass."""
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["sweep", "fig11", "--check", "--write-baseline"]
            )


class TestList:
    def test_lists_every_preset(self, capsys):
        assert main(["sweep", "--list"]) == 0
        out = capsys.readouterr().out
        for name in PRESETS:
            assert name in out

    def test_preset_required_without_list(self, capsys):
        assert main(["sweep", "--quiet"]) == 2

    def test_unknown_preset_is_usage_error(self, capsys):
        assert main(["sweep", "fig99", "--quiet"]) == 2
        assert "unknown sweep preset" in capsys.readouterr().err


class TestRun:
    def test_golden_output_shape(self, tmp_path, capsys):
        code, out = run_sweep_cli(tmp_path)
        assert code == 0
        stdout = capsys.readouterr().out
        # Table header, per-point rows, aggregate row.
        for column in ["workload", "policy", "ATH", "ETH", "slowdown",
                       "ALERT/tREFI"]:
            assert column in stdout
        assert "Sweep table5 (n_trefi=256" in stdout
        assert stdout.count("roms") == 4  # one row per ETH value
        assert "AVERAGE" in stdout

    def test_artifact_written(self, tmp_path):
        code, out = run_sweep_cli(tmp_path)
        assert code == 0
        artifact = json.loads(out.read_text())
        assert artifact["schema"] == "repro.sweep/v1"
        assert artifact["preset"] == "table5"
        assert len(artifact["points"]) == 8  # 2 workloads x 4 ETH values

    def test_rerun_uses_cache(self, tmp_path, capsys):
        run_sweep_cli(tmp_path)
        capsys.readouterr()
        code, _ = run_sweep_cli(tmp_path)
        assert code == 0
        assert "8 cached" in capsys.readouterr().out


class TestBaselineGate:
    def test_write_baseline_then_check_passes(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        code, _ = run_sweep_cli(
            tmp_path, "--baseline", str(baseline), "--write-baseline"
        )
        assert code == 0 and baseline.is_file()
        code, _ = run_sweep_cli(tmp_path, "--baseline", str(baseline), "--check")
        assert code == 0

    def test_check_fails_on_metric_regression(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        run_sweep_cli(tmp_path, "--baseline", str(baseline), "--write-baseline")
        data = json.loads(baseline.read_text())
        key = next(k for k in data["points"] if k.startswith("roms"))
        data["points"][key]["metrics"]["slowdown"] += 0.5
        baseline.write_text(json.dumps(data))
        capsys.readouterr()
        code, _ = run_sweep_cli(tmp_path, "--baseline", str(baseline), "--check")
        assert code == 1
        err = capsys.readouterr().err
        assert "BASELINE CHECK FAILED" in err
        assert "metric regression" in err

    def test_check_fails_when_baseline_missing(self, tmp_path, capsys):
        code, _ = run_sweep_cli(
            tmp_path, "--baseline", str(tmp_path / "nope.json"), "--check"
        )
        assert code == 1
        assert "baseline not found" in capsys.readouterr().err

    def test_check_fails_on_scale_mismatch(self, tmp_path, capsys):
        """A baseline written at one n_trefi rejects a run at another."""
        baseline = tmp_path / "baseline.json"
        run_sweep_cli(tmp_path, "--baseline", str(baseline), "--write-baseline")
        out = tmp_path / "other.json"
        argv = ["sweep", "table5", "--trefi", "128", "--workloads", "tc,roms",
                "--jobs", "1", "--quiet", "--out", str(out),
                "--cache-dir", str(tmp_path / "cache"),
                "--baseline", str(baseline), "--check"]
        assert main(argv) == 1
        assert "missing from baseline" in capsys.readouterr().err
