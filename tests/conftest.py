"""Shared fixtures: small banks and fast timings for unit tests."""

from __future__ import annotations

import pytest

from repro.dram.bank import Bank
from repro.dram.timing import DramTiming


@pytest.fixture
def small_bank() -> Bank:
    """A 256-row bank with danger tracking enabled."""
    return Bank(num_rows=256)


@pytest.fixture
def fast_timing() -> DramTiming:
    """DDR5 timings with a tiny refresh window (64 REFs per tREFW) so
    full-window experiments run in milliseconds."""
    return DramTiming(t_refw=64 * 3900.0)
