"""Tests of the sweep-family registry: completeness, artifact
equivalence with the legacy builders, and baseline coverage."""

import json
from pathlib import Path

import pytest

from repro.sweep.artifacts import (
    load_artifact,
    make_artifact,
    make_attack_artifact,
    make_mc_artifact,
    make_model_artifact,
    make_system_artifact,
)
from repro.sweep.family import (
    ATTACK_FAMILY,
    FAMILIES,
    MC_FAMILY,
    MODEL_FAMILY,
    PERF_FAMILY,
    SYSTEM_FAMILY,
    get_family,
    make_family_artifact,
)

BASELINE_ROOT = Path(__file__).resolve().parents[2]


class TestRegistry:
    def test_all_five_families_registered(self):
        assert list(FAMILIES) == ["sweep", "attack", "model", "mc",
                                  "system"]
        for name, family in FAMILIES.items():
            assert family.name == name
            assert get_family(name) is family

    def test_unknown_family(self):
        with pytest.raises(KeyError, match="unknown sweep family"):
            get_family("bogus")

    def test_schemas_are_distinct_and_versioned(self):
        schemas = [f.schema for f in FAMILIES.values()]
        assert len(set(schemas)) == len(schemas)
        assert all(s.startswith("repro.") and "/v" in s for s in schemas)

    def test_baseline_prefixes_are_distinct(self):
        prefixes = [f.baseline_prefix for f in FAMILIES.values()]
        assert len(set(prefixes)) == len(prefixes)

    def test_every_family_is_complete(self):
        for family in FAMILIES.values():
            assert family.presets, family.name
            assert callable(family.run)
            assert callable(family.top_fields)
            assert callable(family.point_payload)
            assert family.cache_subdir
            assert family.description
            for name, spec in family.presets.items():
                assert isinstance(spec, family.spec_type), name

    def test_preset_lookup_error_names_the_family(self):
        with pytest.raises(KeyError, match="unknown mc preset"):
            MC_FAMILY.preset("nope")
        with pytest.raises(KeyError, match="unknown system preset"):
            SYSTEM_FAMILY.preset("nope")

    def test_baseline_paths(self):
        assert (PERF_FAMILY.baseline_name("fig11") == "fig11.json")
        assert (MC_FAMILY.baseline_name("mc-smoke") == "mc_mc-smoke.json")
        assert SYSTEM_FAMILY.default_baseline_path(
            "system-smoke", root=Path("/x")
        ) == Path("/x/benchmarks/baselines/system_system-smoke.json")


class TestCommittedBaselines:
    """Every preset of every family has its baseline committed under
    the family's prefix convention, carrying the family's schema."""

    def test_baselines_exist(self):
        missing = []
        for family in FAMILIES.values():
            for preset_name in family.presets:
                path = family.default_baseline_path(
                    preset_name, root=BASELINE_ROOT
                )
                if not path.exists():
                    missing.append(str(path))
        assert not missing, missing

    def test_committed_baselines_carry_family_schema(self):
        for family in FAMILIES.values():
            for preset_name in family.presets:
                path = family.default_baseline_path(
                    preset_name, root=BASELINE_ROOT
                )
                if not path.exists():
                    continue
                artifact = load_artifact(path, schema=family.schema)
                assert artifact["preset"] == preset_name, str(path)


class TestArtifactEquivalence:
    """The registry-driven builder emits byte-for-byte what the legacy
    per-family builders emit (they now delegate, and this pins it)."""

    def canonical(self, artifact):
        artifact = dict(artifact)
        artifact.pop("created_utc")
        return json.dumps(artifact, sort_keys=True)

    def assert_equivalent(self, family, legacy_builder, result):
        via_family = make_family_artifact(family, result, git_rev="x")
        via_legacy = legacy_builder(result, git_rev="x")
        assert (self.canonical(via_family)
                == self.canonical(via_legacy))
        assert (self.canonical(family.make_artifact(result, git_rev="x"))
                == self.canonical(via_legacy))

    def test_mc(self):
        from repro.sweep.mc_runner import run_mc_sweep
        spec = MC_FAMILY.preset("mc-smoke").with_overrides(n_trefi=32)
        result = run_mc_sweep(spec, jobs=1, cache_dir=None)
        self.assert_equivalent(MC_FAMILY, make_mc_artifact, result)

    def test_model(self):
        from repro.sweep.model_runner import run_model_sweep
        spec = next(iter(MODEL_FAMILY.presets.values()))
        result = run_model_sweep(spec, jobs=1, cache_dir=None)
        self.assert_equivalent(MODEL_FAMILY, make_model_artifact, result)

    def test_system(self):
        from repro.sweep.system_runner import run_system_sweep
        spec = SYSTEM_FAMILY.preset("system-smoke").with_overrides(
            n_trefi=32
        )
        result = run_system_sweep(spec, jobs=1, cache_dir=None)
        self.assert_equivalent(SYSTEM_FAMILY, make_system_artifact,
                               result)

    def test_perf(self):
        from repro.sweep.runner import run_sweep
        spec = PERF_FAMILY.preset("fig11").with_overrides(
            n_trefi=16, workloads=("mcf",)
        )
        result = run_sweep(spec, jobs=1, cache_dir=None)
        self.assert_equivalent(PERF_FAMILY, make_artifact, result)

    def test_attack(self):
        from repro.sweep.attack_runner import run_attack_sweep
        spec = ATTACK_FAMILY.preset("fig5")
        result = run_attack_sweep(spec, jobs=1, cache_dir=None)
        self.assert_equivalent(ATTACK_FAMILY, make_attack_artifact,
                               result)


class TestFamilyGate:
    def test_check_against_baseline_uses_family_settings(self, tmp_path):
        from repro.sweep.artifacts import write_artifact
        from repro.sweep.system_runner import run_system_sweep
        spec = SYSTEM_FAMILY.preset("system-smoke").with_overrides(
            n_trefi=32
        )
        result = run_system_sweep(spec, jobs=1, cache_dir=None)
        artifact = SYSTEM_FAMILY.make_artifact(result, git_rev="x")
        path = tmp_path / SYSTEM_FAMILY.baseline_name("system-smoke")
        write_artifact(path, artifact)
        ok, problems = SYSTEM_FAMILY.check_against_baseline(
            artifact, path, rtol=0.0, atol=0.0
        )
        assert ok, problems
        # Another family refuses the baseline: its schema doesn't match.
        ok, problems = MC_FAMILY.check_against_baseline(artifact, path)
        assert not ok
        assert any("schema" in p for p in problems)
