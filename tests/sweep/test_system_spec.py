"""Tests of system sweep specs: keys, hashing conventions, presets."""

import dataclasses

from repro.attacks.registry import AttackSpec
from repro.mitigations.registry import PolicySpec
from repro.sweep.system_spec import (
    ATTACKER_CLIENT,
    SYSTEM_PRESETS,
    SystemSweepPoint,
    SystemSweepSpec,
    TENANT_WORKLOAD,
    system_preset,
)
from repro.system import ClientSpec, SystemRunConfig
from repro.workloads.requests import McWorkload

import pytest


def point(**overrides):
    return SystemSweepPoint(
        scenario="s", config=SystemRunConfig(**overrides)
    )


class TestPointIdentity:
    def test_key_is_readable_and_complete(self):
        p = SystemSweepPoint(
            scenario="duo",
            config=SystemRunConfig(
                clients=(
                    ClientSpec(name="a", workload=TENANT_WORKLOAD),
                    ClientSpec(name="b", workload=TENANT_WORKLOAD,
                               seed=1),
                ),
                channels=2, ath=32, banks=2, n_trefi=512,
            ),
        )
        key = p.key
        assert key.startswith("duo|a+b|moat|")
        for part in ("ath=32", "eth=16", "L1", "ch2", "qd=32", "b2",
                     "trefi=512", "seed=0"):
            assert part in key, part

    def test_hash_resolves_eth(self):
        assert (point(ath=64).config_hash()
                == point(ath=64, eth=32).config_hash())
        assert (point(ath=64).config_hash()
                != point(ath=64, eth=40).config_hash())

    def test_hash_neutralizes_attacker_workload(self):
        """An attacker client's workload is dead configuration — any
        spelling of it hashes identically."""
        atk_default = ClientSpec(
            name="atk", attack=AttackSpec.of("kernel-single")
        )
        atk_custom = dataclasses.replace(
            atk_default,
            workload=McWorkload(reads_per_trefi_per_bank=99.0),
        )
        assert (point(clients=(atk_default,)).config_hash()
                == point(clients=(atk_custom,)).config_hash())

    def test_hash_neutralizes_poisson_burst_knobs(self):
        poisson = McWorkload(process="poisson", burst_trefi=3.0)
        assert (point(clients=(ClientSpec(name="c", workload=poisson),))
                .config_hash()
                == point(clients=(ClientSpec(name="c"),)).config_hash())

    def test_hash_sees_live_axes(self):
        base = point().config_hash()
        assert point(channels=2).config_hash() != base
        assert point(seed=1).config_hash() != base
        assert point(policy=PolicySpec("null")).config_hash() != base
        assert (point(clients=(ClientSpec(name="c", priority=1),))
                .config_hash() != base)

    def test_scenario_name_is_identity(self):
        a = SystemSweepPoint(scenario="a", config=SystemRunConfig())
        b = SystemSweepPoint(scenario="b", config=SystemRunConfig())
        assert a.config_hash() != b.config_hash()


class TestSpec:
    def test_points_dedup_by_key(self):
        config = SystemRunConfig()
        spec = SystemSweepSpec(
            name="d", scenarios=(("x", config), ("x", config))
        )
        assert len(spec.points()) == 1

    def test_with_overrides_rescales_every_scenario(self):
        spec = system_preset("system-smoke")
        fast = spec.with_overrides(n_trefi=64, seed=9)
        assert all(
            c.n_trefi == 64 and c.seed == 9 for _, c in fast.scenarios
        )
        assert fast.sweep_hash() != spec.sweep_hash()
        assert spec.with_overrides() is spec

    def test_sweep_hash_order_independent(self):
        spec = system_preset("system-smoke")
        reversed_spec = dataclasses.replace(
            spec, scenarios=tuple(reversed(spec.scenarios))
        )
        assert spec.sweep_hash() == reversed_spec.sweep_hash()


class TestPresets:
    def test_registry_is_consistent(self):
        for name, spec in SYSTEM_PRESETS.items():
            assert spec.name == name
            assert spec.description
            assert spec.points(), name
            assert system_preset(name) is spec

    def test_unknown_preset(self):
        with pytest.raises(KeyError, match="unknown system preset"):
            system_preset("system-nope")

    def test_smoke_contrasts(self):
        spec = system_preset("system-smoke")
        scenarios = dict(spec.scenarios)
        assert set(scenarios) == {"solo", "duo", "duo-null"}
        assert len(scenarios["solo"].clients) == 1
        assert len(scenarios["duo"].clients) == 2
        assert scenarios["duo-null"].policy.kind == "null"

    def test_shard_preset_scales_channels(self):
        spec = system_preset("system-shard")
        assert [c.channels for _, c in spec.scenarios] == [1, 2, 4]

    def test_noisy_preset_casts_an_attacker(self):
        spec = system_preset("system-noisy")
        scenarios = dict(spec.scenarios)
        assert ATTACKER_CLIENT in scenarios["noisy"].clients
        assert ATTACKER_CLIENT not in scenarios["quiet"].clients
        assert ATTACKER_CLIENT.attack is not None
        # All scenarios share scale so the contrast is the attacker.
        assert len({(c.ath, c.banks, c.n_trefi)
                    for c in scenarios.values()}) == 1
