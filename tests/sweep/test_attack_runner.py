"""Tests for the cached parallel attack-sweep runner and artifacts."""

import json

import pytest

from repro.attacks.registry import AttackSpec
from repro.sweep.artifacts import (
    ATTACK_GATED_METRICS,
    ATTACK_SCHEMA,
    check_against_baseline,
    diff_artifacts,
    make_attack_artifact,
    write_artifact,
)
from repro.sweep.attack_runner import run_attack_sweep
from repro.sweep.attack_spec import AttackSweepSpec


@pytest.fixture
def spec():
    return AttackSweepSpec(
        name="smoke",
        attacks=(
            AttackSpec.of("postponement", threshold=64),
            AttackSpec.of("ratchet", pool_size=4),
            AttackSpec.of("kernel-single", ath=64, total_acts=2000),
        ),
    )


class TestRunner:
    def test_serial_results_in_spec_order(self, spec):
        result = run_attack_sweep(spec, jobs=1, cache_dir=None)
        assert [r.key for r in result.results] == [
            p.key for p in spec.points()
        ]
        assert result.cache_hits == 0

    def test_parallel_bit_identical_to_serial(self, spec, tmp_path):
        serial = run_attack_sweep(spec, jobs=1, cache_dir=None)
        parallel = run_attack_sweep(spec, jobs=2, cache_dir=None)
        for a, b in zip(serial.results, parallel.results):
            assert a.key == b.key
            assert a.metrics == b.metrics

    def test_cache_roundtrip(self, spec, tmp_path):
        cache = tmp_path / "cache"
        first = run_attack_sweep(spec, jobs=1, cache_dir=cache)
        second = run_attack_sweep(spec, jobs=1, cache_dir=cache)
        assert first.cache_hits == 0
        assert second.cache_hits == len(spec.points())
        for a, b in zip(first.results, second.results):
            assert a.metrics == b.metrics
        # Cached points keep their original compute cost.
        assert second.compute_time_s == pytest.approx(
            first.compute_time_s, rel=1e-6
        )

    def test_corrupt_cache_entry_recomputed(self, spec, tmp_path):
        cache = tmp_path / "cache"
        run_attack_sweep(spec, jobs=1, cache_dir=cache)
        victim = next(cache.glob("*.json"))
        victim.write_text("{not json")
        result = run_attack_sweep(spec, jobs=1, cache_dir=cache)
        assert result.cache_hits == len(spec.points()) - 1

    def test_aggregates(self, spec):
        result = run_attack_sweep(spec, jobs=1, cache_dir=None)
        agg = result.aggregates()
        assert agg["points"] == len(spec.points())
        assert agg["max_acts_on_attack_row"] >= 64


class TestArtifacts:
    def test_schema_and_points(self, spec):
        result = run_attack_sweep(spec, jobs=1, cache_dir=None)
        artifact = make_attack_artifact(result, git_rev="test")
        assert artifact["schema"] == ATTACK_SCHEMA
        assert artifact["preset"] == "smoke"
        assert artifact["sweep_hash"] == spec.sweep_hash()
        assert set(artifact["points"]) == {p.key for p in spec.points()}
        for point in artifact["points"].values():
            assert point["kind"]
            assert point["figure"]
            assert "acts_on_attack_row" in point["metrics"]

    def test_self_diff_is_clean(self, spec):
        result = run_attack_sweep(spec, jobs=1, cache_dir=None)
        artifact = make_attack_artifact(result, git_rev="test")
        assert diff_artifacts(
            artifact, artifact, gated_metrics=ATTACK_GATED_METRICS
        ) == []

    def test_metric_regression_detected(self, spec):
        result = run_attack_sweep(spec, jobs=1, cache_dir=None)
        baseline = make_attack_artifact(result, git_rev="test")
        current = json.loads(json.dumps(baseline))
        key = next(iter(current["points"]))
        current["points"][key]["metrics"]["acts_on_attack_row"] += 50
        problems = diff_artifacts(
            baseline, current, gated_metrics=ATTACK_GATED_METRICS
        )
        assert any("acts_on_attack_row" in p for p in problems)

    def test_baseline_gate_roundtrip(self, spec, tmp_path):
        result = run_attack_sweep(spec, jobs=1, cache_dir=None)
        artifact = make_attack_artifact(result, git_rev="test")
        path = tmp_path / "attack_smoke.json"
        write_artifact(path, artifact)
        ok, problems = check_against_baseline(
            artifact, path,
            schema=ATTACK_SCHEMA, gated_metrics=ATTACK_GATED_METRICS,
        )
        assert ok, problems

    def test_perf_schema_baseline_rejected(self, spec, tmp_path):
        # An attack artifact checked against a perf baseline (or vice
        # versa) must fail the gate, not silently pass.
        result = run_attack_sweep(spec, jobs=1, cache_dir=None)
        artifact = make_attack_artifact(result, git_rev="test")
        path = tmp_path / "wrong.json"
        wrong = dict(artifact, schema="repro.sweep/v1")
        write_artifact(path, wrong)
        ok, problems = check_against_baseline(
            artifact, path,
            schema=ATTACK_SCHEMA, gated_metrics=ATTACK_GATED_METRICS,
        )
        assert not ok
        assert any("schema" in p for p in problems)
