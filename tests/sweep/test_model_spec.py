"""Tests for the model-sweep spec layer (the analytic artifact family)."""

import pytest

from repro.sweep.model_spec import (
    MODEL_PRESETS,
    ModelSpec,
    ModelSweepPoint,
    ModelSweepSpec,
    model_descriptions,
    model_kinds,
    model_preset,
)


class TestModelSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown model kind"):
            ModelSpec("frequency-response")

    def test_unknown_param_rejected_at_construction(self):
        with pytest.raises(ValueError, match="no parameter"):
            ModelSpec.of("abo-config", levels=3)

    def test_params_sorted_for_stable_identity(self):
        a = ModelSpec.of("safe-trh", ath=64, level=2)
        b = ModelSpec.of("safe-trh", level=2, ath=64)
        assert a == b
        assert hash(a) == hash(b)
        assert a.display_name() == "safe-trh(ath=64,level=2)"

    def test_evaluate_runs_the_registered_function(self):
        assert ModelSpec.of("safe-trh", ath=64, level=1).evaluate() == {
            "safe_trh": 99.0
        }

    def test_replaced_merges_params(self):
        spec = ModelSpec.of("workload-stats", workload="roms", n_trefi=64)
        assert spec.replaced(n_trefi=128).param_dict() == {
            "workload": "roms",
            "n_trefi": 128,
        }

    def test_descriptions_cover_every_kind(self):
        descriptions = model_descriptions()
        assert set(descriptions) == set(model_kinds())
        for info in descriptions.values():
            assert info["description"]


class TestModelSweepSpec:
    def test_points_deduplicate_by_key(self):
        spec = ModelSweepSpec(
            name="dupes",
            models=(ModelSpec.of("timing"), ModelSpec.of("timing")),
        )
        assert len(spec.points()) == 1

    def test_hash_depends_on_params(self):
        a = ModelSweepPoint(ModelSpec.of("safe-trh", ath=64))
        b = ModelSweepPoint(ModelSpec.of("safe-trh", ath=128))
        assert a.config_hash() != b.config_hash()

    def test_with_overrides_rescales_only_workload_stats(self):
        spec = ModelSweepSpec(
            name="mixed",
            models=(
                ModelSpec.of("workload-stats", workload="roms", n_trefi=64),
                ModelSpec.of("timing"),
            ),
        )
        scaled = spec.with_overrides(n_trefi=256)
        assert scaled.models[0].param_dict()["n_trefi"] == 256
        assert scaled.models[1] == ModelSpec.of("timing")

    def test_sweep_hash_is_order_independent(self):
        models = (
            ModelSpec.of("safe-trh", ath=64),
            ModelSpec.of("safe-trh", ath=128),
        )
        forward = ModelSweepSpec(name="s", models=models)
        backward = ModelSweepSpec(name="s", models=models[::-1])
        assert forward.sweep_hash() == backward.sweep_hash()


class TestPresets:
    def test_presets_expand_with_unique_hashes(self):
        for spec in MODEL_PRESETS.values():
            points = spec.points()
            assert points, spec.name
            hashes = [p.config_hash() for p in points]
            assert len(set(hashes)) == len(hashes)

    def test_lookup_error_names_known_presets(self):
        with pytest.raises(KeyError, match="fig8"):
            model_preset("fig99")

    def test_every_analytic_artifact_has_a_preset(self):
        assert set(MODEL_PRESETS) == {
            "fig8", "fig15", "fig5-curve", "fig1-sram", "table1",
            "table2-bound", "table3", "table4", "sec65-storage", "sec71",
        }
