"""Tests for attack sweep specs, presets, and point identity."""

import pytest

from repro.attacks.base import AttackRunConfig
from repro.attacks.registry import AttackSpec
from repro.sweep.attack_spec import (
    ATTACK_PRESETS,
    AttackSweepPoint,
    AttackSweepSpec,
    attack_preset,
)


def small_spec(**overrides):
    defaults = dict(
        name="test",
        attacks=(
            AttackSpec.of("postponement", threshold=64),
            AttackSpec.of("ratchet", pool_size=4),
        ),
    )
    defaults.update(overrides)
    return AttackSweepSpec(**defaults)


class TestPoints:
    def test_cross_product_with_subchannels(self):
        spec = small_spec(subchannels=(1, 2))
        points = spec.points()
        assert len(points) == 4
        assert {p.run.subchannels for p in points} == {1, 2}

    def test_duplicate_attacks_deduplicated(self):
        spec = small_spec(
            attacks=(
                AttackSpec.of("ratchet", pool_size=4),
                AttackSpec.of("ratchet", pool_size=4),
            )
        )
        assert len(spec.points()) == 1

    def test_keys_unique_and_stable(self):
        spec = small_spec(subchannels=(1, 2))
        keys = [p.key for p in spec.points()]
        assert len(set(keys)) == len(keys)
        assert "postponement(threshold=64)" in keys
        assert "postponement(threshold=64)|sc=2" in keys

    def test_neutral_seed_stays_out_of_identity(self):
        # seed is reserved for future stochastic attacks: at the
        # neutral 0 it must not rename points or change hashes, so
        # committed baselines survive the axis starting to matter.
        neutral = small_spec(seed=0).points()[0]
        seeded = small_spec(seed=7).points()[0]
        assert "seed" not in neutral.key
        assert seeded.key.endswith("|seed=7")
        assert neutral.config_hash() != seeded.config_hash()


class TestConfigHash:
    def test_subchannel_axis_is_neutral_at_one(self):
        # A 1-sub-channel point is the same simulation the pre-channel
        # harness performed; its hash must not mention the axis.
        point = AttackSweepPoint(
            attack=AttackSpec("jailbreak"),
            run=AttackRunConfig(subchannels=1),
        )
        other = AttackSweepPoint(
            attack=AttackSpec("jailbreak"),
            run=AttackRunConfig(subchannels=2),
        )
        assert point.config_hash() != other.config_hash()
        # Deterministic across processes/time.
        assert point.config_hash() == point.config_hash()

    def test_hash_covers_attack_params(self):
        a = AttackSweepPoint(
            AttackSpec.of("ratchet", pool_size=4), AttackRunConfig()
        )
        b = AttackSweepPoint(
            AttackSpec.of("ratchet", pool_size=8), AttackRunConfig()
        )
        assert a.config_hash() != b.config_hash()

    def test_hash_covers_seed_and_geometry(self):
        base = AttackSweepPoint(AttackSpec("jailbreak"), AttackRunConfig())
        seeded = AttackSweepPoint(
            AttackSpec("jailbreak"), AttackRunConfig(seed=7)
        )
        small = AttackSweepPoint(
            AttackSpec("jailbreak"), AttackRunConfig(rows_per_bank=8192,
                                                     num_refresh_groups=1024)
        )
        assert len({base.config_hash(), seeded.config_hash(),
                    small.config_hash()}) == 3

    def test_sweep_hash_order_independent(self):
        spec = small_spec()
        reversed_spec = small_spec(attacks=tuple(reversed(spec.attacks)))
        assert spec.sweep_hash() == reversed_spec.sweep_hash()


class TestPresets:
    def test_every_security_figure_has_a_preset(self):
        assert set(ATTACK_PRESETS) == {
            "fig1", "fig5", "fig9", "fig10", "fig12", "fig13", "fig16",
            "tsa", "feinting", "postponement", "motivation", "table2",
            "ablation-queue",
        }

    def test_presets_expand(self):
        for spec in ATTACK_PRESETS.values():
            points = spec.points()
            assert points, spec.name
            hashes = [p.config_hash() for p in points]
            assert len(set(hashes)) == len(hashes)

    def test_lookup_error_names_known_presets(self):
        with pytest.raises(KeyError, match="fig5"):
            attack_preset("fig99")

    def test_with_overrides(self):
        spec = attack_preset("fig5").with_overrides(seed=3)
        assert spec.seed == 3
        assert all(p.run.seed == 3 for p in spec.points())
        assert attack_preset("fig5").with_overrides() is not None
