"""Tests for the parallel cached sweep runner."""

import json

import pytest

from repro.mitigations.registry import PolicySpec
from repro.sweep.runner import execute_point, run_sweep
from repro.sweep.spec import SweepSpec


def tiny_spec(**kwargs):
    defaults = dict(
        name="tiny",
        workloads=("tc", "roms"),
        n_trefi=256,
        model_cross_bank_service=False,
    )
    defaults.update(kwargs)
    return SweepSpec(**defaults)


class TestSerialRunner:
    def test_runs_every_point_in_order(self, tmp_path):
        spec = tiny_spec(ath=(64, 128))
        result = run_sweep(spec, jobs=1, cache_dir=tmp_path / "cache")
        assert [r.key for r in result.results] == [p.key for p in spec.points()]
        assert all(not r.cached for r in result.results)
        assert result.aggregates()["points"] == 4.0

    def test_metrics_match_direct_execution(self, tmp_path):
        spec = tiny_spec()
        point = spec.points()[1]  # roms: has alerts at this scale
        direct = execute_point(point)
        swept = run_sweep(spec, jobs=1, cache_dir=tmp_path / "c").results[1]
        assert swept.metrics == direct.metrics
        assert direct.metrics["alerts"] > 0

    def test_no_cache_dir_disables_caching(self):
        spec = tiny_spec(workloads=("tc",))
        first = run_sweep(spec, jobs=1, cache_dir=None)
        second = run_sweep(spec, jobs=1, cache_dir=None)
        assert not first.results[0].cached and not second.results[0].cached


class TestCache:
    def test_rerun_hits_cache_with_identical_metrics(self, tmp_path):
        spec = tiny_spec()
        cache = tmp_path / "cache"
        cold = run_sweep(spec, jobs=1, cache_dir=cache)
        warm = run_sweep(spec, jobs=1, cache_dir=cache)
        assert cold.cache_hits == 0
        assert warm.cache_hits == len(spec.points())
        assert [r.metrics for r in warm.results] == [r.metrics for r in cold.results]
        # Cached points keep their original compute time, so the
        # perf-trajectory number survives warm reruns.
        assert warm.compute_time_s == pytest.approx(cold.compute_time_s)
        assert warm.compute_time_s > warm.wall_clock_s

    def test_config_change_misses_cache(self, tmp_path):
        cache = tmp_path / "cache"
        run_sweep(tiny_spec(), jobs=1, cache_dir=cache)
        changed = run_sweep(tiny_spec(seed=1), jobs=1, cache_dir=cache)
        assert changed.cache_hits == 0

    def test_partial_cache_resumes(self, tmp_path):
        cache = tmp_path / "cache"
        run_sweep(tiny_spec(workloads=("tc",)), jobs=1, cache_dir=cache)
        combined = run_sweep(tiny_spec(workloads=("tc", "roms")), jobs=1,
                             cache_dir=cache)
        assert combined.cache_hits == 1
        flags = {r.workload: r.cached for r in combined.results}
        assert flags == {"tc": True, "roms": False}

    def test_corrupt_cache_entry_recomputed(self, tmp_path):
        cache = tmp_path / "cache"
        spec = tiny_spec(workloads=("tc",))
        run_sweep(spec, jobs=1, cache_dir=cache)
        entry = cache / f"{spec.points()[0].config_hash()}.json"
        entry.write_text("{not json")
        rerun = run_sweep(spec, jobs=1, cache_dir=cache)
        assert rerun.cache_hits == 0
        # The recomputed result was re-persisted correctly.
        assert json.loads(entry.read_text())["key"] == spec.points()[0].key

    def test_hash_mismatch_in_cache_file_recomputed(self, tmp_path):
        cache = tmp_path / "cache"
        spec = tiny_spec(workloads=("tc",))
        run_sweep(spec, jobs=1, cache_dir=cache)
        entry = cache / f"{spec.points()[0].config_hash()}.json"
        data = json.loads(entry.read_text())
        data["config_hash"] = "0" * 16
        entry.write_text(json.dumps(data))
        rerun = run_sweep(spec, jobs=1, cache_dir=cache)
        assert rerun.cache_hits == 0


class TestParallelRunner:
    def test_parallel_equals_serial(self, tmp_path):
        spec = tiny_spec(ath=(64, 128))
        serial = run_sweep(spec, jobs=1, cache_dir=None)
        parallel = run_sweep(spec, jobs=2, cache_dir=tmp_path / "c")
        assert [r.key for r in parallel.results] == [r.key for r in serial.results]
        assert [r.metrics for r in parallel.results] == [
            r.metrics for r in serial.results
        ]

    def test_parallel_stochastic_policy_is_deterministic(self, tmp_path):
        spec = tiny_spec(policies=(PolicySpec.of("para", probability=0.01),))
        serial = run_sweep(spec, jobs=1, cache_dir=None)
        parallel = run_sweep(spec, jobs=2, cache_dir=None)
        assert [r.metrics for r in parallel.results] == [
            r.metrics for r in serial.results
        ]

    def test_progress_callback_sees_every_point(self, tmp_path):
        lines = []
        spec = tiny_spec(workloads=("tc",), ath=(64, 128))
        run_sweep(spec, jobs=1, cache_dir=None, progress=lines.append)
        # One line per point, plus the closing cache-statistics line.
        assert len(lines) == 3
        assert lines[0].startswith("[1/2] ")
        assert lines[1].startswith("[2/2] ")
        assert lines[-1].startswith("cache: 0 hits, 2 misses, ")
        assert "2 points in" in lines[-1]


class TestPolicyGenericPoints:
    @pytest.mark.parametrize("kind", ["panopticon", "para", "trr", "graphene",
                                      "victim-counter", "null"])
    def test_every_policy_kind_executes(self, kind):
        spec = tiny_spec(workloads=("tc",), policies=(PolicySpec(kind),),
                         n_trefi=64)
        result = run_sweep(spec, jobs=1, cache_dir=None).results[0]
        assert result.policy == kind
        assert result.metrics["total_acts"] > 0
        assert 0.0 <= result.metrics["slowdown"] <= 1.0

    def test_null_policy_never_mitigates(self):
        spec = tiny_spec(workloads=("roms",), policies=(PolicySpec("null"),))
        result = run_sweep(spec, jobs=1, cache_dir=None).results[0]
        assert result.metrics["proactive_mitigations"] == 0
        assert result.metrics["reactive_mitigations"] == 0
        assert result.metrics["alerts"] == 0
