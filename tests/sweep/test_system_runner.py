"""Tests of the system sweep runner: parallel identity, caching, and
the artifact/baseline gate."""

from repro.sweep.artifacts import (
    SYSTEM_SCHEMA,
    check_against_baseline,
    make_system_artifact,
    write_artifact,
)
from repro.sweep.system_runner import (
    SystemPointResult,
    execute_system_point,
    run_system_sweep,
)
from repro.sweep.system_spec import (
    DUO_CLIENTS,
    SystemSweepSpec,
    system_preset,
)
from repro.mitigations.registry import PolicySpec
from repro.system import SystemRunConfig

#: Small but contended: the duo on one and two channels plus an
#: undefended control.
TINY = SystemSweepSpec(
    name="tiny",
    description="runner test grid",
    scenarios=(
        ("duo", SystemRunConfig(clients=DUO_CLIENTS, banks=2,
                                n_trefi=96)),
        ("duo-ch2", SystemRunConfig(clients=DUO_CLIENTS, channels=2,
                                    banks=2, n_trefi=96)),
        ("duo-null", SystemRunConfig(clients=DUO_CLIENTS,
                                     policy=PolicySpec("null"),
                                     banks=2, n_trefi=96)),
    ),
)


def metrics_by_key(result):
    return {r.key: r.metrics for r in result.results}


class TestRunner:
    def test_serial_results_in_spec_order(self):
        result = run_system_sweep(TINY, jobs=1, cache_dir=None)
        assert [r.key for r in result.results] == [
            p.key for p in TINY.points()
        ]
        assert result.aggregates()["points"] == len(TINY.points())

    def test_parallel_matches_serial_bit_for_bit(self):
        serial = run_system_sweep(TINY, jobs=1, cache_dir=None)
        parallel = run_system_sweep(TINY, jobs=3, cache_dir=None)
        assert metrics_by_key(serial) == metrics_by_key(parallel)

    def test_cache_round_trip(self, tmp_path):
        cache = tmp_path / "cache"
        first = run_system_sweep(TINY, jobs=1, cache_dir=cache)
        second = run_system_sweep(TINY, jobs=1, cache_dir=cache)
        assert first.cache_hits == 0
        assert second.cache_hits == len(TINY.points())
        assert metrics_by_key(first) == metrics_by_key(second)

    def test_point_result_json_round_trip(self):
        result = execute_system_point(TINY.points()[0])
        revived = SystemPointResult.from_json(
            result.to_json(), cached=True
        )
        assert revived.key == result.key
        assert revived.metrics == result.metrics
        assert revived.clients == ["tenant0", "tenant1"]
        assert revived.cached

    def test_per_client_metrics_present(self):
        result = run_system_sweep(TINY, jobs=1, cache_dir=None)
        for point in result.results:
            for client in point.clients:
                assert f"{client}:read_p99_ns" in point.metrics
                assert f"{client}:achieved_gbps" in point.metrics

    def test_mitigation_contrast(self):
        by_key = metrics_by_key(
            run_system_sweep(TINY, jobs=1, cache_dir=None)
        )
        moat = [m for k, m in by_key.items() if k.startswith("duo|")]
        null = [m for k, m in by_key.items() if "|null|" in k]
        assert all(m["alerts"] > 0 for m in moat)
        assert all(m["alerts"] == 0 for m in null)


class TestArtifact:
    def test_schema_and_layout(self):
        result = run_system_sweep(TINY, jobs=1, cache_dir=None)
        artifact = make_system_artifact(result, git_rev="test")
        assert artifact["schema"] == SYSTEM_SCHEMA
        assert artifact["preset"] == "tiny"
        assert set(artifact["points"]) == {p.key for p in TINY.points()}
        point = next(iter(artifact["points"].values()))
        assert {"config_hash", "scenario", "clients", "policy",
                "channels", "n_trefi", "seed", "metrics"} <= set(point)

    def test_baseline_gate_round_trip(self, tmp_path):
        result = run_system_sweep(TINY, jobs=1, cache_dir=None)
        artifact = make_system_artifact(result, git_rev="test")
        baseline = tmp_path / "system_tiny.json"
        write_artifact(baseline, artifact)
        ok, problems = check_against_baseline(
            artifact, baseline, rtol=0.0, atol=0.0,
            schema=SYSTEM_SCHEMA, gated_metrics=None,
        )
        assert ok, problems

    def test_baseline_gate_catches_per_client_regression(self, tmp_path):
        """gated_metrics=None gates every metric — including the
        per-client prefixed tails."""
        result = run_system_sweep(TINY, jobs=1, cache_dir=None)
        artifact = make_system_artifact(result, git_rev="test")
        baseline_data = make_system_artifact(result, git_rev="test")
        key = next(iter(baseline_data["points"]))
        baseline_data["points"][key]["metrics"]["tenant1:read_p99_ns"] += 500.0
        baseline = tmp_path / "system_tiny.json"
        write_artifact(baseline, baseline_data)
        ok, problems = check_against_baseline(
            artifact, baseline,
            schema=SYSTEM_SCHEMA, gated_metrics=None,
        )
        assert not ok
        assert any("tenant1:read_p99_ns" in p for p in problems)


class TestNoisyPreset:
    def test_victim_p99_contrast_is_in_the_sweep(self):
        """The acceptance pin at sweep level: the noisy scenario's
        victims show measurably degraded p99 vs the quiet scenario."""
        spec = system_preset("system-noisy").with_overrides(n_trefi=256)
        by_scenario = {
            r.scenario: r.metrics
            for r in run_system_sweep(spec, jobs=2, cache_dir=None).results
        }
        for victim in ("victim0", "victim1"):
            quiet = by_scenario["quiet"][f"{victim}:read_p99_ns"]
            noisy = by_scenario["noisy"][f"{victim}:read_p99_ns"]
            assert noisy > 2.0 * quiet, (victim, quiet, noisy)
