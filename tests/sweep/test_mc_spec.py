"""Tests of the mc sweep spec: expansion, identity, presets."""

import dataclasses

import pytest

from repro.mitigations.registry import PolicySpec
from repro.sim.mc import McRunConfig
from repro.sweep.mc_spec import (
    MC_PRESETS,
    McSweepPoint,
    McSweepSpec,
    mc_preset,
)
from repro.workloads.requests import McWorkload


class TestPointIdentity:
    def test_key_is_stable_and_readable(self):
        point = McSweepPoint(config=McRunConfig())
        assert point.key == (
            "poisson-r24|moat|ath=64|eth=32|L1|tpm=5|frfcfs|closed|qd=32"
            "|b4|trefi=1024|seed=0"
        )

    def test_infinite_depth_key(self):
        point = McSweepPoint(config=McRunConfig(queue_depth=None))
        assert "|qd=inf|" in point.key

    def test_subchannels_only_in_key_when_not_one(self):
        assert "|sc=" not in McSweepPoint(config=McRunConfig()).key
        assert "|sc=2|" in McSweepPoint(
            config=McRunConfig(subchannels=2)
        ).key

    def test_resolved_spellings_share_identity(self):
        """eth=None and eth=ath//2 are the same simulation."""
        implicit = McSweepPoint(config=McRunConfig(ath=64, eth=None))
        explicit = McSweepPoint(config=McRunConfig(ath=64, eth=32))
        assert implicit.config_hash() == explicit.config_hash()

    def test_hash_covers_controller_knobs(self):
        base = McSweepPoint(config=McRunConfig())
        for change in (
            {"scheduler": "fcfs"},
            {"row_policy": "open"},
            {"queue_depth": 8},
            {"queue_depth": None},
            {"abo_level": 2},
            {"banks": 2},
            {"seed": 1},
            {"workload": McWorkload(reads_per_trefi_per_bank=25.0)},
            {"policy": PolicySpec("null")},
        ):
            changed = McSweepPoint(
                config=dataclasses.replace(base.config, **change)
            )
            assert changed.config_hash() != base.config_hash(), change

    def test_hash_is_deterministic(self):
        a = McSweepPoint(config=McRunConfig()).config_hash()
        b = McSweepPoint(config=McRunConfig()).config_hash()
        assert a == b and len(a) == 16

    def test_dead_burst_knobs_hash_out_for_poisson(self):
        """A Poisson stream never reads the burst knobs, so spellings
        differing only there are one simulation — one identity."""
        a = McSweepPoint(config=McRunConfig(
            workload=McWorkload(process="poisson", burst_trefi=2.0)))
        b = McSweepPoint(config=McRunConfig(
            workload=McWorkload(process="poisson", burst_trefi=16.0)))
        assert a.config_hash() == b.config_hash()
        assert a.key == b.key

    def test_bursty_burst_knobs_are_live(self):
        a = McSweepPoint(config=McRunConfig(
            workload=McWorkload(process="bursty", burst_trefi=2.0)))
        b = McSweepPoint(config=McRunConfig(
            workload=McWorkload(process="bursty", burst_trefi=16.0)))
        assert a.config_hash() != b.config_hash()
        assert a.key != b.key

    def test_key_separates_behavior_distinct_workloads(self):
        """Key dedup must never fold two different request streams:
        every stream-shaping parameter appears in the display name
        when off its default (hot_rows bounds the cold draw range
        even at hot_fraction=0)."""
        variants = [
            McWorkload(),
            McWorkload(hot_rows=2),
            McWorkload(hot_fraction=0.5),
            McWorkload(hot_fraction=0.5, hot_rows=2),
            McWorkload(write_fraction=0.3),
            McWorkload(process="bursty"),
            McWorkload(process="bursty", burst_trefi=2.0),
            McWorkload(process="bursty", idle_trefi=32.0),
        ]
        names = [w.display_name() for w in variants]
        assert len(set(names)) == len(names), names


class TestSpecExpansion:
    def test_cross_product(self):
        spec = McSweepSpec(
            name="t",
            policies=(PolicySpec("moat"), PolicySpec("null")),
            abo_level=(1, 4),
            scheduler=("fcfs", "frfcfs"),
        )
        assert len(spec.points()) == 8

    def test_deduplicates_equivalent_cells(self):
        spec = McSweepSpec(
            name="t",
            workloads=(McWorkload(), McWorkload()),  # identical cell
        )
        assert len(spec.points()) == 1

    def test_with_overrides(self):
        spec = McSweepSpec(name="t")
        scaled = spec.with_overrides(n_trefi=64, seed=7)
        assert scaled.n_trefi == 64 and scaled.seed == 7
        assert spec.with_overrides() is spec

    def test_sweep_hash_changes_with_scale(self):
        spec = McSweepSpec(name="t")
        assert spec.sweep_hash() != spec.with_overrides(n_trefi=64).sweep_hash()


class TestPresets:
    def test_lookup(self):
        assert mc_preset("mc-smoke").name == "mc-smoke"
        with pytest.raises(KeyError, match="unknown mc preset"):
            mc_preset("nope")

    def test_every_preset_expands(self):
        for name, spec in MC_PRESETS.items():
            points = spec.points()
            assert points, name
            assert len({p.key for p in points}) == len(points), name
            assert len({p.config_hash() for p in points}) == len(points), name

    def test_abo_preset_spans_levels(self):
        levels = {p.config.abo_level for p in mc_preset("mc-abo").points()}
        assert levels == {1, 2, 4}

    def test_policy_preset_spans_registry(self):
        kinds = {p.config.policy.kind for p in mc_preset("mc-policy").points()}
        assert {"moat", "null", "panopticon", "para", "trr",
                "graphene", "victim-counter"} <= kinds

    def test_sched_preset_spans_matrix(self):
        combos = {
            (p.config.scheduler, p.config.row_policy)
            for p in mc_preset("mc-sched").points()
        }
        assert combos == {("fcfs", "closed"), ("fcfs", "open"),
                          ("frfcfs", "closed"), ("frfcfs", "open")}
