"""Tests for sweep artifact emission and baseline diffing."""

import json

import pytest

from repro.sweep.artifacts import (
    SCHEMA,
    check_against_baseline,
    default_baseline_path,
    diff_artifacts,
    load_artifact,
    make_artifact,
    write_artifact,
)
from repro.sweep.runner import run_sweep
from repro.sweep.spec import SweepSpec


@pytest.fixture(scope="module")
def sweep_result():
    spec = SweepSpec(
        name="tiny",
        workloads=("tc", "roms"),
        n_trefi=256,
        model_cross_bank_service=False,
    )
    return run_sweep(spec, jobs=1, cache_dir=None)


class TestArtifactSchema:
    def test_make_artifact_fields(self, sweep_result):
        art = make_artifact(sweep_result, git_rev="abc1234")
        assert art["schema"] == SCHEMA
        assert art["preset"] == "tiny"
        assert art["git_rev"] == "abc1234"
        assert art["sweep_hash"] == sweep_result.spec.sweep_hash()
        assert len(art["points"]) == 2
        for point in art["points"].values():
            assert set(point) >= {"config_hash", "metrics", "wall_clock_s"}
        assert "avg_slowdown" in art["aggregates"]

    def test_roundtrip(self, sweep_result, tmp_path):
        art = make_artifact(sweep_result, git_rev="abc1234")
        path = tmp_path / "BENCH_sweep.json"
        write_artifact(path, art)
        assert load_artifact(path) == art

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "something/else"}))
        with pytest.raises(ValueError, match="unsupported artifact schema"):
            load_artifact(path)

    def test_default_baseline_path(self):
        path = default_baseline_path("fig11")
        assert path.as_posix().endswith("benchmarks/baselines/fig11.json")


class TestDiff:
    def test_identical_artifacts_pass(self, sweep_result):
        art = make_artifact(sweep_result, git_rev="x")
        assert diff_artifacts(art, art) == []

    def test_metric_regression_detected(self, sweep_result):
        base = make_artifact(sweep_result, git_rev="x")
        cur = json.loads(json.dumps(base))
        key = next(iter(cur["points"]))
        cur["points"][key]["metrics"]["slowdown"] += 0.5
        problems = diff_artifacts(base, cur)
        assert len(problems) == 1
        assert "metric regression" in problems[0]
        assert "slowdown" in problems[0]

    def test_within_tolerance_passes(self, sweep_result):
        base = make_artifact(sweep_result, git_rev="x")
        cur = json.loads(json.dumps(base))
        for point in cur["points"].values():
            point["metrics"]["slowdown"] *= 1.01  # inside default 5% rtol
        assert diff_artifacts(base, cur) == []

    def test_missing_point_detected(self, sweep_result):
        base = make_artifact(sweep_result, git_rev="x")
        cur = json.loads(json.dumps(base))
        key = next(iter(base["points"]))
        del base["points"][key]
        problems = diff_artifacts(base, cur)
        assert any("missing from baseline" in p for p in problems)

    def test_shrunk_coverage_detected(self, sweep_result):
        """A run covering fewer points than the baseline must fail."""
        base = make_artifact(sweep_result, git_rev="x")
        cur = json.loads(json.dumps(base))
        key = next(iter(cur["points"]))
        del cur["points"][key]
        problems = diff_artifacts(base, cur)
        assert len(problems) == 1
        assert "missing from run" in problems[0]

    def test_config_drift_detected(self, sweep_result):
        base = make_artifact(sweep_result, git_rev="x")
        cur = json.loads(json.dumps(base))
        key = next(iter(cur["points"]))
        cur["points"][key]["config_hash"] = "f" * 16
        problems = diff_artifacts(base, cur)
        assert any("config drift" in p for p in problems)

    def test_nan_metric_fails_not_passes(self, sweep_result):
        """NaN compares False against any tolerance; the gate must
        fail explicitly rather than sail through."""
        base = make_artifact(sweep_result, git_rev="x")
        cur = json.loads(json.dumps(base))
        key = next(iter(cur["points"]))
        cur["points"][key]["metrics"]["slowdown"] = float("nan")
        problems = diff_artifacts(base, cur)
        assert any("missing or NaN" in p for p in problems)

    def test_absent_metric_fails_not_passes(self, sweep_result):
        base = make_artifact(sweep_result, git_rev="x")
        cur = json.loads(json.dumps(base))
        key = next(iter(cur["points"]))
        del cur["points"][key]["metrics"]["slowdown"]
        problems = diff_artifacts(base, cur)
        assert any("missing or NaN" in p for p in problems)
        assert "slowdown" in problems[0]

    def test_non_numeric_metric_fails_not_crashes(self, sweep_result):
        base = make_artifact(sweep_result, git_rev="x")
        cur = json.loads(json.dumps(base))
        key = next(iter(base["points"]))
        base["points"][key]["metrics"]["slowdown"] = "0.5%"
        problems = diff_artifacts(base, cur)
        assert any("unparseable metric" in p for p in problems)

    def test_wall_clock_never_gated(self, sweep_result):
        base = make_artifact(sweep_result, git_rev="x")
        cur = json.loads(json.dumps(base))
        for point in cur["points"].values():
            point["wall_clock_s"] = 9999.0
        assert diff_artifacts(base, cur) == []


class TestCheckAgainstBaseline:
    def test_passes_against_own_baseline(self, sweep_result, tmp_path):
        path = tmp_path / "baseline.json"
        art = make_artifact(sweep_result, git_rev="x")
        write_artifact(path, art)
        ok, problems = check_against_baseline(art, path)
        assert ok and problems == []

    def test_fails_when_baseline_missing(self, sweep_result, tmp_path):
        art = make_artifact(sweep_result, git_rev="x")
        ok, problems = check_against_baseline(art, tmp_path / "nope.json")
        assert not ok
        assert any("baseline not found" in p for p in problems)

    def test_fails_on_tampered_baseline(self, sweep_result, tmp_path):
        path = tmp_path / "baseline.json"
        art = make_artifact(sweep_result, git_rev="x")
        tampered = json.loads(json.dumps(art))
        key = next(iter(tampered["points"]))
        tampered["points"][key]["metrics"]["alerts"] += 100
        write_artifact(path, tampered)
        ok, problems = check_against_baseline(art, path)
        assert not ok
        assert any("metric regression" in p for p in problems)
