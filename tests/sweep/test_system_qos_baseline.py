"""The committed ``system-qos`` baseline must tell the QoS story.

These tests gate the *artifact*, not the simulator: the checked-in
baseline (what CI pins bit-exactly) has to show an ALERT-storm
attacker degrading victim tails under unprotected FR-FCFS, and every
registered QoS policy pulling that degradation down. If a scheduler
change improves or worsens isolation, the baseline regeneration must
keep this ordering or the change is wrong.
"""

import json
from pathlib import Path

import pytest

from repro.report.paper_values import QOS_UNPROTECTED_DEGRADATION_MIN

BASELINE = (
    Path(__file__).resolve().parents[2]
    / "benchmarks" / "baselines" / "system_system-qos.json"
)

#: scenario -> the policy it runs (display spelling, pinned).
QOS_SCENARIOS = {
    "noisy-priority": "priority",
    "noisy-bwcap": "bw-cap(gbps=8,gbps2=0.1)",
    "noisy-slo": "slo",
}


@pytest.fixture(scope="module")
def points():
    data = json.loads(BASELINE.read_text())
    by_scenario = {p["scenario"]: p for p in data["points"].values()}
    assert set(by_scenario) == {"quiet", "noisy-frfcfs", *QOS_SCENARIOS}
    return by_scenario


def worst_victim_p99(point):
    metrics = point["metrics"]
    return max(
        metrics["victim0:read_p99_ns"], metrics["victim1:read_p99_ns"]
    )


class TestQosBaseline:
    def test_scenarios_record_their_scheduler(self, points):
        assert points["quiet"]["scheduler"] == "frfcfs"
        assert points["noisy-frfcfs"]["scheduler"] == "frfcfs"
        for scenario, scheduler in QOS_SCENARIOS.items():
            assert points[scenario]["scheduler"] == scheduler

    def test_unprotected_attack_degrades_victim_tails(self, points):
        quiet = worst_victim_p99(points["quiet"])
        noisy = worst_victim_p99(points["noisy-frfcfs"])
        assert noisy / quiet > QOS_UNPROTECTED_DEGRADATION_MIN

    @pytest.mark.parametrize("scenario", sorted(QOS_SCENARIOS))
    def test_every_qos_policy_beats_unprotected_frfcfs(
        self, points, scenario
    ):
        unprotected = worst_victim_p99(points["noisy-frfcfs"])
        assert worst_victim_p99(points[scenario]) < unprotected

    def test_admission_policies_restore_quiet_tails(self, points):
        """bw-cap and slo gate the attacker at admission, so victims
        land within 2x of the attack-free baseline — the strongest
        isolation claim the report's qos figure narrates."""
        quiet = worst_victim_p99(points["quiet"])
        for scenario in ("noisy-bwcap", "noisy-slo"):
            assert worst_victim_p99(points[scenario]) < 2.0 * quiet

    def test_slo_misses_single_out_the_attacker(self, points):
        metrics = points["noisy-slo"]["metrics"]
        assert metrics["attacker:slo_misses"] > 0
        assert metrics["victim0:slo_misses"] == 0
        assert metrics["victim1:slo_misses"] == 0
