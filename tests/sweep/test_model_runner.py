"""Tests for the cached model-sweep runner."""

from repro.sweep.artifacts import MODEL_SCHEMA, make_model_artifact
from repro.sweep.model_runner import (
    ModelPointResult,
    execute_model_point,
    run_model_sweep,
)
from repro.sweep.model_spec import ModelSpec, ModelSweepSpec

SPEC = ModelSweepSpec(
    name="unit",
    description="runner unit spec",
    models=(
        ModelSpec.of("safe-trh", ath=64, level=1),
        ModelSpec.of("abo-config", level=2),
        ModelSpec.of("feinting-bound", trefi_per_mitigation=2, periods=16),
    ),
)


class TestRunner:
    def test_runs_every_point_in_order(self, tmp_path):
        result = run_model_sweep(SPEC, cache_dir=tmp_path)
        assert [r.key for r in result.results] == [
            p.key for p in SPEC.points()
        ]
        assert result.cache_hits == 0

    def test_metrics_match_direct_evaluation(self, tmp_path):
        result = run_model_sweep(SPEC, cache_dir=tmp_path)
        for point, got in zip(SPEC.points(), result.results):
            want = execute_model_point(point)
            assert got.metrics == want.metrics
            assert got.params == point.model.param_dict()

    def test_rerun_hits_cache_with_identical_metrics(self, tmp_path):
        first = run_model_sweep(SPEC, cache_dir=tmp_path)
        second = run_model_sweep(SPEC, cache_dir=tmp_path)
        assert second.cache_hits == len(SPEC.points())
        assert [r.metrics for r in first.results] == [
            r.metrics for r in second.results
        ]

    def test_corrupt_cache_entry_recomputed(self, tmp_path):
        run_model_sweep(SPEC, cache_dir=tmp_path)
        victim = next(tmp_path.glob("*.json"))
        victim.write_text("{not json")
        result = run_model_sweep(SPEC, cache_dir=tmp_path)
        assert result.cache_hits == len(SPEC.points()) - 1

    def test_from_json_round_trip(self):
        point = SPEC.points()[0]
        result = execute_model_point(point)
        revived = ModelPointResult.from_json(result.to_json(), cached=True)
        assert revived.metrics == result.metrics
        assert revived.cached


class TestArtifact:
    def test_schema_and_points(self, tmp_path):
        result = run_model_sweep(SPEC, cache_dir=None)
        artifact = make_model_artifact(result, git_rev="test")
        assert artifact["schema"] == MODEL_SCHEMA
        assert artifact["preset"] == "unit"
        assert set(artifact["points"]) == {p.key for p in SPEC.points()}
        point = artifact["points"]["abo-config(level=2)"]
        assert point["kind"] == "abo-config"
        assert point["params"] == {"level": 2}
        assert point["metrics"]["min_acts_between_alerts"] == 5.0
