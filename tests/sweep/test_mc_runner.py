"""Tests of the mc sweep runner: parallel identity, caching, artifacts."""

from repro.mitigations.registry import PolicySpec
from repro.sweep.artifacts import (
    MC_GATED_METRICS,
    MC_SCHEMA,
    check_against_baseline,
    make_mc_artifact,
    write_artifact,
)
from repro.sweep.mc_runner import (
    McPointResult,
    execute_mc_point,
    run_mc_sweep,
)
from repro.sweep.mc_spec import McSweepSpec
from repro.workloads.requests import McWorkload

#: Small but non-trivial grid: hot traffic so MOAT actually alerts.
TINY = McSweepSpec(
    name="tiny",
    workloads=(
        McWorkload(reads_per_trefi_per_bank=24.0, hot_fraction=0.5,
                   hot_rows=2),
    ),
    policies=(PolicySpec("moat"), PolicySpec("null")),
    ath=(32,),
    abo_level=(1, 2),
    banks=2,
    n_trefi=96,
)


def metrics_by_key(result):
    return {r.key: r.metrics for r in result.results}


class TestRunner:
    def test_serial_results_in_spec_order(self):
        result = run_mc_sweep(TINY, jobs=1, cache_dir=None)
        assert [r.key for r in result.results] == [
            p.key for p in TINY.points()
        ]
        assert all(not r.cached for r in result.results)
        assert result.aggregates()["points"] == len(TINY.points())

    def test_parallel_matches_serial_bit_for_bit(self):
        serial = run_mc_sweep(TINY, jobs=1, cache_dir=None)
        parallel = run_mc_sweep(TINY, jobs=2, cache_dir=None)
        assert metrics_by_key(serial) == metrics_by_key(parallel)

    def test_cache_round_trip(self, tmp_path):
        cache = tmp_path / "cache"
        first = run_mc_sweep(TINY, jobs=1, cache_dir=cache)
        second = run_mc_sweep(TINY, jobs=1, cache_dir=cache)
        assert first.cache_hits == 0
        assert second.cache_hits == len(TINY.points())
        assert metrics_by_key(first) == metrics_by_key(second)

    def test_point_result_json_round_trip(self):
        point = TINY.points()[0]
        result = execute_mc_point(point)
        revived = McPointResult.from_json(result.to_json(), cached=True)
        assert revived.key == result.key
        assert revived.metrics == result.metrics
        assert revived.queue_depth == result.queue_depth
        assert revived.cached

    def test_moat_point_alerts_null_does_not(self):
        result = run_mc_sweep(TINY, jobs=1, cache_dir=None)
        by_key = metrics_by_key(result)
        moat = [m for k, m in by_key.items() if "|moat|" in k]
        null = [m for k, m in by_key.items() if "|null|" in k]
        assert all(m["alerts"] > 0 for m in moat)
        assert all(m["alerts"] == 0 for m in null)


class TestArtifact:
    def test_schema_and_layout(self):
        result = run_mc_sweep(TINY, jobs=1, cache_dir=None)
        artifact = make_mc_artifact(result, git_rev="test")
        assert artifact["schema"] == MC_SCHEMA
        assert artifact["preset"] == "tiny"
        assert artifact["n_trefi"] == TINY.n_trefi
        assert set(artifact["points"]) == {p.key for p in TINY.points()}
        point = next(iter(artifact["points"].values()))
        assert {"config_hash", "workload", "policy", "scheduler",
                "row_policy", "queue_depth", "metrics"} <= set(point)
        for metric in MC_GATED_METRICS:
            assert metric in point["metrics"], metric

    def test_baseline_gate_round_trip(self, tmp_path):
        result = run_mc_sweep(TINY, jobs=1, cache_dir=None)
        artifact = make_mc_artifact(result, git_rev="test")
        baseline = tmp_path / "mc_tiny.json"
        write_artifact(baseline, artifact)
        ok, problems = check_against_baseline(
            artifact, baseline, rtol=0.0, atol=0.0,
            schema=MC_SCHEMA, gated_metrics=MC_GATED_METRICS,
        )
        assert ok, problems

    def test_baseline_gate_catches_regression(self, tmp_path):
        result = run_mc_sweep(TINY, jobs=1, cache_dir=None)
        artifact = make_mc_artifact(result, git_rev="test")
        baseline_data = make_mc_artifact(result, git_rev="test")
        key = next(iter(baseline_data["points"]))
        baseline_data["points"][key]["metrics"]["read_p99_ns"] *= 2.0
        baseline = tmp_path / "mc_tiny.json"
        write_artifact(baseline, baseline_data)
        ok, problems = check_against_baseline(
            artifact, baseline,
            schema=MC_SCHEMA, gated_metrics=MC_GATED_METRICS,
        )
        assert not ok
        assert any("read_p99_ns" in p for p in problems)
