"""Tests for sweep specifications, presets, and hashing."""

import dataclasses

import pytest

from repro.mitigations.registry import PolicySpec
from repro.sweep.spec import (
    ALL_WORKLOADS,
    PRESETS,
    SWEEP_WORKLOADS,
    SweepSpec,
    preset,
)


class TestPresets:
    def test_every_paper_grid_has_a_preset(self):
        assert set(PRESETS) == {
            "fig11",
            "fig17",
            "table5",
            "table6",
            "table7",
            "ablation",
            "channel",
            "sec65",
        }

    def test_fig11_grid_shape(self):
        spec = preset("fig11")
        points = spec.points()
        assert len(points) == len(ALL_WORKLOADS) * 2  # ATH 64 and 128
        assert {p.config.ath for p in points} == {64, 128}
        assert all(p.config.policy.kind == "moat" for p in points)

    def test_table5_sweeps_eth(self):
        spec = preset("table5")
        assert sorted(spec.eth) == [0, 16, 32, 48]
        assert spec.workloads == SWEEP_WORKLOADS

    def test_table6_includes_alert_only(self):
        assert 0 in preset("table6").trefi_per_mitigation

    def test_table7_is_ath_by_level(self):
        points = preset("table7").points()
        cells = {(p.config.ath, p.config.abo_level) for p in points}
        assert cells == {(a, l) for a in (32, 64, 128) for l in (1, 2, 4)}

    def test_ablation_covers_every_policy_kind(self):
        kinds = {p.kind for p in preset("ablation").policies}
        assert kinds == {
            "moat",
            "panopticon",
            "para",
            "trr",
            "graphene",
            "victim-counter",
            "null",
        }

    def test_unknown_preset_raises(self):
        with pytest.raises(KeyError, match="unknown sweep preset"):
            preset("fig99")


class TestSweepSpec:
    def test_unknown_workload_rejected(self):
        with pytest.raises(KeyError):
            SweepSpec(name="bad", workloads=("not-a-workload",))

    def test_points_order_deterministic(self):
        spec = SweepSpec(name="t", workloads=("tc", "roms"), ath=(64, 128))
        keys = [p.key for p in spec.points()]
        assert keys == [p.key for p in spec.points()]
        assert len(set(keys)) == len(keys) == 4

    def test_with_overrides(self):
        spec = preset("fig11").with_overrides(n_trefi=512, workloads=("tc",))
        assert spec.n_trefi == 512
        assert spec.workloads == ("tc",)
        assert len(spec.points()) == 2
        # No-op overrides return an equal spec.
        assert preset("fig11").with_overrides() == preset("fig11")


class TestHashing:
    def test_hash_stable_for_equal_configs(self):
        a = SweepSpec(name="t", workloads=("tc",))
        b = SweepSpec(name="t", workloads=("tc",))
        assert a.points()[0].config_hash() == b.points()[0].config_hash()
        assert a.sweep_hash() == b.sweep_hash()

    def test_hash_changes_with_any_axis(self):
        base = SweepSpec(name="t", workloads=("tc",))
        variants = [
            SweepSpec(name="t", workloads=("roms",)),
            SweepSpec(name="t", workloads=("tc",), ath=(128,)),
            SweepSpec(name="t", workloads=("tc",), eth=(16,)),
            SweepSpec(name="t", workloads=("tc",), abo_level=(2,)),
            SweepSpec(name="t", workloads=("tc",), n_trefi=4096),
            SweepSpec(name="t", workloads=("tc",), seed=7),
            SweepSpec(name="t", workloads=("tc",),
                      policies=(PolicySpec("panopticon"),)),
            SweepSpec(name="t", workloads=("tc",),
                      trefi_per_mitigation=(3,)),
        ]
        base_hash = base.points()[0].config_hash()
        for variant in variants:
            assert variant.points()[0].config_hash() != base_hash, variant

    def test_policy_params_affect_hash(self):
        a = SweepSpec(name="t", workloads=("tc",),
                      policies=(PolicySpec.of("para", probability=0.001),))
        b = SweepSpec(name="t", workloads=("tc",),
                      policies=(PolicySpec.of("para", probability=0.01),))
        assert a.points()[0].config_hash() != b.points()[0].config_hash()

    def test_point_key_is_readable(self):
        point = SweepSpec(name="t", workloads=("tc",), n_trefi=512).points()[0]
        assert point.key == "tc|moat|ath=64|eth=32|L1|tpm=5|trefi=512|seed=0"

    def test_hash_uses_resolved_defaults(self):
        """eth=None (-> ATH/2) and an explicit eth=32 are the same
        simulation, so they must share one hash and cache entry."""
        implicit = SweepSpec(name="t", workloads=("tc",)).points()[0]
        explicit = SweepSpec(name="t", workloads=("tc",), eth=(32,)).points()[0]
        assert implicit.key == explicit.key
        assert implicit.config_hash() == explicit.config_hash()

    def test_equivalent_cells_deduplicated(self):
        spec = SweepSpec(name="t", workloads=("tc",), eth=(None, 32, 16))
        keys = [p.key for p in spec.points()]
        assert len(keys) == len(set(keys)) == 2  # None and 32 collapse


class TestPolicySpec:
    def test_param_order_is_canonical(self):
        a = PolicySpec("trr", (("entries", 8), ("mitigation_threshold", 16)))
        b = PolicySpec("trr", (("mitigation_threshold", 16), ("entries", 8)))
        assert a == b and hash(a) == hash(b)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown policy kind"):
            PolicySpec("quantum-moat")

    def test_display_name(self):
        assert PolicySpec("moat").display_name() == "moat"
        spec = PolicySpec.of("panopticon", drain_all_on_ref=True)
        assert spec.display_name() == "panopticon(drain_all_on_ref=True)"


class TestSubchannelAxis:
    def test_channel_preset_grid(self):
        spec = preset("channel")
        points = spec.points()
        assert {p.config.subchannels for p in points} == {1, 2}
        assert len(points) == len(SWEEP_WORKLOADS) * 2

    def test_neutral_subchannels_hash_is_stable(self):
        """subchannels=1 must hash (and key) identically to a config
        predating the axis — committed baselines depend on it."""
        base = SweepSpec(name="a", workloads=("tc",))
        explicit = SweepSpec(name="a", workloads=("tc",), subchannels=(1,))
        assert [p.config_hash() for p in base.points()] == [
            p.config_hash() for p in explicit.points()
        ]
        assert [p.key for p in base.points()] == [
            p.key for p in explicit.points()
        ]
        # Pinned against the committed fig11 smoke baseline: if this
        # hash moves, every benchmarks/baselines/*.json goes stale.
        import json
        import pathlib

        baseline_path = (
            pathlib.Path(__file__).resolve().parents[2]
            / "benchmarks" / "baselines" / "fig11.json"
        )
        baseline = json.loads(baseline_path.read_text())
        from repro.sweep.spec import PRESETS

        smoke = PRESETS["fig11"].with_overrides(
            n_trefi=baseline["n_trefi"], seed=baseline["seed"]
        )
        assert smoke.sweep_hash() == baseline["sweep_hash"]

    def test_non_neutral_subchannels_changes_identity(self):
        narrow = SweepSpec(name="a", workloads=("tc",))
        wide = SweepSpec(name="a", workloads=("tc",), subchannels=(2,))
        assert (
            narrow.points()[0].config_hash() != wide.points()[0].config_hash()
        )
        assert "sc=2" in wide.points()[0].key
        assert "sc=" not in narrow.points()[0].key
