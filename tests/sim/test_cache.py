"""Tests for the set-associative LLC model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.cache import SetAssociativeCache


def tiny_cache(ways=2, sets=4, line=64) -> SetAssociativeCache:
    return SetAssociativeCache(size_bytes=ways * sets * line, ways=ways, line_bytes=line)


class TestBasics:
    def test_table3_geometry(self):
        llc = SetAssociativeCache()
        assert llc.num_sets == 8 * 1024 * 1024 // (16 * 64)

    def test_miss_then_hit(self):
        llc = tiny_cache()
        assert not llc.access(0)
        assert llc.access(0)
        assert llc.access(63)  # same line
        assert not llc.access(64)  # next line

    def test_lru_eviction(self):
        llc = tiny_cache(ways=2, sets=1, line=64)
        llc.access(0)
        llc.access(64)
        llc.access(0)  # refresh line 0
        llc.access(128)  # evicts line 64 (LRU)
        assert llc.access(0)
        assert not llc.access(64)

    def test_flush_line(self):
        llc = tiny_cache()
        llc.access(0)
        assert llc.flush_line(0)
        assert not llc.flush_line(0)
        assert not llc.access(0)  # miss again after clflush

    def test_hit_rate(self):
        llc = tiny_cache()
        llc.access(0)
        llc.access(0)
        assert llc.hit_rate == 0.5

    @pytest.mark.parametrize("kwargs", [
        dict(size_bytes=0),
        dict(ways=0),
        dict(line_bytes=0),
        dict(size_bytes=1000, ways=16, line_bytes=64),
    ])
    def test_bad_geometry(self, kwargs):
        defaults = dict(size_bytes=8192, ways=2, line_bytes=64)
        defaults.update(kwargs)
        with pytest.raises(ValueError):
            SetAssociativeCache(**defaults)


class TestInvariants:
    @given(
        addrs=st.lists(st.integers(min_value=0, max_value=64 * 1024), max_size=300)
    )
    @settings(max_examples=50, deadline=None)
    def test_occupancy_never_exceeds_capacity(self, addrs):
        llc = tiny_cache(ways=2, sets=4)
        for addr in addrs:
            llc.access(addr)
            for ways in llc._sets:
                assert len(ways) <= llc.ways

    @given(addr=st.integers(min_value=0, max_value=2**40))
    @settings(max_examples=100, deadline=None)
    def test_second_access_always_hits(self, addr):
        llc = tiny_cache()
        llc.access(addr)
        assert llc.access(addr)
