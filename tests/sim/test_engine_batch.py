"""Batched-activation equivalence: activate_many == activate loop.

The fast inner loop of :meth:`SubchannelSim.activate_many` skips the
per-ACT method-call chain, so these tests pin its one contract: the
simulation state it produces is *bit-identical* to issuing the same
rows through :meth:`SubchannelSim.activate` one at a time, across
every event the engine schedules (REFs, proactive mitigations, ALERT
episodes, external services) and for every policy kind.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mitigations.registry import PolicySpec, RunParams, policy_kinds
from repro.sim.engine import SimConfig, SubchannelSim
from repro.workloads.generator import generate_schedule
from repro.workloads.profiles import profile_by_name

TREFI = 3900.0

#: All registered kernel backends. ``numba`` silently degrades to
#: ``pure`` where numba is not installed, so parametrizing over it is
#: always safe — it tests the compiled kernels exactly where they can
#: compile and the fallback contract everywhere else.
BACKENDS = ("pure", "kernel", "numba")


def drive(sim, schedule, batched: bool) -> dict:
    for interval, rows in enumerate(schedule):
        target = interval * TREFI
        if sim.now < target:
            sim.advance_to(target)
        if batched:
            sim.activate_many(rows)
        else:
            for row in rows:
                sim.activate(row)
    sim.flush()
    stats = sim.stats()
    # Include policy-visible state so divergence inside the policy
    # (not just the aggregate counters) is caught too.
    stats["policy_proactive"] = sim.policy.proactive_mitigations
    stats["policy_reactive"] = sim.policy.reactive_mitigations
    return stats


def workload_schedule(n_trefi=512, seed=0):
    sched = generate_schedule(
        profile_by_name("roms"), n_trefi=n_trefi, seed=seed
    )
    return sched.per_trefi


class TestBatchedEquivalence:
    @pytest.mark.parametrize("kind", sorted(policy_kinds()))
    def test_every_policy_kind(self, kind):
        factory = PolicySpec(kind).make_factory(RunParams(ath=64, eth=32))
        schedule = workload_schedule(n_trefi=256)
        config = SimConfig(track_danger=False, dense_counters=True)
        serial = drive(SubchannelSim(config, factory), schedule, batched=False)
        factory2 = PolicySpec(kind).make_factory(RunParams(ath=64, eth=32))
        batched = drive(SubchannelSim(config, factory2), schedule, batched=True)
        assert serial == batched

    def test_alert_heavy_run(self):
        """A hot single row forces frequent ALERT episodes."""
        schedule = [[7, 7, 7, 9, 7] for _ in range(300)]
        config = SimConfig(track_danger=False, dense_counters=True)
        factory = PolicySpec("moat").make_factory(RunParams(ath=32, eth=16))
        serial = drive(SubchannelSim(config, factory), schedule, batched=False)
        factory2 = PolicySpec("moat").make_factory(RunParams(ath=32, eth=16))
        batched = drive(SubchannelSim(config, factory2), schedule, batched=True)
        assert serial == batched
        assert serial["alerts"] > 0  # the scenario actually alerts

    def test_external_services(self):
        schedule = workload_schedule(n_trefi=256)
        config = SimConfig(
            track_danger=False,
            dense_counters=True,
            external_service_interval_ns=5000.0,
        )
        factory = PolicySpec("moat").make_factory(RunParams(ath=64, eth=32))
        serial = drive(SubchannelSim(config, factory), schedule, batched=False)
        factory2 = PolicySpec("moat").make_factory(RunParams(ath=64, eth=32))
        batched = drive(SubchannelSim(config, factory2), schedule, batched=True)
        assert serial == batched

    def test_sparse_bank_fallback_matches(self):
        """Without dense counters the batch entry point still works
        (per-ACT fallback) and produces identical results."""
        schedule = workload_schedule(n_trefi=128)
        factory = PolicySpec("moat").make_factory(RunParams(ath=64, eth=32))
        sparse = drive(
            SubchannelSim(SimConfig(track_danger=False), factory),
            schedule,
            batched=True,
        )
        factory2 = PolicySpec("moat").make_factory(RunParams(ath=64, eth=32))
        dense = drive(
            SubchannelSim(
                SimConfig(track_danger=False, dense_counters=True), factory2
            ),
            schedule,
            batched=True,
        )
        assert sparse == dense

    def test_not_before_floor_applies(self):
        config = SimConfig(track_danger=False, dense_counters=True)
        factory = PolicySpec("moat").make_factory(RunParams())
        sim = SubchannelSim(config, factory)
        last = sim.activate_many([1, 2, 3], not_before=500.0)
        assert last >= 500.0

    def test_empty_batch_is_a_noop(self):
        config = SimConfig(track_danger=False, dense_counters=True)
        factory = PolicySpec("moat").make_factory(RunParams())
        sim = SubchannelSim(config, factory)
        assert sim.activate_many([]) is None
        assert sim.total_acts == 0


class TestBackendEquivalence:
    """Every backend's batch path must match the scalar per-ACT
    reference bit for bit — the contract that lets sweep identities
    hash the backend out entirely (one cache entry, one baseline)."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("kind", sorted(policy_kinds()))
    def test_every_policy_kind(self, kind, backend):
        schedule = workload_schedule(n_trefi=128)
        factory = PolicySpec(kind).make_factory(RunParams(ath=64, eth=32))
        config = SimConfig(track_danger=False, dense_counters=True)
        serial = drive(SubchannelSim(config, factory), schedule, batched=False)
        factory2 = PolicySpec(kind).make_factory(RunParams(ath=64, eth=32))
        kernel_config = SimConfig(
            track_danger=False, dense_counters=True, backend=backend
        )
        batched = drive(
            SubchannelSim(kernel_config, factory2), schedule, batched=True
        )
        assert serial == batched

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_alert_heavy_run(self, backend):
        schedule = [[7, 7, 7, 9, 7] for _ in range(300)]
        factory = PolicySpec("moat").make_factory(RunParams(ath=32, eth=16))
        config = SimConfig(track_danger=False, dense_counters=True)
        serial = drive(SubchannelSim(config, factory), schedule, batched=False)
        factory2 = PolicySpec("moat").make_factory(RunParams(ath=32, eth=16))
        kernel_config = SimConfig(
            track_danger=False, dense_counters=True, backend=backend
        )
        batched = drive(
            SubchannelSim(kernel_config, factory2), schedule, batched=True
        )
        assert serial == batched
        assert serial["alerts"] > 0


#: Randomized per-tREFI batches over a tiny row space, so short
#: sequences still produce tracker churn, ETH crossings, and ALERTs.
random_schedules = st.lists(
    st.lists(st.integers(min_value=0, max_value=23), max_size=16),
    max_size=48,
)


class TestBackendProperties:
    @given(
        schedule=random_schedules,
        kind=st.sampled_from(sorted(policy_kinds())),
        backend=st.sampled_from(BACKENDS),
    )
    @settings(max_examples=50, deadline=None)
    def test_random_schedules_bit_identical(self, schedule, kind, backend):
        """Arbitrary schedules, every policy, every backend: the batch
        path equals the scalar reference. A low ATH makes even short
        random streams cross the ALERT machinery."""
        params = RunParams(ath=12, eth=6)
        factory = PolicySpec(kind).make_factory(params)
        config = SimConfig(track_danger=False, dense_counters=True)
        serial = drive(SubchannelSim(config, factory), schedule, batched=False)
        factory2 = PolicySpec(kind).make_factory(params)
        kernel_config = SimConfig(
            track_danger=False, dense_counters=True, backend=backend
        )
        batched = drive(
            SubchannelSim(kernel_config, factory2), schedule, batched=True
        )
        assert serial == batched


class TestDenseCounters:
    def test_dense_rejects_initial_counter(self):
        from repro.dram.bank import Bank

        with pytest.raises(ValueError):
            Bank(dense_counters=True, initial_counter=lambda row: 1)

    def test_dense_counter_semantics_match_sparse(self):
        from repro.dram.bank import Bank

        dense = Bank(num_rows=64, dense_counters=True, track_danger=False)
        sparse = Bank(num_rows=64, track_danger=False)
        for bank in (dense, sparse):
            for row in (3, 3, 5, 3):
                bank.activate(row)
            bank.reset_prac(5)
        assert dense.prac_count(3) == sparse.prac_count(3) == 3
        assert dense.prac_count(5) == sparse.prac_count(5) == 0
        assert dense.touched_rows() == {3: 3}
        assert dense.rows_with_prac_at_least(3) == 1
