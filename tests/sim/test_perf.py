"""Tests for the workload performance front-end."""

import pytest

from repro.sim.perf import (
    MoatRunConfig,
    PerfResult,
    average_alert_rate,
    average_slowdown,
    geometric_mean_performance,
    run_suite,
    run_workload,
)
from repro.workloads.generator import generate_schedule
from repro.workloads.profiles import profile_by_name


def small_config(**kwargs) -> MoatRunConfig:
    defaults = dict(n_trefi=512, model_cross_bank_service=False)
    defaults.update(kwargs)
    return MoatRunConfig(**defaults)


class TestRunWorkload:
    def test_cold_workload_no_alerts(self):
        result = run_workload(profile_by_name("tc"), small_config())
        assert result.alerts == 0
        assert result.slowdown == 0.0
        assert result.normalized_performance == 1.0

    def test_hot_workload_alerts_at_ath64(self):
        result = run_workload(profile_by_name("roms"), small_config(ath=64))
        assert result.alerts > 0
        assert result.slowdown > 0.0

    def test_ath128_quieter_than_ath64(self):
        hot = profile_by_name("roms")
        schedule = generate_schedule(hot, n_trefi=512, seed=0)
        r64 = run_workload(hot, small_config(ath=64), schedule=schedule)
        r128 = run_workload(hot, small_config(ath=128), schedule=schedule)
        assert r128.alerts <= r64.alerts

    def test_cross_bank_service_reduces_alerts(self):
        hot = profile_by_name("roms")
        schedule = generate_schedule(hot, n_trefi=512, seed=0)
        alone = run_workload(hot, small_config(), schedule=schedule)
        helped = run_workload(
            hot,
            MoatRunConfig(n_trefi=512, model_cross_bank_service=True),
            schedule=schedule,
        )
        assert helped.alerts <= alone.alerts

    def test_eth_default_is_half_ath(self):
        result = run_workload(profile_by_name("tc"), small_config(ath=64))
        assert result.eth == 32


class TestMetrics:
    def make(self, alerts=8, n_trefi=512, banks=1) -> PerfResult:
        return PerfResult(
            workload="x",
            ath=64,
            eth=32,
            abo_level=1,
            alerts=alerts,
            n_trefi=n_trefi,
            banks_simulated=banks,
            banks_per_subchannel=32,
            total_acts=1000,
            mitigation_acts=23,
            proactive_mitigations=10,
            reactive_mitigations=alerts,
            elapsed_ns=n_trefi * 3900.0,
            stall_ns=alerts * 350.0,
        )

    def test_alerts_per_trefi_scaling(self):
        result = self.make(alerts=8, n_trefi=512)
        assert result.alerts_per_trefi == pytest.approx(8 * 32 / 512)

    def test_slowdown_is_scaled_stall_fraction(self):
        result = self.make(alerts=8, n_trefi=512)
        expected = 8 * 350.0 * 32 / (512 * 3900.0)
        assert result.slowdown == pytest.approx(expected)

    def test_mitigations_per_trefw(self):
        result = self.make(alerts=8, n_trefi=512)
        # (10 proactive + 8 alerts) scaled from 1/16 window to full.
        assert result.mitigations_per_trefw_per_bank == pytest.approx(18 * 16)

    def test_activation_overhead(self):
        assert self.make().activation_overhead == pytest.approx(0.023)


class TestSuiteHelpers:
    @pytest.fixture(scope="class")
    def results(self):
        profiles = [profile_by_name("tc"), profile_by_name("x264")]
        return run_suite(profiles, small_config())

    def test_run_suite_keys(self, results):
        assert set(results) == {"tc", "x264"}

    def test_gmean_of_quiet_suite_is_one(self, results):
        assert geometric_mean_performance(results) == pytest.approx(1.0)

    def test_average_slowdown(self, results):
        assert average_slowdown(results) == pytest.approx(0.0)

    def test_average_alert_rate(self, results):
        assert average_alert_rate(results) == pytest.approx(0.0)

    def test_empty_results(self):
        assert geometric_mean_performance({}) == 1.0
        assert average_slowdown({}) == 0.0
        assert average_alert_rate({}) == 0.0


class TestPolicyGenericRuns:
    """The front-end accepts any registered mitigation policy."""

    def test_panopticon_run(self):
        from repro.mitigations.registry import PolicySpec

        config = small_config(policy=PolicySpec("panopticon"))
        result = run_workload(profile_by_name("roms"), config)
        assert result.policy == "panopticon"
        # Panopticon's native proactive cadence (4) is applied.
        assert config.trefi_per_mitigation_resolved == 4
        assert result.total_acts > 0
        assert 0.0 <= result.slowdown <= 1.0

    def test_para_run_is_deterministic(self):
        from repro.mitigations.registry import PolicySpec

        config = small_config(policy=PolicySpec.of("para", probability=0.01))
        first = run_workload(profile_by_name("roms"), config)
        second = run_workload(profile_by_name("roms"), config)
        assert first.as_metrics() == second.as_metrics()
        assert first.proactive_mitigations > 0  # PARA did sample rows

    def test_para_seed_changes_mitigation_stream(self):
        from repro.mitigations.registry import PolicySpec

        spec = PolicySpec.of("para", probability=0.01)
        a = run_workload(profile_by_name("roms"), small_config(policy=spec, seed=0))
        b = run_workload(profile_by_name("roms"), small_config(policy=spec, seed=1))
        # Different seed: different schedule AND different PARA stream.
        assert a.as_metrics() != b.as_metrics()

    def test_moat_default_matches_legacy_alias(self):
        legacy = MoatRunConfig(n_trefi=512, model_cross_bank_service=False)
        modern = small_config()
        assert legacy == modern
        assert legacy.policy.kind == "moat"
        assert legacy.trefi_per_mitigation_resolved == 5

    def test_null_policy_is_free(self):
        from repro.mitigations.registry import PolicySpec

        result = run_workload(
            profile_by_name("roms"), small_config(policy=PolicySpec("null"))
        )
        assert result.alerts == 0
        assert result.proactive_mitigations == 0
        assert result.slowdown == 0.0

    def test_as_metrics_matches_properties(self):
        result = run_workload(profile_by_name("roms"), small_config())
        metrics = result.as_metrics()
        assert metrics["slowdown"] == result.slowdown
        assert metrics["alerts_per_trefi"] == result.alerts_per_trefi
        assert metrics["alerts"] == float(result.alerts)


class TestChannelFrontEnd:
    """The perf front-end routes through ChannelSim."""

    def test_subchannel_axis_scales_counters(self):
        from repro.sim.perf import RunConfig, run_workload
        from repro.workloads.profiles import profile_by_name

        profile = profile_by_name("tc")
        narrow = run_workload(
            profile, RunConfig(n_trefi=256, model_cross_bank_service=False)
        )
        wide = run_workload(
            profile,
            RunConfig(
                n_trefi=256, subchannels=2, model_cross_bank_service=False
            ),
        )
        assert wide.subchannels == 2
        # Two independent draws of the same profile: roughly twice the
        # traffic in total, same order of magnitude per sub-channel.
        assert wide.total_acts > narrow.total_acts
        assert narrow.subchannels == 1

    def test_single_subchannel_metrics_unchanged_by_channel_layer(self):
        """RunConfig(subchannels=1) must reproduce the pre-channel
        engine bit-for-bit (the committed smoke baselines pin the same
        property at sweep scale)."""
        from repro.mitigations.registry import PolicySpec, RunParams
        from repro.sim.engine import SimConfig, SubchannelSim
        from repro.sim.perf import RunConfig, run_workload
        from repro.workloads.generator import generate_schedule
        from repro.workloads.profiles import profile_by_name

        profile = profile_by_name("roms")
        config = RunConfig(n_trefi=256, model_cross_bank_service=False)
        result = run_workload(profile, config)

        # Reference: the seed engine's per-ACT driver loop.
        sim = SubchannelSim(
            SimConfig(
                trefi_per_mitigation=config.trefi_per_mitigation_resolved,
                track_danger=False,
            ),
            PolicySpec("moat").make_factory(
                RunParams(ath=config.ath, eth=config.eth_resolved)
            ),
        )
        sched = generate_schedule(profile, n_trefi=256, seed=0)
        trefi = config.timing.t_refi
        for interval in range(sched.n_trefi):
            target = interval * trefi
            if sim.now < target:
                sim.advance_to(target)
            for row in sched.per_trefi[interval]:
                sim.activate(row)
        sim.flush()

        assert result.alerts == sim.alerts
        assert result.total_acts == sim.total_acts
        assert result.proactive_mitigations == sim.proactive_count
        assert result.reactive_mitigations == sim.reactive_count

    def test_run_config_rejects_nothing_but_carries_subchannels(self):
        from repro.sim.perf import RunConfig

        config = RunConfig(subchannels=2)
        assert config.subchannels == 2
        assert RunConfig().subchannels == 1
