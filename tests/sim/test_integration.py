"""Cross-module integration scenarios."""

import random

import pytest

from repro.dram.refresh import CounterResetPolicy
from repro.dram.timing import DDR5_PRAC_TIMING
from repro.mitigations.moat import MoatPolicy
from repro.mitigations.panopticon import PanopticonPolicy
from repro.sim.engine import SimConfig, SubchannelSim


class TestMultiBank:
    def test_banks_have_independent_state(self):
        sim = SubchannelSim(
            SimConfig(num_banks=4, rows_per_bank=1024, num_refresh_groups=128),
            lambda: MoatPolicy(ath=64),
        )
        for _ in range(10):
            sim.activate(5, bank=0)
        assert sim.banks[0].prac_count(5) == 10
        assert sim.banks[1].prac_count(5) == 0

    def test_alert_services_all_banks(self):
        """One bank's ALERT gives every bank a reactive mitigation."""
        sim = SubchannelSim(
            SimConfig(num_banks=2, rows_per_bank=1024, num_refresh_groups=128),
            lambda: MoatPolicy(ath=64),
        )
        # Rows live far from the refresh wave for this short run.
        # Bank 1 tracks a row above ETH but below ATH.
        for _ in range(40):
            sim.activate(809, bank=1)
        # Bank 0 crosses ATH and raises the ALERT.
        for _ in range(70):
            sim.activate(805, bank=0)
        sim.flush()
        assert sim.alerts >= 1
        # Bank 1's tracked row was mitigated by bank 0's ALERT RFM.
        assert sim.banks[1].prac_count(809) == 0

    def test_stall_blocks_all_banks(self):
        sim = SubchannelSim(
            SimConfig(num_banks=2, rows_per_bank=1024, num_refresh_groups=128),
            lambda: MoatPolicy(ath=64),
        )
        for _ in range(65):
            sim.activate(805, bank=0)  # trigger ALERT on bank 0
        before = sim.now
        result = sim.activate(1, bank=1)
        # Bank 1 is either inside the 180 ns window or pushed past the
        # RFM stall; it can never issue during the RFM.
        window_end = before + DDR5_PRAC_TIMING.t_abo_act_window
        stall_end = window_end + DDR5_PRAC_TIMING.t_rfm
        assert not (window_end < result.time < stall_end - DDR5_PRAC_TIMING.t_rc)


class TestMixedPolicies:
    def test_panopticon_and_moat_comparison(self):
        """The same stream: Panopticon queues silently; MOAT alerts."""
        stream = [(i % 3) * 8 + 800 for i in range(600)]

        pan = SubchannelSim(
            SimConfig(
                rows_per_bank=1024,
                num_refresh_groups=128,
                reset_policy=CounterResetPolicy.FREE_RUNNING,
                trefi_per_mitigation=4,
                reset_counter_on_mitigation=False,
            ),
            lambda: PanopticonPolicy(queue_threshold=128),
        )
        moat = SubchannelSim(
            SimConfig(rows_per_bank=1024, num_refresh_groups=128),
            lambda: MoatPolicy(ath=64),
        )
        for row in stream:
            pan.activate(row)
            moat.activate(row)
        pan.flush()
        moat.flush()
        # 200 ACTs per row: each row crosses MOAT's ATH of 64 multiple
        # times but Panopticon's 128-queue threshold barely once.
        assert moat.alerts > pan.alerts
        assert moat.bank.max_danger <= 99


class TestRandomizedPanopticonDistribution:
    def test_random_counters_shift_crossings(self):
        rng = random.Random(11)
        sim = SubchannelSim(
            SimConfig(
                rows_per_bank=1024,
                num_refresh_groups=128,
                reset_policy=CounterResetPolicy.FREE_RUNNING,
                trefi_per_mitigation=4,
                reset_counter_on_mitigation=False,
                initial_counter=lambda row: rng.randrange(256),
            ),
            lambda: PanopticonPolicy(queue_threshold=128),
        )
        # 64 activations per row: only rows whose initial counter was
        # within 64 of a multiple of 128 enter the queue (~half).
        rows = [800 + 8 * i for i in range(20)]
        for _ in range(64):
            for row in rows:
                sim.activate(row)
        policy = sim.policy
        enqueued = len(policy.queue) + policy.overflows + sim.proactive_count
        assert 0 < enqueued < len(rows)


class TestLongRunStability:
    @pytest.mark.parametrize("ath", [32, 64])
    def test_sustained_pressure_keeps_invariant(self, ath):
        sim = SubchannelSim(
            SimConfig(rows_per_bank=64 * 1024, num_refresh_groups=8192),
            lambda: MoatPolicy(ath=ath),
        )
        rng = random.Random(ath)
        rows = [4096 + 8 * i for i in range(16)]
        for _ in range(20_000):
            sim.activate(rng.choice(rows))
        sim.flush()
        from repro.analysis.ratchet_model import ratchet_safe_trh

        assert sim.bank.max_danger <= ratchet_safe_trh(ath, 1)
        # Conservation: every ALERT episode performed at least one
        # reactive mitigation (no spurious stalls).
        assert sim.reactive_count >= sim.alerts - 1
