"""Tests for the sub-channel simulation engine."""

import pytest

from repro.dram.refresh import CounterResetPolicy
from repro.dram.timing import DDR5_PRAC_TIMING
from repro.mitigations.moat import MoatPolicy
from repro.mitigations.null import NullPolicy
from repro.sim.engine import SimConfig, SubchannelSim


def null_sim(**kwargs) -> SubchannelSim:
    defaults = dict(rows_per_bank=64, num_refresh_groups=8)
    defaults.update(kwargs)
    return SubchannelSim(SimConfig(**defaults), NullPolicy)


def moat_sim(ath=64, **kwargs) -> SubchannelSim:
    defaults = dict(rows_per_bank=64 * 1024, num_refresh_groups=8192)
    defaults.update(kwargs)
    return SubchannelSim(SimConfig(**defaults), lambda: MoatPolicy(ath=ath))


class TestActPacing:
    def test_same_bank_acts_spaced_by_trc(self):
        sim = null_sim()
        first = sim.activate(1)
        second = sim.activate(2)
        assert second.time - first.time == DDR5_PRAC_TIMING.t_rc

    def test_different_banks_overlap(self):
        sim = null_sim(num_banks=2)
        first = sim.activate(1, bank=0)
        second = sim.activate(1, bank=1)
        gap = second.time - first.time
        assert 0 < gap < DDR5_PRAC_TIMING.t_rc

    def test_act_count_returned(self):
        sim = null_sim()
        assert sim.activate(3).count == 1
        assert sim.activate(3).count == 2

    def test_total_acts(self):
        sim = null_sim()
        for _ in range(10):
            sim.activate(1)
        assert sim.total_acts == 10


class TestRefScheduling:
    def test_ref_executes_each_trefi(self):
        sim = null_sim()
        sim.advance_to(10 * DDR5_PRAC_TIMING.t_refi + 1)
        assert sim.refs == 10

    def test_acts_blocked_during_ref(self):
        sim = null_sim()
        trefi, trfc = DDR5_PRAC_TIMING.t_refi, DDR5_PRAC_TIMING.t_rfc
        sim.advance_to(trefi - 62)
        before = sim.activate(1)  # completes just before the REF
        assert before.time == trefi - 62
        blocked = sim.activate(2)  # would overlap [tREFI, tREFI + tRFC)
        assert blocked.time >= trefi + trfc

    def test_67_acts_fit_per_steady_state_trefi(self):
        sim = null_sim()
        trefi = DDR5_PRAC_TIMING.t_refi
        times = []
        while not times or times[-1] < 3 * trefi:
            times.append(sim.activate(1).time)
        # Steady-state interval [tREFI, 2 tREFI): tRFC eats 410 ns, so
        # 67 activations fit (Section 2.2).
        in_window = [t for t in times if trefi <= t < 2 * trefi]
        assert len(in_window) == DDR5_PRAC_TIMING.acts_per_trefi

    def test_refresh_wave_resets_counters(self):
        sim = null_sim(reset_policy=CounterResetPolicy.UNSAFE)
        sim.activate(0)
        assert sim.bank.prac_count(0) == 1
        sim.advance_to(DDR5_PRAC_TIMING.t_refi + DDR5_PRAC_TIMING.t_rfc + 1)
        assert sim.bank.prac_count(0) == 0


class TestProactiveMitigation:
    def test_mitigation_period_rate(self):
        sim = moat_sim(trefi_per_mitigation=5)
        events = []
        sim.mitigation_listeners.append(lambda b, r, re, t: events.append((r, re)))
        # Track a row above ETH, then let two boundaries pass.
        for _ in range(40):
            sim.activate(7)
        sim.advance_to(11 * DDR5_PRAC_TIMING.t_refi)
        proactive = [r for r, reactive in events if not reactive]
        assert proactive == [7]

    def test_rate_zero_disables_proactive(self):
        sim = moat_sim(trefi_per_mitigation=0)
        for _ in range(40):
            sim.activate(7)
        sim.advance_to(50 * DDR5_PRAC_TIMING.t_refi)
        assert sim.proactive_count == 0

    def test_mitigation_resets_counter_by_default(self):
        # Row 7000 is far from the refresh wave for this short run, so
        # the reset can only come from the mitigation itself.
        sim = moat_sim()
        for _ in range(40):
            sim.activate(7000)
        sim.advance_to(11 * DDR5_PRAC_TIMING.t_refi)
        assert sim.proactive_count == 1
        assert sim.bank.prac_count(7000) == 0

    def test_mitigation_can_preserve_counter(self):
        sim = moat_sim(reset_counter_on_mitigation=False)
        for _ in range(40):
            sim.activate(7000)
        sim.advance_to(11 * DDR5_PRAC_TIMING.t_refi)
        assert sim.proactive_count == 1
        assert sim.bank.prac_count(7000) == 40


class TestAlertBehaviour:
    def test_crossing_ath_triggers_alert(self):
        sim = moat_sim(ath=64)
        for _ in range(66):
            sim.activate(9)
        sim.flush()
        assert sim.alerts == 1
        assert sim.reactive_count == 1
        assert sim.bank.prac_count(9) == 0

    def test_three_acts_fit_in_alert_window(self):
        sim = moat_sim(ath=64)
        times = [sim.activate(9).time for _ in range(70)]
        # Activation 65 (index 64) triggers; 66-68 run in the window;
        # 69 stalls until the RFM finishes.
        gap_in_window = times[66] - times[65]
        gap_after_stall = times[68] - times[67]
        assert gap_in_window == DDR5_PRAC_TIMING.t_rc
        assert gap_after_stall > DDR5_PRAC_TIMING.t_rfm

    def test_max_danger_bounded_by_window_acts(self):
        sim = moat_sim(ath=64)
        for _ in range(1000):
            sim.activate(9)
        sim.flush()
        # ATH + 1 trigger + 3 window ACTs = 68 (Section 4.4 + Figure 8).
        assert sim.bank.max_danger <= 68

    def test_no_spurious_alerts(self):
        sim = moat_sim(ath=64)
        for _ in range(1000):
            sim.activate(9)
        sim.flush()
        # Every episode must mitigate something.
        assert sim.reactive_count >= sim.alerts - 1

    def test_alert_stall_is_visible_in_timing(self):
        sim = moat_sim(ath=64)
        with_alert = []
        for _ in range(140):
            with_alert.append(sim.activate(9).time)
        gaps = [b - a for a, b in zip(with_alert, with_alert[1:])]
        assert max(gaps) >= DDR5_PRAC_TIMING.t_rfm


class TestPostponement:
    def test_postponed_refs_batch(self):
        sim = null_sim()
        sim.postpone_refs = True
        trefi = DDR5_PRAC_TIMING.t_refi
        sim.advance_to(3 * trefi + 3 * DDR5_PRAC_TIMING.t_rfc + 1)
        # Two REFs postponed, then a mandatory batch of three.
        assert sim.refs == 3

    def test_batch_opens_act_window(self):
        """Appendix B: ~201 ACTs fit between postponed-REF batches."""
        sim = null_sim()
        sim.postpone_refs = True
        trefi, trfc = DDR5_PRAC_TIMING.t_refi, DDR5_PRAC_TIMING.t_rfc
        batch_end = 3 * trefi + 3 * trfc
        sim.advance_to(batch_end + 1)
        count = 0
        while True:
            result = sim.activate(1)
            if result.time >= batch_end + 3 * trefi:
                break
            count += 1
        # Appendix B: "up-to 201 activations between REFs" (the exact
        # count depends on boundary alignment by one slot).
        assert count in (201, 202)


class TestExternalServices:
    def test_external_stream_services_tracked_rows(self):
        sim = moat_sim(external_service_interval_ns=1000.0)
        for _ in range(40):  # above ETH, below ATH
            sim.activate(7)
        sim.advance_to(20_000.0)
        assert sim.external_services >= 1
        assert sim.bank.prac_count(7) == 0


class TestStats:
    def test_stats_keys(self):
        sim = null_sim()
        sim.activate(1)
        stats = sim.stats()
        assert set(stats) >= {
            "time_ns",
            "total_acts",
            "refs",
            "alerts",
            "proactive_mitigations",
            "reactive_mitigations",
            "max_danger",
        }

    def test_idle_rejects_negative(self):
        sim = null_sim()
        with pytest.raises(ValueError):
            sim.idle(-1.0)

    def test_trefi_index(self):
        sim = null_sim()
        sim.advance_to(2.5 * DDR5_PRAC_TIMING.t_refi)
        assert sim.trefi_index() == 2


class TestExternalServiceCounting:
    def test_counts_events_not_mitigated_rows(self):
        """One injected RFM event is one external service, even when
        multiple banks each take their mitigation opportunity."""
        from repro.mitigations.moat import MoatPolicy

        config = SimConfig(
            num_banks=2,
            trefi_per_mitigation=0,
            track_danger=False,
            external_service_interval_ns=10_000.0,
        )
        sim = SubchannelSim(config, lambda: MoatPolicy(ath=64, eth=4))
        # Push one row above ETH on each bank so both banks have a
        # reactive candidate when the external service arrives.
        for _ in range(10):
            sim.activate(7, bank=0)
            sim.activate(9, bank=1)
        assert sim.external_services == 0
        sim.advance_to(10_001.0)
        assert sim.external_services == 1
        # Both banks were serviced by that single event.
        assert sim.reactive_count == 0  # external services aren't ALERT RFMs
        assert sim.bank.prac_count(7) == 0
        assert sim.banks[1].prac_count(9) == 0

    def test_event_counted_even_with_nothing_to_mitigate(self):
        config = SimConfig(
            num_banks=1,
            track_danger=False,
            external_service_interval_ns=5_000.0,
        )
        sim = SubchannelSim(config, lambda: MoatPolicy(ath=64))
        sim.advance_to(20_000.0)
        assert sim.external_services == 4
