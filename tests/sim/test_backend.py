"""Backend registry resolution: precedence, gating, graceful fallback.

The backend layer's contract is purely operational — which
implementation of the hot-loop kernels runs — never semantic: every
backend is bit-identical (pinned by the engine/controller equivalence
suites). These tests pin the *selection* rules: explicit name beats
the ``REPRO_BACKEND`` environment variable beats the ``pure`` default,
unknown names fail loudly, and a ``numba`` request degrades to
``pure`` with a single per-process warning when numba is missing, so
configs and CI matrices can name it unconditionally.
"""

import pytest

import repro.sim.backend as backend_mod
from repro.sim.backend import (
    BACKEND_ENV,
    BACKEND_NAMES,
    numba_available,
    resolve_backend,
)
from repro.sim.engine import SimConfig, SubchannelSim
from repro.mitigations.null import NullPolicy


class TestResolution:
    def test_default_is_pure(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        backend = resolve_backend()
        assert backend.name == "pure"
        assert not backend.use_kernels
        assert backend.act_burst is None and backend.serve_closed is None

    def test_empty_env_is_pure(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "")
        assert resolve_backend().name == "pure"

    def test_env_selects_backend(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "kernel")
        backend = resolve_backend()
        assert backend.name == "kernel"
        assert backend.use_kernels and not backend.compiled
        assert callable(backend.act_burst)
        assert callable(backend.serve_closed)

    def test_explicit_name_beats_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "kernel")
        assert resolve_backend("pure").name == "pure"

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown backend"):
            resolve_backend("cython")

    def test_unknown_env_raises(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "turbo")
        with pytest.raises(ValueError, match="turbo"):
            resolve_backend()

    def test_names_registry_is_exhaustive(self):
        for name in BACKEND_NAMES:
            assert resolve_backend(name) is not None


class TestNumbaGating:
    def test_numba_resolves_or_degrades(self, monkeypatch, capsys):
        monkeypatch.setattr(backend_mod, "_WARNED_FALLBACK", False)
        backend = resolve_backend("numba")
        if numba_available():
            assert backend.name == "numba"
            assert backend.use_kernels and backend.compiled
        else:
            assert backend.name == "pure"
            assert "falling back" in capsys.readouterr().err

    def test_fallback_warns_once_per_process(self, monkeypatch, capsys):
        if numba_available():
            pytest.skip("numba installed; the fallback path is unreachable")
        monkeypatch.setattr(backend_mod, "_WARNED_FALLBACK", False)
        resolve_backend("numba")
        resolve_backend("numba")
        assert capsys.readouterr().err.count("falling back") == 1


class TestEngineWiring:
    def test_config_backend_reaches_engine(self):
        sim = SubchannelSim(
            SimConfig(track_danger=False, dense_counters=True,
                      backend="kernel"),
            NullPolicy,
        )
        assert sim._use_kernels

    def test_pure_engine_keeps_kernels_off(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        sim = SubchannelSim(
            SimConfig(track_danger=False, dense_counters=True),
            NullPolicy,
        )
        assert not sim._use_kernels

    def test_unknown_config_backend_raises(self):
        with pytest.raises(ValueError, match="unknown backend"):
            SubchannelSim(
                SimConfig(track_danger=False, dense_counters=True,
                          backend="turbo"),
                NullPolicy,
            )
