"""Tests for the channel layer: demux, command front-end, hierarchy."""

import pytest

from repro.mitigations.moat import MoatPolicy
from repro.sim.channel import ChannelConfig, ChannelSim
from repro.sim.engine import SimConfig, SubchannelSim
from repro.sim.mapping import AddressMapping, CoffeeLakeMapping


def moat_factory():
    return MoatPolicy(ath=64)


def small_mapping() -> AddressMapping:
    """2 banks, 2 sub-channels, 256 rows: cheap to simulate fully."""
    return AddressMapping(
        bank_functions=[[13, 18]],
        subchannel_bits=[6, 12],
        row_shift=18,
        row_bits=8,
        column_mask_bits=13,
    )


def small_sim_config(**kwargs) -> SimConfig:
    kwargs.setdefault("num_banks", 2)
    kwargs.setdefault("rows_per_bank", 256)
    kwargs.setdefault("num_refresh_groups", 128)
    kwargs.setdefault("track_danger", False)
    kwargs.setdefault("dense_counters", True)
    return SimConfig(**kwargs)


class TestChannelConfig:
    def test_defaults_single_subchannel(self):
        config = ChannelConfig()
        assert config.num_subchannels == 1
        assert config.t_cmd_gap_resolved == config.sim.t_issue_gap

    def test_cmd_gap_scales_with_width(self):
        config = ChannelConfig(num_subchannels=2)
        assert config.t_cmd_gap_resolved == config.sim.t_issue_gap / 2

    def test_explicit_cmd_gap_wins(self):
        config = ChannelConfig(num_subchannels=2, t_cmd_gap=1.25)
        assert config.t_cmd_gap_resolved == 1.25

    def test_rejects_zero_subchannels(self):
        with pytest.raises(ValueError):
            ChannelConfig(num_subchannels=0)

    def test_rejects_bank_count_mismatch(self):
        # CoffeeLake decodes 32 banks; the default SimConfig has 1.
        with pytest.raises(ValueError, match="banks"):
            ChannelConfig(mapping=CoffeeLakeMapping(), num_subchannels=2)

    def test_rejects_subchannel_mismatch(self):
        with pytest.raises(ValueError, match="sub-channels"):
            ChannelConfig(
                sim=small_sim_config(),
                mapping=small_mapping(),
                num_subchannels=1,
            )

    def test_rejects_row_count_mismatch(self):
        with pytest.raises(ValueError, match="rows"):
            ChannelConfig(
                sim=small_sim_config(rows_per_bank=512, num_refresh_groups=128),
                mapping=small_mapping(),
                num_subchannels=2,
            )

    def test_accepts_matching_geometry(self):
        config = ChannelConfig(
            sim=small_sim_config(),
            mapping=small_mapping(),
            num_subchannels=2,
        )
        assert config.mapping is not None


class TestSingleSubchannelEquivalence:
    """A 1-sub-channel channel must be bit-identical to a bare engine."""

    def drive(self, sim, activate):
        rows = [5, 9, 5, 13, 5, 9] * 40
        for i, row in enumerate(rows):
            activate(row)
            if i % 16 == 15:
                sim.advance_to(sim.now + 3000.0)
        sim.flush()
        return sim.stats()

    def test_stats_identical(self):
        config = SimConfig(track_danger=False)
        bare = SubchannelSim(config, moat_factory)
        channel = ChannelSim(ChannelConfig(sim=config), moat_factory)
        bare_stats = self.drive(bare, lambda row: bare.activate(row))
        chan_stats = self.drive(channel, lambda row: channel.activate(row))
        del chan_stats["subchannels"]
        assert chan_stats == {k: float(v) for k, v in bare_stats.items()}


class TestAddressDemux:
    def make(self):
        return ChannelSim(
            ChannelConfig(
                sim=small_sim_config(),
                mapping=small_mapping(),
                num_subchannels=2,
            ),
            moat_factory,
        )

    def test_access_routes_by_decode(self):
        channel = self.make()
        mapping = channel.mapping
        addr = mapping.compose(1, 1, 17)
        channel.access(addr)
        sub = channel.subchannels[1]
        assert sub.total_acts == 1
        assert sub.banks[1].prac_count(17) == 1
        assert channel.subchannels[0].total_acts == 0

    def test_access_requires_mapping(self):
        channel = ChannelSim(
            ChannelConfig(sim=small_sim_config(num_banks=1)), moat_factory
        )
        with pytest.raises(ValueError, match="mapping"):
            channel.access(0)

    def test_stats_aggregate_subchannels(self):
        channel = self.make()
        mapping = channel.mapping
        for row in range(8):
            channel.access(mapping.compose(0, 0, row))
            channel.access(mapping.compose(1, 1, row))
        stats = channel.stats()
        assert stats["total_acts"] == 16
        assert stats["subchannels"] == 2
        assert channel.total_acts == 16


class TestCommandFrontEnd:
    def test_cross_subchannel_commands_share_issue_slots(self):
        """Back-to-back commands to different sub-channels are spaced
        by the channel command gap, not issued at the same instant."""
        channel = ChannelSim(
            ChannelConfig(sim=small_sim_config(), num_subchannels=2),
            moat_factory,
        )
        gap = channel.config.t_cmd_gap_resolved
        first = channel.activate(1, bank=0, subchannel=0)
        second = channel.activate(1, bank=0, subchannel=1)
        assert second.time >= first.time + gap

    def test_batches_serialize_across_subchannels(self):
        channel = ChannelSim(
            ChannelConfig(sim=small_sim_config(), num_subchannels=2),
            moat_factory,
        )
        gap = channel.config.t_cmd_gap_resolved
        last0 = channel.activate_many([1, 2, 3], bank=0, subchannel=0)
        first1 = channel.activate(1, bank=0, subchannel=1)
        assert first1.time >= last0 + gap

    def test_single_subchannel_gap_is_neutral(self):
        """With one sub-channel the command floor coincides with the
        sub-channel's own issue gap: timestamps match a bare engine."""
        config = SimConfig(track_danger=False)
        bare = SubchannelSim(config, moat_factory)
        channel = ChannelSim(ChannelConfig(sim=config), moat_factory)
        bare_times = [bare.activate(r).time for r in [1, 2, 3, 4, 1, 2]]
        chan_times = [channel.activate(r).time for r in [1, 2, 3, 4, 1, 2]]
        assert bare_times == chan_times
