"""Tests for the CoffeeLake-style address mapping."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.mapping import AddressMapping, CoffeeLakeMapping


@pytest.fixture
def mapping() -> CoffeeLakeMapping:
    return CoffeeLakeMapping()


class TestDecode:
    def test_num_banks(self, mapping):
        assert mapping.num_banks == 32

    def test_decode_zero(self, mapping):
        addr = mapping.decode(0)
        assert addr.bank == 0
        assert addr.row == 0
        assert addr.subchannel == 0
        assert addr.column == 0

    def test_row_field(self, mapping):
        decoded = mapping.decode(5 << 18)
        assert decoded.row == 5

    def test_bank_depends_on_row_bits(self, mapping):
        # Bank hashes XOR a low bit with a row bit, so walking rows in
        # the same 256 KB region changes the bank.
        banks = {mapping.decode(row << 18).bank for row in range(32)}
        assert len(banks) > 1

    def test_negative_address_rejected(self, mapping):
        with pytest.raises(ValueError):
            mapping.decode(-1)


class TestCompose:
    @given(
        subchannel=st.integers(0, 1),
        bank=st.integers(0, 31),
        row=st.integers(0, 2**16 - 1),
    )
    @settings(max_examples=200, deadline=None)
    def test_compose_decode_roundtrip(self, subchannel, bank, row):
        mapping = CoffeeLakeMapping()
        addr = mapping.compose(subchannel, bank, row)
        decoded = mapping.decode(addr)
        assert decoded.subchannel == subchannel
        assert decoded.bank == bank
        assert decoded.row == row

    def test_compose_requires_fixup_bits(self):
        bad = AddressMapping(bank_functions=[[20, 21]], subchannel_bits=[6])
        with pytest.raises(ValueError):
            bad.compose(0, 1, 0)


class TestGenericMapping:
    def test_single_bank_function(self):
        mapping = AddressMapping(
            bank_functions=[[13]], subchannel_bits=[6], row_shift=16, row_bits=8
        )
        assert mapping.num_banks == 2
        assert mapping.decode(1 << 13).bank == 1
        assert mapping.decode(0).bank == 0

    def test_num_subchannels(self):
        assert CoffeeLakeMapping().num_subchannels == 2
        flat = AddressMapping(bank_functions=[[13]], subchannel_bits=[])
        assert flat.num_subchannels == 1


# Generic-mapping strategy: 1-5 bank hash functions, each pairing a
# dedicated low toggle bit (so compose() can fix the hash up) with an
# optional row bit, CoffeeLake-style.
@st.composite
def generic_mappings(draw):
    row_shift = 18
    row_bits = draw(st.integers(4, 16))
    n_bank_bits = draw(st.integers(1, 5))
    bank_functions = []
    for i in range(n_bank_bits):
        toggle = 13 + i  # distinct low bit per hash
        bits = [toggle]
        if draw(st.booleans()):
            bits.append(row_shift + draw(st.integers(0, row_bits - 1)))
        bank_functions.append(bits)
    subchannel_bits = [6] + ([12] if draw(st.booleans()) else [])
    return AddressMapping(
        bank_functions=bank_functions,
        subchannel_bits=subchannel_bits,
        row_shift=row_shift,
        row_bits=row_bits,
        column_mask_bits=draw(st.integers(0, 12)),
    )


class TestGenericRoundTrip:
    @given(mapping=generic_mappings(), data=st.data())
    @settings(max_examples=200, deadline=None)
    def test_compose_decode_roundtrip(self, mapping, data):
        subchannel = data.draw(st.integers(0, mapping.num_subchannels - 1))
        bank = data.draw(st.integers(0, mapping.num_banks - 1))
        row = data.draw(st.integers(0, (1 << mapping.row_bits) - 1))
        addr = mapping.compose(subchannel, bank, row)
        decoded = mapping.decode(addr)
        assert decoded.subchannel == subchannel
        assert decoded.bank == bank
        assert decoded.row == row

    @given(mapping=generic_mappings(), addr=st.integers(0, 2**34 - 1))
    @settings(max_examples=200, deadline=None)
    def test_decode_compose_decode_is_stable(self, mapping, addr):
        """compose() of a decode lands on the same DRAM coordinates
        (the address may differ — compose picks *an* address)."""
        decoded = mapping.decode(addr)
        again = mapping.decode(
            mapping.compose(decoded.subchannel, decoded.bank, decoded.row)
        )
        assert (again.subchannel, again.bank, again.row) == (
            decoded.subchannel,
            decoded.bank,
            decoded.row,
        )


class TestGeometryGuard:
    """SimConfig.num_banks must agree with the mapping's bank count
    before any address-driven traffic is simulated."""

    def test_channel_rejects_disagreeing_bank_count(self):
        from repro.sim.channel import ChannelConfig
        from repro.sim.engine import SimConfig

        mapping = CoffeeLakeMapping()
        with pytest.raises(ValueError, match="num_banks"):
            ChannelConfig(
                sim=SimConfig(num_banks=8),
                mapping=mapping,
                num_subchannels=2,
            )

    def test_channel_accepts_agreeing_geometry(self):
        from repro.sim.channel import ChannelConfig
        from repro.sim.engine import SimConfig

        mapping = CoffeeLakeMapping()
        config = ChannelConfig(
            sim=SimConfig(num_banks=mapping.num_banks),
            mapping=mapping,
            num_subchannels=mapping.num_subchannels,
        )
        assert config.sim.num_banks == mapping.num_banks
