"""Tests for the CoffeeLake-style address mapping."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.mapping import AddressMapping, CoffeeLakeMapping


@pytest.fixture
def mapping() -> CoffeeLakeMapping:
    return CoffeeLakeMapping()


class TestDecode:
    def test_num_banks(self, mapping):
        assert mapping.num_banks == 32

    def test_decode_zero(self, mapping):
        addr = mapping.decode(0)
        assert addr.bank == 0
        assert addr.row == 0
        assert addr.subchannel == 0
        assert addr.column == 0

    def test_row_field(self, mapping):
        decoded = mapping.decode(5 << 18)
        assert decoded.row == 5

    def test_bank_depends_on_row_bits(self, mapping):
        # Bank hashes XOR a low bit with a row bit, so walking rows in
        # the same 256 KB region changes the bank.
        banks = {mapping.decode(row << 18).bank for row in range(32)}
        assert len(banks) > 1

    def test_negative_address_rejected(self, mapping):
        with pytest.raises(ValueError):
            mapping.decode(-1)


class TestCompose:
    @given(
        subchannel=st.integers(0, 1),
        bank=st.integers(0, 31),
        row=st.integers(0, 2**16 - 1),
    )
    @settings(max_examples=200, deadline=None)
    def test_compose_decode_roundtrip(self, subchannel, bank, row):
        mapping = CoffeeLakeMapping()
        addr = mapping.compose(subchannel, bank, row)
        decoded = mapping.decode(addr)
        assert decoded.subchannel == subchannel
        assert decoded.bank == bank
        assert decoded.row == row

    def test_compose_requires_fixup_bits(self):
        bad = AddressMapping(bank_functions=[[20, 21]], subchannel_bits=[6])
        with pytest.raises(ValueError):
            bad.compose(0, 1, 0)


class TestGenericMapping:
    def test_single_bank_function(self):
        mapping = AddressMapping(
            bank_functions=[[13]], subchannel_bits=[6], row_shift=16, row_bits=8
        )
        assert mapping.num_banks == 2
        assert mapping.decode(1 << 13).bank == 1
        assert mapping.decode(0).bank == 0
