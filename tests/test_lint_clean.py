"""The lint gate: ``repro lint`` over ``src/`` reports zero findings.

This is the enforcement half of the static-analysis subsystem: the
rules themselves live in ``repro.analysis.lint`` and are unit-tested
against fixtures in ``tests/analysis/``; this test pins the *repo* to
a clean state so a PR that introduces an unseeded RNG, an unhashed
sweep axis, a non-numba kernel construct, an unregistered/undescribed
kind, or a leaky listener attachment fails CI even when no behavioral
test happens to cover the new code path.
"""

from __future__ import annotations

from pathlib import Path

import repro
from repro.analysis.lint import format_findings, rule_names, run_lint

REPO_ROOT = Path(repro.__file__).resolve().parents[2]


def test_src_is_lint_clean():
    result = run_lint(paths=[REPO_ROOT / "src"], root=REPO_ROOT)
    assert result.rules == rule_names()
    assert result.files > 0
    assert result.clean, "\n" + format_findings(result)


def test_cli_lint_exits_zero(capsys):
    from repro.cli import main

    code = main(["lint", "--root", str(REPO_ROOT),
                 str(REPO_ROOT / "src")])
    out = capsys.readouterr().out
    assert code == 0, out
    assert "0 findings" in out
