"""Tests for trace recording, persistence, and replay."""

import pytest

from repro.mitigations.moat import MoatPolicy
from repro.mitigations.null import NullPolicy
from repro.sim.engine import SimConfig, SubchannelSim
from repro.trace import ActivationTrace, TraceRecorder, replay


def small_sim(policy=NullPolicy) -> SubchannelSim:
    return SubchannelSim(
        SimConfig(rows_per_bank=1024, num_refresh_groups=128), policy
    )


class TestRecorder:
    def test_records_events_in_order(self):
        sim = small_sim()
        recorder = TraceRecorder(sim, metadata={"attack": "demo"})
        for row in (1, 2, 1):
            sim.activate(row)
        trace = recorder.stop()
        assert len(trace) == 3
        assert [row for _, _, row in trace] == [1, 2, 1]
        times = [t for t, _, _ in trace]
        assert times == sorted(times)
        assert trace.metadata == {"attack": "demo"}

    def test_stop_detaches(self):
        sim = small_sim()
        recorder = TraceRecorder(sim)
        sim.activate(1)
        recorder.stop()
        sim.activate(2)
        assert len(recorder.trace) == 1

    def test_rows_touched(self):
        trace = ActivationTrace(events=[(0.0, 0, 5), (52.0, 0, 5), (104.0, 0, 7)])
        assert trace.rows_touched() == {5: 2, 7: 1}

    def test_duration(self):
        trace = ActivationTrace(events=[(0.0, 0, 1), (99.0, 0, 2)])
        assert trace.duration_ns == 99.0
        assert ActivationTrace().duration_ns == 0.0


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        trace = ActivationTrace(
            events=[(0.0, 0, 5), (52.0, 1, 9)], metadata={"seed": 3}
        )
        path = tmp_path / "trace.jsonl"
        trace.save(path)
        loaded = ActivationTrace.load(path)
        assert loaded.events == trace.events
        assert loaded.metadata == {"seed": 3}

    def test_load_rejects_non_trace(self, tmp_path):
        path = tmp_path / "bogus.jsonl"
        path.write_text('{"hello": 1}\n')
        with pytest.raises(ValueError):
            ActivationTrace.load(path)

    def test_load_rejects_empty(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError):
            ActivationTrace.load(path)


class TestReplay:
    def test_replay_reproduces_counters(self):
        sim = small_sim()
        recorder = TraceRecorder(sim)
        for _ in range(10):
            sim.activate(7)
        trace = recorder.stop()

        fresh = small_sim()
        replay(trace, fresh)
        assert fresh.bank.prac_count(7) == 10
        assert fresh.total_acts == 10

    def test_replay_honors_idle_gaps(self):
        sim = small_sim()
        recorder = TraceRecorder(sim)
        sim.activate(1)
        sim.idle(50_000.0)
        sim.activate(1)
        trace = recorder.stop()

        fresh = small_sim()
        replay(trace, fresh, honor_timing=True)
        assert fresh.now >= 50_000.0

    def test_replay_against_different_policy(self):
        """Record against an unprotected bank, replay against MOAT: the
        same stream now triggers ALERTs."""
        sim = small_sim()
        recorder = TraceRecorder(sim)
        for _ in range(200):
            sim.activate(7)
        trace = recorder.stop()
        assert sim.alerts == 0

        protected = small_sim(lambda: MoatPolicy(ath=64))
        replay(trace, protected)
        assert protected.alerts >= 2
        assert protected.bank.max_danger <= 99


class TestAddressTrace:
    def small_mapping(self):
        from repro.sim.mapping import AddressMapping

        return AddressMapping(
            bank_functions=[[13, 18]],
            subchannel_bits=[6, 12],
            row_shift=18,
            row_bits=8,
            column_mask_bits=13,
        )

    def small_channel(self):
        from repro.mitigations.null import NullPolicy
        from repro.sim.channel import ChannelConfig, ChannelSim
        from repro.sim.engine import SimConfig

        mapping = self.small_mapping()
        return ChannelSim(
            ChannelConfig(
                sim=SimConfig(
                    num_banks=2, rows_per_bank=256, num_refresh_groups=128
                ),
                num_subchannels=2,
                mapping=mapping,
            ),
            NullPolicy,
        )

    def test_save_load_roundtrip(self, tmp_path):
        from repro.trace import AddressTrace, load_trace

        trace = AddressTrace(
            events=[(0.0, 1 << 18), (52.0, 5 << 18)],
            metadata={"workload": "demo"},
        )
        path = tmp_path / "t.jsonl"
        trace.save(path)
        loaded = load_trace(path)
        assert isinstance(loaded, AddressTrace)
        assert loaded.events == trace.events
        assert loaded.metadata == {"workload": "demo"}

    def test_load_trace_dispatches_to_activation(self, tmp_path):
        from repro.trace import load_trace

        trace = ActivationTrace(events=[(0.0, 0, 7)])
        path = tmp_path / "t.jsonl"
        trace.save(path)
        loaded = load_trace(path)
        assert isinstance(loaded, ActivationTrace)
        assert loaded.events == [(0.0, 0, 7)]

    def test_kind_mismatch_errors_are_actionable(self, tmp_path):
        from repro.trace import AddressTrace

        activation = tmp_path / "act.jsonl"
        ActivationTrace(events=[(0.0, 0, 1)]).save(activation)
        with pytest.raises(ValueError, match="load_trace"):
            AddressTrace.load(activation)
        address = tmp_path / "addr.jsonl"
        AddressTrace(events=[(0.0, 0)]).save(address)
        with pytest.raises(ValueError, match="load_trace"):
            ActivationTrace.load(address)

    def test_replay_demuxes_through_mapping(self):
        from repro.trace import AddressTrace, replay_addresses

        channel = self.small_channel()
        mapping = channel.mapping
        events = [
            (0.0, mapping.compose(0, 0, 10)),
            (60.0, mapping.compose(1, 1, 20)),
            (120.0, mapping.compose(1, 1, 20)),
        ]
        replay_addresses(AddressTrace(events=events), channel)
        assert channel.subchannels[0].banks[0].prac_count(10) == 1
        assert channel.subchannels[1].banks[1].prac_count(20) == 2
        assert channel.total_acts == 3

    def test_replay_honors_timing(self):
        from repro.trace import AddressTrace, replay_addresses

        channel = self.small_channel()
        mapping = channel.mapping
        trace = AddressTrace(
            events=[(0.0, mapping.compose(0, 0, 1)),
                    (90_000.0, mapping.compose(0, 0, 1))]
        )
        replay_addresses(trace, channel, honor_timing=True)
        assert channel.now >= 90_000.0


class TestRunTrace:
    def test_synthesized_trace_produces_metrics(self):
        from repro.sim.mapping import CoffeeLakeMapping
        from repro.sim.perf import RunConfig, run_trace
        from repro.workloads.generator import generate_address_trace
        from repro.workloads.profiles import profile_by_name

        mapping = CoffeeLakeMapping()
        trace = generate_address_trace(
            profile_by_name("tc"),
            mapping,
            n_trefi=64,
            banks_per_subchannel=2,
        )
        result = run_trace(trace, RunConfig(ath=64))
        assert result.workload == "tc"
        assert result.subchannels == mapping.num_subchannels
        assert result.total_acts >= len(trace)  # replay issued everything
        # Metrics normalize over the trace's logical window, not the
        # (possibly dilated) replay wall-clock.
        assert result.n_trefi == 64
        metrics = result.as_metrics()
        assert set(metrics) >= {"slowdown", "alerts_per_trefi"}

    def test_trace_replay_is_deterministic(self):
        from repro.sim.mapping import CoffeeLakeMapping
        from repro.sim.perf import RunConfig, run_trace
        from repro.workloads.generator import generate_address_trace
        from repro.workloads.profiles import profile_by_name

        mapping = CoffeeLakeMapping()
        trace = generate_address_trace(
            profile_by_name("tc"), mapping, n_trefi=32,
            banks_per_subchannel=1,
        )
        first = run_trace(trace, RunConfig())
        second = run_trace(trace, RunConfig())
        assert first.as_metrics() == second.as_metrics()
