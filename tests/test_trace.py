"""Tests for trace recording, persistence, and replay."""

import pytest

from repro.mitigations.moat import MoatPolicy
from repro.mitigations.null import NullPolicy
from repro.sim.engine import SimConfig, SubchannelSim
from repro.trace import ActivationTrace, TraceRecorder, replay


def small_sim(policy=NullPolicy) -> SubchannelSim:
    return SubchannelSim(
        SimConfig(rows_per_bank=1024, num_refresh_groups=128), policy
    )


class TestRecorder:
    def test_records_events_in_order(self):
        sim = small_sim()
        recorder = TraceRecorder(sim, metadata={"attack": "demo"})
        for row in (1, 2, 1):
            sim.activate(row)
        trace = recorder.stop()
        assert len(trace) == 3
        assert [row for _, _, row in trace] == [1, 2, 1]
        times = [t for t, _, _ in trace]
        assert times == sorted(times)
        assert trace.metadata == {"attack": "demo"}

    def test_stop_detaches(self):
        sim = small_sim()
        recorder = TraceRecorder(sim)
        sim.activate(1)
        recorder.stop()
        sim.activate(2)
        assert len(recorder.trace) == 1

    def test_rows_touched(self):
        trace = ActivationTrace(events=[(0.0, 0, 5), (52.0, 0, 5), (104.0, 0, 7)])
        assert trace.rows_touched() == {5: 2, 7: 1}

    def test_duration(self):
        trace = ActivationTrace(events=[(0.0, 0, 1), (99.0, 0, 2)])
        assert trace.duration_ns == 99.0
        assert ActivationTrace().duration_ns == 0.0


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        trace = ActivationTrace(
            events=[(0.0, 0, 5), (52.0, 1, 9)], metadata={"seed": 3}
        )
        path = tmp_path / "trace.jsonl"
        trace.save(path)
        loaded = ActivationTrace.load(path)
        assert loaded.events == trace.events
        assert loaded.metadata == {"seed": 3}

    def test_load_rejects_non_trace(self, tmp_path):
        path = tmp_path / "bogus.jsonl"
        path.write_text('{"hello": 1}\n')
        with pytest.raises(ValueError):
            ActivationTrace.load(path)

    def test_load_rejects_empty(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError):
            ActivationTrace.load(path)


class TestReplay:
    def test_replay_reproduces_counters(self):
        sim = small_sim()
        recorder = TraceRecorder(sim)
        for _ in range(10):
            sim.activate(7)
        trace = recorder.stop()

        fresh = small_sim()
        replay(trace, fresh)
        assert fresh.bank.prac_count(7) == 10
        assert fresh.total_acts == 10

    def test_replay_honors_idle_gaps(self):
        sim = small_sim()
        recorder = TraceRecorder(sim)
        sim.activate(1)
        sim.idle(50_000.0)
        sim.activate(1)
        trace = recorder.stop()

        fresh = small_sim()
        replay(trace, fresh, honor_timing=True)
        assert fresh.now >= 50_000.0

    def test_replay_against_different_policy(self):
        """Record against an unprotected bank, replay against MOAT: the
        same stream now triggers ALERTs."""
        sim = small_sim()
        recorder = TraceRecorder(sim)
        for _ in range(200):
            sim.activate(7)
        trace = recorder.stop()
        assert sim.alerts == 0

        protected = small_sim(lambda: MoatPolicy(ath=64))
        replay(trace, protected)
        assert protected.alerts >= 2
        assert protected.bank.max_danger <= 99
