"""In-DRAM Rowhammer mitigation policies.

The paper's contribution (:class:`~repro.mitigations.moat.MoatPolicy`)
plus everything it is compared against or motivated by:

* :class:`~repro.mitigations.panopticon.PanopticonPolicy` — the queue
  design broken by the Jailbreak pattern (Section 3), including the
  Drain-All-Entries-on-REF variant from Appendix B.
* :class:`~repro.mitigations.ideal_perrow.IdealPerRowPolicy` — the
  transparent per-row-counter scheme bounded by feinting (Table 2).
* :class:`~repro.mitigations.trr.TrrTracker` and
  :class:`~repro.mitigations.para.ParaPolicy` — representative low-cost
  trackers from Section 2.4, breakable by many-aggressor patterns.
* :class:`~repro.mitigations.null.NullPolicy` — no mitigation baseline.
"""

from repro.mitigations.base import MitigationPolicy
from repro.mitigations.graphene import (
    graphene_entries_required,
    graphene_sram_bytes,
    make_graphene,
)
from repro.mitigations.ideal_perrow import IdealPerRowPolicy
from repro.mitigations.moat import MoatPolicy, TrackerEntry
from repro.mitigations.null import NullPolicy
from repro.mitigations.panopticon import PanopticonPolicy
from repro.mitigations.para import ParaPolicy
from repro.mitigations.registry import PolicySpec, RunParams, policy_kinds
from repro.mitigations.trr import TrrTracker
from repro.mitigations.victim_counter import VictimCounterPolicy

__all__ = [
    "MitigationPolicy",
    "IdealPerRowPolicy",
    "MoatPolicy",
    "TrackerEntry",
    "NullPolicy",
    "PanopticonPolicy",
    "ParaPolicy",
    "PolicySpec",
    "RunParams",
    "TrrTracker",
    "policy_kinds",
    "VictimCounterPolicy",
    "graphene_entries_required",
    "graphene_sram_bytes",
    "make_graphene",
]
