"""Declarative mitigation-policy specifications.

The performance front-end and the sweep runner describe a policy as a
:class:`PolicySpec` — a picklable ``(kind, params)`` pair — instead of
a factory closure, so run configurations can cross process boundaries
(``ProcessPoolExecutor`` workers), be hashed into cache keys, and be
serialized into sweep artifacts. :meth:`PolicySpec.make_factory` turns
a spec back into the zero-argument per-bank factory the simulator
expects, resolving run-level parameters (ATH, ETH, ABO level, seed)
from the run configuration at build time.

Registered kinds and their run-parameter mapping:

========== ============================================================
``moat``       ``MoatPolicy(ath, eth, level)`` from the run config.
``panopticon`` ``PanopticonPolicy``; ``queue_threshold`` defaults to
               the largest power of two <= ATH.
``para``       ``ParaPolicy``; per-bank RNG derived from the run seed.
``trr``        ``TrrTracker``; ``mitigation_threshold`` defaults to
               ETH (the proactive-eligibility threshold).
``graphene``   Securely sized Misra-Gries tracker for ``trh``
               (default ``2 * ath``).
``victim-counter`` ``VictimCounterPolicy``; proactive threshold ETH.
``null``       ``NullPolicy`` (unprotected baseline).
========== ============================================================

Each kind also carries the proactive-mitigation cadence it needs
(``trefi_per_mitigation``): 5 for MOAT (4 victim refreshes plus the
counter-reset ACT), 4 for Panopticon, 1 for the inline/streaming
designs, 0 (disabled) for the null baseline.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, Tuple

from repro.mitigations.base import MitigationPolicy
from repro.mitigations.graphene import make_graphene
from repro.mitigations.moat import MoatPolicy
from repro.mitigations.null import NullPolicy
from repro.mitigations.panopticon import PanopticonPolicy
from repro.mitigations.para import ParaPolicy
from repro.mitigations.trr import TrrTracker
from repro.mitigations.victim_counter import VictimCounterPolicy


@dataclass(frozen=True)
class RunParams:
    """Run-level parameters a policy builder may consume.

    Decouples the registry from the perf front-end's ``RunConfig``
    (which also carries simulation-scale knobs the builders never
    read).
    """

    ath: int = 64
    eth: int = 32
    abo_level: int = 1
    seed: int = 0
    timing: Any = None


#: A builder maps (run params, per-bank instance index, **spec params)
#: to a fresh policy instance.
PolicyBuilder = Callable[..., MitigationPolicy]


@dataclass(frozen=True)
class _PolicyKind:
    name: str
    builder: PolicyBuilder
    #: Default REF periods per completed proactive mitigation.
    trefi_per_mitigation: int
    #: One-line description surfaced by ``repro perf --list-policies``.
    description: str = ""


def _build_moat(run: RunParams, index: int, **params: Any) -> MitigationPolicy:
    return MoatPolicy(
        ath=params.get("ath", run.ath),
        eth=params.get("eth", run.eth),
        level=params.get("level", run.abo_level),
    )


def _floor_pow2(value: int) -> int:
    return 1 << (max(1, value).bit_length() - 1)


def _build_panopticon(run: RunParams, index: int, **params: Any) -> MitigationPolicy:
    return PanopticonPolicy(
        queue_threshold=params.get("queue_threshold", _floor_pow2(run.ath)),
        queue_entries=params.get("queue_entries", 8),
        drain_all_on_ref=params.get("drain_all_on_ref", False),
    )


def _build_para(run: RunParams, index: int, **params: Any) -> MitigationPolicy:
    # Deterministic per-bank stream: same (seed, bank index) => same
    # mitigation choices, independent of execution order or process.
    rng = random.Random((run.seed + 1) * 0x9E3779B9 + index)
    return ParaPolicy(probability=params.get("probability", 0.001), rng=rng)


def _build_trr(run: RunParams, index: int, **params: Any) -> MitigationPolicy:
    return TrrTracker(
        entries=params.get("entries", 16),
        mitigation_threshold=params.get("mitigation_threshold", max(1, run.eth)),
    )


def _build_graphene(run: RunParams, index: int, **params: Any) -> MitigationPolicy:
    kwargs: Dict[str, Any] = {"trh": params.get("trh", 2 * run.ath)}
    if run.timing is not None:
        kwargs["timing"] = run.timing
    return make_graphene(**kwargs)


def _build_victim_counter(run: RunParams, index: int, **params: Any) -> MitigationPolicy:
    return VictimCounterPolicy(
        blast_radius=params.get("blast_radius", 2),
        eth=params.get("eth", run.eth),
    )


def _build_null(run: RunParams, index: int, **params: Any) -> MitigationPolicy:
    return NullPolicy()


_REGISTRY: Dict[str, _PolicyKind] = {
    kind.name: kind
    for kind in (
        _PolicyKind(
            "moat", _build_moat, 5,
            "dual-threshold per-row counters, one tracked entry (paper §4)",
        ),
        _PolicyKind(
            "panopticon", _build_panopticon, 4,
            "queue-on-threshold per-row counters (paper §2.5)",
        ),
        _PolicyKind(
            "para", _build_para, 1,
            "probabilistic adjacent-row refresh, stateless",
        ),
        _PolicyKind(
            "trr", _build_trr, 1,
            "DDR4-era Misra-Gries SRAM tracker (16 entries)",
        ),
        _PolicyKind(
            "graphene", _build_graphene, 1,
            "securely sized Misra-Gries tracker (Figure 1a corner)",
        ),
        _PolicyKind(
            "victim-counter", _build_victim_counter, 5,
            "TRR-Ideal per-victim disturbance counters (paper §8)",
        ),
        _PolicyKind(
            "null", _build_null, 0,
            "unprotected baseline (no tracking, no mitigation)",
        ),
    )
}


def policy_kinds() -> Tuple[str, ...]:
    """Registered policy kind names."""
    return tuple(_REGISTRY)


def policy_descriptions() -> Dict[str, Dict[str, object]]:
    """Registry-driven summary for CLI listings: ``{kind: {...}}``.

    The CLI renders this directly, so help output can never drift from
    the registry contents.
    """
    return {
        kind.name: {
            "description": kind.description,
            "trefi_per_mitigation": kind.trefi_per_mitigation,
        }
        for kind in _REGISTRY.values()
    }


@dataclass(frozen=True)
class PolicySpec:
    """Declarative, hashable, picklable policy description.

    ``params`` is a sorted tuple of ``(name, value)`` pairs so two
    specs with the same parameters compare (and hash) equal regardless
    of construction order. Use :meth:`of` to build one from kwargs.
    """

    kind: str = "moat"
    params: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in _REGISTRY:
            raise ValueError(
                f"unknown policy kind {self.kind!r}; "
                f"known: {', '.join(sorted(_REGISTRY))}"
            )
        object.__setattr__(self, "params", tuple(sorted(self.params)))

    @staticmethod
    def of(kind: str, **params: Any) -> "PolicySpec":
        return PolicySpec(kind, tuple(sorted(params.items())))

    def param_dict(self) -> Dict[str, Any]:
        return dict(self.params)

    @property
    def default_trefi_per_mitigation(self) -> int:
        return _REGISTRY[self.kind].trefi_per_mitigation

    def display_name(self) -> str:
        if not self.params:
            return self.kind
        inner = ",".join(f"{k}={v}" for k, v in self.params)
        return f"{self.kind}({inner})"

    def make_factory(self, run: RunParams) -> Callable[[], MitigationPolicy]:
        """Zero-argument per-bank policy factory for the simulator.

        Successive calls get increasing instance indices, so stateful
        randomness (PARA) stays deterministic per bank.
        """
        kind = _REGISTRY[self.kind]
        params = self.param_dict()
        counter = iter(range(1 << 30))

        def factory() -> MitigationPolicy:
            return kind.builder(run, next(counter), **params)

        return factory
