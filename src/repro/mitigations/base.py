"""Base interface for in-DRAM mitigation policies.

A policy observes activations on its bank (through the defense-visible
counter value supplied by the refresh engine), selects aggressor rows
for *proactive* mitigation (performed transparently during REF at a
fixed rate) and may request *reactive* mitigation through the ABO ALERT
mechanism. The simulator owns the clock and the bank; the policy owns
only its SRAM-resident tracking state.
"""

from __future__ import annotations

import abc
from array import array
from typing import Dict, Iterator, List, Optional, Tuple


class CounterTable:
    """Preallocated flat per-row counter table with dict-like order.

    Policies that keep one counter per row (victim counting, per-row
    shadow state) used to store them in a dict keyed by row; at
    workload scale the per-activation hash churn dominates the hot
    path. This table preallocates one array slot per row for O(1)
    unhashed increments while preserving the *observable semantics* of
    an insertion-ordered dict — first-touch iteration order, first-max
    ``argmax`` tie-breaking, re-insertion after removal moving a row to
    the back — so a policy switched onto it produces bit-identical
    simulation results.

    Removal is lazy: a removed row's slot is zeroed and its order entry
    goes stale; the order list is compacted once stale entries dominate,
    bounding iteration cost at twice the live-row count.
    """

    __slots__ = ("counts", "_order", "_pos", "_live", "_stale")

    def __init__(self, num_rows: int) -> None:
        if num_rows <= 0:
            raise ValueError("num_rows must be positive")
        #: Flat counter per row; index directly for hot-path reads.
        self.counts = array("q", bytes(8 * num_rows))
        #: Rows in first-touch order; may contain stale entries.
        self._order: List[int] = []
        #: A row's live position in ``_order`` (-1 = not present).
        self._pos = array("q", [-1]) * num_rows
        self._live = 0
        self._stale = 0

    def __len__(self) -> int:
        return self._live

    def __contains__(self, row: int) -> bool:
        return self._pos[row] >= 0

    def get(self, row: int) -> int:
        """Count for ``row`` (0 when untracked)."""
        return self.counts[row]

    def increment(self, row: int, delta: int = 1) -> int:
        """Add ``delta`` to ``row``'s counter, tracking it if new."""
        if self._pos[row] < 0:
            self._pos[row] = len(self._order)
            self._order.append(row)
            self._live += 1
        count = self.counts[row] + delta
        self.counts[row] = count
        return count

    def remove(self, row: int) -> bool:
        """Drop ``row``'s counter; returns whether it was tracked."""
        if self._pos[row] < 0:
            return False
        self._pos[row] = -1
        self.counts[row] = 0
        self._live -= 1
        self._stale += 1
        if self._stale > self._live and self._stale > 64:
            self._compact()
        return True

    def _compact(self) -> None:
        pos = self._pos
        order = [row for i, row in enumerate(self._order) if pos[row] == i]
        self._order = order
        for i, row in enumerate(order):
            pos[row] = i
        self._stale = 0

    def items(self) -> Iterator[Tuple[int, int]]:
        """Live ``(row, count)`` pairs in first-touch order."""
        pos = self._pos
        counts = self.counts
        for i, row in enumerate(self._order):
            if pos[row] == i:
                yield row, counts[row]

    def argmax(self) -> Optional[Tuple[int, int]]:
        """The first-touched row holding the maximal count, or ``None``
        when the table is empty (ties resolve to the earliest touch,
        like ``max`` over an insertion-ordered dict)."""
        best_row = -1
        best_count = 0
        pos = self._pos
        counts = self.counts
        for i, row in enumerate(self._order):
            if pos[row] == i:
                count = counts[row]
                if best_row < 0 or count > best_count:
                    best_row = row
                    best_count = count
        if best_row < 0:
            return None
        return best_row, best_count

    def max_count(self) -> int:
        """Largest live count (0 when empty)."""
        found = self.argmax()
        return found[1] if found else 0

    def as_dict(self) -> Dict[int, int]:
        """Dict snapshot in first-touch order (tests, reporting)."""
        return dict(self.items())

    def counts_view(self):
        """Zero-copy int64 numpy view of the flat counter table.

        The view aliases :attr:`counts`, so scatter/gather updates
        through it are visible to the table (and vice versa); the
        order bookkeeping is untouched, so kernels must only update
        rows that are already tracked. Requires numpy (kernel
        backends only — the pure path never calls this).
        """
        import numpy as np

        return np.frombuffer(self.counts, dtype=np.int64)


class MitigationPolicy(abc.ABC):
    """Abstract in-DRAM Rowhammer mitigation policy (one per bank)."""

    #: Human-readable policy name, used in reports.
    name: str = "abstract"
    #: Set by policies that need the list of refreshed rows in
    #: :meth:`on_ref` (the engine skips materializing it otherwise).
    wants_refresh_notifications: bool = False

    def __init__(self) -> None:
        #: Set when the policy wants an ALERT; the simulator forwards it
        #: to the ABO protocol and clears it when the ALERT is serviced.
        self.alert_requested = False
        #: Counters for reporting.
        self.proactive_mitigations = 0
        self.reactive_mitigations = 0

    # ------------------------------------------------------------------
    # Event hooks
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def on_activate(self, row: int, count: int) -> None:
        """Observe an activation of ``row`` with defense-visible ``count``.

        ``count`` already includes this activation (PRAC performs the
        read-modify-write during the precharge of this very access).
        The policy may set :attr:`alert_requested` here.
        """

    @abc.abstractmethod
    def select_proactive(self) -> Optional[int]:
        """Pick the aggressor row to mitigate at a mitigation-period
        boundary, or ``None`` if nothing is eligible.

        The simulator performs the actual victim refresh and then calls
        :meth:`on_mitigated`.
        """

    @abc.abstractmethod
    def select_reactive(self, max_rows: int) -> List[int]:
        """Pick up to ``max_rows`` aggressor rows to mitigate during an
        ALERT's RFM commands (``max_rows`` equals the ABO level)."""

    def needs_alert(self) -> bool:
        """Re-sampled ALERT condition: does the policy still hold state
        that requires reactive mitigation? Consulted after an ALERT
        episode completes, so a request whose trigger was already
        serviced does not fire a spurious follow-up ALERT."""
        return False

    def on_mitigated(self, row: int) -> None:
        """Notification that ``row`` was mitigated (victims refreshed,
        counter reset). Policies drop any tracking state for the row."""

    def on_ref(self, refreshed_rows: List[int]) -> None:
        """Notification that a refresh group was refreshed (counters in
        it may have been reset). Most policies ignore this."""

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def sram_bytes(self) -> int:
        """SRAM cost of the policy's tracking state, in bytes per bank."""
        return 0

    def describe(self) -> str:
        return f"{self.name} (SRAM: {self.sram_bytes()} B/bank)"
