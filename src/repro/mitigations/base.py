"""Base interface for in-DRAM mitigation policies.

A policy observes activations on its bank (through the defense-visible
counter value supplied by the refresh engine), selects aggressor rows
for *proactive* mitigation (performed transparently during REF at a
fixed rate) and may request *reactive* mitigation through the ABO ALERT
mechanism. The simulator owns the clock and the bank; the policy owns
only its SRAM-resident tracking state.
"""

from __future__ import annotations

import abc
from typing import List, Optional


class MitigationPolicy(abc.ABC):
    """Abstract in-DRAM Rowhammer mitigation policy (one per bank)."""

    #: Human-readable policy name, used in reports.
    name: str = "abstract"
    #: Set by policies that need the list of refreshed rows in
    #: :meth:`on_ref` (the engine skips materializing it otherwise).
    wants_refresh_notifications: bool = False

    def __init__(self) -> None:
        #: Set when the policy wants an ALERT; the simulator forwards it
        #: to the ABO protocol and clears it when the ALERT is serviced.
        self.alert_requested = False
        #: Counters for reporting.
        self.proactive_mitigations = 0
        self.reactive_mitigations = 0

    # ------------------------------------------------------------------
    # Event hooks
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def on_activate(self, row: int, count: int) -> None:
        """Observe an activation of ``row`` with defense-visible ``count``.

        ``count`` already includes this activation (PRAC performs the
        read-modify-write during the precharge of this very access).
        The policy may set :attr:`alert_requested` here.
        """

    @abc.abstractmethod
    def select_proactive(self) -> Optional[int]:
        """Pick the aggressor row to mitigate at a mitigation-period
        boundary, or ``None`` if nothing is eligible.

        The simulator performs the actual victim refresh and then calls
        :meth:`on_mitigated`.
        """

    @abc.abstractmethod
    def select_reactive(self, max_rows: int) -> List[int]:
        """Pick up to ``max_rows`` aggressor rows to mitigate during an
        ALERT's RFM commands (``max_rows`` equals the ABO level)."""

    def needs_alert(self) -> bool:
        """Re-sampled ALERT condition: does the policy still hold state
        that requires reactive mitigation? Consulted after an ALERT
        episode completes, so a request whose trigger was already
        serviced does not fire a spurious follow-up ALERT."""
        return False

    def on_mitigated(self, row: int) -> None:
        """Notification that ``row`` was mitigated (victims refreshed,
        counter reset). Policies drop any tracking state for the row."""

    def on_ref(self, refreshed_rows: List[int]) -> None:
        """Notification that a refresh group was refreshed (counters in
        it may have been reset). Most policies ignore this."""

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def sram_bytes(self) -> int:
        """SRAM cost of the policy's tracking state, in bytes per bank."""
        return 0

    def describe(self) -> str:
        return f"{self.name} (SRAM: {self.sram_bytes()} B/bank)"
