"""Victim-counting mitigation (TRR-Ideal, ProTRR — paper Section 8).

The paper contrasts MOAT's *activation counting* with ProTRR's
hypothetical TRR-Ideal, which (a) keeps a counter per *victim* row,
(b) increments the counters of all four neighbours on each activation,
and (c) refreshes the row with the globally maximal victim count at
each mitigation opportunity. The simulation stores the counters in a
preallocated :class:`~repro.mitigations.base.CounterTable` (one flat
slot per row), mirroring the design's per-row storage.

Victim counting has one semantic advantage activation counting lacks:
a victim squeezed between two aggressors (double-sided hammering)
accumulates both sides in one counter, so the tolerated threshold is
per-victim rather than per-aggressor. Its costs are why MOAT rejects
it: every activation performs four counter updates (instead of one),
and selecting the global maximum requires scanning all counters —
impractical in DRAM. It also remains feinting-bounded like any purely
transparent scheme (Table 2).

Policies of this type set ``mitigation_refreshes_row_directly``: the
engine refreshes the *selected row itself* (it is the victim) rather
than its neighbourhood.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.mitigations.base import CounterTable, MitigationPolicy


class VictimCounterPolicy(MitigationPolicy):
    """TRR-Ideal: per-victim disturbance counters, mitigate-max.

    Args:
        blast_radius: Neighbourhood updated per activation (2 = four
            victim counters per ACT, as in the paper's mitigation).
        eth: Minimum victim count worth refreshing proactively.
        num_rows: Bank size, for clamping the neighbourhood at edges.
    """

    name = "TRR-Ideal (victim counting)"
    wants_refresh_notifications = True
    #: The engine refreshes the selected row directly (it is a victim),
    #: instead of victim-refreshing its neighbourhood.
    mitigation_refreshes_row_directly = True

    def __init__(
        self,
        blast_radius: int = 2,
        eth: int = 0,
        num_rows: int = 64 * 1024,
    ) -> None:
        super().__init__()
        if blast_radius < 1:
            raise ValueError("blast_radius must be at least 1")
        self.blast_radius = blast_radius
        self.eth = eth
        self.num_rows = num_rows
        #: Disturbance counters: one preallocated slot per victim row
        #: (dict-order semantics preserved — see CounterTable).
        self._table = CounterTable(num_rows)

    @property
    def victim_counts(self) -> Dict[int, int]:
        """Tracked victim counters as a dict (inspection view)."""
        return self._table.as_dict()

    def on_activate(self, row: int, count: int) -> None:
        # ``count`` is the aggressor's activation count; victim
        # counting ignores it and charges the neighbours instead.
        low = max(0, row - self.blast_radius)
        high = min(self.num_rows - 1, row + self.blast_radius)
        increment = self._table.increment
        for victim in range(low, high + 1):
            if victim != row:
                increment(victim)

    def select_proactive(self) -> Optional[int]:
        found = self._table.argmax()
        if found is None:
            return None
        victim, count = found
        if count <= self.eth:
            return None
        self._table.remove(victim)
        return victim

    def select_reactive(self, max_rows: int) -> List[int]:
        return []

    def on_ref(self, refreshed_rows: List[int]) -> None:
        # A refreshed victim's disturbance counter resets with its data.
        remove = self._table.remove
        for row in refreshed_rows:
            remove(row)

    def max_victim_count(self) -> int:
        """Largest tracked disturbance count (for tests/analysis)."""
        return self._table.max_count()

    def sram_bytes(self) -> int:
        """Not SRAM-implementable: needs a counter per row plus a
        global max scan (the paper's reason to reject the design)."""
        return 0
