"""TRR-style low-cost SRAM tracker (Misra-Gries frequent-item sketch).

Represents the DDR4-era class of in-DRAM trackers with a handful of
SRAM entries (TRR: 1-30 entries, DSAC: 20, PAT: 8 — paper Section 2.4).
The tracker keeps ``entries`` (row, count) pairs with Misra-Gries
decrement-on-conflict eviction, and mitigates its strongest candidate
each mitigation period.

A Misra-Gries sketch with ``e`` entries only guarantees detection of
rows exceeding ``total_acts / (e + 1)`` activations; an attacker using
more than ``e`` aggressor (or decoy) rows — TRRespass / Blacksmith
style — keeps every count near zero and the tracker blind, which is
exactly what the motivation benchmarks demonstrate.

The table is stored as preallocated parallel arrays (row addresses,
counts) plus a row-to-slot index — the SRAM register file, not a
per-row hash. Slot order is insertion order, so the selection and
eviction tie-breaks are identical to the original dict-backed
implementation (securely sized Graphene instances carry thousands of
entries, where the flat decrement-all sweep matters).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.mitigations.base import MitigationPolicy


class TrrTracker(MitigationPolicy):
    """N-entry Misra-Gries tracker with mitigate-max service.

    Args:
        entries: SRAM tracker capacity (default 16, mid-range for DDR4
            TRR implementations).
        mitigation_threshold: Minimum tracked count for a row to be
            mitigated when its turn comes.
    """

    def __init__(self, entries: int = 16, mitigation_threshold: int = 32) -> None:
        super().__init__()
        if entries <= 0:
            raise ValueError("entries must be positive")
        self.entries = entries
        self.mitigation_threshold = mitigation_threshold
        self.name = f"TRR({entries} entries)"
        #: Register file: parallel (row, count) arrays with ``_fill``
        #: live slots in insertion order, plus a row -> slot index.
        self._rows: List[int] = [0] * entries
        self._counts: List[int] = [0] * entries
        self._fill = 0
        self._slot: Dict[int, int] = {}

    @property
    def _table(self) -> Dict[int, int]:
        """Inspection view: tracked rows -> counts, insertion order."""
        return {
            self._rows[i]: self._counts[i] for i in range(self._fill)
        }

    def on_activate(self, row: int, count: int) -> None:
        slot = self._slot.get(row)
        if slot is not None:
            self._counts[slot] += 1
            return
        fill = self._fill
        if fill < self.entries:
            self._rows[fill] = row
            self._counts[fill] = 1
            self._slot[row] = fill
            self._fill = fill + 1
            return
        # Misra-Gries: decrement everyone; compact out the zeros
        # (stable, so surviving slots keep their insertion order).
        rows, counts = self._rows, self._counts
        keep = 0
        for i in range(fill):
            c = counts[i] - 1
            if c > 0:
                rows[keep] = rows[i]
                counts[keep] = c
                keep += 1
        if keep != fill:
            self._fill = keep
            self._reindex()

    def _reindex(self) -> None:
        self._slot.clear()
        for i in range(self._fill):
            self._slot[self._rows[i]] = i

    def select_proactive(self) -> Optional[int]:
        fill = self._fill
        if not fill:
            return None
        counts = self._counts
        best = 0
        for i in range(1, fill):
            if counts[i] > counts[best]:
                best = i
        if counts[best] < self.mitigation_threshold:
            return None
        rows = self._rows
        row = rows[best]
        for i in range(best + 1, fill):
            rows[i - 1] = rows[i]
            counts[i - 1] = counts[i]
        self._fill = fill - 1
        self._reindex()
        return row

    def select_reactive(self, max_rows: int) -> List[int]:
        return []

    def sram_bytes(self) -> int:
        """3 bytes per entry (2 B row address + 1 B count)."""
        return 3 * self.entries
