"""TRR-style low-cost SRAM tracker (Misra-Gries frequent-item sketch).

Represents the DDR4-era class of in-DRAM trackers with a handful of
SRAM entries (TRR: 1-30 entries, DSAC: 20, PAT: 8 — paper Section 2.4).
The tracker keeps ``entries`` (row, count) pairs with Misra-Gries
decrement-on-conflict eviction, and mitigates its strongest candidate
each mitigation period.

A Misra-Gries sketch with ``e`` entries only guarantees detection of
rows exceeding ``total_acts / (e + 1)`` activations; an attacker using
more than ``e`` aggressor (or decoy) rows — TRRespass / Blacksmith
style — keeps every count near zero and the tracker blind, which is
exactly what the motivation benchmarks demonstrate.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.mitigations.base import MitigationPolicy


class TrrTracker(MitigationPolicy):
    """N-entry Misra-Gries tracker with mitigate-max service.

    Args:
        entries: SRAM tracker capacity (default 16, mid-range for DDR4
            TRR implementations).
        mitigation_threshold: Minimum tracked count for a row to be
            mitigated when its turn comes.
    """

    def __init__(self, entries: int = 16, mitigation_threshold: int = 32) -> None:
        super().__init__()
        if entries <= 0:
            raise ValueError("entries must be positive")
        self.entries = entries
        self.mitigation_threshold = mitigation_threshold
        self.name = f"TRR({entries} entries)"
        self._table: Dict[int, int] = {}

    def on_activate(self, row: int, count: int) -> None:
        table = self._table
        if row in table:
            table[row] += 1
        elif len(table) < self.entries:
            table[row] = 1
        else:
            # Misra-Gries: decrement everyone; drop zeros.
            for key in list(table):
                table[key] -= 1
                if table[key] <= 0:
                    del table[key]

    def select_proactive(self) -> Optional[int]:
        if not self._table:
            return None
        row, count = max(self._table.items(), key=lambda item: item[1])
        if count < self.mitigation_threshold:
            return None
        del self._table[row]
        return row

    def select_reactive(self, max_rows: int) -> List[int]:
        return []

    def sram_bytes(self) -> int:
        """3 bytes per entry (2 B row address + 1 B count)."""
        return 3 * self.entries
