"""PARA: probabilistic adjacent-row activation (Kim et al., ISCA 2014).

On every activation, with probability ``p`` the policy immediately
refreshes the activated row's neighbours. PARA needs no SRAM but gives
only probabilistic protection: the chance that an aggressor receives
``T`` activations with no mitigation is ``(1 - p)^T``, so tolerating a
low threshold with high assurance needs a large ``p`` and hence a large
activation-bandwidth overhead. It is included as the stateless point in
the design space of Section 2.4 / Figure 1(a).
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.mitigations.base import MitigationPolicy


class ParaPolicy(MitigationPolicy):
    """Stateless probabilistic mitigation.

    Args:
        probability: Per-activation mitigation probability ``p``.
        rng: Random source (seedable for reproducibility).
    """

    def __init__(self, probability: float = 0.001, rng: Optional[random.Random] = None) -> None:
        super().__init__()
        if not 0.0 <= probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        self.probability = probability
        self.name = f"PARA(p={probability})"
        self._rng = rng or random.Random(0)
        #: Row chosen for immediate mitigation (consumed by the engine
        #: through select_proactive on the very next opportunity; PARA
        #: conceptually mitigates inline but the engine API funnels all
        #: mitigation through selection hooks).
        self._pending: List[int] = []

    def on_activate(self, row: int, count: int) -> None:
        if self._rng.random() < self.probability:
            self._pending.append(row)

    def select_proactive(self) -> Optional[int]:
        if self._pending:
            return self._pending.pop(0)
        return None

    def select_reactive(self, max_rows: int) -> List[int]:
        return []

    def failure_probability(self, threshold: int) -> float:
        """Probability an aggressor reaches ``threshold`` unmitigated."""
        return (1.0 - self.probability) ** threshold

    def sram_bytes(self) -> int:
        return 0
