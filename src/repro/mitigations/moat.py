"""MOAT: dual-threshold mitigation with a single tracked entry per bank.

MOAT (paper Section 4) leverages the observation that proactive
mitigation during REF can service at most one aggressor row per
mitigation period, so a multi-entry queue only adds insertion-to-
mitigation vulnerability (the Jailbreak window). Instead MOAT keeps:

* **CTA** (Current Tracked Address) — one register holding the row with
  the highest defense-visible count seen this mitigation period (only
  rows whose count exceeds **ETH**, the eligibility threshold, are
  considered — this caps mitigation energy).
* **CMA** (Currently Mitigated Address) — the row latched from the CTA
  at the previous period boundary, whose victims are being refreshed
  over the current period.

If any observed count exceeds **ATH** (the ALERT threshold), the row is
force-tracked and an ABO ALERT is requested; the row is mitigated
reactively during the ALERT's RFM. ATH therefore bounds the tolerated
Rowhammer threshold (Section 5 adds the delayed-ALERT correction).

Appendix D generalizes MOAT to ABO levels 2 and 4: the tracker holds
``level`` entries (replace-minimum on insert, mitigate-maximum on
service) so one ALERT can supply enough work for ``level`` RFMs.

SRAM cost (Section 6.5 / Appendix D): 3 bytes per tracker entry, 2 for
the CMA, and 2 for the safe-reset shadow counters — 7 bytes per bank at
level 1, 10 at level 2, 16 at level 4.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.mitigations.base import MitigationPolicy


@dataclass
class TrackerEntry:
    """One CTA-style tracker slot: a row address and its counter copy.

    Kept as the *inspection* view of the tracker: the live tracker
    state is a pair of preallocated parallel arrays (the hardware's
    register file), and :attr:`MoatPolicy.tracker` materializes entries
    on demand.
    """

    row: int
    count: int


class MoatPolicy(MitigationPolicy):
    """MOAT with dual thresholds (ETH/ATH), generalized to ABO level L.

    Args:
        ath: ALERT threshold. A row observed above ``ath`` triggers an
            ABO ALERT (paper default 64).
        eth: Eligibility threshold for proactive mitigation (paper
            default ``ath // 2``).
        level: ABO mitigation level (1, 2, or 4); the tracker holds this
            many entries (Appendix D). Default 1 — the recommended
            configuration.
    """

    def __init__(self, ath: int = 64, eth: Optional[int] = None, level: int = 1) -> None:
        super().__init__()
        if level not in (1, 2, 4):
            raise ValueError(f"level must be 1, 2, or 4, got {level}")
        if ath <= 0:
            raise ValueError("ath must be positive")
        self.ath = ath
        self.eth = ath // 2 if eth is None else eth
        if not 0 <= self.eth <= self.ath:
            raise ValueError("require 0 <= eth <= ath")
        self.level = level
        self.name = f"MOAT-L{level}(ATH={ath},ETH={self.eth})"
        #: Tracker register file: preallocated parallel arrays (row
        #: address, counter copy), ``_fill`` slots live. Flat state
        #: keeps the per-ACT hot path free of object allocation; the
        #: ``array('q')`` layout additionally exposes the registers to
        #: compiled kernels as zero-copy int64 views (see
        #: :meth:`state_views`).
        self._rows = array("q", bytes(8 * level))
        self._counts = array("q", bytes(8 * level))
        self._fill = 0
        self._views: Optional[Tuple] = None
        #: Row currently undergoing proactive mitigation (CMA register).
        self.cma: Optional[int] = None
        #: Count of ALERT requests raised (episodes, not rows).
        self.alerts_requested = 0

    @property
    def tracker(self) -> List[TrackerEntry]:
        """Inspection view of the live tracker slots (CTA at level 1)."""
        return [
            TrackerEntry(self._rows[i], self._counts[i])
            for i in range(self._fill)
        ]

    def state_views(self):
        """Zero-copy int64 numpy views ``(rows, counts)`` of the tracker.

        The views alias the live register file, so a kernel that
        mutates them mutates the policy; only :attr:`_fill` needs
        explicit synchronization after a kernel call. Requires numpy
        (kernel backends only — the pure path never calls this).
        """
        if self._views is None:
            import numpy as np

            self._views = (
                np.frombuffer(self._rows, dtype=np.int64),
                np.frombuffer(self._counts, dtype=np.int64),
            )
        return self._views

    # ------------------------------------------------------------------
    # Tracking
    # ------------------------------------------------------------------

    def _slot_of(self, row: int) -> int:
        rows = self._rows
        for i in range(self._fill):
            if rows[i] == row:
                return i
        return -1

    def _insert(self, row: int, count: int, only_if_stronger: bool = False) -> None:
        """Fill a free slot, or displace the weakest entry (first
        minimal in slot order, matching hardware replace-minimum).

        With ``only_if_stronger`` the displacement happens only when
        ``count`` beats the weakest entry (the normal insertion rule);
        force-tracking displaces unconditionally.
        """
        fill = self._fill
        if fill < self.level:
            self._rows[fill] = row
            self._counts[fill] = count
            self._fill = fill + 1
            return
        counts = self._counts
        weakest = 0
        for i in range(1, fill):
            if counts[i] < counts[weakest]:
                weakest = i
        if only_if_stronger and count <= counts[weakest]:
            return
        self._rows[weakest] = row
        counts[weakest] = count

    def on_activate(self, row: int, count: int) -> None:
        slot = self._slot_of(row)
        if slot >= 0:
            # The tracker keeps a live copy of the row's counter.
            self._counts[slot] = count
        elif count > self.eth:
            self._insert(row, count, only_if_stronger=True)
        if count > self.ath and not self.alert_requested:
            # Force-track the offending row so the reactive mitigation
            # is guaranteed to service it.
            if self._slot_of(row) < 0:
                self._insert(row, count)
            self.alert_requested = True
            self.alerts_requested += 1

    def needs_alert(self) -> bool:
        """A tracked row still above ATH keeps the ALERT condition set."""
        ath = self.ath
        counts = self._counts
        return any(counts[i] > ath for i in range(self._fill))

    # ------------------------------------------------------------------
    # Mitigation selection
    # ------------------------------------------------------------------

    def select_proactive(self) -> Optional[int]:
        """Latch the highest-count tracked row into the CMA.

        Called at each mitigation-period boundary (every 5 tREFI by
        default: four victim refreshes plus the counter-reset
        activation). Returns the row whose mitigation *completes* now,
        i.e. the previous CMA occupant; the CTA winner becomes the new
        CMA. Rows below ETH are never selected, which is what bounds the
        proactive-mitigation energy (Table 5).
        """
        completed = self.cma
        if self._fill:
            best = self._argmax()
            self.cma = self._rows[best]
            self._remove_slot(best)
        else:
            self.cma = None
        return completed

    def _argmax(self) -> int:
        """Slot of the highest count (first maximal in slot order)."""
        counts = self._counts
        best = 0
        for i in range(1, self._fill):
            if counts[i] > counts[best]:
                best = i
        return best

    def _remove_slot(self, slot: int) -> None:
        """Drop one slot, preserving the order of the others."""
        fill = self._fill
        rows, counts = self._rows, self._counts
        for i in range(slot + 1, fill):
            rows[i - 1] = rows[i]
            counts[i - 1] = counts[i]
        self._fill = fill - 1

    def select_reactive(self, max_rows: int) -> List[int]:
        """Pick up to ``max_rows`` rows for the ALERT's RFMs.

        Candidates are the tracked rows (highest count first) and the
        CMA occupant — the row whose proactive mitigation is in flight
        must be serviced too, otherwise latching CTA into CMA right
        before an ALERT would lose its mitigation. CTA is invalidated;
        CMA is invalidated only if its row was actually mitigated
        (Section 4.2: "Both CTA and CMA are invalidated").
        """
        counts = self._counts
        ranked = sorted(range(self._fill), key=lambda i: -counts[i])
        candidates = [self._rows[i] for i in ranked]
        if self.cma is not None and self.cma not in candidates:
            candidates.append(self.cma)
        rows = candidates[:max_rows]
        self._fill = 0
        if self.cma in rows:
            self.cma = None
        return rows

    def on_mitigated(self, row: int) -> None:
        slot = self._slot_of(row)
        if slot >= 0:
            self._remove_slot(slot)
        if self.cma == row:
            self.cma = None

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def sram_bytes(self) -> int:
        """3 B per tracker entry + 2 B CMA + 2 B safe-reset shadows."""
        return 3 * self.level + 2 + 2
