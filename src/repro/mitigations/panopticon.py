"""Panopticon: per-row counters with an 8-entry per-bank FIFO queue.

Panopticon (Bennett et al., DRAMSec 2021) pioneered in-DRAM per-row
activation counting and inspired the JEDEC PRAC+ABO specifications.
Its design (paper Section 3.1):

* Counters are free-running (never reset). When a designated counter
  bit toggles — e.g. the 128s bit for a queueing threshold of 128 — the
  row address is pushed into a per-bank FIFO queue of 8 entries.
  *Only the address is queued; no counter value.*
* One queue entry is mitigated per mitigation period (4 tREFI at the
  default rate of one victim row per REF).
* An ALERT is raised only when the queue overflows.

The Jailbreak pattern (Section 3.2) exploits the queue: fill all 8
slots, then hammer the youngest entry; it accrues ``8 x 128 = 1024``
activations while waiting for FIFO service — 1152 total against a
threshold of 128. The randomized variant (Section 3.3) survives random
counter initialization with probability 2^-16 per iteration.

Appendix B's *Drain-All-Entries-on-REF* variant repurposes each REF to
drain the queue (issuing ALERTs as needed); it falls instead to the
refresh-postponement attack (Figure 16).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from repro.mitigations.base import MitigationPolicy


class PanopticonPolicy(MitigationPolicy):
    """Panopticon queue-based mitigation.

    Args:
        queue_threshold: Counter period that enqueues a row (a row is
            enqueued each time its free-running count crosses a multiple
            of this value — the "threshold bit toggle"). Paper uses 128.
        queue_entries: FIFO capacity (8 in Panopticon).
        drain_all_on_ref: Enable the Appendix B variant that empties the
            queue at every REF, issuing ALERTs for all but the entries a
            single REF can absorb.
    """

    def __init__(
        self,
        queue_threshold: int = 128,
        queue_entries: int = 8,
        drain_all_on_ref: bool = False,
    ) -> None:
        super().__init__()
        if queue_threshold <= 0 or (queue_threshold & (queue_threshold - 1)):
            raise ValueError("queue_threshold must be a positive power of two")
        if queue_entries <= 0:
            raise ValueError("queue_entries must be positive")
        self.queue_threshold = queue_threshold
        self.queue_entries = queue_entries
        self.drain_all_on_ref = drain_all_on_ref
        #: Drain-all repurposes each REF for up to two aggressor
        #: mitigations (Appendix B); the engine honours this batch size.
        self.proactive_batch = 2 if drain_all_on_ref else 1
        variant = "-drain" if drain_all_on_ref else ""
        self.name = f"Panopticon{variant}(thr={queue_threshold},q={queue_entries})"
        #: FIFO of row addresses awaiting mitigation (no counter values).
        self.queue: Deque[int] = deque()
        #: Insertions dropped because the queue was full (each one also
        #: raises an ALERT request).
        self.overflows = 0

    # ------------------------------------------------------------------
    # Tracking
    # ------------------------------------------------------------------

    def on_activate(self, row: int, count: int) -> None:
        # The threshold bit toggles whenever the free-running counter
        # crosses a multiple of the queueing threshold.
        if count > 0 and count % self.queue_threshold == 0:
            if len(self.queue) < self.queue_entries:
                self.queue.append(row)
            else:
                self.overflows += 1
                self.alert_requested = True

    def needs_alert(self) -> bool:
        """The drain-all variant keeps ALERTing until the queue fits in
        what a single REF can absorb; the base design ALERTs only on the
        (evented) overflow, never on a merely-full queue."""
        if self.drain_all_on_ref:
            return len(self.queue) > 2
        return False

    # ------------------------------------------------------------------
    # Mitigation selection
    # ------------------------------------------------------------------

    def select_proactive(self) -> Optional[int]:
        """Service the FIFO head (one aggressor per mitigation period)."""
        if self.queue:
            return self.queue.popleft()
        return None

    def select_reactive(self, max_rows: int) -> List[int]:
        rows: List[int] = []
        while self.queue and len(rows) < max_rows:
            rows.append(self.queue.popleft())
        return rows

    def on_ref(self, refreshed_rows: List[int]) -> None:
        """Drain-all variant: request ALERTs until the queue is empty.

        A single REF has time to mitigate up to two aggressor rows
        (Appendix B), so any further entries require ALERTs. The
        simulator keeps servicing reactive mitigations while
        ``alert_requested`` remains set.
        """
        if self.drain_all_on_ref and len(self.queue) > 2:
            self.alert_requested = True

    def on_mitigated(self, row: int) -> None:
        # Remove one matching queue occurrence, if any (duplicates are
        # legal — a hot row re-enters once per threshold crossing).
        try:
            self.queue.remove(row)
        except ValueError:
            pass

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def sram_bytes(self) -> int:
        """2 bytes (row address) per queue entry."""
        return 2 * self.queue_entries
