"""No-mitigation baseline policy."""

from __future__ import annotations

from typing import List, Optional

from repro.mitigations.base import MitigationPolicy


class NullPolicy(MitigationPolicy):
    """Performs no tracking and no mitigation (unprotected DRAM)."""

    name = "none"

    def on_activate(self, row: int, count: int) -> None:
        pass

    def select_proactive(self) -> Optional[int]:
        return None

    def select_reactive(self, max_rows: int) -> List[int]:
        return []
