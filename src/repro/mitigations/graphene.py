"""Graphene-style SRAM-optimal tracker sizing (paper Figure 1a, §2.4).

Graphene (Park et al., MICRO 2020) uses a Misra-Gries frequent-item
table sized so that *no* row can reach the Rowhammer threshold without
being tracked: with a per-window activation budget ``W`` and a
mitigation threshold of ``T/2`` (mitigate at half the Rowhammer
threshold so the reset-on-refresh halving is safe), the table needs
``W / (T/2)`` entries. At DDR5 rates and sub-100 thresholds this is
thousands of entries per bank — the "SRAM-optimal but impractical"
corner of the paper's Figure 1(a) that motivates in-DRAM per-row
counters.

The policy itself reuses the Misra-Gries machinery of
:class:`repro.mitigations.trr.TrrTracker` — preallocated parallel
(row, count) arrays sized at construction, which matters here because
secure sizing yields thousands of entries per bank and the
decrement-all sweep runs over the flat arrays instead of churning a
dict. This module adds the security-driven sizing rule and the SRAM
cost it implies.
"""

from __future__ import annotations

from repro.dram.timing import DramTiming, DDR5_PRAC_TIMING
from repro.mitigations.trr import TrrTracker

#: Bytes per Misra-Gries entry: 2 B row address + 2 B counter.
BYTES_PER_ENTRY = 4


def graphene_entries_required(
    trh: int, timing: DramTiming = DDR5_PRAC_TIMING
) -> int:
    """Misra-Gries entries needed to securely tolerate ``trh``.

    The tracker must surface every row before it reaches ``trh / 2``
    activations within one refresh window; Misra-Gries guarantees
    detection of rows exceeding ``W / (entries + 1)``.
    """
    if trh < 2:
        raise ValueError("trh must be at least 2")
    window_acts = timing.acts_per_refw
    mitigation_threshold = max(1, trh // 2)
    return window_acts // mitigation_threshold + 1


def graphene_sram_bytes(trh: int, timing: DramTiming = DDR5_PRAC_TIMING) -> int:
    """SRAM bytes per bank for a secure Graphene at threshold ``trh``."""
    return graphene_entries_required(trh, timing) * BYTES_PER_ENTRY


def make_graphene(trh: int, timing: DramTiming = DDR5_PRAC_TIMING) -> TrrTracker:
    """Build a securely-sized Graphene tracker for threshold ``trh``."""
    entries = graphene_entries_required(trh, timing)
    tracker = TrrTracker(
        entries=entries, mitigation_threshold=max(1, trh // 2)
    )
    tracker.name = f"Graphene(TRH={trh}, {entries} entries)"
    return tracker
