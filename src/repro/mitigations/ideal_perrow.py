"""Idealized transparent per-row-counter mitigation (feinting subject).

This policy models the *purely transparent* scheme of paper Section 2.5
(and ProTRR's TRR-Ideal): perfect per-row activation counts, and at
every mitigation period the row with the globally maximum count is
mitigated. There is no ALERT — mitigation bandwidth is fixed at one
aggressor row per ``k`` tREFI.

Such a scheme is bounded by the feinting attack: with ``n`` activations
available per mitigation period and ``M`` periods per refresh window,
an attacker can push one row to ``n * H(M)`` activations (Table 2 —
2195 at the default rate of one aggressor per 4 tREFI).

Tracking the global maximum requires scanning all counters, which is
why the paper deems this design impractical; it exists here as the
analytical baseline for Table 2.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.mitigations.base import MitigationPolicy


class IdealPerRowPolicy(MitigationPolicy):
    """Mitigate the row with the maximum defense-visible count.

    Args:
        eth: Minimum count for a row to be worth mitigating (0 disables
            the filter; the paper's idealized scheme has none).
    """

    name = "ideal-per-row"
    wants_refresh_notifications = True

    def __init__(self, eth: int = 0) -> None:
        super().__init__()
        self.eth = eth
        #: Mirror of the defense-visible counts of touched rows.
        self._counts: Dict[int, int] = {}

    def on_activate(self, row: int, count: int) -> None:
        self._counts[row] = count

    def select_proactive(self) -> Optional[int]:
        if not self._counts:
            return None
        row, count = max(self._counts.items(), key=lambda item: item[1])
        if count <= self.eth:
            return None
        # The engine resets the PRAC counter on mitigation; mirror that.
        del self._counts[row]
        return row

    def select_reactive(self, max_rows: int) -> List[int]:
        return []

    def on_ref(self, refreshed_rows: List[int]) -> None:
        for row in refreshed_rows:
            self._counts.pop(row, None)

    def sram_bytes(self) -> int:
        """Not SRAM-implementable (requires a global max scan)."""
        return 0
