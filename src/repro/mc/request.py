"""Memory-controller request primitives.

A :class:`Request` is one memory transaction as the controller's
front-end sees it: a read or write to a (sub-channel, bank, row)
coordinate arriving at ``issue_ns``. The controller queues it, the
scheduler picks it, the channel simulation serves it; the resulting
:class:`CompletedRequest` records every timestamp of that lifetime, so
latency decomposes into front-end blocking (full queue), queueing
delay (bank busy, REF, ALERT stall), and service time.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Request:
    """One memory request at the controller front-end.

    Attributes:
        issue_ns: Arrival time at the MC front-end (nanoseconds).
        subchannel: Target sub-channel index.
        bank: Target bank index within the sub-channel.
        row: Target row within the bank.
        is_write: Writes occupy the bank like reads but are excluded
            from the read-latency statistics.
        client: Originating requestor (crossbar client index). Single-
            stream runs leave it at 0; the system front-end tags each
            client's stream so completions can be attributed per client.
    """

    issue_ns: float
    subchannel: int = 0
    bank: int = 0
    row: int = 0
    is_write: bool = False
    client: int = 0


@dataclass(frozen=True)
class CompletedRequest:
    """A served request with its full timing breakdown.

    Attributes:
        request: The original request.
        enqueue_ns: Admission into the per-bank queue (later than the
            arrival when the queue — or an older request's queue —
            was full: in-order front-end admission).
        start_ns: Command issue time on the channel.
        complete_ns: Service completion (``start + tRC`` for an
            activate, ``start + t_col`` for a row-buffer hit).
        row_hit: Whether the request hit the open row (open-page
            policy only; closed-page requests always activate).
    """

    request: Request
    enqueue_ns: float
    start_ns: float
    complete_ns: float
    row_hit: bool = False

    @property
    def latency_ns(self) -> float:
        """End-to-end latency: arrival at the MC to data completion."""
        return self.complete_ns - self.request.issue_ns

    @property
    def queue_ns(self) -> float:
        """Time spent in the bank queue before command issue."""
        return self.start_ns - self.enqueue_ns
