"""Pluggable memory-controller scheduling policies.

The controller used to hardcode ``"fcfs" | "frfcfs"`` as a boolean
threaded through its serving loops. This module turns the scheduler
into a registry of :class:`SchedPolicy` implementations — the same
shape as :mod:`repro.mitigations.registry`: a frozen
:class:`SchedSpec` names a registered kind plus its parameters, and
:func:`make_sched` builds one per-run policy instance for the
reference serving loop to dispatch through.

``fcfs`` and ``frfcfs`` are the first two registered kinds, pinned
bit-identical to the pre-refactor loops: their admission hooks are the
base-class defaults (plain priority comparison, no throttling) and
their :meth:`~SchedPolicy.pick` is the old ``MemoryController._pick``
verbatim. The struct-of-arrays fast path keeps its own inline FCFS /
FR-FCFS picks — it only runs for kinds whose behaviour it provably
models (:func:`is_fast_path_sched`); every other kind falls back to
the reference loop, the same discipline the fast path applies to open
pages and crossbars.

On top of that layer sit three QoS kinds that read the crossbar's
per-request client tags:

``priority``
    Strict priority between client classes, round-robin among equals,
    FCFS within a class, any-position service — with a queue-share
    admission cap (no class may saturate a bank queue) and an
    age-based starvation bound: any head or entry waiting longer than
    ``age_bound_ns`` jumps every class, oldest first.
``bw-cap``
    Token-bucket per-client bandwidth throttling *at admission*: each
    client refills at ``gbps`` (with ``burst`` lines of credit,
    ``gbps<i>`` overriding client ``i``) and a dry bucket holds that
    client's stream at the crossbar. Scheduling of admitted requests
    stays FR-FCFS.
``slo``
    Per-client p99 budget gating: a running p99 over the last
    ``window`` read completions is compared against ``budget_ns``;
    clients exceeding their budget are squeezed to one queued entry
    per bank and deprioritized at admission and at the pick until
    their tail recovers.

Every hook defaults to the exact expression the pre-refactor loop
used, so a kind that overrides nothing *is* the old loop — which is
what makes the fcfs/frfcfs bit-identity pin a structural property
rather than a testing accident.
"""

from __future__ import annotations

import bisect
import math
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.mc.request import Request

#: Bytes per serviced request (one cache line), shared with the
#: bandwidth accounting in :mod:`repro.sim.mc`.
LINE_BYTES = 64

#: Priority boost applied to starved / un-demoted heads — larger than
#: any plausible client priority, so boosted requests always win the
#: crossbar's ``>`` comparison against unboosted ones.
_BOOST = 1 << 30


class SchedPolicy:
    """One per-run scheduling-policy instance.

    The reference serving loop calls these hooks at its three decision
    points; every default reproduces the pre-refactor behaviour
    exactly, so subclasses override only what their discipline
    changes.

    Admission (the crossbar grant loop):

    * :meth:`admit_ok` — may this client's head enter its bank queue
      now? (``bw-cap`` throttling lives here.)
    * :meth:`admit_priority` — the value the grant loop compares with
      ``>``; the default is the client's static crossbar priority.
    * :meth:`note_admit` — bookkeeping after a grant (token spend).
    * :meth:`admit_horizon` — earliest time this head could be
      admitted; the idle-jump target when every queue is empty. The
      default (the head's arrival time) is the pre-refactor jump.

    Scheduling and observation:

    * :meth:`pick` — choose the next ``(sub, bank, queue_pos, hit)``.
    * :meth:`note_complete` — observe a completion (``slo`` feedback).
    """

    def __init__(self, priorities: Sequence[int], t_col: float) -> None:
        self.priorities = list(priorities)
        self.n_clients = len(self.priorities)
        self.t_col = t_col

    # -- admission -----------------------------------------------------

    def admit_ok(self, client: int, req: Request, now: float) -> bool:
        return True

    def admit_priority(self, client: int, req: Request, now: float) -> float:
        return self.priorities[client]

    def note_admit(self, client: int, req: Request, now: float) -> None:
        pass

    def admit_horizon(self, client: int, req: Request, now: float) -> float:
        return req.issue_ns

    # -- scheduling ----------------------------------------------------

    def pick(
        self,
        queues,
        bank_free,
        cmd_free: float,
        now: float,
        open_page: bool,
        open_row,
        open_until,
    ) -> Tuple[int, int, int, bool]:
        raise NotImplementedError

    def note_complete(self, req: Request, complete_ns: float) -> None:
        pass


class _OrderSched(SchedPolicy):
    """FCFS / FR-FCFS: the pre-refactor pick, parameterized by kind.

    FCFS returns the globally oldest queued request. FR-FCFS ranks
    each bank's best candidate (first row hit in the queue under the
    open-page policy, else the head) by earliest possible start,
    breaking ties hit-first then oldest-first — all floors computed
    from the controller's availability view, so the choice is
    deterministic and independent of engine internals.

    A hit only counts as one if the column access also *completes*
    before the open row's REF boundary (``open_until``); a command the
    engine would defer across the REF finds the row precharged.
    """

    _frfcfs = False

    def pick(
        self, queues, bank_free, cmd_free, now, open_page,
        open_row, open_until,
    ) -> Tuple[int, int, int, bool]:
        frfcfs = self._frfcfs
        best = None
        for sub, bank_queues in enumerate(queues):
            for bank, queue in enumerate(bank_queues):
                if not queue:
                    continue
                pos = 0
                hit = False
                if open_page:
                    row = open_row[sub][bank]
                    est = max(now, cmd_free, bank_free[sub][bank])
                    alive = (
                        row >= 0
                        and est + self.t_col <= open_until[sub][bank]
                    )
                    if alive and frfcfs:
                        # FR-FCFS may pull a hit from anywhere in the
                        # bank queue; FCFS only recognizes a hit that
                        # happens to sit at the head.
                        for i, (_, req, _) in enumerate(queue):
                            if req.row == row:
                                pos, hit = i, True
                                break
                    elif alive:
                        hit = queue[0][1].row == row
                entry_seq = queue[pos][0]
                if frfcfs:
                    est = max(now, cmd_free, bank_free[sub][bank])
                    rank = (est, not hit, entry_seq)
                else:
                    rank = (entry_seq,)
                if best is None or rank < best[0]:
                    best = (rank, sub, bank, pos, hit)
        assert best is not None
        return best[1], best[2], best[3], best[4]


class FcfsSched(_OrderSched):
    _frfcfs = False


class FrfcfsSched(_OrderSched):
    _frfcfs = True


class _QosSched(SchedPolicy):
    """Shared machinery of the client-aware QoS kinds.

    Two facts drive the design (measured on the noisy-neighbor
    scenario): the attacker's harm flows through *queue occupancy* —
    a saturated bank queue head-of-line blocks every victim whose
    in-order stream targets that bank — and through the entries
    already queued ahead of a victim's, which a head-only pick can
    never overtake. So the QoS kinds (a) track per-(client, queue)
    occupancy and gate *admission* on it, and (b) scan whole queues at
    the pick, serving the best-ranked entry from any position (the
    same any-position pop the FR-FCFS open-page hit scan uses).
    """

    def __init__(
        self, priorities: Sequence[int], t_col: float,
        depth: Optional[int] = None,
    ) -> None:
        super().__init__(priorities, t_col)
        self.depth = depth
        #: (client, subchannel, bank) -> entries currently queued.
        self._occ: Dict[Tuple[int, int, int], int] = {}

    def _occupancy(self, client: int, req: Request) -> int:
        return self._occ.get((client, req.subchannel, req.bank), 0)

    def note_admit(self, client: int, req: Request, now: float) -> None:
        key = (client, req.subchannel, req.bank)
        self._occ[key] = self._occ.get(key, 0) + 1

    def _note_pick(self, req: Request, sub: int, bank: int) -> None:
        """Bookkeeping for the entry the serving loop is about to pop."""
        key = (req.client, sub, bank)
        self._occ[key] = self._occ.get(key, 0) - 1

    def _hit(
        self, req: Request, sub: int, bank: int, cmd_free: float,
        now: float, open_page: bool, open_row, open_until, bank_free,
    ) -> bool:
        if not open_page:
            return False
        row = open_row[sub][bank]
        est = max(now, cmd_free, bank_free[sub][bank])
        alive = row >= 0 and est + self.t_col <= open_until[sub][bank]
        return alive and req.row == row


class PrioritySched(_QosSched):
    """Strict priority with round-robin among equals and an age bound.

    The pick scans every queued entry and ranks ``(starved-first,
    highest client priority, round-robin offset from the last picked
    client, oldest)`` — strict priority between classes, FCFS within
    a class, rotation among equal classes, and any-position service so
    a high-priority entry overtakes lower-class entries queued ahead
    of it. An entry *admitted* longer ago than ``age_bound_ns`` is
    starved: it outranks every class, oldest admission first.

    Admission is occupancy-bounded: each client may hold at most
    ``share`` of a bank queue's ``depth``, so no class can saturate a
    queue and head-of-line block the others' in-order streams. A head
    that has waited at the crossbar past the age bound bypasses the
    share cap and wins the grant, bounding admission starvation too.
    """

    def __init__(
        self, priorities: Sequence[int], t_col: float,
        depth: Optional[int] = None,
        age_bound_ns: float = 50_000.0, share: float = 0.75,
    ) -> None:
        super().__init__(priorities, t_col, depth)
        self.age_bound_ns = age_bound_ns
        self._limit = (
            None if depth is None else max(1, int(depth * share))
        )
        #: id(request) -> actual admission time. The queue tuples'
        #: enqueue stamp inherits issue-time floors (a policy-throttled
        #: stream's stamps stay at its arrival times), so measuring
        #: starvation from it would re-create the backlogged-flood bug
        #: the admission side already guards against: every entry of a
        #: saturating stream would read as permanently starved. Age is
        #: measured from the grant instead. Keyed by identity — the
        #: serving loop holds every request alive for the whole run.
        self._admitted: Dict[int, float] = {}
        #: client -> [head request, first time it was seen eligible].
        self._head: Dict[int, list] = {}
        #: Last client granted a pick; rotation scans past it (same
        #: convention as the crossbar's ``last_grant``).
        self._last_pick = self.n_clients - 1

    def _head_age(self, client: int, req: Request, now: float) -> float:
        entry = self._head.get(client)
        if entry is None or entry[0] is not req:
            self._head[client] = [req, now]
            return 0.0
        return now - entry[1]

    def admit_ok(self, client: int, req: Request, now: float) -> bool:
        starved = self._head_age(client, req, now) >= self.age_bound_ns
        if starved or self._limit is None:
            return True
        return self._occupancy(client, req) < self._limit

    def admit_priority(self, client: int, req: Request, now: float) -> float:
        if self._head_age(client, req, now) >= self.age_bound_ns:
            # Oldest starved head wins between two boosted clients.
            return _BOOST - req.issue_ns
        return self.priorities[client]

    def note_admit(self, client: int, req: Request, now: float) -> None:
        super().note_admit(client, req, now)
        self._admitted[id(req)] = now
        self._head.pop(client, None)

    def pick(
        self, queues, bank_free, cmd_free, now, open_page,
        open_row, open_until,
    ) -> Tuple[int, int, int, bool]:
        best = None
        for sub, bank_queues in enumerate(queues):
            for bank, queue in enumerate(bank_queues):
                for pos, (entry_seq, req, enq) in enumerate(queue):
                    client = req.client
                    admitted = self._admitted.get(id(req), enq)
                    if now - admitted >= self.age_bound_ns:
                        rank = (0, admitted, 0, entry_seq)
                    else:
                        rr = (
                            (client - self._last_pick - 1) % self.n_clients
                        )
                        rank = (
                            1, -float(self.priorities[client]), rr,
                            entry_seq,
                        )
                    if best is None or rank < best[0]:
                        best = (rank, sub, bank, pos, req)
        assert best is not None
        _, sub, bank, pos, req = best
        hit = self._hit(req, sub, bank, cmd_free, now, open_page,
                        open_row, open_until, bank_free)
        self._last_pick = req.client
        self._admitted.pop(id(req), None)
        self._note_pick(req, sub, bank)
        return sub, bank, pos, hit


class BwCapSched(FrfcfsSched):
    """Token-bucket per-client bandwidth throttling at admission.

    Each client owns a bucket of ``burst`` request credits refilling
    at ``gbps`` (one credit per :data:`LINE_BYTES`-byte line); a head
    whose bucket is dry waits at the crossbar without blocking other
    clients — which also keeps a capped client from saturating a bank
    queue. ``gbps<i>`` overrides the cap for client ``i`` alone (the
    per-client quota spelling: cap the attacker, leave the tenants'
    headroom alone). Scheduling of admitted requests stays plain
    FR-FCFS — the cap shapes *admission*, not service order.
    """

    def __init__(
        self, priorities: Sequence[int], t_col: float,
        gbps: float = 1.0, burst: float = 16.0,
        **overrides: float,
    ) -> None:
        super().__init__(priorities, t_col)
        rates = [float(gbps)] * self.n_clients
        for name, value in overrides.items():
            index = int(name[len("gbps"):])
            if index >= self.n_clients:
                raise ValueError(
                    f"sched param {name!r} targets client {index} but "
                    f"the run has {self.n_clients} clients"
                )
            rates[index] = float(value)
        #: gbps is GB/s = bytes/ns, so the refill rate in credits/ns:
        self._rate = [rate / LINE_BYTES for rate in rates]
        self._burst = float(burst)
        self._tokens = [self._burst] * self.n_clients
        self._last = [0.0] * self.n_clients

    def _avail(self, client: int, now: float) -> float:
        refill = (now - self._last[client]) * self._rate[client]
        return min(self._burst, self._tokens[client] + refill)

    def admit_ok(self, client: int, req: Request, now: float) -> bool:
        return self._avail(client, now) >= 1.0

    def note_admit(self, client: int, req: Request, now: float) -> None:
        self._tokens[client] = self._avail(client, now) - 1.0
        self._last[client] = now

    def admit_horizon(self, client: int, req: Request, now: float) -> float:
        avail = self._avail(client, now)
        if avail >= 1.0:
            return req.issue_ns
        wait = (1.0 - avail) / self._rate[client]
        target = max(req.issue_ns, now + wait)
        if target <= now:
            # Refill underflow guard: the idle jump must always move
            # time forward when this head is the only work left.
            target = math.nextafter(now, math.inf)
        return target


class SloSched(_QosSched):
    """Per-client p99 budget gating with FR-FCFS service order.

    A running nearest-rank p99 over each client's last ``window`` read
    completions is compared against ``budget_ns``; a client over
    budget is *demoted* — its admission is squeezed to one queued
    entry per bank (so its backlog cannot head-of-line block in-budget
    clients), and every in-budget entry outranks it at the pick, from
    any queue position. Within a demotion class service order stays
    FR-FCFS. Demotion is continuously re-evaluated over the sliding
    window, so a client whose tail recovers is promoted again — the
    feedback loop that singles out the client *causing* the overload
    (its own backlog keeps its p99 above any sane budget) while benign
    clients recover as soon as the pressure lifts.
    """

    def __init__(
        self, priorities: Sequence[int], t_col: float,
        depth: Optional[int] = None,
        budget_ns: float = 10_000.0, window: int = 256,
    ) -> None:
        super().__init__(priorities, t_col, depth)
        self.budget_ns = budget_ns
        self.window = int(window)
        self._recent: List[deque] = [deque() for _ in range(self.n_clients)]
        self._sorted: List[List[float]] = [[] for _ in range(self.n_clients)]
        self._demoted = [False] * self.n_clients

    def note_complete(self, req: Request, complete_ns: float) -> None:
        if req.is_write:
            return
        client = req.client
        latency = complete_ns - req.issue_ns
        recent = self._recent[client]
        ordered = self._sorted[client]
        recent.append(latency)
        bisect.insort(ordered, latency)
        if len(recent) > self.window:
            del ordered[bisect.bisect_left(ordered, recent.popleft())]
        # Nearest-rank p99, matching the artifact percentile helper.
        rank = max(0, math.ceil(0.99 * len(ordered)) - 1)
        self._demoted[client] = ordered[rank] > self.budget_ns

    def admit_ok(self, client: int, req: Request, now: float) -> bool:
        if not self._demoted[client]:
            return True
        return self._occupancy(client, req) < 1

    def admit_priority(self, client: int, req: Request, now: float) -> float:
        boost = 0 if self._demoted[client] else _BOOST
        return self.priorities[client] + boost

    def pick(
        self, queues, bank_free, cmd_free, now, open_page,
        open_row, open_until,
    ) -> Tuple[int, int, int, bool]:
        best = None
        for sub, bank_queues in enumerate(queues):
            for bank, queue in enumerate(bank_queues):
                if not queue:
                    continue
                est = max(now, cmd_free, bank_free[sub][bank])
                for pos, (entry_seq, req, _) in enumerate(queue):
                    rank = (self._demoted[req.client], est, entry_seq)
                    if best is None or rank < best[0]:
                        best = (rank, sub, bank, pos, req)
        assert best is not None
        _, sub, bank, pos, req = best
        hit = self._hit(req, sub, bank, cmd_free, now, open_page,
                        open_row, open_until, bank_free)
        self._note_pick(req, sub, bank)
        return sub, bank, pos, hit


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class _SchedKind:
    """One registered scheduler kind."""

    name: str
    builder: Callable[..., SchedPolicy]
    #: Parameter names mapped to their defaults (the only keys a
    #: :class:`SchedSpec` of this kind may carry).
    params: Dict[str, float]
    #: Whether the struct-of-arrays fast path provably models this
    #: kind (its inline FCFS/FR-FCFS picks); others take the
    #: reference loop.
    fast_path: bool
    description: str
    #: Parameter bases that also accept a per-client indexed spelling:
    #: ``gbps2`` overrides base param ``gbps`` for client 2 alone.
    indexed: Tuple[str, ...] = ()
    #: Whether the builder takes the bank-queue ``depth`` (the
    #: occupancy-aware QoS kinds gate admission on queue share).
    needs_depth: bool = False


_REGISTRY: Dict[str, _SchedKind] = {
    kind.name: kind
    for kind in (
        _SchedKind(
            name="fcfs",
            builder=FcfsSched,
            params={},
            fast_path=True,
            description="first-come first-served, global arrival order",
        ),
        _SchedKind(
            name="frfcfs",
            builder=FrfcfsSched,
            params={},
            fast_path=True,
            description="first-ready FR-FCFS: earliest start, "
            "row hits first, then oldest",
        ),
        _SchedKind(
            name="priority",
            builder=PrioritySched,
            params={"age_bound_ns": 50_000.0, "share": 0.75},
            fast_path=False,
            description="strict client priority, round-robin among "
            "equals, queue-share admission cap, age-based starvation "
            "bound",
            needs_depth=True,
        ),
        _SchedKind(
            name="bw-cap",
            builder=BwCapSched,
            params={"gbps": 1.0, "burst": 16.0},
            fast_path=False,
            description="per-client token-bucket bandwidth cap at "
            "admission (gbps<i> overrides client i), FR-FCFS service",
            indexed=("gbps",),
        ),
        _SchedKind(
            name="slo",
            builder=SloSched,
            params={"budget_ns": 10_000.0, "window": 256.0},
            fast_path=False,
            description="per-client p99 budget gate: over-budget "
            "clients are throttled and deprioritized until their "
            "tail recovers",
            needs_depth=True,
        ),
    )
}

#: Registered scheduling disciplines, registration order.
SCHEDULERS: Tuple[str, ...] = tuple(_REGISTRY)


def sched_kinds() -> Tuple[str, ...]:
    """Names of every registered scheduler kind."""
    return SCHEDULERS


def sched_descriptions() -> Dict[str, Dict[str, Any]]:
    """Kind -> {description, params} for CLI listings."""
    return {
        kind.name: {
            "description": kind.description,
            "params": ", ".join(
                f"{name}={default:g}"
                for name, default in sorted(kind.params.items())
            ),
        }
        for kind in _REGISTRY.values()
    }


def is_fast_path_sched(scheduler: str) -> bool:
    """Whether the SoA fast path provably models this kind."""
    return _REGISTRY[scheduler].fast_path


def _indexed_base(kind: _SchedKind, name: str) -> bool:
    """Whether ``name`` is a valid per-client indexed param spelling."""
    for base in kind.indexed:
        if (
            name.startswith(base)
            and name[len(base):].isdigit()
        ):
            return True
    return False


def _kind_of(scheduler: str) -> _SchedKind:
    try:
        return _REGISTRY[scheduler]
    except KeyError:
        raise ValueError(
            f"unknown scheduler {scheduler!r}; "
            f"known: {', '.join(SCHEDULERS)}"
        ) from None


def normalize_sched_params(
    sched_params: Sequence[Sequence[Any]],
) -> Tuple[Tuple[str, Any], ...]:
    """Canonical spelling: a name-sorted tuple of (name, value) pairs."""
    return tuple(sorted((str(k), v) for k, v in sched_params))


def validate_sched(
    scheduler: str,
    sched_params: Sequence[Sequence[Any]] = (),
) -> None:
    """Shared scheduler validation (the single source of truth).

    Raises :class:`ValueError` with the pinned ``unknown scheduler``
    message for unregistered kinds, and rejects parameters the kind
    does not declare — every config front-end (``McConfig``,
    ``McRunConfig``, ``SystemRunConfig``) calls this one helper.
    """
    kind = _kind_of(scheduler)
    names = {str(k) for k, _ in sched_params}
    if len(names) != len(tuple(sched_params)):
        raise ValueError(f"duplicate sched param for {scheduler!r}")
    unknown = names - set(kind.params)
    unknown -= {n for n in unknown if _indexed_base(kind, n)}
    if unknown:
        known = ", ".join(sorted(kind.params)) or "(none)"
        if kind.indexed:
            known += ", " + ", ".join(f"{b}<i>" for b in kind.indexed)
        raise ValueError(
            f"unknown sched param {sorted(unknown)[0]!r} for "
            f"{scheduler!r}; known: {known}"
        )
    for name, value in sched_params:
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ValueError(
                f"sched param {name!r} must be a number, got {value!r}"
            )
        if value <= 0:
            raise ValueError(f"sched param {name!r} must be positive")


def sched_display(
    scheduler: str,
    sched_params: Sequence[Sequence[Any]] = (),
) -> str:
    """``kind`` or ``kind(k=v,...)`` — stable artifact/key spelling.

    Paramless spellings render exactly as before the policy layer
    existed, so every committed key and baseline survives.
    """
    if not sched_params:
        return scheduler
    inner = ",".join(
        f"{k}={v:g}" for k, v in normalize_sched_params(sched_params)
    )
    return f"{scheduler}({inner})"


def slo_budget_ns(
    scheduler: str,
    sched_params: Sequence[Sequence[Any]] = (),
) -> Optional[float]:
    """The p99 budget an ``slo`` run gates against, else ``None``.

    The system layer uses this to count per-client SLO misses with the
    exact budget the policy enforced.
    """
    if scheduler != "slo":
        return None
    params = dict(normalize_sched_params(sched_params))
    return float(params.get("budget_ns", _REGISTRY["slo"].params["budget_ns"]))


def make_sched(
    scheduler: str,
    sched_params: Sequence[Sequence[Any]],
    priorities: Sequence[int],
    t_col: float,
    depth: Optional[int] = None,
) -> SchedPolicy:
    """Build one per-run policy instance for the reference loop."""
    kind = _kind_of(scheduler)
    validate_sched(scheduler, sched_params)
    kwargs = dict(normalize_sched_params(sched_params))
    if scheduler == "slo" and "window" in kwargs:
        kwargs["window"] = int(kwargs["window"])
    if kind.needs_depth:
        kwargs["depth"] = depth
    return kind.builder(priorities, t_col, **kwargs)


@dataclass(frozen=True)
class SchedSpec:
    """A scheduler kind plus its parameters (cf. ``PolicySpec``).

    Hashable, canonical (params sorted by name), and validated on
    construction — the spelling sweeps and configs carry.
    """

    kind: str = "frfcfs"
    params: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "params", normalize_sched_params(self.params)
        )
        validate_sched(self.kind, self.params)

    @classmethod
    def of(cls, kind: str, **params: Any) -> "SchedSpec":
        return cls(kind=kind, params=tuple(params.items()))

    def param_dict(self) -> Dict[str, Any]:
        return dict(self.params)

    def display_name(self) -> str:
        return sched_display(self.kind, self.params)
