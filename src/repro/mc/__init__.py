"""Closed-loop memory-controller subsystem.

Request-driven simulation on top of the channel hierarchy: a
:class:`Request` stream flows through per-bank queues of configurable
depth, a pluggable scheduling policy (:mod:`repro.mc.sched`: FCFS,
FR-FCFS, and the per-client QoS kinds), and an open/closed row-buffer
policy; REF and ABO/ALERT recovery back-pressure the queues, so
mitigation cost is measured as read-latency percentiles and achieved
bandwidth instead of an open-loop stall fraction. The performance
front-end lives in :mod:`repro.sim.mc`; request generators in
:mod:`repro.workloads.requests`.
"""

from repro.mc.controller import (
    McConfig,
    MemoryController,
    ROW_POLICIES,
)
from repro.mc.request import CompletedRequest, Request
from repro.mc.sched import (
    SCHEDULERS,
    SchedPolicy,
    SchedSpec,
    sched_descriptions,
    sched_display,
    sched_kinds,
)

__all__ = [
    "CompletedRequest",
    "McConfig",
    "MemoryController",
    "ROW_POLICIES",
    "Request",
    "SCHEDULERS",
    "SchedPolicy",
    "SchedSpec",
    "sched_descriptions",
    "sched_display",
    "sched_kinds",
]
