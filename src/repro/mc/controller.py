"""Closed-loop memory controller over the channel simulation.

The performance front-end (:mod:`repro.sim.perf`) is open-loop: it
pushes a fixed activation schedule through the channel and reports the
ALERT stall *fraction*. This controller closes the loop: requests
arrive over time, wait in per-bank queues of configurable depth, and a
scheduler decides what to issue next — so memory unavailability during
REF and ABO/ALERT recovery shows up where a real system feels it, as
queueing delay on individual requests.

Layering:

* **Front-end** — a crossbar admitting N independent client streams
  (:meth:`MemoryController.run_streams`), each in arrival order. A
  full target queue stalls the *owning client's* stream (in-order
  allocation, like an MC admitting from a core's miss stream) — which
  is how ALERT storms back-pressure a whole stream, not just one
  bank — while the other clients keep admitting; simultaneous
  admissions arbitrate by priority, round-robin among equals.
  :meth:`MemoryController.run` is the single-client special case.
* **Queues** — one FIFO per (sub-channel, bank), depth
  :attr:`McConfig.queue_depth` (``None`` = unbounded).
* **Scheduler** — a pluggable policy from the :mod:`repro.mc.sched`
  registry. ``"fcfs"`` issues strictly in arrival order (replaying a
  trace through it is bit-identical to
  :func:`repro.trace.replay_addresses`); ``"frfcfs"`` picks, among the
  requests that can issue earliest, row-buffer hits first and then the
  oldest (the classic FR-FCFS priority), exploiting bank-level
  parallelism. The QoS kinds (``"priority"``, ``"bw-cap"``, ``"slo"``)
  additionally read the crossbar's client tags to enforce per-client
  isolation; see the sched module docstring.
* **Row buffer** — ``"closed"`` page policy (the paper's baseline:
  every request activates) or ``"open"`` (a request to the currently
  open row is a column access through
  :meth:`~repro.sim.channel.ChannelSim.occupy`: no ACT, no counter
  update, shorter service). Open rows die with the events that
  precharge their bank: every REF boundary (the engine refreshes all
  banks per REF, and mc runs never postpone REFs, so boundaries are
  the tREFI multiples) and every ALERT assertion (the RFMs precharge
  the banks to refresh victims) invalidate the row-buffer state.
* **Back-pressure** — the channel simulation defers command issue
  across REFs and ALERT episodes, so during an ABO recovery the queues
  grow and every queued request pays the stall; the controller never
  needs to know *why* a command started late.

The controller deliberately owns no clock of its own beyond the issue
times the channel reports: all event ordering (REF streams, proactive
mitigation, ALERT assertion) stays in :class:`SubchannelSim`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence, Tuple

from repro.mc.request import CompletedRequest, Request
from repro.mc.sched import (
    SCHEDULERS,
    is_fast_path_sched,
    make_sched,
    normalize_sched_params,
    validate_sched,
)
from repro.obs.recorder import NULL_RECORDER, record_batch_events
from repro.sim.backend import (
    F_ADMIT,
    F_CMD_FREE,
    F_E_CHFREE,
    F_E_NOW,
    F_LAST,
    F_NOW,
    I_ACTS,
    I_ALERT,
    I_NEXT,
    I_OUT,
    I_QUEUED,
    I_SEQ,
    SERVE_ADVANCE,
    SERVE_ALERT,
    SERVE_DONE,
    resolve_backend,
)
from repro.sim.channel import ChannelSim

#: Implemented row-buffer policies.
ROW_POLICIES: Tuple[str, ...] = ("closed", "open")


@dataclass(frozen=True)
class McConfig:
    """Static configuration of the memory controller.

    Args:
        queue_depth: Per-bank queue capacity; ``None`` removes the
            bound (requests are admitted the instant they arrive).
        scheduler: A registered scheduling kind (see
            :mod:`repro.mc.sched`): ``"fcfs"``, ``"frfcfs"``, or one
            of the QoS kinds (``"priority"``, ``"bw-cap"``, ``"slo"``).
        sched_params: Scheduler parameters as ``(name, value)`` pairs
            (normalized to name order); each kind declares the names
            it accepts, and the empty default means the kind's own
            defaults.
        row_policy: ``"closed"`` or ``"open"``.
        t_col: Service time of a row-buffer hit in nanoseconds
            (``None`` resolves to the DRAM timing's ``t_act``).
            Only meaningful under the open-page policy.
    """

    queue_depth: Optional[int] = 32
    scheduler: str = "frfcfs"
    sched_params: Tuple[Tuple[str, Any], ...] = ()
    row_policy: str = "closed"
    t_col: Optional[float] = None

    def __post_init__(self) -> None:
        if self.queue_depth is not None and self.queue_depth < 1:
            raise ValueError("queue_depth must be at least 1 (or None)")
        object.__setattr__(
            self, "sched_params", normalize_sched_params(self.sched_params)
        )
        validate_sched(self.scheduler, self.sched_params)
        if self.row_policy not in ROW_POLICIES:
            raise ValueError(
                f"unknown row policy {self.row_policy!r}; "
                f"known: {', '.join(ROW_POLICIES)}"
            )
        if self.t_col is not None and self.t_col <= 0:
            raise ValueError("t_col must be positive")


@dataclass
class ServedBatch:
    """Struct-of-arrays result of one served request stream.

    The hot serving paths record completions as parallel flat arrays
    (request index, enqueue, start, complete) instead of allocating one
    :class:`CompletedRequest` per request — at compiled-backend
    throughput the per-completion object construction would dominate
    the run. :meth:`completions` materializes the classic object list
    on demand (API compatibility); the summary helpers below compute
    the aggregate metrics straight from the arrays, replicating the
    exact float-summation order of the object-based code so results
    stay bit-identical.

    All sequences are in completion order. ``row_hit`` may be ``None``
    when no request hit an open row (the closed-page fast path).
    """

    #: The served stream, sorted by ``issue_ns`` (admission order).
    requests: List[Request]
    #: Index into :attr:`requests` per completion.
    ridx: List[int]
    enqueue_ns: List[float]
    start_ns: List[float]
    complete_ns: List[float]
    row_hit: Optional[List[bool]] = None
    _completed: Optional[List[CompletedRequest]] = field(
        default=None, repr=False
    )

    @classmethod
    def from_completions(
        cls, completed: List[CompletedRequest]
    ) -> "ServedBatch":
        """Wrap an object-based completion list (reference path)."""
        return cls(
            requests=[c.request for c in completed],
            ridx=list(range(len(completed))),
            enqueue_ns=[c.enqueue_ns for c in completed],
            start_ns=[c.start_ns for c in completed],
            complete_ns=[c.complete_ns for c in completed],
            row_hit=[c.row_hit for c in completed],
            _completed=completed,
        )

    def __len__(self) -> int:
        return len(self.ridx)

    def completions(self) -> List[CompletedRequest]:
        """The classic per-request completion objects (cached)."""
        if self._completed is None:
            requests = self.requests
            hits = self.row_hit
            self._completed = [
                CompletedRequest(
                    request=requests[self.ridx[i]],
                    enqueue_ns=self.enqueue_ns[i],
                    start_ns=self.start_ns[i],
                    complete_ns=self.complete_ns[i],
                    row_hit=bool(hits[i]) if hits is not None else False,
                )
                for i in range(len(self.ridx))
            ]
        return self._completed

    def read_latencies_sorted(self) -> List[float]:
        """Sorted read latencies (completion -> arrival), like
        iterating completions in completion order and sorting."""
        requests = self.requests
        return sorted(
            self.complete_ns[i] - requests[self.ridx[i]].issue_ns
            for i in range(len(self.ridx))
            if not requests[self.ridx[i]].is_write
        )

    def queue_ns_total(self) -> float:
        """Summed time-in-queue, accumulated in completion order (the
        float-summation order of the object-based code)."""
        return sum(
            start - enq
            for start, enq in zip(self.start_ns, self.enqueue_ns)
        )

    def row_hit_count(self) -> int:
        """Number of completions served from an open row buffer."""
        if self.row_hit is None:
            return 0
        return sum(1 for hit in self.row_hit if hit)


class MemoryController:
    """Request-driven front-end of one :class:`ChannelSim`.

    Args:
        channel: The channel to drive; its geometry (sub-channels,
            banks, rows) bounds the request coordinates.
        config: Queueing and scheduling parameters.
    """

    def __init__(self, channel: ChannelSim, config: McConfig = McConfig()) -> None:
        self.channel = channel
        self.config = config
        self._num_subchannels = channel.config.num_subchannels
        self._num_banks = channel.config.sim.num_banks
        self._rows_per_bank = channel.config.sim.rows_per_bank
        self._t_rc = channel.timing.t_rc
        self._t_col = (
            channel.timing.t_act if config.t_col is None else config.t_col
        )
        self._t_cmd_gap = channel.config.t_cmd_gap_resolved
        #: Kernel backend shared with the engine (same resolution, so
        #: the controller and its channel always agree on a choice).
        self._backend = resolve_backend(channel.config.sim.backend)
        #: Observability sink (:mod:`repro.obs`). Queue events are
        #: derived post hoc from the served batch, so recorder presence
        #: never changes dispatch and never touches the serving loops.
        self.recorder = NULL_RECORDER

    def run(self, requests: List[Request]) -> List[CompletedRequest]:
        """Serve every request; returns completions in issue order.

        Requests are processed in arrival order (a stable sort on
        ``issue_ns`` is applied, so equal-time requests keep their
        stream order — trace replays preserve the recorded sequence).
        Single-stream alias of :meth:`run_streams`: one client, so the
        crossbar grant loop degenerates to plain in-order admission.
        """
        return self.run_streams([requests])

    def run_streams(
        self,
        streams: Sequence[List[Request]],
        priorities: Optional[Sequence[int]] = None,
    ) -> List[CompletedRequest]:
        """Serve N independent client streams through one crossbar.

        Each stream is an in-order requestor: within a client, requests
        are admitted in arrival order, and a full target queue stalls
        that client's stream (everything behind its head waits) without
        blocking the other clients. When several clients could admit at
        the same instant the crossbar grants the highest ``priorities``
        value first and breaks ties round-robin, scanning from the
        client after the previous grant — deterministic under
        contention, starvation-free between equals.

        With one stream this is exactly :meth:`run` (the grant loop
        degenerates to the single in-order admission loop), so the
        1-client system simulation is bit-identical to ``run_mc``.

        Thin compatibility wrapper over :meth:`serve_streams`, which
        returns the struct-of-arrays :class:`ServedBatch` instead of
        materializing one :class:`CompletedRequest` per request.
        """
        return self.serve_streams(streams, priorities).completions()

    def serve(self, requests: List[Request]) -> ServedBatch:
        """Serve one client's requests; returns the SoA batch result.

        Single-stream alias of :meth:`serve_streams` — the hot entry
        point of :func:`repro.sim.mc.run_mc_requests`.
        """
        return self.serve_streams([requests])

    def serve_streams(
        self,
        streams: Sequence[List[Request]],
        priorities: Optional[Sequence[int]] = None,
    ) -> ServedBatch:
        """Serve client streams, dispatching to the fastest eligible path.

        The single-client, closed-page, bounded-queue, one-sub-channel
        case on an untouched channel with dense counters — the
        configuration of every ``run_mc`` workload point — runs through
        :meth:`_run_fast`, a struct-of-arrays reimplementation of the
        serving loop (optionally kernel-backed, see
        :mod:`repro.sim.backend`). Everything else (crossbars, open
        page, unbounded queues, danger tracking, pre-driven channels)
        stays on :meth:`run_streams_reference`, the pinned scalar
        reference. Both paths are bit-identical by construction and by
        test; the dispatch can change wall-clock only.
        """
        n_clients = len(streams)
        if n_clients < 1:
            raise ValueError("run_streams needs at least one stream")
        if priorities is not None and len(priorities) != n_clients:
            raise ValueError(
                f"got {len(priorities)} priorities for {n_clients} streams"
            )
        channel = self.channel
        sub = channel.subchannels[0]
        if (
            n_clients == 1
            and is_fast_path_sched(self.config.scheduler)
            and self.config.row_policy == "closed"
            and self.config.queue_depth is not None
            and self._num_subchannels == 1
            and channel.config.sim.dense_counters
            and not channel.config.sim.track_danger
            and not sub.postpone_refs
            # The fast path mirrors engine state instead of re-reading
            # it per command, which is valid only from the pristine
            # state every run_mc/system run starts in.
            and sub.now == 0.0
            and sub._channel_free == 0.0
            and channel._cmd_free == 0.0
            and not any(sub._bank_free)
        ):
            batch = self._run_fast(list(streams[0]))
        else:
            batch = ServedBatch.from_completions(
                self.run_streams_reference(streams, priorities)
            )
        # Post-hoc event derivation: one linear pass over the SoA batch
        # when tracing is on, one attribute read when it is off. The
        # dispatch above is recorder-blind by construction.
        if self.recorder.enabled:
            record_batch_events(self.recorder, batch)
        return batch

    def run_streams_reference(
        self,
        streams: Sequence[List[Request]],
        priorities: Optional[Sequence[int]] = None,
    ) -> List[CompletedRequest]:
        """Scalar reference implementation of the serving loop.

        One request at a time through per-bank tuple queues and
        :meth:`ChannelSim.activate` — the implementation every
        committed baseline was produced with, retained verbatim as the
        equivalence oracle for :meth:`_run_fast` (see the backend
        property tests) and as the general path for configurations the
        fast path does not cover.
        """
        n_clients = len(streams)
        if n_clients < 1:
            raise ValueError("run_streams needs at least one stream")
        if priorities is None:
            priorities = [0] * n_clients
        if len(priorities) != n_clients:
            raise ValueError(
                f"got {len(priorities)} priorities for {n_clients} streams"
            )
        ordered = [
            sorted(stream, key=lambda r: r.issue_ns) for stream in streams
        ]
        for stream in ordered:
            for req in stream:
                self._validate(req)

        depth = self.config.queue_depth
        sched = make_sched(
            self.config.scheduler, self.config.sched_params,
            priorities, self._t_col, depth=depth,
        )
        open_page = self.config.row_policy == "open"
        channel = self.channel
        n_subs, n_banks = self._num_subchannels, self._num_banks

        #: queues[sub][bank]: (seq, request, enqueue_ns) in FIFO order.
        queues: List[List[List[tuple]]] = [
            [[] for _ in range(n_banks)] for _ in range(n_subs)
        ]
        #: Controller's view of bank/channel availability — a floor
        #: used only to rank candidates; the engine may defer further
        #: (REF, ALERT stall) when the command actually issues.
        bank_free = [[0.0] * n_banks for _ in range(n_subs)]
        open_row = [[-1] * n_banks for _ in range(n_subs)]
        #: Time at which each open row dies: the first REF boundary at
        #: or after the opening ACT's completion (REF precharges every
        #: bank; boundaries are tREFI multiples since mc runs never
        #: postpone REFs).
        open_until = [[0.0] * n_banks for _ in range(n_subs)]
        #: ALERT count per sub-channel at the last scheduling step; a
        #: bump means RFMs precharged the banks — open rows are gone.
        seen_alerts = [0] * n_subs
        trefi = channel.timing.t_refi
        cmd_free = 0.0
        now = 0.0
        #: Admission times are monotone *per client*: a request admitted
        #: after a blocked older one of the same stream inherits the
        #: blockage (each client is an in-order front-end).
        admit_floor = [0.0] * n_clients
        #: Per-queue time a slot last freed while the queue was full.
        freed_at = [[0.0] * n_banks for _ in range(n_subs)]

        completed: List[CompletedRequest] = []
        total = sum(len(stream) for stream in ordered)
        heads = [0] * n_clients  # next-arrival index per stream
        #: Last client granted admission; the round-robin scan starts
        #: just past it, so client 0 is first at time zero.
        last_grant = n_clients - 1
        queued = 0
        seq = 0

        while len(completed) < total:
            if open_page:
                # ALERT assertion (counted at assert time, before the
                # RFMs are processed) closes every row of the
                # sub-channel for the recovery.
                for sub_index, sub in enumerate(channel.subchannels):
                    if sub.alerts != seen_alerts[sub_index]:
                        seen_alerts[sub_index] = sub.alerts
                        open_row[sub_index] = [-1] * n_banks

            # Crossbar admission: one grant per pass over the eligible
            # clients (head arrived, target queue has a slot, policy
            # admits), highest admission priority first, round-robin
            # among equals. The default policy hooks reproduce the
            # plain static-priority crossbar exactly.
            while True:
                chosen = -1
                chosen_pri = 0.0
                for offset in range(n_clients):
                    client = (last_grant + 1 + offset) % n_clients
                    head = heads[client]
                    if head == len(ordered[client]):
                        continue
                    req = ordered[client][head]
                    if req.issue_ns > now:
                        continue
                    if (
                        depth is not None
                        and len(queues[req.subchannel][req.bank]) >= depth
                    ):
                        continue  # this client stalls; others proceed
                    if not sched.admit_ok(client, req, now):
                        continue  # policy throttles this client's head
                    pri = sched.admit_priority(client, req, now)
                    if chosen < 0 or pri > chosen_pri:
                        chosen = client
                        chosen_pri = pri
                if chosen < 0:
                    break
                req = ordered[chosen][heads[chosen]]
                sched.note_admit(chosen, req, now)
                enqueue = max(
                    req.issue_ns,
                    admit_floor[chosen],
                    freed_at[req.subchannel][req.bank],
                )
                admit_floor[chosen] = enqueue
                queues[req.subchannel][req.bank].append((seq, req, enqueue))
                seq += 1
                queued += 1
                heads[chosen] += 1
                last_grant = chosen

            if queued == 0:
                # Nothing to issue: jump to the earliest admissible
                # client head. (Queues are all empty here, so no client
                # is stalled on a full queue — every remaining head is
                # future, or held past `now` by the policy's admission
                # horizon, e.g. a dry bw-cap token bucket.)
                target = min(
                    sched.admit_horizon(
                        client, ordered[client][heads[client]], now
                    )
                    for client in range(n_clients)
                    if heads[client] < len(ordered[client])
                )
                if channel.now < target:
                    channel.advance_to(target)
                now = max(now, target)
                continue

            sub, bank, pos, hit = sched.pick(
                queues, bank_free, cmd_free, now, open_page,
                open_row, open_until,
            )
            queue = queues[sub][bank]
            was_full = depth is not None and len(queue) == depth
            _, req, enqueue = queue.pop(pos)
            queued -= 1

            if hit and channel.would_defer(
                self._t_col, bank=bank, subchannel=sub
            ):
                # The ranking floors cannot see engine events; the
                # authoritative check asks the engine whether this
                # column access would cross one (REF, ALERT recovery,
                # external service — all precharge the bank). If so,
                # the row is gone: demote to a reactivation.
                hit = False
            if hit:
                start = channel.occupy(self._t_col, bank=bank, subchannel=sub)
                complete = start + self._t_col
            else:
                result = channel.activate(req.row, bank=bank, subchannel=sub)
                start = result.time
                complete = start + self._t_rc
                if open_page:
                    open_row[sub][bank] = req.row
                    open_until[sub][bank] = (
                        math.ceil(complete / trefi) * trefi
                    )
            if was_full:
                freed_at[sub][bank] = start
            bank_free[sub][bank] = complete
            cmd_free = start + self._t_cmd_gap
            if start > now:
                now = start
            completed.append(
                CompletedRequest(
                    request=req,
                    enqueue_ns=enqueue,
                    start_ns=start,
                    complete_ns=complete,
                    row_hit=hit,
                )
            )
            sched.note_complete(req, complete)

        channel.flush()
        return completed

    # ------------------------------------------------------------------
    # Struct-of-arrays fast path
    # ------------------------------------------------------------------

    def _run_fast(self, stream: List[Request]) -> ServedBatch:
        """Closed-page single-client serving over flat arrays.

        Replays :meth:`run_streams_reference` exactly — same admission
        rule, same FCFS/FR-FCFS pick, same engine timing — but holds
        every piece of per-step state (ring queues of seq/ridx/enqueue
        per bank, availability floors, the engine's clock and counters)
        in preallocated flat arrays, and issues the common-case ACT
        *inline*: the per-request trip through
        ``channel.activate -> engine event machinery -> ActResult`` is
        replaced by the engine's own between-events recurrence (the
        same one :meth:`SubchannelSim.activate_many` batches), with the
        engine consulted only when a scheduled event (REF, external
        service, ALERT window) actually interferes.

        The engine's authoritative scalars (``sub.now``,
        ``sub._channel_free``, ``sub._bank_free``, the channel command
        front) are mirrored locally and written back before — and
        re-read after — every real engine interaction, so the slow path
        is always entered from exactly the state the reference would
        have. ABO activation counts are accumulated locally and flushed
        before anything that may consult ``can_assert``.

        Under a kernel backend the whole
        admit/pick/issue/policy-observe step additionally runs inside
        :func:`repro.sim.backend._serve_closed` over zero-copy views
        (2-D dense-counter block, SAFE-shadow registers, MOAT tracker
        file) until a stop code hands an event back to this wrapper.
        """
        ordered = sorted(stream, key=lambda r: r.issue_ns)
        for req in ordered:
            self._validate(req)
        channel = self.channel
        sub = channel.subchannels[0]
        n = len(ordered)
        if n == 0:
            channel.flush()
            return ServedBatch(
                requests=ordered, ridx=[], enqueue_ns=[], start_ns=[],
                complete_ns=[],
            )

        cap = self.config.queue_depth
        frfcfs = self.config.scheduler == "frfcfs"
        n_banks = self._num_banks
        t_rc = self._t_rc
        t_cmd_gap = self._t_cmd_gap
        gap = sub._t_issue_gap
        abo = sub.abo
        policies = sub.policies
        banks = sub.banks
        pracs = [bank._prac for bank in banks]
        shadows = [engine.shadow for engine in sub.refresh]
        e_bank_free = sub._bank_free
        INF = float("inf")

        # Serve-kernel eligibility: every bank on a kernel-supported
        # policy (MOAT or the unprotected baseline), homogeneous across
        # banks (the kernel specializes one level/threshold set).
        backend = self._backend
        use_kernel = (
            backend.use_kernels
            and getattr(sub, "_use_kernels", False)
            and all(lv >= 0 for lv in sub._kernel_levels)
            and len(set(sub._kernel_levels)) == 1
        )
        level = sub._kernel_levels[0] if use_kernel else 0
        eth = ath = 0
        if use_kernel and level > 0:
            eth, ath = policies[0].eth, policies[0].ath
            if not all(p.eth == eth and p.ath == ath for p in policies):
                use_kernel = False
                level = 0

        if use_kernel:
            import numpy as np

            serve_kernel = backend.serve_closed
            issue = np.array([r.issue_ns for r in ordered], dtype=np.float64)
            rbank = np.array([r.bank for r in ordered], dtype=np.int64)
            rrow = np.array([r.row for r in ordered], dtype=np.int64)
            q_seq = np.zeros(n_banks * cap, dtype=np.int64)
            q_ridx = np.zeros(n_banks * cap, dtype=np.int64)
            q_enq = np.zeros(n_banks * cap, dtype=np.float64)
            q_head = np.zeros(n_banks, dtype=np.int64)
            q_count = np.zeros(n_banks, dtype=np.int64)
            freed = np.zeros(n_banks, dtype=np.float64)
            bank_free = np.zeros(n_banks, dtype=np.float64)
            acts_bank = np.zeros(n_banks, dtype=np.int64)
            out_ridx = np.zeros(n, dtype=np.int64)
            out_enq = np.zeros(n, dtype=np.float64)
            out_start = np.zeros(n, dtype=np.float64)
            out_complete = np.zeros(n, dtype=np.float64)
            prac2 = np.frombuffer(
                sub._counter_block, dtype=np.int64
            ).reshape(n_banks, sub.config.rows_per_bank)
            blast = sub.config.blast_radius
            sh_rows2 = np.empty((n_banks, blast), dtype=np.int64)
            sh_counts2 = np.empty((n_banks, blast), dtype=np.int64)
            sh_n = [0] * n_banks
            slots = max(level, 1)
            m_rows2 = np.zeros((n_banks, slots), dtype=np.int64)
            m_counts2 = np.zeros((n_banks, slots), dtype=np.int64)
            pfill = np.zeros(n_banks, dtype=np.int64)
            fstate = np.zeros(8, dtype=np.float64)
            istate = np.zeros(8, dtype=np.int64)
        else:
            serve_kernel = None
            issue = [r.issue_ns for r in ordered]
            rbank = [r.bank for r in ordered]
            rrow = [r.row for r in ordered]
            q_seq = [0] * (n_banks * cap)
            q_ridx = [0] * (n_banks * cap)
            q_enq = [0.0] * (n_banks * cap)
            q_head = [0] * n_banks
            q_count = [0] * n_banks
            freed = [0.0] * n_banks
            bank_free = [0.0] * n_banks
            acts_bank = [0] * n_banks
            out_ridx = [0] * n
            out_enq = [0.0] * n
            out_start = [0.0] * n
            out_complete = [0.0] * n

        # Local mirrors of the controller view (now/cmd_free/admit) and
        # the engine scalars (e_now/e_chfree + the shared bank_free —
        # identical to the controller floors here because both start at
        # zero and only this loop issues commands). Event horizon
        # snapshot stays valid between engine interactions.
        next_i = 0
        seq = 0
        queued = 0
        out_n = 0
        pending_acts = 0
        now = 0.0
        cmd_free = 0.0
        admit_floor = 0.0
        e_now = 0.0
        e_chfree = 0.0
        next_ref_s = sub._next_ref
        next_ext_s = sub._next_external
        episode = sub._episode
        window_end_s = (
            episode.window_end
            if episode is not None and not episode.processed
            else INF
        )

        while out_n < n:
            if serve_kernel is not None and not abo._pending:
                # Pack mutable policy/shadow state, run the kernel to
                # the next stop code, unpack immediately (the wrapper's
                # event handling below reads and writes the originals).
                for qi in range(n_banks):
                    shadow = shadows[qi]
                    k = 0
                    for s_row, s_count in shadow.items():
                        sh_rows2[qi, k] = s_row
                        sh_counts2[qi, k] = s_count
                        k += 1
                    sh_n[qi] = k
                    if k < blast:
                        sh_rows2[qi, k:] = -1
                    if level > 0:
                        policy = policies[qi]
                        v_rows, v_counts = policy.state_views()
                        m_rows2[qi, :] = v_rows
                        m_counts2[qi, :] = v_counts
                        pfill[qi] = policy._fill
                fstate[F_NOW] = now
                fstate[F_CMD_FREE] = cmd_free
                fstate[F_ADMIT] = admit_floor
                fstate[F_E_NOW] = e_now
                fstate[F_E_CHFREE] = e_chfree
                istate[I_NEXT] = next_i
                istate[I_SEQ] = seq
                istate[I_QUEUED] = queued
                istate[I_OUT] = out_n
                istate[I_ACTS] = 0
                code = serve_kernel(
                    issue, rbank, rrow,
                    q_seq, q_ridx, q_enq, q_head, q_count, freed,
                    out_ridx, out_enq, out_start, out_complete,
                    prac2, sh_rows2, sh_counts2,
                    m_rows2, m_counts2, pfill, bank_free, acts_bank,
                    fstate, istate,
                    cap, n_banks, frfcfs, t_rc, gap, t_cmd_gap,
                    eth, ath, level, next_ref_s, next_ext_s,
                    window_end_s,
                )
                next_i = int(istate[I_NEXT])
                seq = int(istate[I_SEQ])
                queued = int(istate[I_QUEUED])
                out_n = int(istate[I_OUT])
                pending_acts += int(istate[I_ACTS])
                now = float(fstate[F_NOW])
                cmd_free = float(fstate[F_CMD_FREE])
                admit_floor = float(fstate[F_ADMIT])
                e_now = float(fstate[F_E_NOW])
                e_chfree = float(fstate[F_E_CHFREE])
                for qi in range(n_banks):
                    shadow = shadows[qi]
                    for k in range(sh_n[qi]):
                        shadow[int(sh_rows2[qi, k])] = int(sh_counts2[qi, k])
                    if level > 0:
                        policy = policies[qi]
                        v_rows, v_counts = policy.state_views()
                        v_rows[:] = m_rows2[qi]
                        v_counts[:] = m_counts2[qi]
                        policy._fill = int(pfill[qi])
                if code == SERVE_DONE:
                    break
                if code == SERVE_ALERT:
                    # The triggering ACT committed inside the kernel;
                    # latch the request exactly as the pure step does.
                    policies[int(istate[I_ALERT])].alerts_requested += 1
                    if pending_acts:
                        abo.note_activations(pending_acts)
                        sub.total_acts += pending_acts
                        pending_acts = 0
                    sub.now = float(e_now)
                    sub._channel_free = float(e_chfree)
                    for b in range(n_banks):
                        e_bank_free[b] = float(bank_free[b])
                    channel._cmd_free = float(cmd_free)
                    abo.request_alert()
                    sub._maybe_assert_alert(float(fstate[F_LAST]))
                    episode = sub._episode
                    window_end_s = (
                        episode.window_end
                        if episode is not None and not episode.processed
                        else INF
                    )
                    continue
                # SERVE_ADVANCE / SERVE_EVENT: one scalar step below
                # re-derives the same decision and hands the engine
                # whatever stopped the kernel.

            # -- one reference-equivalent scalar step ----------------
            # In-order admission of every arrival at or before `now`.
            while next_i < n:
                t = issue[next_i]
                if t > now:
                    break
                qi = rbank[next_i]
                if q_count[qi] >= cap:
                    break
                enq = t
                if admit_floor > enq:
                    enq = admit_floor
                if freed[qi] > enq:
                    enq = freed[qi]
                admit_floor = enq
                slot = qi * cap + (q_head[qi] + q_count[qi]) % cap
                q_seq[slot] = seq
                q_ridx[slot] = next_i
                q_enq[slot] = enq
                seq += 1
                q_count[qi] += 1
                queued += 1
                next_i += 1

            if queued == 0:
                # Nothing to issue: jump to the next arrival.
                target = issue[next_i]
                if e_now < target:
                    if pending_acts:
                        abo.note_activations(pending_acts)
                        sub.total_acts += pending_acts
                        pending_acts = 0
                    sub.now = float(e_now)
                    sub._channel_free = float(e_chfree)
                    for b in range(n_banks):
                        e_bank_free[b] = float(bank_free[b])
                    channel._cmd_free = float(cmd_free)
                    channel.advance_to(float(target))
                    e_now = sub.now
                    e_chfree = sub._channel_free
                    next_ref_s = sub._next_ref
                    next_ext_s = sub._next_external
                    episode = sub._episode
                    window_end_s = (
                        episode.window_end
                        if episode is not None and not episode.processed
                        else INF
                    )
                if target > now:
                    now = target
                continue

            # Scheduler pick (closed page: always the queue head).
            best_qi = -1
            best_seq = 0
            if frfcfs:
                best_est = 0.0
                for qi in range(n_banks):
                    if q_count[qi] == 0:
                        continue
                    est = now
                    if cmd_free > est:
                        est = cmd_free
                    if bank_free[qi] > est:
                        est = bank_free[qi]
                    hseq = q_seq[qi * cap + q_head[qi]]
                    if (best_qi < 0 or est < best_est
                            or (est == best_est and hseq < best_seq)):
                        best_qi = qi
                        best_est = est
                        best_seq = hseq
            else:
                for qi in range(n_banks):
                    if q_count[qi] == 0:
                        continue
                    hseq = q_seq[qi * cap + q_head[qi]]
                    if best_qi < 0 or hseq < best_seq:
                        best_qi = qi
                        best_seq = hseq
            qi = best_qi
            head = q_head[qi]
            slot = qi * cap + head
            ridx = q_ridx[slot]
            enq = q_enq[slot]
            was_full = q_count[qi] == cap
            row = rrow[ridx]

            start = e_now
            if e_chfree > start:
                start = e_chfree
            if bank_free[qi] > start:
                start = bank_free[qi]
            if cmd_free > start:
                start = cmd_free
            complete = start + t_rc
            if (next_ref_s < complete or next_ext_s <= start
                    or complete > window_end_s):
                # A scheduled event interferes: pop, then let the
                # engine serve this one request and retire the event.
                q_head[qi] = (head + 1) % cap
                q_count[qi] -= 1
                queued -= 1
                if pending_acts:
                    abo.note_activations(pending_acts)
                    sub.total_acts += pending_acts
                    pending_acts = 0
                sub.now = float(e_now)
                sub._channel_free = float(e_chfree)
                for b in range(n_banks):
                    e_bank_free[b] = float(bank_free[b])
                channel._cmd_free = float(cmd_free)
                result = channel.activate(int(row), bank=qi, subchannel=0)
                e_now = sub.now
                e_chfree = sub._channel_free
                next_ref_s = sub._next_ref
                next_ext_s = sub._next_external
                episode = sub._episode
                window_end_s = (
                    episode.window_end
                    if episode is not None and not episode.processed
                    else INF
                )
                start = result.time
                complete = start + t_rc
                if was_full:
                    freed[qi] = start
                bank_free[qi] = complete
                cmd_free = start + t_cmd_gap
                if start > now:
                    now = start
                out_ridx[out_n] = ridx
                out_enq[out_n] = enq
                out_start[out_n] = start
                out_complete[out_n] = complete
                out_n += 1
                continue

            # Inline issue: the engine's own between-events recurrence.
            q_head[qi] = (head + 1) % cap
            q_count[qi] -= 1
            queued -= 1
            prac_qi = pracs[qi]
            count = prac_qi[row] + 1
            prac_qi[row] = count
            shadow = shadows[qi]
            if shadow and row in shadow:
                count = shadow[row] + 1
                shadow[row] = count
            pending_acts += 1
            acts_bank[qi] += 1
            e_now = start
            e_chfree = start + gap
            bank_free[qi] = complete
            cmd_free = start + t_cmd_gap
            if was_full:
                freed[qi] = start
            if start > now:
                now = start
            out_ridx[out_n] = ridx
            out_enq[out_n] = enq
            out_start[out_n] = start
            out_complete[out_n] = complete
            out_n += 1
            policy = policies[qi]
            policy.on_activate(row, count)
            if policy.alert_requested:
                policy.alert_requested = False
                if pending_acts:
                    abo.note_activations(pending_acts)
                    sub.total_acts += pending_acts
                    pending_acts = 0
                sub.now = float(e_now)
                sub._channel_free = float(e_chfree)
                for b in range(n_banks):
                    e_bank_free[b] = float(bank_free[b])
                channel._cmd_free = float(cmd_free)
                abo.request_alert()
                sub._maybe_assert_alert(float(complete))
                episode = sub._episode
                window_end_s = (
                    episode.window_end
                    if episode is not None and not episode.processed
                    else INF
                )
            elif abo._pending:
                # A latched request may assert on any ACT (the per-ACT
                # check sub.activate performs); keep the engine's ABO
                # counters exact while one is outstanding.
                if pending_acts:
                    abo.note_activations(pending_acts)
                    sub.total_acts += pending_acts
                    pending_acts = 0
                sub.now = float(e_now)
                sub._channel_free = float(e_chfree)
                for b in range(n_banks):
                    e_bank_free[b] = float(bank_free[b])
                channel._cmd_free = float(cmd_free)
                sub._maybe_assert_alert(float(complete))
                episode = sub._episode
                window_end_s = (
                    episode.window_end
                    if episode is not None and not episode.processed
                    else INF
                )

        # Final writeback: statistics, engine scalars, episode flush.
        if pending_acts:
            abo.note_activations(pending_acts)
            sub.total_acts += pending_acts
        for qi in range(n_banks):
            acts = int(acts_bank[qi])
            if acts:
                banks[qi].note_activations(acts)
        sub.now = float(e_now)
        sub._channel_free = float(e_chfree)
        for b in range(n_banks):
            e_bank_free[b] = float(bank_free[b])
        channel._cmd_free = float(cmd_free)
        channel.flush()
        if serve_kernel is not None:
            return ServedBatch(
                requests=ordered,
                ridx=out_ridx.tolist(),
                enqueue_ns=out_enq.tolist(),
                start_ns=out_start.tolist(),
                complete_ns=out_complete.tolist(),
            )
        return ServedBatch(
            requests=ordered, ridx=out_ridx, enqueue_ns=out_enq,
            start_ns=out_start, complete_ns=out_complete,
        )

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def _validate(self, req: Request) -> None:
        if not 0 <= req.subchannel < self._num_subchannels:
            raise ValueError(
                f"request targets sub-channel {req.subchannel} but the "
                f"channel has {self._num_subchannels}"
            )
        if not 0 <= req.bank < self._num_banks:
            raise ValueError(
                f"request targets bank {req.bank} but the channel has "
                f"{self._num_banks} banks per sub-channel"
            )
        if not 0 <= req.row < self._rows_per_bank:
            raise ValueError(
                f"request targets row {req.row} but banks have "
                f"{self._rows_per_bank} rows"
            )
        if req.issue_ns < 0:
            raise ValueError("request issue_ns must be non-negative")
