"""Closed-loop memory controller over the channel simulation.

The performance front-end (:mod:`repro.sim.perf`) is open-loop: it
pushes a fixed activation schedule through the channel and reports the
ALERT stall *fraction*. This controller closes the loop: requests
arrive over time, wait in per-bank queues of configurable depth, and a
scheduler decides what to issue next — so memory unavailability during
REF and ABO/ALERT recovery shows up where a real system feels it, as
queueing delay on individual requests.

Layering:

* **Front-end** — a crossbar admitting N independent client streams
  (:meth:`MemoryController.run_streams`), each in arrival order. A
  full target queue stalls the *owning client's* stream (in-order
  allocation, like an MC admitting from a core's miss stream) — which
  is how ALERT storms back-pressure a whole stream, not just one
  bank — while the other clients keep admitting; simultaneous
  admissions arbitrate by priority, round-robin among equals.
  :meth:`MemoryController.run` is the single-client special case.
* **Queues** — one FIFO per (sub-channel, bank), depth
  :attr:`McConfig.queue_depth` (``None`` = unbounded).
* **Scheduler** — ``"fcfs"`` issues strictly in arrival order
  (replaying a trace through it is bit-identical to
  :func:`repro.trace.replay_addresses`); ``"frfcfs"`` picks, among the
  requests that can issue earliest, row-buffer hits first and then the
  oldest (the classic FR-FCFS priority), exploiting bank-level
  parallelism.
* **Row buffer** — ``"closed"`` page policy (the paper's baseline:
  every request activates) or ``"open"`` (a request to the currently
  open row is a column access through
  :meth:`~repro.sim.channel.ChannelSim.occupy`: no ACT, no counter
  update, shorter service). Open rows die with the events that
  precharge their bank: every REF boundary (the engine refreshes all
  banks per REF, and mc runs never postpone REFs, so boundaries are
  the tREFI multiples) and every ALERT assertion (the RFMs precharge
  the banks to refresh victims) invalidate the row-buffer state.
* **Back-pressure** — the channel simulation defers command issue
  across REFs and ALERT episodes, so during an ABO recovery the queues
  grow and every queued request pays the stall; the controller never
  needs to know *why* a command started late.

The controller deliberately owns no clock of its own beyond the issue
times the channel reports: all event ordering (REF streams, proactive
mitigation, ALERT assertion) stays in :class:`SubchannelSim`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.mc.request import CompletedRequest, Request
from repro.sim.channel import ChannelSim

#: Implemented scheduling disciplines.
SCHEDULERS: Tuple[str, ...] = ("fcfs", "frfcfs")

#: Implemented row-buffer policies.
ROW_POLICIES: Tuple[str, ...] = ("closed", "open")


@dataclass(frozen=True)
class McConfig:
    """Static configuration of the memory controller.

    Args:
        queue_depth: Per-bank queue capacity; ``None`` removes the
            bound (requests are admitted the instant they arrive).
        scheduler: ``"fcfs"`` or ``"frfcfs"`` (see module docstring).
        row_policy: ``"closed"`` or ``"open"``.
        t_col: Service time of a row-buffer hit in nanoseconds
            (``None`` resolves to the DRAM timing's ``t_act``).
            Only meaningful under the open-page policy.
    """

    queue_depth: Optional[int] = 32
    scheduler: str = "frfcfs"
    row_policy: str = "closed"
    t_col: Optional[float] = None

    def __post_init__(self) -> None:
        if self.queue_depth is not None and self.queue_depth < 1:
            raise ValueError("queue_depth must be at least 1 (or None)")
        if self.scheduler not in SCHEDULERS:
            raise ValueError(
                f"unknown scheduler {self.scheduler!r}; "
                f"known: {', '.join(SCHEDULERS)}"
            )
        if self.row_policy not in ROW_POLICIES:
            raise ValueError(
                f"unknown row policy {self.row_policy!r}; "
                f"known: {', '.join(ROW_POLICIES)}"
            )
        if self.t_col is not None and self.t_col <= 0:
            raise ValueError("t_col must be positive")


class MemoryController:
    """Request-driven front-end of one :class:`ChannelSim`.

    Args:
        channel: The channel to drive; its geometry (sub-channels,
            banks, rows) bounds the request coordinates.
        config: Queueing and scheduling parameters.
    """

    def __init__(self, channel: ChannelSim, config: McConfig = McConfig()) -> None:
        self.channel = channel
        self.config = config
        self._num_subchannels = channel.config.num_subchannels
        self._num_banks = channel.config.sim.num_banks
        self._rows_per_bank = channel.config.sim.rows_per_bank
        self._t_rc = channel.timing.t_rc
        self._t_col = (
            channel.timing.t_act if config.t_col is None else config.t_col
        )
        self._t_cmd_gap = channel.config.t_cmd_gap_resolved

    def run(self, requests: List[Request]) -> List[CompletedRequest]:
        """Serve every request; returns completions in issue order.

        Requests are processed in arrival order (a stable sort on
        ``issue_ns`` is applied, so equal-time requests keep their
        stream order — trace replays preserve the recorded sequence).
        Single-stream alias of :meth:`run_streams`: one client, so the
        crossbar grant loop degenerates to plain in-order admission.
        """
        return self.run_streams([requests])

    def run_streams(
        self,
        streams: Sequence[List[Request]],
        priorities: Optional[Sequence[int]] = None,
    ) -> List[CompletedRequest]:
        """Serve N independent client streams through one crossbar.

        Each stream is an in-order requestor: within a client, requests
        are admitted in arrival order, and a full target queue stalls
        that client's stream (everything behind its head waits) without
        blocking the other clients. When several clients could admit at
        the same instant the crossbar grants the highest ``priorities``
        value first and breaks ties round-robin, scanning from the
        client after the previous grant — deterministic under
        contention, starvation-free between equals.

        With one stream this is exactly :meth:`run` (the grant loop
        degenerates to the single in-order admission loop), so the
        1-client system simulation is bit-identical to ``run_mc``.
        """
        n_clients = len(streams)
        if n_clients < 1:
            raise ValueError("run_streams needs at least one stream")
        if priorities is None:
            priorities = [0] * n_clients
        if len(priorities) != n_clients:
            raise ValueError(
                f"got {len(priorities)} priorities for {n_clients} streams"
            )
        ordered = [
            sorted(stream, key=lambda r: r.issue_ns) for stream in streams
        ]
        for stream in ordered:
            for req in stream:
                self._validate(req)

        depth = self.config.queue_depth
        frfcfs = self.config.scheduler == "frfcfs"
        open_page = self.config.row_policy == "open"
        channel = self.channel
        n_subs, n_banks = self._num_subchannels, self._num_banks

        #: queues[sub][bank]: (seq, request, enqueue_ns) in FIFO order.
        queues: List[List[List[tuple]]] = [
            [[] for _ in range(n_banks)] for _ in range(n_subs)
        ]
        #: Controller's view of bank/channel availability — a floor
        #: used only to rank candidates; the engine may defer further
        #: (REF, ALERT stall) when the command actually issues.
        bank_free = [[0.0] * n_banks for _ in range(n_subs)]
        open_row = [[-1] * n_banks for _ in range(n_subs)]
        #: Time at which each open row dies: the first REF boundary at
        #: or after the opening ACT's completion (REF precharges every
        #: bank; boundaries are tREFI multiples since mc runs never
        #: postpone REFs).
        open_until = [[0.0] * n_banks for _ in range(n_subs)]
        #: ALERT count per sub-channel at the last scheduling step; a
        #: bump means RFMs precharged the banks — open rows are gone.
        seen_alerts = [0] * n_subs
        trefi = channel.timing.t_refi
        cmd_free = 0.0
        now = 0.0
        #: Admission times are monotone *per client*: a request admitted
        #: after a blocked older one of the same stream inherits the
        #: blockage (each client is an in-order front-end).
        admit_floor = [0.0] * n_clients
        #: Per-queue time a slot last freed while the queue was full.
        freed_at = [[0.0] * n_banks for _ in range(n_subs)]

        completed: List[CompletedRequest] = []
        total = sum(len(stream) for stream in ordered)
        heads = [0] * n_clients  # next-arrival index per stream
        #: Last client granted admission; the round-robin scan starts
        #: just past it, so client 0 is first at time zero.
        last_grant = n_clients - 1
        queued = 0
        seq = 0

        while len(completed) < total:
            if open_page:
                # ALERT assertion (counted at assert time, before the
                # RFMs are processed) closes every row of the
                # sub-channel for the recovery.
                for sub_index, sub in enumerate(channel.subchannels):
                    if sub.alerts != seen_alerts[sub_index]:
                        seen_alerts[sub_index] = sub.alerts
                        open_row[sub_index] = [-1] * n_banks

            # Crossbar admission: one grant per pass over the eligible
            # clients (head arrived, target queue has a slot), highest
            # priority first, round-robin among equals.
            while True:
                chosen = -1
                for offset in range(n_clients):
                    client = (last_grant + 1 + offset) % n_clients
                    head = heads[client]
                    if head == len(ordered[client]):
                        continue
                    req = ordered[client][head]
                    if req.issue_ns > now:
                        continue
                    if (
                        depth is not None
                        and len(queues[req.subchannel][req.bank]) >= depth
                    ):
                        continue  # this client stalls; others proceed
                    if chosen < 0 or priorities[client] > priorities[chosen]:
                        chosen = client
                if chosen < 0:
                    break
                req = ordered[chosen][heads[chosen]]
                enqueue = max(
                    req.issue_ns,
                    admit_floor[chosen],
                    freed_at[req.subchannel][req.bank],
                )
                admit_floor[chosen] = enqueue
                queues[req.subchannel][req.bank].append((seq, req, enqueue))
                seq += 1
                queued += 1
                heads[chosen] += 1
                last_grant = chosen

            if queued == 0:
                # Nothing to issue: jump to the earliest client head.
                # (Queues are all empty here, so no client is stalled
                # on a full queue — every remaining head is future.)
                target = min(
                    ordered[client][heads[client]].issue_ns
                    for client in range(n_clients)
                    if heads[client] < len(ordered[client])
                )
                if channel.now < target:
                    channel.advance_to(target)
                now = max(now, target)
                continue

            sub, bank, pos, hit = self._pick(
                queues, bank_free, cmd_free, now, frfcfs, open_page,
                open_row, open_until,
            )
            queue = queues[sub][bank]
            was_full = depth is not None and len(queue) == depth
            _, req, enqueue = queue.pop(pos)
            queued -= 1

            if hit and channel.would_defer(
                self._t_col, bank=bank, subchannel=sub
            ):
                # The ranking floors cannot see engine events; the
                # authoritative check asks the engine whether this
                # column access would cross one (REF, ALERT recovery,
                # external service — all precharge the bank). If so,
                # the row is gone: demote to a reactivation.
                hit = False
            if hit:
                start = channel.occupy(self._t_col, bank=bank, subchannel=sub)
                complete = start + self._t_col
            else:
                result = channel.activate(req.row, bank=bank, subchannel=sub)
                start = result.time
                complete = start + self._t_rc
                if open_page:
                    open_row[sub][bank] = req.row
                    open_until[sub][bank] = (
                        math.ceil(complete / trefi) * trefi
                    )
            if was_full:
                freed_at[sub][bank] = start
            bank_free[sub][bank] = complete
            cmd_free = start + self._t_cmd_gap
            if start > now:
                now = start
            completed.append(
                CompletedRequest(
                    request=req,
                    enqueue_ns=enqueue,
                    start_ns=start,
                    complete_ns=complete,
                    row_hit=hit,
                )
            )

        channel.flush()
        return completed

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def _pick(
        self,
        queues,
        bank_free,
        cmd_free: float,
        now: float,
        frfcfs: bool,
        open_page: bool,
        open_row,
        open_until,
    ) -> Tuple[int, int, int, bool]:
        """Choose the next command: ``(sub, bank, queue_pos, row_hit)``.

        FCFS returns the globally oldest queued request. FR-FCFS ranks
        each bank's best candidate (first row hit in the queue under
        the open-page policy, else the head) by earliest possible
        start, breaking ties hit-first then oldest-first — all floors
        computed from the controller's own availability view, so the
        choice is deterministic and independent of engine internals.

        A hit only counts as one if the column access also *completes*
        before the open row's REF boundary (``open_until``); a command
        the engine would defer across the REF finds the row precharged.
        """
        best = None
        for sub, bank_queues in enumerate(queues):
            for bank, queue in enumerate(bank_queues):
                if not queue:
                    continue
                pos = 0
                hit = False
                if open_page:
                    row = open_row[sub][bank]
                    est = max(now, cmd_free, bank_free[sub][bank])
                    alive = (
                        row >= 0
                        and est + self._t_col <= open_until[sub][bank]
                    )
                    if alive and frfcfs:
                        # FR-FCFS may pull a hit from anywhere in the
                        # bank queue; FCFS only recognizes a hit that
                        # happens to sit at the head.
                        for i, (_, req, _) in enumerate(queue):
                            if req.row == row:
                                pos, hit = i, True
                                break
                    elif alive:
                        hit = queue[0][1].row == row
                entry_seq = queue[pos][0]
                if frfcfs:
                    est = max(now, cmd_free, bank_free[sub][bank])
                    rank = (est, not hit, entry_seq)
                else:
                    rank = (entry_seq,)
                if best is None or rank < best[0]:
                    best = (rank, sub, bank, pos, hit)
        assert best is not None
        return best[1], best[2], best[3], best[4]

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def _validate(self, req: Request) -> None:
        if not 0 <= req.subchannel < self._num_subchannels:
            raise ValueError(
                f"request targets sub-channel {req.subchannel} but the "
                f"channel has {self._num_subchannels}"
            )
        if not 0 <= req.bank < self._num_banks:
            raise ValueError(
                f"request targets bank {req.bank} but the channel has "
                f"{self._num_banks} banks per sub-channel"
            )
        if not 0 <= req.row < self._rows_per_bank:
            raise ValueError(
                f"request targets row {req.row} but banks have "
                f"{self._rows_per_bank} rows"
            )
        if req.issue_ns < 0:
            raise ValueError("request issue_ns must be non-negative")
