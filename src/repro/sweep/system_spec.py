"""Declarative system-sweep specifications and presets.

The system family sweeps *scenarios*, not axis products: each point is
a named, complete :class:`~repro.system.sim.SystemRunConfig` (client
mix, channel count, defense configuration), because the interesting
comparisons — duo vs solo, attacker on vs off, 1 channel vs 4 —
are hand-picked contrasts rather than grids. Structure follows the
model family (explicit scenario tuples); identity follows the mc
family (resolved-value hashing via
:func:`~repro.system.sim.system_config_payload`).

:data:`SYSTEM_PRESETS` names the scenario sets: the CI smoke gate
(solo / contended duo / undefended duo), the sharding scale-out, the
noisy-neighbor contrast whose baseline pins the victim-p99
degradation story, and the QoS matrix that re-runs the noisy cast
under every scheduling policy from the :mod:`repro.mc.sched` registry.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.attacks.registry import AttackSpec
from repro.mitigations.registry import PolicySpec
from repro.system.sim import (
    SYSTEM_RESULT_VERSION,
    SystemRunConfig,
    system_config_payload,
)
from repro.system.crossbar import ClientSpec
from repro.workloads.requests import McWorkload

#: Additive axes mapped to their neutral value (same convention as the
#: other families); empty while the family is young.
_NEUTRAL_AXES: Dict[str, Any] = {}


@dataclass(frozen=True)
class SystemSweepPoint:
    """One named scenario: a complete system run configuration."""

    scenario: str
    config: SystemRunConfig

    @property
    def key(self) -> str:
        """Stable human-readable identity (artifact/baseline key)."""
        c = self.config
        depth = "inf" if c.queue_depth is None else str(c.queue_depth)
        # The scheduler segment appears only for non-default policies,
        # so every pre-QoS key spelling survives verbatim.
        sched = c.sched_display()
        sched_seg = f"|{sched}" if sched != "frfcfs" else ""
        return (
            f"{self.scenario}|{c.display_name()}"
            f"|{c.policy.display_name()}{sched_seg}"
            f"|ath={c.ath}|eth={c.eth_resolved}|L{c.abo_level}"
            f"|ch{c.channels}|qd={depth}|b{c.banks}"
            f"|trefi={c.n_trefi}|seed={c.seed}"
        )

    def config_hash(self) -> str:
        """Content hash of everything that determines the result.

        Delegates the resolved-value/dead-knob conventions to
        :func:`~repro.system.sim.system_config_payload` (shared with
        the shard cache, so a sweep point and its shards agree on
        identity); axes listed in :data:`_NEUTRAL_AXES` hash out at
        their neutral value.
        """
        config = system_config_payload(self.config)
        for name, neutral in _NEUTRAL_AXES.items():
            if config.get(name) == neutral:
                del config[name]
        payload = {
            "version": SYSTEM_RESULT_VERSION,
            "scenario": self.scenario,
            "config": config,
        }
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()[:16]


@dataclass(frozen=True)
class SystemSweepSpec:
    """Named set of system scenarios (explicit, not a cross product)."""

    name: str
    description: str = ""
    scenarios: Tuple[Tuple[str, SystemRunConfig], ...] = ()

    def points(self) -> List[SystemSweepPoint]:
        """Expand the scenarios in declared order, deduplicated by key."""
        out: List[SystemSweepPoint] = []
        seen: set = set()
        for scenario, config in self.scenarios:
            point = SystemSweepPoint(scenario=scenario, config=config)
            if point.key not in seen:
                seen.add(point.key)
                out.append(point)
        return out

    def sweep_hash(self) -> str:
        """Identity of the whole scenario set (order-independent)."""
        hashes = sorted(p.config_hash() for p in self.points())
        blob = json.dumps([self.name, hashes], separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()[:16]

    def with_overrides(
        self,
        n_trefi: Optional[int] = None,
        seed: Optional[int] = None,
    ) -> "SystemSweepSpec":
        """Copy with cheap-scale overrides applied to every scenario."""
        changes: Dict[str, Any] = {}
        if n_trefi is not None:
            changes["n_trefi"] = n_trefi
        if seed is not None:
            changes["seed"] = seed
        if not changes:
            return self
        return dataclasses.replace(
            self,
            scenarios=tuple(
                (scenario, dataclasses.replace(config, **changes))
                for scenario, config in self.scenarios
            ),
        )


#: The benign per-client mix of the system presets: moderate load with
#: a warm reuse set, so contention shows up in queue occupancy without
#: saturating the banks outright.
TENANT_WORKLOAD = McWorkload(
    reads_per_trefi_per_bank=24.0, hot_fraction=0.3, hot_rows=8
)

#: Two equal tenants at different crossbar priorities — the minimal
#: contended mix (priority 1 beats priority 0 on simultaneous heads).
DUO_CLIENTS: Tuple[ClientSpec, ...] = (
    ClientSpec(name="tenant0", workload=TENANT_WORKLOAD, priority=1),
    ClientSpec(name="tenant1", workload=TENANT_WORKLOAD, seed=1),
)

#: Noisy-neighbor cast: two benign victims plus one client replaying
#: the registered single-row PRAC kernel with a budget large enough to
#: hammer for the whole window.
VICTIM_CLIENTS: Tuple[ClientSpec, ...] = (
    ClientSpec(name="victim0", workload=TENANT_WORKLOAD),
    ClientSpec(name="victim1", workload=TENANT_WORKLOAD, seed=1),
)
ATTACKER_CLIENT = ClientSpec(
    name="attacker",
    attack=AttackSpec.of("kernel-single", total_acts=200_000),
)

#: The victims again, lifted to crossbar priority 1 — the client mix
#: the ``priority`` scheduling policy protects in the QoS preset.
PRIORITIZED_VICTIMS: Tuple[ClientSpec, ...] = tuple(
    dataclasses.replace(client, priority=1) for client in VICTIM_CLIENTS
)

SYSTEM_PRESETS: Dict[str, SystemSweepSpec] = {
    spec.name: spec
    for spec in (
        SystemSweepSpec(
            name="system-smoke",
            description="CI smoke gate: one tenant alone, the "
            "contended duo under MOAT, and the duo undefended",
            scenarios=(
                (
                    "solo",
                    SystemRunConfig(
                        clients=(
                            ClientSpec(
                                name="tenant0", workload=TENANT_WORKLOAD
                            ),
                        ),
                        banks=2,
                        n_trefi=512,
                    ),
                ),
                (
                    "duo",
                    SystemRunConfig(
                        clients=DUO_CLIENTS, banks=2, n_trefi=512
                    ),
                ),
                (
                    "duo-null",
                    SystemRunConfig(
                        clients=DUO_CLIENTS,
                        policy=PolicySpec("null"),
                        banks=2,
                        n_trefi=512,
                    ),
                ),
            ),
        ),
        SystemSweepSpec(
            name="system-shard",
            description="Channel scale-out: the contended duo on 1, 2, "
            "and 4 independent channels (per-channel streams reseeded "
            "by channel, aggregates merged exactly)",
            scenarios=tuple(
                (
                    f"duo-ch{channels}",
                    SystemRunConfig(
                        clients=DUO_CLIENTS,
                        channels=channels,
                        banks=2,
                        n_trefi=256,
                    ),
                )
                for channels in (1, 2, 4)
            ),
        ),
        SystemSweepSpec(
            name="system-noisy",
            description="Noisy neighbor: two victims with and without "
            "a single-row PRAC hammer sharing the crossbar at ATH=32 "
            "(victim p99 degradation is the gated contrast)",
            scenarios=(
                (
                    "quiet",
                    SystemRunConfig(
                        clients=VICTIM_CLIENTS,
                        ath=32,
                        banks=2,
                        n_trefi=512,
                    ),
                ),
                (
                    "noisy",
                    SystemRunConfig(
                        clients=VICTIM_CLIENTS + (ATTACKER_CLIENT,),
                        ath=32,
                        banks=2,
                        n_trefi=512,
                    ),
                ),
                (
                    "noisy-null",
                    SystemRunConfig(
                        clients=VICTIM_CLIENTS + (ATTACKER_CLIENT,),
                        policy=PolicySpec("null"),
                        ath=32,
                        banks=2,
                        n_trefi=512,
                    ),
                ),
            ),
        ),
        SystemSweepSpec(
            name="system-qos",
            description="QoS under the ALERT storm: the noisy-neighbor "
            "cast at ATH=32 under every scheduling policy — unprotected "
            "FR-FCFS vs strict priority (victims prioritized), a "
            "per-client bandwidth cap on the attacker, and the p99 "
            "budget gate (victim p99 degradation per policy is the "
            "gated contrast)",
            scenarios=(
                (
                    "quiet",
                    SystemRunConfig(
                        clients=VICTIM_CLIENTS,
                        ath=32,
                        banks=2,
                        n_trefi=512,
                    ),
                ),
                (
                    "noisy-frfcfs",
                    SystemRunConfig(
                        clients=VICTIM_CLIENTS + (ATTACKER_CLIENT,),
                        ath=32,
                        banks=2,
                        n_trefi=512,
                    ),
                ),
                (
                    "noisy-priority",
                    SystemRunConfig(
                        clients=PRIORITIZED_VICTIMS + (ATTACKER_CLIENT,),
                        scheduler="priority",
                        ath=32,
                        banks=2,
                        n_trefi=512,
                    ),
                ),
                (
                    "noisy-bwcap",
                    SystemRunConfig(
                        clients=VICTIM_CLIENTS + (ATTACKER_CLIENT,),
                        scheduler="bw-cap",
                        # Generous default quota; the attacker (client
                        # 2) alone is squeezed well under its ~1.2 GB/s
                        # natural hammer rate.
                        sched_params=(("gbps", 8.0), ("gbps2", 0.1)),
                        ath=32,
                        banks=2,
                        n_trefi=512,
                    ),
                ),
                (
                    "noisy-slo",
                    SystemRunConfig(
                        clients=VICTIM_CLIENTS + (ATTACKER_CLIENT,),
                        scheduler="slo",
                        ath=32,
                        banks=2,
                        n_trefi=512,
                    ),
                ),
            ),
        ),
    )
}


def system_preset(name: str) -> SystemSweepSpec:
    """Look up a system preset by name with a helpful error."""
    try:
        return SYSTEM_PRESETS[name]
    except KeyError:
        known = ", ".join(sorted(SYSTEM_PRESETS))
        raise KeyError(
            f"unknown system preset {name!r}; known: {known}"
        ) from None
