"""Parallel, cached execution of system sweeps.

Mirrors the other family runners over the shared
:func:`repro.sweep.runner.run_cached_grid` core. One nesting rule:
each sweep point runs its :class:`~repro.system.sim.SystemSim`
*serially and uncached* (``jobs=1, cache_dir=None``) — the sweep pool
is the only process pool, and the sweep point cache the only cache, so
points stay single-process workers and the sharding machinery never
nests. ``SystemSim``'s own sharded pool/cache serve the direct API and
``repro system run``, where there is no outer pool.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.system.sim import run_system
from repro.sweep.system_spec import SystemSweepPoint, SystemSweepSpec
from repro.sweep.runner import ProgressFn, run_cached_grid, wall_timer

#: Default on-disk cache location (sibling of the other family caches).
DEFAULT_SYSTEM_CACHE_DIR = Path(".repro-cache") / "system"


@dataclass
class SystemPointResult:
    """Outcome of one system scenario (metrics plus provenance).

    ``metrics`` is the flattened :meth:`SystemResult.as_metrics` view:
    system aggregates at bare names plus ``"{client}:{metric}"`` per
    client, so baselines gate per-client tails, not just the mean.
    """

    key: str
    config_hash: str
    scenario: str
    clients: List[str]
    policy: str
    scheduler: str
    ath: int
    eth: int
    abo_level: int
    channels: int
    banks: int
    n_trefi: int
    seed: int
    metrics: Dict[str, float]
    wall_clock_s: float
    cached: bool = False

    def to_json(self) -> Dict[str, object]:
        return {
            "key": self.key,
            "config_hash": self.config_hash,
            "scenario": self.scenario,
            "clients": self.clients,
            "policy": self.policy,
            "scheduler": self.scheduler,
            "ath": self.ath,
            "eth": self.eth,
            "abo_level": self.abo_level,
            "channels": self.channels,
            "banks": self.banks,
            "n_trefi": self.n_trefi,
            "seed": self.seed,
            "metrics": self.metrics,
            "wall_clock_s": self.wall_clock_s,
        }

    @staticmethod
    def from_json(
        data: Dict[str, object], cached: bool = False
    ) -> "SystemPointResult":
        return SystemPointResult(
            key=str(data["key"]),
            config_hash=str(data["config_hash"]),
            scenario=str(data["scenario"]),
            clients=[str(name) for name in data["clients"]],
            policy=str(data["policy"]),
            # Pre-QoS artifacts carried no scheduler field; every one
            # of them ran the then-hardwired FR-FCFS.
            scheduler=str(data.get("scheduler", "frfcfs")),
            ath=int(data["ath"]),
            eth=int(data["eth"]),
            abo_level=int(data["abo_level"]),
            channels=int(data["channels"]),
            banks=int(data["banks"]),
            n_trefi=int(data["n_trefi"]),
            seed=int(data["seed"]),
            metrics={k: float(v) for k, v in dict(data["metrics"]).items()},
            wall_clock_s=float(data["wall_clock_s"]),
            cached=cached,
        )


@dataclass
class SystemSweepResult:
    """All scenario results of one system sweep, in spec order."""

    spec: SystemSweepSpec
    results: List[SystemPointResult] = field(default_factory=list)
    wall_clock_s: float = 0.0
    jobs: int = 1
    #: Cache statistics from :func:`run_cached_grid` (hits, misses,
    #: recomputes, elapsed time) — recorded into artifact provenance.
    cache_stats: Dict[str, object] = field(default_factory=dict)

    @property
    def cache_hits(self) -> int:
        return sum(1 for r in self.results if r.cached)

    @property
    def compute_time_s(self) -> float:
        """Summed per-point simulation time (cached points keep the
        wall-clock of their original computation)."""
        return sum(r.wall_clock_s for r in self.results)

    def by_key(self) -> Dict[str, SystemPointResult]:
        return {r.key: r for r in self.results}

    def aggregates(self) -> Dict[str, float]:
        """Cross-point summary (artifact ``aggregates`` block)."""
        n = len(self.results)
        if n == 0:
            return {}
        return {
            "points": float(n),
            "avg_read_p99_ns": sum(
                r.metrics.get("read_p99_ns", 0.0) for r in self.results
            ) / n,
            "avg_achieved_gbps": sum(
                r.metrics.get("achieved_gbps", 0.0) for r in self.results
            ) / n,
            "avg_stall_fraction": sum(
                r.metrics.get("stall_fraction", 0.0) for r in self.results
            ) / n,
            "total_alerts": sum(
                r.metrics.get("alerts", 0.0) for r in self.results
            ),
        }


def execute_system_point(point: SystemSweepPoint) -> SystemPointResult:
    """Run one system scenario in the current process (worker entry).

    Serial and uncached by design — see the module docstring.
    """
    started = wall_timer()
    result = run_system(point.config, jobs=1, cache_dir=None)
    config = point.config
    return SystemPointResult(
        key=point.key,
        config_hash=point.config_hash(),
        scenario=point.scenario,
        clients=[client.name for client in config.clients],
        policy=config.policy.display_name(),
        scheduler=config.sched_display(),
        ath=config.ath,
        eth=config.eth_resolved,
        abo_level=config.abo_level,
        channels=config.channels,
        banks=config.banks,
        n_trefi=config.n_trefi,
        seed=config.seed,
        metrics=result.as_metrics(),
        wall_clock_s=wall_timer() - started,
    )


def run_system_sweep(
    spec: SystemSweepSpec,
    jobs: int = 1,
    cache_dir: Optional[Path] = DEFAULT_SYSTEM_CACHE_DIR,
    progress: Optional[ProgressFn] = None,
) -> SystemSweepResult:
    """Execute every scenario of ``spec``; parallel when ``jobs > 1``.

    Args:
        spec: The scenario set to run.
        jobs: Worker processes (``1`` = serial, in-process).
        cache_dir: Per-point result cache; ``None`` disables caching.
        progress: Optional callback receiving one line per finished
            point (``[done/total] key (cached|12.3s)``).
    """
    started = wall_timer()
    cache_stats: Dict[str, object] = {}
    ordered = run_cached_grid(
        spec.points(),
        execute_system_point,
        SystemPointResult.from_json,
        jobs=jobs,
        cache_dir=cache_dir,
        progress=progress,
        stats=cache_stats,
    )
    return SystemSweepResult(
        spec=spec,
        results=ordered,
        wall_clock_s=wall_timer() - started,
        jobs=jobs,
        cache_stats=cache_stats,
    )
