"""The unified sweep-family registry.

Five artifact families share one execution/caching/gating stack (spec
→ points → ``run_cached_grid`` → artifact → baseline gate); what
distinguishes them is declarative: which spec class, which preset
table, which schema id, which metrics gate, which baseline filename
prefix, which identity columns each point records. A
:class:`SweepFamily` captures exactly that declarative surface, and
:data:`FAMILIES` registers all five — perf, attack, model, mc, system
— so the CLI, the artifact builder, and the baseline gate are derived
from one table instead of five hand-copied variants.

The registry is purely descriptive: hashes, keys, and artifact layouts
are bit-identical to the pre-registry code paths (pinned by the
committed baselines passing ``--check`` unchanged), and
:func:`make_family_artifact` is *the* artifact builder — the legacy
``make_*_artifact`` functions in :mod:`repro.sweep.artifacts` delegate
here.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

from repro.sweep import artifacts as _artifacts
from repro.sweep.artifacts import (
    ATTACK_GATED_METRICS,
    ATTACK_SCHEMA,
    BASELINE_DIR,
    GATED_METRICS,
    MC_GATED_METRICS,
    MC_SCHEMA,
    MODEL_GATED_METRICS,
    MODEL_SCHEMA,
    SCHEMA,
    SYSTEM_GATED_METRICS,
    SYSTEM_SCHEMA,
    git_revision,
    utc_now,
)
from repro.sweep.attack_runner import (
    DEFAULT_ATTACK_CACHE_DIR,
    run_attack_sweep,
)
from repro.sweep.attack_spec import ATTACK_PRESETS, AttackSweepSpec
from repro.sweep.mc_runner import DEFAULT_MC_CACHE_DIR, run_mc_sweep
from repro.sweep.mc_spec import MC_PRESETS, McSweepSpec
from repro.sweep.model_runner import (
    DEFAULT_MODEL_CACHE_DIR,
    run_model_sweep,
)
from repro.sweep.model_spec import MODEL_PRESETS, ModelSweepSpec
from repro.sweep.runner import DEFAULT_CACHE_DIR, run_sweep
from repro.sweep.spec import PRESETS, SweepSpec
from repro.sweep.system_runner import (
    DEFAULT_SYSTEM_CACHE_DIR,
    run_system_sweep,
)
from repro.sweep.system_spec import SYSTEM_PRESETS, SystemSweepSpec


@dataclass(frozen=True)
class SweepFamily:
    """One sweep family's declarative surface.

    Attributes:
        name: Registry key and CLI command name.
        schema: Artifact schema id (``"repro.<family>/v1"``).
        baseline_prefix: Committed-baseline filename prefix (the perf
            family predates prefixes and uses ``""``).
        bench_prefix: Artifact filename infix
            (``BENCH_<bench_prefix>_<preset>.json``; the perf family
            predates the registry and spells it ``sweep``).
        description: One-line summary (CLI help).
        spec_type: The family's spec dataclass.
        presets: Named preset table (``name -> spec``).
        run: ``run(spec, jobs=, cache_dir=, progress=) -> result``.
        gated_metrics: Metrics the baseline gate compares; ``None``
            gates every metric recorded in the baseline (the model and
            system convention).
        default_cache_dir: The runner's default point cache.
        cache_subdir: Subdirectory under a ``--cache-root``.
        top_fields: Family-specific top-level artifact fields drawn
            from the spec (scale/seed provenance).
        point_payload: Identity columns of one point result — the
            resolved grid coordinates recorded next to its metrics.
    """

    name: str
    schema: str
    baseline_prefix: str
    bench_prefix: str
    description: str
    spec_type: type
    presets: Mapping[str, Any]
    run: Callable[..., Any]
    gated_metrics: Optional[Tuple[str, ...]]
    default_cache_dir: Path
    cache_subdir: str
    top_fields: Callable[[Any], Dict[str, Any]]
    point_payload: Callable[[Any], Dict[str, Any]]

    def preset(self, name: str) -> Any:
        """Look up a preset by name with a helpful error."""
        try:
            return self.presets[name]
        except KeyError:
            known = ", ".join(sorted(self.presets))
            raise KeyError(
                f"unknown {self.name} preset {name!r}; known: {known}"
            ) from None

    def baseline_name(self, preset_name: str) -> str:
        """Committed baseline filename for a preset."""
        return f"{self.baseline_prefix}{preset_name}.json"

    def default_baseline_path(
        self, preset_name: str, root: Optional[Path] = None
    ) -> Path:
        """Committed baseline location for a preset (``--check``)."""
        base = Path(root) if root is not None else Path(".")
        return base / BASELINE_DIR / self.baseline_name(preset_name)

    def make_artifact(
        self,
        result: Any,
        git_rev: Optional[str] = None,
        provenance: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """Serialize a sweep result into this family's schema."""
        return make_family_artifact(
            self, result, git_rev=git_rev, provenance=provenance
        )

    def check_against_baseline(
        self,
        artifact: Dict[str, Any],
        baseline_path: Path,
        rtol: float = _artifacts.DEFAULT_RTOL,
        atol: float = _artifacts.DEFAULT_ATOL,
    ) -> Tuple[bool, list]:
        """Gate an artifact on a baseline with this family's schema
        and gated-metric set."""
        return _artifacts.check_against_baseline(
            artifact,
            baseline_path,
            rtol=rtol,
            atol=atol,
            schema=self.schema,
            gated_metrics=self.gated_metrics,
        )


def make_family_artifact(
    family: SweepFamily,
    result: Any,
    git_rev: Optional[str] = None,
    provenance: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Serialize any family's sweep result into its artifact schema.

    One builder for all five families: the shared layout (schema,
    provenance, timing, aggregates, keyed points) is fixed here; the
    family contributes only its ``top_fields`` and per-point
    ``point_payload`` columns. Emits the byte-for-byte layout of the
    pre-registry per-family builders (artifacts are serialized with
    ``sort_keys=True``, so insertion order carries no information).

    ``provenance`` (a :func:`repro.obs.run_provenance` block, carrying
    the run's backend/git/cache identity) is added as a separate
    top-level key only when given: the baseline gate compares
    ``points`` only, and omitting the key keeps artifacts written
    without it byte-identical to earlier releases.
    """
    spec = result.spec
    artifact: Dict[str, Any] = {
        "schema": family.schema,
        "preset": spec.name,
        "description": spec.description,
        "sweep_hash": spec.sweep_hash(),
        "git_rev": git_revision() if git_rev is None else git_rev,
        "created_utc": utc_now(),
    }
    artifact.update(family.top_fields(spec))
    artifact.update(
        {
            "jobs": result.jobs,
            "wall_clock_s": round(result.wall_clock_s, 3),
            "compute_time_s": round(result.compute_time_s, 3),
            "cache_hits": result.cache_hits,
            "aggregates": result.aggregates(),
            "points": {
                r.key: {
                    "config_hash": r.config_hash,
                    **family.point_payload(r),
                    # Copy: callers may mutate artifacts (baseline
                    # editing) without corrupting the live results.
                    "metrics": dict(r.metrics),
                    "wall_clock_s": round(r.wall_clock_s, 3),
                }
                for r in result.results
            },
        }
    )
    if provenance is not None:
        artifact["provenance"] = provenance
    return artifact


PERF_FAMILY = SweepFamily(
    name="sweep",
    bench_prefix="sweep",
    schema=SCHEMA,
    baseline_prefix="",
    description="Open-loop performance sweeps over the Table 4 "
    "workloads (slowdown, ALERT rate, mitigation volume)",
    spec_type=SweepSpec,
    presets=PRESETS,
    run=run_sweep,
    gated_metrics=GATED_METRICS,
    default_cache_dir=DEFAULT_CACHE_DIR,
    cache_subdir="sweep",
    top_fields=lambda spec: {"n_trefi": spec.n_trefi, "seed": spec.seed},
    point_payload=lambda r: {
        "workload": r.workload,
        "policy": r.policy,
        "ath": r.ath,
        "eth": r.eth,
        "abo_level": r.abo_level,
        "trefi_per_mitigation": r.trefi_per_mitigation,
    },
)

ATTACK_FAMILY = SweepFamily(
    name="attack",
    bench_prefix="attack",
    schema=ATTACK_SCHEMA,
    baseline_prefix="attack_",
    description="Security sweeps over registered attack kinds "
    "(max danger, ALERTs, attack throughput)",
    spec_type=AttackSweepSpec,
    presets=ATTACK_PRESETS,
    run=run_attack_sweep,
    gated_metrics=ATTACK_GATED_METRICS,
    default_cache_dir=DEFAULT_ATTACK_CACHE_DIR,
    cache_subdir="attack",
    top_fields=lambda spec: {"seed": spec.seed},
    point_payload=lambda r: {
        "attack": r.attack,
        "kind": r.kind,
        "figure": r.figure,
        "subchannels": r.subchannels,
        "params": dict(r.params),
    },
)

MODEL_FAMILY = SweepFamily(
    name="model",
    bench_prefix="model",
    schema=MODEL_SCHEMA,
    baseline_prefix="model_",
    description="Analytic model sweeps (closed-form tables: safe TRH, "
    "throughput bounds, mitigation rates)",
    spec_type=ModelSweepSpec,
    presets=MODEL_PRESETS,
    run=run_model_sweep,
    gated_metrics=MODEL_GATED_METRICS,
    default_cache_dir=DEFAULT_MODEL_CACHE_DIR,
    cache_subdir="model",
    top_fields=lambda spec: {},
    point_payload=lambda r: {
        "kind": r.kind,
        "params": dict(r.params),
    },
)

MC_FAMILY = SweepFamily(
    name="mc",
    bench_prefix="mc",
    schema=MC_SCHEMA,
    baseline_prefix="mc_",
    description="Closed-loop memory-controller sweeps (read latency "
    "percentiles, bandwidth, queue occupancy)",
    spec_type=McSweepSpec,
    presets=MC_PRESETS,
    run=run_mc_sweep,
    gated_metrics=MC_GATED_METRICS,
    default_cache_dir=DEFAULT_MC_CACHE_DIR,
    cache_subdir="mc",
    top_fields=lambda spec: {"n_trefi": spec.n_trefi, "seed": spec.seed},
    point_payload=lambda r: {
        "workload": r.workload,
        "policy": r.policy,
        "ath": r.ath,
        "eth": r.eth,
        "abo_level": r.abo_level,
        "scheduler": r.scheduler,
        "row_policy": r.row_policy,
        "queue_depth": r.queue_depth,
        "subchannels": r.subchannels,
        "banks": r.banks,
    },
)

SYSTEM_FAMILY = SweepFamily(
    name="system",
    bench_prefix="system",
    schema=SYSTEM_SCHEMA,
    baseline_prefix="system_",
    description="Multi-client, multi-channel system scenarios "
    "(per-client latency tails, noisy-neighbor contrasts)",
    spec_type=SystemSweepSpec,
    presets=SYSTEM_PRESETS,
    run=run_system_sweep,
    gated_metrics=SYSTEM_GATED_METRICS,
    default_cache_dir=DEFAULT_SYSTEM_CACHE_DIR,
    cache_subdir="system",
    # Scenarios carry their own scale/seed (no spec-level n_trefi).
    top_fields=lambda spec: {},
    point_payload=lambda r: {
        "scenario": r.scenario,
        "clients": list(r.clients),
        "policy": r.policy,
        "scheduler": r.scheduler,
        "ath": r.ath,
        "eth": r.eth,
        "abo_level": r.abo_level,
        "channels": r.channels,
        "banks": r.banks,
        "n_trefi": r.n_trefi,
        "seed": r.seed,
    },
)

#: All registered families, in introduction order.
FAMILIES: Dict[str, SweepFamily] = {
    family.name: family
    for family in (
        PERF_FAMILY,
        ATTACK_FAMILY,
        MODEL_FAMILY,
        MC_FAMILY,
        SYSTEM_FAMILY,
    )
}


def get_family(name: str) -> SweepFamily:
    """Look up a registered family by name with a helpful error."""
    try:
        return FAMILIES[name]
    except KeyError:
        known = ", ".join(FAMILIES)
        raise KeyError(
            f"unknown sweep family {name!r}; known: {known}"
        ) from None
