"""Parallel, cached execution of sweep specs.

Points are independent simulations with fully deterministic seeding
(the schedule generator and every stochastic policy derive their RNG
streams from the point's config), so executing them across a
``ProcessPoolExecutor`` produces bit-identical metrics to a serial
run — the runner asserts nothing about ordering and reassembles
results in spec order.

Completed points are persisted to a cache directory keyed on the
point's config hash; reruns (including a sweep interrupted halfway)
skip straight past them. The hash covers the workload, the policy
spec, every grid parameter, and a result-version constant, so any
semantic change to the simulator invalidates the cache wholesale.
"""

from __future__ import annotations

import json
import os
import sys
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.sim.perf import run_workload
from repro.sweep.spec import SweepPoint, SweepSpec
from repro.workloads.profiles import profile_by_name

#: Default on-disk cache location (relative to the working directory).
DEFAULT_CACHE_DIR = Path(".repro-cache") / "sweep"

ProgressFn = Callable[[str], None]


def wall_timer() -> float:
    """The sanctioned wall-clock read for orchestration telemetry.

    Every wall-time measurement outside this module, ``repro.obs``, and
    the benchmark suite goes through this function (enforced by the
    ``telemetry-purity`` lint rule): wall clock is orchestration
    telemetry — never baseline-gated, never a simulated quantity — and
    funneling it here keeps simulation scope free of host-time reads.
    """
    return time.perf_counter()


def stderr_progress(quiet: bool = False) -> Optional[ProgressFn]:
    """The one progress policy every CLI command shares.

    Per-point progress lines go to stderr (stdout carries the result
    tables and artifacts) and flush immediately so long sweeps stay
    observable through pipes; ``quiet`` suppresses them entirely.
    Centralized here so the ``sweep``, ``attack sweep``, ``report``,
    and ``mc sweep`` commands cannot wire verbosity differently.
    """
    if quiet:
        return None

    def progress(line: str) -> None:
        print(line, file=sys.stderr, flush=True)

    return progress


@dataclass
class PointResult:
    """Outcome of one sweep point (metrics plus provenance)."""

    key: str
    config_hash: str
    workload: str
    policy: str
    ath: int
    eth: int
    abo_level: int
    trefi_per_mitigation: int
    n_trefi: int
    seed: int
    metrics: Dict[str, float]
    wall_clock_s: float
    cached: bool = False

    def to_json(self) -> Dict[str, object]:
        return {
            "key": self.key,
            "config_hash": self.config_hash,
            "workload": self.workload,
            "policy": self.policy,
            "ath": self.ath,
            "eth": self.eth,
            "abo_level": self.abo_level,
            "trefi_per_mitigation": self.trefi_per_mitigation,
            "n_trefi": self.n_trefi,
            "seed": self.seed,
            "metrics": self.metrics,
            "wall_clock_s": self.wall_clock_s,
        }

    @staticmethod
    def from_json(data: Dict[str, object], cached: bool = False) -> "PointResult":
        return PointResult(
            key=str(data["key"]),
            config_hash=str(data["config_hash"]),
            workload=str(data["workload"]),
            policy=str(data["policy"]),
            ath=int(data["ath"]),
            eth=int(data["eth"]),
            abo_level=int(data["abo_level"]),
            trefi_per_mitigation=int(data["trefi_per_mitigation"]),
            n_trefi=int(data["n_trefi"]),
            seed=int(data["seed"]),
            metrics={k: float(v) for k, v in dict(data["metrics"]).items()},
            wall_clock_s=float(data["wall_clock_s"]),
            cached=cached,
        )


@dataclass
class SweepResult:
    """All point results of one sweep, in spec order."""

    spec: SweepSpec
    results: List[PointResult] = field(default_factory=list)
    wall_clock_s: float = 0.0
    jobs: int = 1
    #: Cache statistics from :func:`run_cached_grid` (hits, misses,
    #: recomputes, elapsed time) — recorded into artifact provenance.
    cache_stats: Dict[str, object] = field(default_factory=dict)

    @property
    def cache_hits(self) -> int:
        return sum(1 for r in self.results if r.cached)

    @property
    def compute_time_s(self) -> float:
        """Summed per-point simulation time. Cached points retain the
        wall-clock of their *original* computation, so this stays a
        meaningful perf-trajectory number even on warm-cache reruns
        (unlike ``wall_clock_s``, which times cache-file reads then)."""
        return sum(r.wall_clock_s for r in self.results)

    def by_key(self) -> Dict[str, PointResult]:
        return {r.key: r for r in self.results}

    def aggregates(self) -> Dict[str, float]:
        """Cross-point summary metrics (artifact ``aggregates`` block)."""
        n = len(self.results)
        if n == 0:
            return {}
        gmean = 1.0
        for r in self.results:
            gmean *= max(r.metrics.get("normalized_performance", 1.0), 1e-12)
        return {
            "points": float(n),
            "avg_slowdown": sum(r.metrics.get("slowdown", 0.0) for r in self.results) / n,
            "avg_alerts_per_trefi": sum(
                r.metrics.get("alerts_per_trefi", 0.0) for r in self.results
            )
            / n,
            "gmean_normalized_performance": gmean ** (1.0 / n),
        }


def execute_point(point: SweepPoint) -> PointResult:
    """Run one sweep point in the current process (worker entry)."""
    started = time.perf_counter()
    result = run_workload(profile_by_name(point.workload), point.config)
    config = point.config
    return PointResult(
        key=point.key,
        config_hash=point.config_hash(),
        workload=point.workload,
        policy=config.policy.display_name(),
        ath=config.ath,
        eth=config.eth_resolved,
        abo_level=config.abo_level,
        trefi_per_mitigation=config.trefi_per_mitigation_resolved,
        n_trefi=config.n_trefi,
        seed=config.seed,
        metrics=result.as_metrics(),
        wall_clock_s=time.perf_counter() - started,
    )


def _cache_path(cache_dir: Path, config_hash: str) -> Path:
    return cache_dir / f"{config_hash}.json"


def _load_cached(cache_dir: Path, config_hash: str, from_json):
    path = _cache_path(cache_dir, config_hash)
    if not path.is_file():
        return None
    try:
        data = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    if data.get("config_hash") != config_hash:
        return None  # stale/corrupt entry; recompute
    try:
        return from_json(data, cached=True)
    except (KeyError, TypeError, ValueError):
        return None


def _store_cached(cache_dir: Path, result) -> None:
    cache_dir.mkdir(parents=True, exist_ok=True)
    path = _cache_path(cache_dir, result.config_hash)
    tmp = path.with_suffix(f".tmp.{os.getpid()}")
    tmp.write_text(json.dumps(result.to_json(), indent=1, sort_keys=True))
    os.replace(tmp, path)


def run_cached_grid(
    points,
    execute,
    from_json,
    jobs: int = 1,
    cache_dir: Optional[Path] = None,
    progress: Optional[ProgressFn] = None,
    stats: Optional[Dict[str, object]] = None,
):
    """Shared cache/pool orchestration for both sweep families.

    Probes the on-disk cache for every point, runs the misses through a
    ``ProcessPoolExecutor`` (or in-process when ``jobs == 1``), stores
    fresh results, and reassembles everything in point order.

    Args:
        points: Grid cells exposing ``config_hash()``.
        execute: Module-level worker ``point -> result`` (picklable);
            results expose ``key``, ``config_hash``, ``cached``,
            ``wall_clock_s``, and ``to_json()``.
        from_json: Result codec ``(data, cached) -> result`` used to
            revive cache entries (exceptions mean recompute).
        jobs: Worker processes (``1`` = serial, in-process).
        cache_dir: Per-point result cache; ``None`` disables caching.
        progress: Optional callback receiving one line per finished
            point (``[done/total] key (cached|12.3s)``) plus a final
            cache/throughput summary line.
        stats: Optional dict the runner fills with cache statistics:
            ``hits`` (revived from cache), ``misses`` (no cache
            entry), ``recomputes`` (entry present but stale or
            unreadable), ``executed``, ``elapsed_s``, ``points_per_s``.

    Returns:
        Results in the same order as ``points``.
    """
    started = time.perf_counter()
    total = len(points)
    results: Dict[int, object] = {}

    def note(index: int, result) -> None:
        results[index] = result
        if progress is not None:
            status = "cached" if result.cached else f"{result.wall_clock_s:.1f}s"
            progress(f"[{len(results)}/{total}] {result.key} ({status})")

    hits = misses = recomputes = 0
    pending: List[int] = []
    for index, point in enumerate(points):
        if cache_dir:
            config_hash = point.config_hash()
            had_entry = _cache_path(cache_dir, config_hash).is_file()
            cached = _load_cached(cache_dir, config_hash, from_json)
        else:
            had_entry = False
            cached = None
        if cached is not None:
            hits += 1
            note(index, cached)
        elif had_entry:
            # An entry existed but failed revival (stale hash, corrupt
            # JSON, codec drift): counted apart from plain misses —
            # unexpected recomputes are the cache-invalidation signal.
            recomputes += 1
            pending.append(index)
        else:
            misses += 1
            pending.append(index)

    if pending and jobs > 1:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            futures = {pool.submit(execute, points[i]): i for i in pending}
            remaining = set(futures)
            while remaining:
                done, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                for future in done:
                    index = futures[future]
                    result = future.result()
                    if cache_dir:
                        _store_cached(cache_dir, result)
                    note(index, result)
    else:
        for index in pending:
            result = execute(points[index])
            if cache_dir:
                _store_cached(cache_dir, result)
            note(index, result)

    elapsed_s = time.perf_counter() - started
    rate = total / elapsed_s if elapsed_s > 0 else 0.0
    if stats is not None:
        stats.update({
            "hits": hits,
            "misses": misses,
            "recomputes": recomputes,
            "executed": len(pending),
            "elapsed_s": elapsed_s,
            "points_per_s": rate,
        })
    if progress is not None and total:
        progress(
            f"cache: {hits} hits, {misses} misses, {recomputes} "
            f"recomputes; {total} points in {elapsed_s:.1f}s "
            f"({rate:.1f} points/s)"
        )

    return [results[i] for i in range(total)]


def run_sweep(
    spec: SweepSpec,
    jobs: int = 1,
    cache_dir: Optional[Path] = DEFAULT_CACHE_DIR,
    progress: Optional[ProgressFn] = None,
) -> SweepResult:
    """Execute every point of ``spec``; parallel when ``jobs > 1``.

    Args:
        spec: The grid to run.
        jobs: Worker processes (``1`` = serial, in-process).
        cache_dir: Per-point result cache; ``None`` disables caching.
        progress: Optional callback receiving one line per finished
            point (``[done/total] key (cached|12.3s)``).
    """
    started = time.perf_counter()
    cache_stats: Dict[str, object] = {}
    ordered = run_cached_grid(
        spec.points(),
        execute_point,
        PointResult.from_json,
        jobs=jobs,
        cache_dir=cache_dir,
        progress=progress,
        stats=cache_stats,
    )
    return SweepResult(
        spec=spec,
        results=ordered,
        wall_clock_s=time.perf_counter() - started,
        jobs=jobs,
        cache_stats=cache_stats,
    )
