"""Cached execution of model sweeps (the analytic artifact family).

Mirrors :mod:`repro.sweep.runner` and :mod:`repro.sweep.attack_runner`
for analytic/derived quantities: points are pure, deterministic
computations, so they flow through the shared
:func:`repro.sweep.runner.run_cached_grid` cache/pool core unchanged.
Most evaluators are microseconds of arithmetic — the cache matters for
the few that are not (the sampled Jailbreak curve at 2^20 iterations,
per-workload schedule generation for Table 4) and for giving every
point a stable ``BENCH``/baseline identity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.sweep.model_spec import ModelSweepPoint, ModelSweepSpec
from repro.sweep.runner import ProgressFn, run_cached_grid, wall_timer

#: Default on-disk cache location (sibling of the other sweep caches).
DEFAULT_MODEL_CACHE_DIR = Path(".repro-cache") / "model"


@dataclass
class ModelPointResult:
    """Outcome of one model point (metrics plus provenance)."""

    key: str
    config_hash: str
    kind: str
    params: Dict[str, object]
    metrics: Dict[str, float]
    wall_clock_s: float
    cached: bool = False

    def to_json(self) -> Dict[str, object]:
        return {
            "key": self.key,
            "config_hash": self.config_hash,
            "kind": self.kind,
            "params": self.params,
            "metrics": self.metrics,
            "wall_clock_s": self.wall_clock_s,
        }

    @staticmethod
    def from_json(
        data: Dict[str, object], cached: bool = False
    ) -> "ModelPointResult":
        return ModelPointResult(
            key=str(data["key"]),
            config_hash=str(data["config_hash"]),
            kind=str(data["kind"]),
            params=dict(data["params"]),
            metrics={k: float(v) for k, v in dict(data["metrics"]).items()},
            wall_clock_s=float(data["wall_clock_s"]),
            cached=cached,
        )


@dataclass
class ModelSweepResult:
    """All point results of one model sweep, in spec order."""

    spec: ModelSweepSpec
    results: List[ModelPointResult] = field(default_factory=list)
    wall_clock_s: float = 0.0
    jobs: int = 1
    #: Cache statistics from :func:`run_cached_grid` (hits, misses,
    #: recomputes, elapsed time) — recorded into artifact provenance.
    cache_stats: Dict[str, object] = field(default_factory=dict)

    @property
    def cache_hits(self) -> int:
        return sum(1 for r in self.results if r.cached)

    @property
    def compute_time_s(self) -> float:
        """Summed per-point evaluation time (cached points keep the
        wall-clock of their original computation)."""
        return sum(r.wall_clock_s for r in self.results)

    def by_key(self) -> Dict[str, ModelPointResult]:
        return {r.key: r for r in self.results}

    def aggregates(self) -> Dict[str, float]:
        """Cross-point summary (artifact ``aggregates`` block)."""
        return {"points": float(len(self.results))}


def execute_model_point(point: ModelSweepPoint) -> ModelPointResult:
    """Evaluate one model point in the current process (worker entry)."""
    started = wall_timer()
    metrics = point.model.evaluate()
    return ModelPointResult(
        key=point.key,
        config_hash=point.config_hash(),
        kind=point.model.kind,
        params=point.model.param_dict(),
        metrics={k: float(v) for k, v in metrics.items()},
        wall_clock_s=wall_timer() - started,
    )


def run_model_sweep(
    spec: ModelSweepSpec,
    jobs: int = 1,
    cache_dir: Optional[Path] = DEFAULT_MODEL_CACHE_DIR,
    progress: Optional[ProgressFn] = None,
) -> ModelSweepResult:
    """Execute every point of ``spec``; parallel when ``jobs > 1``.

    Args:
        spec: The model grid to evaluate.
        jobs: Worker processes (``1`` = serial, in-process).
        cache_dir: Per-point result cache; ``None`` disables caching.
        progress: Optional callback receiving one line per finished
            point (``[done/total] key (cached|12.3s)``).
    """
    started = wall_timer()
    cache_stats: Dict[str, object] = {}
    ordered = run_cached_grid(
        spec.points(),
        execute_model_point,
        ModelPointResult.from_json,
        jobs=jobs,
        cache_dir=cache_dir,
        progress=progress,
        stats=cache_stats,
    )
    return ModelSweepResult(
        spec=spec,
        results=ordered,
        wall_clock_s=wall_timer() - started,
        jobs=jobs,
        cache_stats=cache_stats,
    )
