"""Declarative model-sweep specifications and named presets.

The third sweep family next to the performance grids
(:mod:`repro.sweep.spec`) and the attack grids
(:mod:`repro.sweep.attack_spec`): a :class:`ModelSweepSpec` evaluates
*analytic and derived* quantities — closed-form security bounds, DRAM
timing identities, SRAM budgets, workload-generator characteristics —
through the same ``run_cached_grid`` cache/pool core and the same
artifact/baseline gating as the simulated families. That puts every
number the paper report needs, simulated or not, on one stack: cached,
parallelizable, and drift-gated.

A :class:`ModelSpec` mirrors :class:`~repro.attacks.registry.AttackSpec`
— a picklable ``(kind, params)`` pair validated against the registered
evaluator's signature — and :data:`MODEL_PRESETS` names the grids behind
the analytic paper artifacts (Figure 8, Figure 15, Tables 1-4, the
Section 6.5 storage numbers, the Section 7.1 throughput model, ...).
"""

from __future__ import annotations

import dataclasses
import hashlib
import inspect
import json
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.abo.protocol import AboConfig
from repro.analysis.energy import moat_sram_bytes, moat_sram_bytes_per_chip
from repro.analysis.feinting_model import feinting_bound, harmonic
from repro.analysis.ratchet_model import ratchet_safe_trh
from repro.analysis.throughput import (
    alert_window_throughput,
    continuous_alert_slowdown,
    mixed_throughput,
    single_bank_attack_throughput,
)
from repro.attacks.jailbreak import randomized_jailbreak_curve
from repro.dram.timing import BASELINE_SYSTEM, DDR5_PRAC_TIMING
from repro.mitigations.graphene import graphene_sram_bytes
from repro.mitigations.moat import MoatPolicy
from repro.mitigations.panopticon import PanopticonPolicy
from repro.mitigations.trr import TrrTracker
from repro.workloads.generator import generate_schedule, measure_characteristics
from repro.workloads.profiles import profile_by_name

#: Bump when a registered evaluator's semantics change in a way that
#: invalidates previously cached model points.
MODEL_RESULT_VERSION = 1

ModelEvaluator = Callable[..., Dict[str, float]]


def _eval_abo_config(level: int = 1) -> Dict[str, float]:
    """Figure 8 / ABO protocol identities for one level."""
    config = AboConfig(level=level)
    return {
        "min_acts_between_alerts": float(config.min_acts_between_alerts),
        "pre_rfm_acts": float(config.pre_rfm_acts),
        "rfms_per_alert": float(config.rfms_per_alert),
        "alert_duration_ns": float(config.alert_duration),
    }


def _eval_timing() -> Dict[str, float]:
    """Table 1 DRAM timing identities (revised DDR5 / JESD79-5C)."""
    t = DDR5_PRAC_TIMING
    return {
        "t_act_ns": t.t_act,
        "t_pre_ns": t.t_pre,
        "t_ras_ns": t.t_ras,
        "t_rc_ns": t.t_rc,
        "t_refw_ms": t.t_refw / 1e6,
        "t_refi_ns": t.t_refi,
        "t_rfc_ns": t.t_rfc,
        "acts_per_trefi": float(t.acts_per_trefi),
        "refs_per_refw": float(t.refs_per_refw),
        "mitigations_per_refw_rate5": float(t.mitigations_per_refw(5)),
    }


def _eval_system_config() -> Dict[str, float]:
    """Table 3 baseline-system configuration, flattened to numbers."""
    cfg = BASELINE_SYSTEM
    return {
        "cores": float(cfg.cores),
        "core_freq_ghz": float(cfg.core_freq_ghz),
        "core_width": float(cfg.core_width),
        "rob_entries": float(cfg.rob_entries),
        "llc_mb": cfg.llc_bytes / 2**20,
        "llc_ways": float(cfg.llc_ways),
        "line_bytes": float(cfg.line_bytes),
        "memory_gb": float(cfg.memory_gb),
        "banks": float(cfg.banks),
        "subchannels": float(cfg.subchannels),
        "ranks": float(cfg.ranks),
        "rows_per_bank": float(cfg.rows_per_bank),
        "row_kb": cfg.row_bytes / 1024,
        "closed_page": float(cfg.closed_page),
        "alert_l1_ns": cfg.timing.alert_duration(1),
    }


def _eval_safe_trh(ath: int = 64, level: int = 1) -> Dict[str, float]:
    """Appendix A Ratchet bound: tolerated T_RH of MOAT."""
    return {"safe_trh": float(ratchet_safe_trh(ath, level))}


def _eval_feinting_bound(
    trefi_per_mitigation: int = 1, periods: int = 0
) -> Dict[str, float]:
    """Table 2 feinting bound; ``periods=0`` means the full window."""
    if periods:
        acts = DDR5_PRAC_TIMING.acts_per_trefi * trefi_per_mitigation
        return {"bound": acts * harmonic(periods)}
    return {"bound": feinting_bound(trefi_per_mitigation)}


def _eval_moat_sram(level: int = 1) -> Dict[str, float]:
    """Section 6.5 MOAT SRAM budget per bank and per 32-bank chip."""
    return {
        "bytes_per_bank": float(moat_sram_bytes(level)),
        "bytes_per_chip": float(moat_sram_bytes_per_chip(level)),
        "policy_bytes_per_bank": float(MoatPolicy(level=level).sram_bytes()),
    }


def _eval_design_sram(
    design: str = "moat",
    entries: int = 16,
    target_trh: int = 99,
    level: int = 1,
) -> Dict[str, float]:
    """Figure 1 SRAM coordinate of one tracker design."""
    if design == "trr":
        return {"sram_bytes": float(TrrTracker(entries=entries).sram_bytes())}
    if design == "graphene":
        return {"sram_bytes": float(graphene_sram_bytes(target_trh))}
    if design == "panopticon":
        return {"sram_bytes": float(PanopticonPolicy().sram_bytes())}
    if design == "moat":
        return {"sram_bytes": float(MoatPolicy(level=level).sram_bytes())}
    raise ValueError(f"unknown tracker design {design!r}")


def _eval_throughput_model(level: int = 1) -> Dict[str, float]:
    """Section 7.1 / Appendix D ALERT-throughput model for one level."""
    return {
        "alert_window_throughput": alert_window_throughput(level),
        "continuous_alert_slowdown": continuous_alert_slowdown(level),
        "mixed_throughput_10pct": mixed_throughput(0.1, level),
    }


def _eval_kernel_model(ath: int = 64, level: int = 1) -> Dict[str, float]:
    """Section 7.2 stall-only kernel model (Figure 13's analytic rows)."""
    throughput = single_bank_attack_throughput(ath=ath, level=level)
    return {"throughput": throughput, "throughput_loss": 1.0 - throughput}


def _eval_jailbreak_curve(
    iterations: int = 4,
    threshold: int = 128,
    queue_entries: int = 8,
    prime_acts: int = 32,
    seed: int = 0,
) -> Dict[str, float]:
    """Figure 5 randomized-Jailbreak sampled curve at one budget.

    Points at different iteration counts share one RNG stream prefix
    (same seed), so ``best_acts`` is monotone across a preset's grid
    exactly as in the figure.
    """
    curve = randomized_jailbreak_curve(
        [iterations],
        threshold=threshold,
        queue_entries=queue_entries,
        prime_acts=prime_acts,
        seed=seed,
    )
    return {"best_acts": float(curve[iterations])}


def _eval_workload_stats(
    workload: str = "roms", n_trefi: int = 2048, seed: int = 0
) -> Dict[str, float]:
    """Table 4 characteristics of one generated workload schedule."""
    profile = profile_by_name(workload)
    schedule = generate_schedule(profile, n_trefi=n_trefi, seed=seed)
    stats = measure_characteristics(schedule)
    stats["paper_act_32_plus"] = float(profile.act_32_plus)
    stats["paper_act_64_plus"] = float(profile.act_64_plus)
    stats["paper_act_128_plus"] = float(profile.act_128_plus)
    return stats


@dataclass(frozen=True)
class _ModelKind:
    name: str
    evaluator: ModelEvaluator
    #: One-line description surfaced by listings and the README.
    description: str

    def param_names(self) -> Tuple[str, ...]:
        return tuple(inspect.signature(self.evaluator).parameters)


_REGISTRY: Dict[str, _ModelKind] = {
    kind.name: kind
    for kind in (
        _ModelKind("abo-config", _eval_abo_config,
                   "ABO protocol identities per level (Figure 8)"),
        _ModelKind("timing", _eval_timing,
                   "revised DDR5 timing identities (Table 1)"),
        _ModelKind("system-config", _eval_system_config,
                   "baseline system configuration (Table 3)"),
        _ModelKind("safe-trh", _eval_safe_trh,
                   "Appendix A Ratchet bound (Figures 10/15, Table 7)"),
        _ModelKind("feinting-bound", _eval_feinting_bound,
                   "closed-form feinting T_RH bound (Table 2)"),
        _ModelKind("moat-sram", _eval_moat_sram,
                   "MOAT SRAM budget per bank/chip (Section 6.5)"),
        _ModelKind("design-sram", _eval_design_sram,
                   "SRAM coordinate of one tracker design (Figure 1)"),
        _ModelKind("throughput-model", _eval_throughput_model,
                   "continuous-ALERT throughput model (Section 7.1)"),
        _ModelKind("kernel-model", _eval_kernel_model,
                   "stall-only kernel throughput model (Section 7.2)"),
        _ModelKind("jailbreak-curve", _eval_jailbreak_curve,
                   "sampled randomized-Jailbreak curve (Figure 5)"),
        _ModelKind("workload-stats", _eval_workload_stats,
                   "generator characteristics of one workload (Table 4)"),
    )
}


def model_kinds() -> Tuple[str, ...]:
    """Registered model kind names."""
    return tuple(_REGISTRY)


def model_descriptions() -> Dict[str, Dict[str, object]]:
    """Registry-driven summary for CLI listings (cannot drift)."""
    return {
        kind.name: {
            "description": kind.description,
            "params": ", ".join(kind.param_names()),
        }
        for kind in _REGISTRY.values()
    }


@dataclass(frozen=True)
class ModelSpec:
    """Declarative, hashable, picklable model-point description.

    Mirrors :class:`~repro.attacks.registry.AttackSpec`: ``params`` is
    a sorted tuple of ``(name, value)`` pairs validated against the
    evaluator's signature at construction time.
    """

    kind: str = "timing"
    params: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in _REGISTRY:
            raise ValueError(
                f"unknown model kind {self.kind!r}; "
                f"known: {', '.join(sorted(_REGISTRY))}"
            )
        allowed = set(_REGISTRY[self.kind].param_names())
        for name, _ in self.params:
            if name not in allowed:
                raise ValueError(
                    f"model {self.kind!r} has no parameter {name!r}; "
                    f"known: {', '.join(sorted(allowed))}"
                )
        object.__setattr__(self, "params", tuple(sorted(self.params)))

    @staticmethod
    def of(kind: str, **params: Any) -> "ModelSpec":
        return ModelSpec(kind, tuple(sorted(params.items())))

    def param_dict(self) -> Dict[str, Any]:
        return dict(self.params)

    def display_name(self) -> str:
        if not self.params:
            return self.kind
        inner = ",".join(f"{k}={v}" for k, v in self.params)
        return f"{self.kind}({inner})"

    def evaluate(self) -> Dict[str, float]:
        """Compute the point's metrics (pure, deterministic)."""
        return _REGISTRY[self.kind].evaluator(**self.param_dict())

    def replaced(self, **params: Any) -> "ModelSpec":
        """Copy with parameter overrides applied (only known names)."""
        merged = self.param_dict()
        merged.update(params)
        return ModelSpec.of(self.kind, **merged)


@dataclass(frozen=True)
class ModelSweepPoint:
    """One grid cell of a model sweep."""

    model: ModelSpec

    @property
    def key(self) -> str:
        return self.model.display_name()

    def config_hash(self) -> str:
        """Content hash of everything that determines the result."""
        payload = {
            "version": MODEL_RESULT_VERSION,
            "model": {"kind": self.model.kind,
                      "params": [list(p) for p in self.model.params]},
        }
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()[:16]


@dataclass(frozen=True)
class ModelSweepSpec:
    """Named list of model points (the analytic analogue of a grid)."""

    name: str
    description: str = ""
    models: Tuple[ModelSpec, ...] = ()

    def points(self) -> List[ModelSweepPoint]:
        """Expand in declaration order, deduplicated by key."""
        out: List[ModelSweepPoint] = []
        seen: set = set()
        for model in self.models:
            point = ModelSweepPoint(model=model)
            if point.key not in seen:
                seen.add(point.key)
                out.append(point)
        return out

    def sweep_hash(self) -> str:
        """Identity of the whole grid (order-independent)."""
        hashes = sorted(p.config_hash() for p in self.points())
        blob = json.dumps([self.name, hashes], separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()[:16]

    def with_overrides(
        self, n_trefi: Optional[int] = None
    ) -> "ModelSweepSpec":
        """Copy with the run scale applied to scale-aware kinds.

        Only ``workload-stats`` points consume a window length; every
        other kind is scale-free and passes through untouched.
        """
        if n_trefi is None:
            return self
        models = tuple(
            m.replaced(n_trefi=n_trefi) if m.kind == "workload-stats" else m
            for m in self.models
        )
        return dataclasses.replace(self, models=models)


def _workload_stats_models(n_trefi: int = 2048) -> Tuple[ModelSpec, ...]:
    from repro.workloads.profiles import TABLE4_PROFILES

    return tuple(
        ModelSpec.of("workload-stats", workload=p.name, n_trefi=n_trefi)
        for p in TABLE4_PROFILES
    )


#: ATH grid shared by the Figure 10/15 safe-TRH curves.
SAFE_TRH_ATH_SWEEP = (16, 32, 48, 64, 80, 96, 112, 128)

MODEL_PRESETS: Dict[str, ModelSweepSpec] = {
    spec.name: spec
    for spec in (
        ModelSweepSpec(
            name="fig8",
            description="ABO protocol identities at levels 1/2/4 "
            "(Figure 8)",
            models=tuple(
                ModelSpec.of("abo-config", level=level) for level in (1, 2, 4)
            ),
        ),
        ModelSweepSpec(
            name="fig15",
            description="Safe T_RH under Ratchet across ATH x ABO level "
            "(Figure 15 / Figure 10 / Table 7)",
            models=tuple(
                ModelSpec.of("safe-trh", ath=ath, level=level)
                for level in (1, 2, 4)
                for ath in SAFE_TRH_ATH_SWEEP
            ),
        ),
        ModelSweepSpec(
            name="fig5-curve",
            description="Randomized-Jailbreak sampled curve vs "
            "iteration budget (Figure 5)",
            models=tuple(
                ModelSpec.of("jailbreak-curve", iterations=2**k)
                for k in range(2, 21, 3)
            ),
        ),
        ModelSweepSpec(
            name="fig1-sram",
            description="SRAM coordinates of the Figure 1 tracker "
            "design space at T_RH ~ 99",
            models=(
                ModelSpec.of("design-sram", design="trr", entries=16),
                ModelSpec.of("design-sram", design="graphene",
                             target_trh=99),
                ModelSpec.of("design-sram", design="panopticon"),
                ModelSpec.of("design-sram", design="moat", level=1),
            ),
        ),
        ModelSweepSpec(
            name="table1",
            description="Revised DDR5 timing identities (Table 1)",
            models=(ModelSpec.of("timing"),),
        ),
        ModelSweepSpec(
            name="table2-bound",
            description="Feinting T_RH bound per mitigation rate, full "
            "window and 512-period prefix (Table 2)",
            models=tuple(
                ModelSpec.of("feinting-bound", trefi_per_mitigation=k)
                for k in (1, 2, 3, 4, 5)
            )
            + tuple(
                ModelSpec.of("feinting-bound", trefi_per_mitigation=k,
                             periods=512)
                for k in (1, 2, 3, 4, 5)
            ),
        ),
        ModelSweepSpec(
            name="table3",
            description="Baseline system configuration (Table 3)",
            models=(ModelSpec.of("system-config"),),
        ),
        ModelSweepSpec(
            name="table4",
            description="Generator characteristics of every Table 4 "
            "workload",
            models=_workload_stats_models(),
        ),
        ModelSweepSpec(
            name="sec65-storage",
            description="MOAT SRAM budget at levels 1/2/4 "
            "(Section 6.5 / Appendix D)",
            models=tuple(
                ModelSpec.of("moat-sram", level=level) for level in (1, 2, 4)
            ),
        ),
        ModelSweepSpec(
            name="sec71",
            description="Continuous-ALERT throughput model per level "
            "plus the stall-only kernel model (Section 7.1/7.2)",
            models=tuple(
                ModelSpec.of("throughput-model", level=level)
                for level in (1, 2, 4)
            )
            + (ModelSpec.of("kernel-model", ath=64),),
        ),
    )
}


def model_preset(name: str) -> ModelSweepSpec:
    """Look up a model preset by name with a helpful error."""
    try:
        return MODEL_PRESETS[name]
    except KeyError:
        known = ", ".join(sorted(MODEL_PRESETS))
        raise KeyError(
            f"unknown model preset {name!r}; known: {known}"
        ) from None
