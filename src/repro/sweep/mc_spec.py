"""Declarative memory-controller sweep specifications and presets.

The closed-loop analogue of :mod:`repro.sweep.spec`: an
:class:`McSweepSpec` is the cross product of its axes (arrival
workloads, policies, ATH, ABO level, queue depth, scheduler, row
policy); expanding it yields one :class:`McSweepPoint` per cell, each
carrying a complete :class:`~repro.sim.mc.McRunConfig` plus a stable
key and a content hash — the identity used by the shared
``run_cached_grid`` point cache and by the ``BENCH_mc.json`` baseline
gate (schema ``repro.mc/v1``).

The family is new, so no additive-axis compatibility shims are needed
yet; :data:`_NEUTRAL_AXES` exists (empty) to carry the same convention
as the perf and attack families — when a new axis lands later, its
neutral value hashes (and keys) out so every committed baseline and
cache entry below survives, exactly as ``subchannels`` did for the
perf sweep. Hashing is confined to this family: the perf, attack, and
model families' identities are untouched, so all pre-existing caches
and baselines stay valid.

:data:`MC_PRESETS` names the scenario grids: the CI smoke gate, the
ABO-level latency staircase (the queueing effect the stall-fraction
substitution cannot express), a load sweep, the policy ablation, and
the scheduler/row-policy matrix.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.mitigations.registry import PolicySpec
from repro.sim.mc import McRunConfig
from repro.sweep.spec import _canonical
from repro.workloads.requests import McWorkload

#: Bump when controller or engine semantics change in a way that
#: invalidates previously cached mc points.
MC_RESULT_VERSION = 1

#: Additive axes mapped to their neutral value (same convention as the
#: perf sweep's spec): ``sched_params`` landed with the pluggable
#: scheduling layer, and its empty spelling (the kind's defaults,
#: which is what every pre-existing point ran) hashes out so all
#: committed baselines and cache entries survive. ``_canonical``
#: renders the tuple-of-pairs as a JSON list, hence the ``[]``.
_NEUTRAL_AXES: Dict[str, Any] = {"sched_params": []}


@dataclass(frozen=True)
class McSweepPoint:
    """One grid cell: a complete closed-loop run configuration."""

    config: McRunConfig

    @property
    def key(self) -> str:
        """Stable human-readable identity (artifact/baseline key)."""
        c = self.config
        depth = "inf" if c.queue_depth is None else str(c.queue_depth)
        sc = f"|sc={c.subchannels}" if c.subchannels != 1 else ""
        return (
            f"{c.workload.display_name()}|{c.policy.display_name()}"
            f"|ath={c.ath}|eth={c.eth_resolved}|L{c.abo_level}"
            f"|tpm={c.trefi_per_mitigation_resolved}"
            f"|{c.sched_display()}|{c.row_policy}|qd={depth}"
            f"{sc}|b{c.banks}|trefi={c.n_trefi}|seed={c.seed}"
        )

    def config_hash(self) -> str:
        """Content hash of everything that determines the result.

        Optional fields hash at their *resolved* values (ETH to ATH/2,
        the proactive cadence to the policy's native rate), so
        equivalent spellings share one cache entry and one baseline
        identity; axes listed in :data:`_NEUTRAL_AXES` hash out at
        their neutral value. The burst knobs of a *Poisson* workload
        are dead parameters (the generator never reads them), so they
        hash at their defaults — spellings that produce the same
        stream share one identity, matching the key's deduplication.
        """
        config = _canonical(self.config)
        config["eth"] = self.config.eth_resolved
        config["trefi_per_mitigation"] = (
            self.config.trefi_per_mitigation_resolved
        )
        # The kernel backend is equivalence-gated (bit-identical by
        # contract and by test), so it can never be part of a result's
        # identity — pure and compiled runs share one cache entry.
        config.pop("backend", None)
        if self.config.workload.process != "bursty":
            config["workload"]["burst_trefi"] = 8.0
            config["workload"]["idle_trefi"] = 8.0
        for name, neutral in _NEUTRAL_AXES.items():
            if config.get(name) == neutral:
                del config[name]
        payload = {
            "version": MC_RESULT_VERSION,
            "config": config,
        }
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()[:16]


@dataclass(frozen=True)
class McSweepSpec:
    """Grid of closed-loop runs (cross product of the axis fields)."""

    name: str
    description: str = ""
    workloads: Tuple[McWorkload, ...] = (McWorkload(),)
    policies: Tuple[PolicySpec, ...] = (PolicySpec(),)
    ath: Tuple[int, ...] = (64,)
    abo_level: Tuple[int, ...] = (1,)
    queue_depth: Tuple[Optional[int], ...] = (32,)
    scheduler: Tuple[str, ...] = ("frfcfs",)
    row_policy: Tuple[str, ...] = ("closed",)
    subchannels: int = 1
    banks: int = 4
    n_trefi: int = 512
    seed: int = 0

    def points(self) -> List[McSweepPoint]:
        """Expand the grid in deterministic order, deduplicated by key."""
        out: List[McSweepPoint] = []
        seen: set = set()
        for workload, policy, ath, level, depth, sched, row in (
            itertools.product(
                self.workloads,
                self.policies,
                self.ath,
                self.abo_level,
                self.queue_depth,
                self.scheduler,
                self.row_policy,
            )
        ):
            config = McRunConfig(
                ath=ath,
                abo_level=level,
                policy=policy,
                workload=workload,
                queue_depth=depth,
                scheduler=sched,
                row_policy=row,
                subchannels=self.subchannels,
                banks=self.banks,
                n_trefi=self.n_trefi,
                seed=self.seed,
            )
            point = McSweepPoint(config=config)
            if point.key not in seen:
                seen.add(point.key)
                out.append(point)
        return out

    def sweep_hash(self) -> str:
        """Identity of the whole grid (order-independent)."""
        hashes = sorted(p.config_hash() for p in self.points())
        blob = json.dumps([self.name, hashes], separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()[:16]

    def with_overrides(
        self,
        n_trefi: Optional[int] = None,
        seed: Optional[int] = None,
    ) -> "McSweepSpec":
        """Copy with cheap-scale overrides (CLI flags)."""
        changes: Dict[str, Any] = {}
        if n_trefi is not None:
            changes["n_trefi"] = n_trefi
        if seed is not None:
            changes["seed"] = seed
        return dataclasses.replace(self, **changes) if changes else self


#: A request mix hot enough that MOAT's thresholds are exercised: half
#: the stream hammers a 4-row set per bank, which at ATH=32 drives a
#: steady ALERT rate — the regime where ABO recovery dominates the
#: latency tail.
HAMMER_WORKLOAD = McWorkload(
    reads_per_trefi_per_bank=40.0, hot_fraction=0.5, hot_rows=4
)

MC_PRESETS: Dict[str, McSweepSpec] = {
    spec.name: spec
    for spec in (
        McSweepSpec(
            name="mc-smoke",
            description="CI smoke gate: MOAT and the unprotected "
            "baseline under Poisson and bursty arrivals",
            workloads=(
                McWorkload(reads_per_trefi_per_bank=24.0),
                McWorkload(process="bursty", reads_per_trefi_per_bank=24.0),
            ),
            policies=(PolicySpec("moat"), PolicySpec("null")),
            banks=2,
        ),
        McSweepSpec(
            name="mc-abo",
            description="ABO-level latency staircase: p99 read latency "
            "vs recovery level 1/2/4 at a fixed hammer-heavy arrival "
            "rate (MOAT vs unprotected)",
            workloads=(HAMMER_WORKLOAD,),
            policies=(PolicySpec("moat"), PolicySpec("null")),
            ath=(32,),
            abo_level=(1, 2, 4),
        ),
        McSweepSpec(
            name="mc-rate",
            description="Load sweep: latency and bandwidth vs Poisson "
            "arrival rate toward bank saturation",
            workloads=tuple(
                McWorkload(reads_per_trefi_per_bank=rate,
                           hot_fraction=0.25, hot_rows=8)
                for rate in (8.0, 24.0, 40.0, 56.0)
            ),
            policies=(PolicySpec("moat"), PolicySpec("null")),
        ),
        McSweepSpec(
            name="mc-policy",
            description="Closed-loop policy ablation: every registered "
            "mitigation under the hammer-heavy mix at ATH=32",
            workloads=(HAMMER_WORKLOAD,),
            policies=(
                PolicySpec("moat"),
                PolicySpec("panopticon"),
                PolicySpec("para"),
                PolicySpec("trr"),
                PolicySpec("graphene"),
                PolicySpec("victim-counter"),
                PolicySpec("null"),
            ),
            ath=(32,),
        ),
        McSweepSpec(
            name="mc-sched",
            description="Scheduler x row-buffer matrix: FCFS vs "
            "FR-FCFS under closed and open page policies",
            workloads=(
                McWorkload(reads_per_trefi_per_bank=40.0,
                           hot_fraction=0.5, hot_rows=8),
            ),
            policies=(PolicySpec("moat"),),
            scheduler=("fcfs", "frfcfs"),
            row_policy=("closed", "open"),
        ),
    )
}


def mc_preset(name: str) -> McSweepSpec:
    """Look up an mc preset by name with a helpful error."""
    try:
        return MC_PRESETS[name]
    except KeyError:
        known = ", ".join(sorted(MC_PRESETS))
        raise KeyError(f"unknown mc preset {name!r}; known: {known}") from None
