"""Declarative sweep specifications and named presets.

A :class:`SweepSpec` is the cross product of its axes (workloads, ATH,
ETH, ABO level, proactive cadence, mitigation policy); expanding it
yields one :class:`SweepPoint` per grid cell, each carrying a complete
:class:`~repro.sim.perf.RunConfig` plus a stable human-readable key
and a content hash. The hash covers everything that determines the
simulated outcome, so it doubles as the cache key of the parallel
runner and as the identity check when diffing artifacts against a
committed baseline.

:data:`PRESETS` names a spec for every paper figure/table the
benchmark harness reproduces.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.mitigations.registry import PolicySpec
from repro.sim.perf import RunConfig
from repro.workloads.profiles import TABLE4_PROFILES, profile_by_name

#: Representative subset for the parameter-sweep tables (the hottest
#: workloads plus quiet controls); the figure presets use all 21.
SWEEP_WORKLOADS: Tuple[str, ...] = (
    "roms",
    "parest",
    "xz",
    "lbm",
    "mcf",
    "cactuBSSN",
    "bwaves",
    "sssp",
    "tc",
)

ALL_WORKLOADS: Tuple[str, ...] = tuple(p.name for p in TABLE4_PROFILES)

#: Bump when the schedule generator or engine semantics change in a
#: way that invalidates previously cached sweep points.
RESULT_VERSION = 1

#: Axes added after the first baselines were committed, mapped to the
#: neutral value at which they leave the simulation unchanged. A config
#: whose axis sits at the neutral value hashes (and keys) identically
#: to a config predating the axis.
_NEUTRAL_AXES = {"subchannels": 1}


@dataclass(frozen=True)
class SweepPoint:
    """One grid cell: a workload name plus its full run config."""

    workload: str
    config: RunConfig

    @property
    def key(self) -> str:
        """Stable human-readable identity (artifact/baseline key).

        Like :meth:`config_hash`, additive axes only appear at
        non-neutral values, so pre-existing baseline keys stay valid.
        """
        c = self.config
        sc = f"|sc={c.subchannels}" if c.subchannels != 1 else ""
        return (
            f"{self.workload}|{c.policy.display_name()}"
            f"|ath={c.ath}|eth={c.eth_resolved}|L{c.abo_level}"
            f"|tpm={c.trefi_per_mitigation_resolved}"
            f"{sc}|trefi={c.n_trefi}|seed={c.seed}"
        )

    def config_hash(self) -> str:
        """Content hash of everything that determines the result.

        Optional fields are hashed at their *resolved* values (ETH
        defaulting to ATH/2, the proactive cadence to the policy's
        native rate), so a point spelled ``eth=None`` and one spelled
        ``eth=32`` — identical simulations — share one cache entry and
        one baseline identity, matching the resolved point key.

        Additive axes hash out at their neutral value (see
        :data:`_NEUTRAL_AXES`): a ``subchannels=1`` run is the same
        simulation the pre-channel engine performed, so it must keep
        the same identity — that is what lets committed baselines and
        cached points survive the axis being introduced, and what makes
        the baseline gate double as a bit-identity check across the
        refactor.
        """
        config = _canonical(self.config)
        config["eth"] = self.config.eth_resolved
        config["trefi_per_mitigation"] = self.config.trefi_per_mitigation_resolved
        # The kernel backend is equivalence-gated (bit-identical by
        # contract and by test), so it can never be part of a result's
        # identity — pure and compiled runs share one cache entry.
        config.pop("backend", None)
        for name, neutral in _NEUTRAL_AXES.items():
            if config.get(name) == neutral:
                del config[name]
        payload = {
            "version": RESULT_VERSION,
            "workload": self.workload,
            "config": config,
        }
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()[:16]


def _canonical(value: Any) -> Any:
    """JSON-stable view of nested dataclasses / tuples."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _canonical(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in value.items()}
    return value


@dataclass(frozen=True)
class SweepSpec:
    """Grid of performance runs (cross product of the axis fields)."""

    name: str
    description: str = ""
    workloads: Tuple[str, ...] = SWEEP_WORKLOADS
    ath: Tuple[int, ...] = (64,)
    eth: Tuple[Optional[int], ...] = (None,)
    abo_level: Tuple[int, ...] = (1,)
    trefi_per_mitigation: Tuple[Optional[int], ...] = (None,)
    policies: Tuple[PolicySpec, ...] = (PolicySpec(),)
    #: Sub-channels per simulated channel (the ChannelSim axis).
    subchannels: Tuple[int, ...] = (1,)
    n_trefi: int = 8192
    seed: int = 0
    model_cross_bank_service: bool = True

    def __post_init__(self) -> None:
        for workload in self.workloads:
            profile_by_name(workload)  # raises on unknown names

    def points(self) -> List[SweepPoint]:
        """Expand the grid in deterministic order.

        Cells that resolve to the same simulation (e.g. ``eth=None``
        and ``eth=ath//2`` in one grid) are deduplicated by key so the
        artifact's point map stays one-to-one with the work performed.
        """
        out: List[SweepPoint] = []
        seen: set = set()
        for workload, policy, ath, eth, level, tpm, sc in itertools.product(
            self.workloads,
            self.policies,
            self.ath,
            self.eth,
            self.abo_level,
            self.trefi_per_mitigation,
            self.subchannels,
        ):
            config = RunConfig(
                ath=ath,
                eth=eth,
                abo_level=level,
                policy=policy,
                trefi_per_mitigation=tpm,
                subchannels=sc,
                n_trefi=self.n_trefi,
                seed=self.seed,
                model_cross_bank_service=self.model_cross_bank_service,
            )
            point = SweepPoint(workload=workload, config=config)
            if point.key not in seen:
                seen.add(point.key)
                out.append(point)
        return out

    def sweep_hash(self) -> str:
        """Identity of the whole grid (order-independent)."""
        hashes = sorted(p.config_hash() for p in self.points())
        blob = json.dumps([self.name, hashes], separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()[:16]

    def with_overrides(
        self,
        n_trefi: Optional[int] = None,
        seed: Optional[int] = None,
        workloads: Optional[Tuple[str, ...]] = None,
    ) -> "SweepSpec":
        """Copy with cheap-scale / subset overrides (CLI flags)."""
        changes: Dict[str, Any] = {}
        if n_trefi is not None:
            changes["n_trefi"] = n_trefi
        if seed is not None:
            changes["seed"] = seed
        if workloads is not None:
            changes["workloads"] = tuple(workloads)
        return dataclasses.replace(self, **changes) if changes else self


#: Policies compared in the ablation preset: MOAT against every other
#: implemented design, at the run's ATH/ETH where applicable.
ABLATION_POLICIES: Tuple[PolicySpec, ...] = (
    PolicySpec("moat"),
    PolicySpec("panopticon"),
    PolicySpec.of("panopticon", drain_all_on_ref=True),
    PolicySpec("para"),
    PolicySpec("trr"),
    PolicySpec("graphene"),
    PolicySpec("victim-counter"),
    PolicySpec("null"),
)


PRESETS: Dict[str, SweepSpec] = {
    spec.name: spec
    for spec in (
        SweepSpec(
            name="fig11",
            description="MOAT per-workload performance and ALERT rate "
            "at ATH=64 and ATH=128 (Figure 11)",
            workloads=ALL_WORKLOADS,
            ath=(64, 128),
        ),
        SweepSpec(
            name="fig17",
            description="MOAT-L1/L2/L4 performance and ALERT rate at "
            "ATH=64 (Figure 17 / Appendix D)",
            workloads=ALL_WORKLOADS,
            abo_level=(1, 2, 4),
        ),
        SweepSpec(
            name="table5",
            description="ETH sweep at ATH=64: mitigation volume vs "
            "slowdown (Table 5)",
            eth=(0, 16, 32, 48),
        ),
        SweepSpec(
            name="table6",
            description="Proactive mitigation rate sweep at ATH=64 "
            "(Table 6 / Appendix C; 0 = ALERT-only)",
            trefi_per_mitigation=(1, 3, 5, 10, 0),
        ),
        SweepSpec(
            name="table7",
            description="ATH x ABO-level slowdown grid (Table 7)",
            ath=(32, 64, 128),
            abo_level=(1, 2, 4),
        ),
        SweepSpec(
            name="ablation",
            description="Every implemented mitigation policy on the "
            "sweep workload subset at ATH=64",
            policies=ABLATION_POLICIES,
        ),
        SweepSpec(
            name="sec65",
            description="MOAT at ATH=64 on the sweep subset: the "
            "activation-overhead source for the Section 6.5 energy "
            "numbers",
        ),
        SweepSpec(
            name="channel",
            description="Channel-hierarchy scaling: the sweep subset "
            "through ChannelSim at 1 and 2 sub-channels",
            subchannels=(1, 2),
        ),
    )
}


def preset(name: str) -> SweepSpec:
    """Look up a preset by name with a helpful error."""
    try:
        return PRESETS[name]
    except KeyError:
        known = ", ".join(sorted(PRESETS))
        raise KeyError(f"unknown sweep preset {name!r}; known: {known}") from None
