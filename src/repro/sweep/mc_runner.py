"""Parallel, cached execution of memory-controller sweeps.

Mirrors :mod:`repro.sweep.runner` and :mod:`repro.sweep.attack_runner`
for the closed-loop family: mc points are independent, fully
deterministic simulations (request streams and stochastic policies
derive their RNG streams from the point's config), so executing them
across a ``ProcessPoolExecutor`` is bit-identical to a serial run. The
cache/pool orchestration is the shared
:func:`repro.sweep.runner.run_cached_grid` core; this module only
contributes the point executor and result codec.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.sim.mc import run_mc
from repro.sweep.mc_spec import McSweepPoint, McSweepSpec
from repro.sweep.runner import ProgressFn, run_cached_grid, wall_timer

#: Default on-disk cache location (sibling of the other family caches).
DEFAULT_MC_CACHE_DIR = Path(".repro-cache") / "mc"


@dataclass
class McPointResult:
    """Outcome of one mc point (metrics plus provenance)."""

    key: str
    config_hash: str
    workload: str
    policy: str
    ath: int
    eth: int
    abo_level: int
    scheduler: str
    row_policy: str
    queue_depth: Optional[int]
    subchannels: int
    banks: int
    n_trefi: int
    seed: int
    metrics: Dict[str, float]
    wall_clock_s: float
    cached: bool = False

    def to_json(self) -> Dict[str, object]:
        return {
            "key": self.key,
            "config_hash": self.config_hash,
            "workload": self.workload,
            "policy": self.policy,
            "ath": self.ath,
            "eth": self.eth,
            "abo_level": self.abo_level,
            "scheduler": self.scheduler,
            "row_policy": self.row_policy,
            "queue_depth": self.queue_depth,
            "subchannels": self.subchannels,
            "banks": self.banks,
            "n_trefi": self.n_trefi,
            "seed": self.seed,
            "metrics": self.metrics,
            "wall_clock_s": self.wall_clock_s,
        }

    @staticmethod
    def from_json(
        data: Dict[str, object], cached: bool = False
    ) -> "McPointResult":
        depth = data["queue_depth"]
        return McPointResult(
            key=str(data["key"]),
            config_hash=str(data["config_hash"]),
            workload=str(data["workload"]),
            policy=str(data["policy"]),
            ath=int(data["ath"]),
            eth=int(data["eth"]),
            abo_level=int(data["abo_level"]),
            scheduler=str(data["scheduler"]),
            row_policy=str(data["row_policy"]),
            queue_depth=None if depth is None else int(depth),
            subchannels=int(data["subchannels"]),
            banks=int(data["banks"]),
            n_trefi=int(data["n_trefi"]),
            seed=int(data["seed"]),
            metrics={k: float(v) for k, v in dict(data["metrics"]).items()},
            wall_clock_s=float(data["wall_clock_s"]),
            cached=cached,
        )


@dataclass
class McSweepResult:
    """All point results of one mc sweep, in spec order."""

    spec: McSweepSpec
    results: List[McPointResult] = field(default_factory=list)
    wall_clock_s: float = 0.0
    jobs: int = 1
    #: Cache statistics from :func:`run_cached_grid` (hits, misses,
    #: recomputes, elapsed time) — recorded into artifact provenance.
    cache_stats: Dict[str, object] = field(default_factory=dict)

    @property
    def cache_hits(self) -> int:
        return sum(1 for r in self.results if r.cached)

    @property
    def compute_time_s(self) -> float:
        """Summed per-point simulation time (cached points keep the
        wall-clock of their original computation)."""
        return sum(r.wall_clock_s for r in self.results)

    def by_key(self) -> Dict[str, McPointResult]:
        return {r.key: r for r in self.results}

    def aggregates(self) -> Dict[str, float]:
        """Cross-point summary (artifact ``aggregates`` block)."""
        n = len(self.results)
        if n == 0:
            return {}
        return {
            "points": float(n),
            "avg_read_p99_ns": sum(
                r.metrics.get("read_p99_ns", 0.0) for r in self.results
            ) / n,
            "avg_achieved_gbps": sum(
                r.metrics.get("achieved_gbps", 0.0) for r in self.results
            ) / n,
            "avg_stall_fraction": sum(
                r.metrics.get("stall_fraction", 0.0) for r in self.results
            ) / n,
            "total_alerts": sum(
                r.metrics.get("alerts", 0.0) for r in self.results
            ),
        }


def execute_mc_point(point: McSweepPoint) -> McPointResult:
    """Run one mc point in the current process (worker entry)."""
    started = wall_timer()
    result = run_mc(point.config)
    config = point.config
    return McPointResult(
        key=point.key,
        config_hash=point.config_hash(),
        workload=config.workload.display_name(),
        policy=config.policy.display_name(),
        ath=config.ath,
        eth=config.eth_resolved,
        abo_level=config.abo_level,
        scheduler=config.sched_display(),
        row_policy=config.row_policy,
        queue_depth=config.queue_depth,
        subchannels=config.subchannels,
        banks=config.banks,
        n_trefi=config.n_trefi,
        seed=config.seed,
        metrics=result.as_metrics(),
        wall_clock_s=wall_timer() - started,
    )


def run_mc_sweep(
    spec: McSweepSpec,
    jobs: int = 1,
    cache_dir: Optional[Path] = DEFAULT_MC_CACHE_DIR,
    progress: Optional[ProgressFn] = None,
) -> McSweepResult:
    """Execute every point of ``spec``; parallel when ``jobs > 1``.

    Args:
        spec: The mc grid to run.
        jobs: Worker processes (``1`` = serial, in-process).
        cache_dir: Per-point result cache; ``None`` disables caching.
        progress: Optional callback receiving one line per finished
            point (``[done/total] key (cached|12.3s)``).
    """
    started = wall_timer()
    cache_stats: Dict[str, object] = {}
    ordered = run_cached_grid(
        spec.points(),
        execute_mc_point,
        McPointResult.from_json,
        jobs=jobs,
        cache_dir=cache_dir,
        progress=progress,
        stats=cache_stats,
    )
    return McSweepResult(
        spec=spec,
        results=ordered,
        wall_clock_s=wall_timer() - started,
        jobs=jobs,
        cache_stats=cache_stats,
    )
