"""Declarative attack-sweep specifications and named presets.

The security analogue of :mod:`repro.sweep.spec`: an
:class:`AttackSweepSpec` is the cross product of its attack list and
channel axes (sub-channel count); expanding it yields one
:class:`AttackSweepPoint` per cell, each carrying a complete
:class:`~repro.attacks.registry.AttackSpec` +
:class:`~repro.attacks.base.AttackRunConfig` pair plus a stable key and
a content hash — the identity used by the parallel runner's point cache
and by the ``BENCH_attack.json`` baseline gate.

:data:`ATTACK_PRESETS` names a spec for every paper security figure the
harness reproduces: Jailbreak (fig5), Ratchet (fig9/fig10), the
throughput kernels (fig13), TSA (fig12, with the smoke-scale ``tsa``
subset), feinting (table2, with the smoke-scale ``feinting`` subset),
refresh postponement (fig16/``postponement``), the Figure 1(a) design
space, the Section 2.4 motivation, and the Section 9 queue-length
ablation. Presets overlap freely: points are cached by config hash, so
a point shared between two presets is simulated once.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.attacks.base import AttackRunConfig
from repro.attacks.registry import AttackSpec
from repro.sweep.spec import _canonical

#: Bump when attack or engine semantics change in a way that
#: invalidates previously cached attack points.
ATTACK_RESULT_VERSION = 1

#: Axes mapped to the neutral value at which they leave the simulation
#: unchanged (the same convention as the perf sweep's spec). ``seed``
#: is neutral at 0 because no *registered* attack is stochastic today —
#: the axis is reserved for future randomized attacks, and keeping the
#: default out of point identity means baselines and cache entries
#: survive the day one starts consuming it.
_NEUTRAL_AXES = {"subchannels": 1, "seed": 0}


@dataclass(frozen=True)
class AttackSweepPoint:
    """One grid cell: an attack spec plus its full run config."""

    attack: AttackSpec
    run: AttackRunConfig

    @property
    def key(self) -> str:
        """Stable human-readable identity (artifact/baseline key).

        Additive axes only appear at non-neutral values, so keys stay
        valid when an axis is introduced later.
        """
        sc = f"|sc={self.run.subchannels}" if self.run.subchannels != 1 else ""
        seed = f"|seed={self.run.seed}" if self.run.seed != 0 else ""
        return f"{self.attack.display_name()}{sc}{seed}"

    def config_hash(self) -> str:
        """Content hash of everything that determines the result.

        Additive axes hash out at their neutral value (see
        :data:`_NEUTRAL_AXES`): a one-sub-channel attack is the same
        simulation the pre-channel harness performed, so it keeps the
        same identity — the baseline gate therefore doubles as a
        bit-identity check across the ChannelSim port.
        """
        run = _canonical(self.run)
        for name, neutral in _NEUTRAL_AXES.items():
            if run.get(name) == neutral:
                del run[name]
        payload = {
            "version": ATTACK_RESULT_VERSION,
            "attack": {"kind": self.attack.kind,
                       "params": _canonical(self.attack.params)},
            "run": run,
        }
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()[:16]


@dataclass(frozen=True)
class AttackSweepSpec:
    """Grid of attack runs (attacks crossed with the channel axes)."""

    name: str
    description: str = ""
    attacks: Tuple[AttackSpec, ...] = ()
    #: Sub-channels per simulated channel (the ChannelSim axis).
    subchannels: Tuple[int, ...] = (1,)
    seed: int = 0

    def points(self) -> List[AttackSweepPoint]:
        """Expand the grid in deterministic order, deduplicated by key."""
        out: List[AttackSweepPoint] = []
        seen: set = set()
        for attack, sc in itertools.product(self.attacks, self.subchannels):
            point = AttackSweepPoint(
                attack=attack,
                run=AttackRunConfig(subchannels=sc, seed=self.seed),
            )
            if point.key not in seen:
                seen.add(point.key)
                out.append(point)
        return out

    def sweep_hash(self) -> str:
        """Identity of the whole grid (order-independent)."""
        hashes = sorted(p.config_hash() for p in self.points())
        blob = json.dumps([self.name, hashes], separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()[:16]

    def with_overrides(
        self, seed: Optional[int] = None
    ) -> "AttackSweepSpec":
        """Copy with CLI-level overrides applied."""
        changes: Dict[str, Any] = {}
        if seed is not None:
            changes["seed"] = seed
        return dataclasses.replace(self, **changes) if changes else self


#: Smoke-scale presets: every attack at parameters small enough for a
#: CI gate yet large enough to reproduce each figure's qualitative
#: result (Jailbreak ~9x threshold, Ratchet log growth, kernel ~5-10%
#: loss, TSA loss growing with banks, feinting harmonic blowup,
#: postponement ~2.6x threshold).
ATTACK_PRESETS: Dict[str, AttackSweepSpec] = {
    spec.name: spec
    for spec in (
        AttackSweepSpec(
            name="fig5",
            description="Deterministic Jailbreak vs Panopticon at "
            "queueing thresholds 64/128, plus one fully-simulated "
            "all-heavy randomized iteration (Figure 5)",
            attacks=(
                AttackSpec.of("jailbreak", threshold=64),
                AttackSpec.of("jailbreak", threshold=128),
                AttackSpec.of("jailbreak-randomized",
                              initial_counters=(112,) * 8,
                              attack_row_counter=96),
            ),
        ),
        AttackSweepSpec(
            name="fig10",
            description="Ratchet vs MOAT: pool-size growth at ATH=64, "
            "the ATH sweep at pool 64, and the generalized L4 tracker "
            "(Figure 10)",
            attacks=(
                AttackSpec.of("ratchet", ath=64, pool_size=4),
                AttackSpec.of("ratchet", ath=64, pool_size=16),
                AttackSpec.of("ratchet", ath=64, pool_size=64),
                AttackSpec.of("ratchet", ath=64, pool_size=8, abo_level=4),
                AttackSpec.of("ratchet", ath=32, pool_size=64),
                AttackSpec.of("ratchet", ath=128, pool_size=64),
            ),
        ),
        AttackSweepSpec(
            name="fig1",
            description="Figure 1(a) design-space exposures at "
            "T_RH ~ 99: TRR thrashing, Jailbreak vs Panopticon, "
            "Ratchet vs MOAT",
            attacks=(
                AttackSpec.of("trespass", num_aggressors=32,
                              tracker_entries=16, acts_per_aggressor=600),
                AttackSpec.of("jailbreak", threshold=128),
                AttackSpec.of("ratchet", ath=64, pool_size=64),
            ),
        ),
        AttackSweepSpec(
            name="fig9",
            description="Illustrative Ratchet on a 4-row pool at ABO "
            "level 4 with a single-entry tracker (Figure 9)",
            attacks=(
                AttackSpec.of("ratchet", ath=64, pool_size=4,
                              abo_level=4, tracker_level=1),
            ),
        ),
        AttackSweepSpec(
            name="fig12",
            description="TSA throughput loss vs bank count up to the "
            "tFAW-limited 17 banks (Figure 12)",
            attacks=tuple(
                AttackSpec.of("tsa", num_banks=banks, cycles=2)
                for banks in (1, 4, 8, 17)
            ),
        ),
        AttackSweepSpec(
            name="fig16",
            description="REF postponement vs drain-all Panopticon "
            "across queueing thresholds (Figure 16 / Appendix B)",
            attacks=tuple(
                AttackSpec.of("postponement", threshold=threshold)
                for threshold in (64, 128, 256)
            ),
        ),
        AttackSweepSpec(
            name="motivation",
            description="Section 2.4 motivation: many-aggressor "
            "thrashing blinds a 16-entry tracker; fewer aggressors "
            "than entries are caught",
            attacks=(
                AttackSpec.of("trespass", num_aggressors=32,
                              tracker_entries=16, acts_per_aggressor=600),
                AttackSpec.of("trespass", num_aggressors=4,
                              tracker_entries=16, acts_per_aggressor=600),
            ),
        ),
        AttackSweepSpec(
            name="table2",
            description="Feinting vs ideal per-row counters at rates "
            "1-5 over a 512-period prefix (Table 2)",
            attacks=tuple(
                AttackSpec.of("feinting", trefi_per_mitigation=k,
                              periods=512)
                for k in (1, 2, 3, 4, 5)
            ),
        ),
        AttackSweepSpec(
            name="ablation-queue",
            description="Jailbreak exposure vs Panopticon queue length "
            "(Section 9, Recommendation 1)",
            attacks=tuple(
                AttackSpec.of("jailbreak", queue_entries=entries)
                for entries in (1, 2, 4, 8, 16)
            ),
        ),
        AttackSweepSpec(
            name="fig13",
            description="Single/multi-row throughput kernels vs MOAT "
            "across ATH (Figure 13)",
            attacks=(
                AttackSpec.of("kernel-single", ath=32, total_acts=6000),
                AttackSpec.of("kernel-single", ath=64, total_acts=6000),
                AttackSpec.of("kernel-single", ath=128, total_acts=6000),
                AttackSpec.of("kernel-multi", rows=5, ath=64, total_acts=6000),
            ),
        ),
        AttackSweepSpec(
            name="tsa",
            description="Torrent-of-Staggered-ALERT: throughput loss "
            "vs bank count (Figure 12 / Section 7.3)",
            attacks=(
                AttackSpec.of("tsa", num_banks=1, cycles=2),
                AttackSpec.of("tsa", num_banks=4, cycles=2),
                AttackSpec.of("tsa", num_banks=8, cycles=2),
            ),
        ),
        AttackSweepSpec(
            name="feinting",
            description="Feinting vs ideal per-row counters across "
            "mitigation rates (Table 2 / Section 2.5)",
            attacks=(
                AttackSpec.of("feinting", trefi_per_mitigation=1, periods=64),
                AttackSpec.of("feinting", trefi_per_mitigation=2, periods=64),
                AttackSpec.of("feinting", trefi_per_mitigation=4, periods=64),
            ),
        ),
        AttackSweepSpec(
            name="postponement",
            description="REF postponement vs drain-all Panopticon at "
            "thresholds 64/128 (Figure 16 / Appendix B)",
            attacks=(
                AttackSpec.of("postponement", threshold=64),
                AttackSpec.of("postponement", threshold=128),
            ),
        ),
    )
}


def attack_preset(name: str) -> AttackSweepSpec:
    """Look up an attack preset by name with a helpful error."""
    try:
        return ATTACK_PRESETS[name]
    except KeyError:
        known = ", ".join(sorted(ATTACK_PRESETS))
        raise KeyError(
            f"unknown attack preset {name!r}; known: {known}"
        ) from None
