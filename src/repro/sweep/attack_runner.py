"""Parallel, cached execution of attack sweeps.

Mirrors :mod:`repro.sweep.runner` for the security workload family:
attack points are independent, fully deterministic simulations (the
adaptive attacks carry no hidden global state), so executing them
across a ``ProcessPoolExecutor`` is bit-identical to a serial run.
The cache/pool orchestration itself is shared with the performance
runner (:func:`repro.sweep.runner.run_cached_grid`); this module only
contributes the attack point executor and result codec.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.sweep.attack_spec import AttackSweepPoint, AttackSweepSpec
from repro.sweep.runner import ProgressFn, run_cached_grid, wall_timer

#: Default on-disk cache location (sibling of the perf sweep cache).
DEFAULT_ATTACK_CACHE_DIR = Path(".repro-cache") / "attack"


@dataclass
class AttackPointResult:
    """Outcome of one attack point (metrics plus provenance)."""

    key: str
    config_hash: str
    attack: str
    kind: str
    figure: str
    subchannels: int
    seed: int
    params: Dict[str, object]
    metrics: Dict[str, float]
    wall_clock_s: float
    cached: bool = False

    def to_json(self) -> Dict[str, object]:
        return {
            "key": self.key,
            "config_hash": self.config_hash,
            "attack": self.attack,
            "kind": self.kind,
            "figure": self.figure,
            "subchannels": self.subchannels,
            "seed": self.seed,
            "params": self.params,
            "metrics": self.metrics,
            "wall_clock_s": self.wall_clock_s,
        }

    @staticmethod
    def from_json(
        data: Dict[str, object], cached: bool = False
    ) -> "AttackPointResult":
        # ``params`` is required: pre-params cache entries raise
        # KeyError here, which the cache loader treats as a miss — one
        # recompute upgrades the entry in place.
        return AttackPointResult(
            key=str(data["key"]),
            config_hash=str(data["config_hash"]),
            attack=str(data["attack"]),
            kind=str(data["kind"]),
            figure=str(data["figure"]),
            subchannels=int(data["subchannels"]),
            seed=int(data["seed"]),
            params=dict(data["params"]),
            metrics={k: float(v) for k, v in dict(data["metrics"]).items()},
            wall_clock_s=float(data["wall_clock_s"]),
            cached=cached,
        )


@dataclass
class AttackSweepResult:
    """All point results of one attack sweep, in spec order."""

    spec: AttackSweepSpec
    results: List[AttackPointResult] = field(default_factory=list)
    wall_clock_s: float = 0.0
    jobs: int = 1
    #: Cache statistics from :func:`run_cached_grid` (hits, misses,
    #: recomputes, elapsed time) — recorded into artifact provenance.
    cache_stats: Dict[str, object] = field(default_factory=dict)

    @property
    def cache_hits(self) -> int:
        return sum(1 for r in self.results if r.cached)

    @property
    def compute_time_s(self) -> float:
        """Summed per-point simulation time (cached points keep the
        wall-clock of their original computation)."""
        return sum(r.wall_clock_s for r in self.results)

    def by_key(self) -> Dict[str, AttackPointResult]:
        return {r.key: r for r in self.results}

    def aggregates(self) -> Dict[str, float]:
        """Cross-point summary (artifact ``aggregates`` block)."""
        n = len(self.results)
        if n == 0:
            return {}
        return {
            "points": float(n),
            "total_alerts": sum(
                r.metrics.get("alerts", 0.0) for r in self.results
            ),
            "max_acts_on_attack_row": max(
                r.metrics.get("acts_on_attack_row", 0.0) for r in self.results
            ),
            "max_danger": max(
                r.metrics.get("max_danger", 0.0) for r in self.results
            ),
        }


def execute_attack_point(point: AttackSweepPoint) -> AttackPointResult:
    """Run one attack point in the current process (worker entry)."""
    started = wall_timer()
    result = point.attack.execute(point.run)
    return AttackPointResult(
        key=point.key,
        config_hash=point.config_hash(),
        attack=point.attack.display_name(),
        kind=point.attack.kind,
        figure=point.attack.figure,
        subchannels=point.run.subchannels,
        seed=point.run.seed,
        params=point.attack.param_dict(),
        metrics=result.as_metrics(),
        wall_clock_s=wall_timer() - started,
    )


def run_attack_sweep(
    spec: AttackSweepSpec,
    jobs: int = 1,
    cache_dir: Optional[Path] = DEFAULT_ATTACK_CACHE_DIR,
    progress: Optional[ProgressFn] = None,
) -> AttackSweepResult:
    """Execute every point of ``spec``; parallel when ``jobs > 1``.

    Args:
        spec: The attack grid to run.
        jobs: Worker processes (``1`` = serial, in-process).
        cache_dir: Per-point result cache; ``None`` disables caching.
        progress: Optional callback receiving one line per finished
            point (``[done/total] key (cached|12.3s)``).
    """
    started = wall_timer()
    cache_stats: Dict[str, object] = {}
    ordered = run_cached_grid(
        spec.points(),
        execute_attack_point,
        AttackPointResult.from_json,
        jobs=jobs,
        cache_dir=cache_dir,
        progress=progress,
        stats=cache_stats,
    )
    return AttackSweepResult(
        spec=spec,
        results=ordered,
        wall_clock_s=wall_timer() - started,
        jobs=jobs,
        cache_stats=cache_stats,
    )
