"""Machine-readable sweep artifacts and baseline gating.

Five artifact families share this machinery (each registered as a
:class:`~repro.sweep.family.SweepFamily`, which owns the schema id,
gated-metric set, and baseline prefix listed below; the ``make_*``
functions here delegate to the registry's single schema-parametrized
builder): performance sweeps
serialize to ``BENCH_sweep.json`` (schema :data:`SCHEMA`, gated on
:data:`GATED_METRICS`), attack sweeps to ``BENCH_attack.json``
(schema :data:`ATTACK_SCHEMA`, gated on :data:`ATTACK_GATED_METRICS`,
built by :func:`make_attack_artifact`), analytic model sweeps to
``BENCH_model.json`` (schema :data:`MODEL_SCHEMA`, gating every
baseline metric), and closed-loop memory-controller sweeps to
``BENCH_mc.json`` (schema :data:`MC_SCHEMA`, gated on
:data:`MC_GATED_METRICS`, built by :func:`make_mc_artifact`), and
multi-client system sweeps to ``BENCH_system.json`` (schema
:data:`SYSTEM_SCHEMA`, gating every baseline metric, built by
:func:`make_system_artifact`). A performance artifact looks like:

.. code-block:: json

    {
      "schema": "repro.sweep/v1",
      "preset": "fig11",
      "sweep_hash": "0123abcd...",
      "git_rev": "f80eac4",
      "created_utc": "2026-07-29T12:00:00Z",
      "n_trefi": 512,
      "seed": 0,
      "jobs": 2,
      "wall_clock_s": 41.7,
      "aggregates": {"avg_slowdown": 0.0016, "...": 0},
      "points": {
        "roms|moat|ath=64|...": {
          "config_hash": "8a9b...",
          "metrics": {"slowdown": 0.002, "...": 0},
          "wall_clock_s": 1.9
        }
      }
    }

``diff_artifacts`` compares a fresh run against a committed baseline:
every point of the run must exist in the baseline with an identical
config hash (otherwise the comparison would be apples-to-oranges) and
every recorded metric must match within tolerance. The simulator is
fully deterministic, so the default tolerances are generous enough to
survive benign floating-point reassociation yet far below any real
behavioral regression.
"""

from __future__ import annotations

import json
import math
import subprocess
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.sweep.runner import SweepResult

SCHEMA = "repro.sweep/v1"

#: Schema of ``BENCH_attack.json`` artifacts (attack sweeps).
ATTACK_SCHEMA = "repro.attack/v1"

#: Schema of ``BENCH_model.json`` artifacts (analytic model sweeps).
MODEL_SCHEMA = "repro.model/v1"

#: Schema of ``BENCH_mc.json`` artifacts (closed-loop memory-controller
#: sweeps, built by :func:`make_mc_artifact`).
MC_SCHEMA = "repro.mc/v1"

#: Schema of ``BENCH_system.json`` artifacts (multi-client system
#: sweeps, built through the family registry).
SYSTEM_SCHEMA = "repro.system/v1"

#: Default relative location of committed baselines.
BASELINE_DIR = Path("benchmarks") / "baselines"

#: Metrics that gate the baseline check. Wall-clock is recorded but
#: never gated (machine-dependent).
GATED_METRICS = (
    "alerts",
    "alerts_per_trefi",
    "slowdown",
    "normalized_performance",
    "mitigations_per_trefw_per_bank",
    "activation_overhead",
    "total_acts",
    "proactive_mitigations",
    "reactive_mitigations",
)

#: Model artifacts gate on ``None``: every metric recorded in the
#: baseline is checked (the evaluators are pure functions, so any
#: metric they emit is a stable, gateable quantity).
MODEL_GATED_METRICS = None

#: Gated metrics of attack artifacts. Everything a deterministic
#: attack reports is gateable; per-attack ``detail:`` metrics missing
#: from a point are simply skipped by the diff.
ATTACK_GATED_METRICS = (
    "acts_on_attack_row",
    "max_danger",
    "alerts",
    "total_acts",
    "elapsed_ns",
    "throughput",
    "detail:throughput_loss",
    "detail:normalized_throughput",
    "detail:baseline_ns",
    "detail:survivors",
)

#: Gated metrics of mc artifacts. The closed-loop simulations are
#: fully deterministic (request streams and stochastic policies derive
#: from the point config), so every latency/bandwidth/queueing metric
#: is gateable; wall-clock stays ungated as always.
MC_GATED_METRICS = (
    "requests",
    "reads",
    "read_mean_ns",
    "read_p50_ns",
    "read_p99_ns",
    "read_max_ns",
    "avg_queue_ns",
    "avg_queue_occupancy",
    "achieved_gbps",
    "requests_per_trefi",
    "row_hit_rate",
    "alerts",
    "alerts_per_trefi",
    "stall_fraction",
    "total_acts",
)

#: System artifacts gate on ``None``, like the model family: the
#: per-client metric columns (``"{client}:read_p99_ns"`` …) vary by
#: scenario, so the gate checks every metric the baseline recorded —
#: the runs are fully deterministic, hence all of them are gateable.
SYSTEM_GATED_METRICS = None

DEFAULT_RTOL = 0.05
DEFAULT_ATOL = 1e-6


def utc_now() -> str:
    """ISO-8601 UTC timestamp used across artifacts and summaries."""
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())


def git_revision(cwd: Optional[Path] = None) -> str:
    """Revision of the repro checkout, or ``"unknown"``.

    Anchored at this module's location (not the process CWD) so
    artifacts record the provenance of the *code that produced them*,
    even when ``repro`` runs from inside an unrelated repository; a
    site-packages install correctly reports ``"unknown"``.
    """
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=cwd or Path(__file__).parent,
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        )
        return out.stdout.strip() or "unknown"
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def git_describe(cwd: Optional[Path] = None) -> str:
    """``git describe --always --dirty`` of the checkout, or ``"unknown"``.

    Richer than :func:`git_revision` — provenance blocks use it to
    record distance from the last tag and whether the working tree was
    dirty when the artifact was produced. Anchored at this module's
    location for the same reason.
    """
    try:
        out = subprocess.run(
            ["git", "describe", "--always", "--dirty"],
            cwd=cwd or Path(__file__).parent,
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        )
        return out.stdout.strip() or "unknown"
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def git_toplevel(cwd: Optional[Path] = None) -> Optional[Path]:
    """Root of the repro checkout, or ``None`` for non-repo installs.

    Anchored at this module's location by default (see
    :func:`git_revision`), so baseline resolution finds the checkout's
    ``benchmarks/baselines/`` regardless of the process CWD.
    """
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--show-toplevel"],
            cwd=cwd or Path(__file__).parent,
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        )
        top = out.stdout.strip()
        return Path(top) if top else None
    except (OSError, subprocess.SubprocessError):
        return None


def make_artifact(result: SweepResult, git_rev: Optional[str] = None) -> Dict:
    """Serialize a sweep result into the ``BENCH_sweep.json`` schema.

    Delegates to the family registry's single schema-parametrized
    builder (:func:`repro.sweep.family.make_family_artifact`); kept as
    the stable public entry point. Imported lazily — the registry
    imports this module for the shared schema/gate machinery.
    """
    from repro.sweep.family import PERF_FAMILY, make_family_artifact

    return make_family_artifact(PERF_FAMILY, result, git_rev=git_rev)


def make_attack_artifact(result, git_rev: Optional[str] = None) -> Dict:
    """Serialize an attack sweep into the ``BENCH_attack.json`` schema.

    Same layout as :func:`make_artifact`, with attack identity fields
    (``attack``, ``kind``, ``figure``, ``subchannels``) in place of the
    performance sweep's workload/policy columns.
    """
    from repro.sweep.family import ATTACK_FAMILY, make_family_artifact

    return make_family_artifact(ATTACK_FAMILY, result, git_rev=git_rev)


def make_model_artifact(result, git_rev: Optional[str] = None) -> Dict:
    """Serialize a model sweep into the ``BENCH_model.json`` schema.

    Same layout as :func:`make_artifact` for the analytic family; model
    points are scale-free (no ``n_trefi``/``seed`` at the top level —
    scale-aware kinds carry their window length as a point parameter).
    """
    from repro.sweep.family import MODEL_FAMILY, make_family_artifact

    return make_family_artifact(MODEL_FAMILY, result, git_rev=git_rev)


def make_mc_artifact(result, git_rev: Optional[str] = None) -> Dict:
    """Serialize an mc sweep into the ``BENCH_mc.json`` schema.

    Same layout as :func:`make_artifact`, with the closed-loop identity
    fields (arrival workload, scheduler, row policy, queue depth,
    geometry) in place of the performance sweep's columns.
    """
    from repro.sweep.family import MC_FAMILY, make_family_artifact

    return make_family_artifact(MC_FAMILY, result, git_rev=git_rev)


def make_system_artifact(result, git_rev: Optional[str] = None) -> Dict:
    """Serialize a system sweep into the ``BENCH_system.json`` schema.

    Scenario identity fields (client roster, channel count, per-point
    scale/seed) in place of grid coordinates; metrics carry the
    flattened per-client columns next to the system aggregate.
    """
    from repro.sweep.family import SYSTEM_FAMILY, make_family_artifact

    return make_family_artifact(SYSTEM_FAMILY, result, git_rev=git_rev)


def write_artifact(path: Path, artifact: Dict) -> None:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(artifact, indent=1, sort_keys=True) + "\n")


def load_artifact(path: Path, schema: str = SCHEMA) -> Dict:
    data = json.loads(Path(path).read_text())
    if data.get("schema") != schema:
        raise ValueError(
            f"{path}: unsupported artifact schema {data.get('schema')!r} "
            f"(expected {schema!r})"
        )
    return data


def default_baseline_path(preset_name: str, root: Optional[Path] = None) -> Path:
    """Committed baseline location for a preset (``--check`` default)."""
    base = Path(root) if root is not None else Path(".")
    return base / BASELINE_DIR / f"{preset_name}.json"


def diff_artifacts(
    baseline: Dict,
    current: Dict,
    rtol: float = DEFAULT_RTOL,
    atol: float = DEFAULT_ATOL,
    gated_metrics: Optional[Tuple[str, ...]] = GATED_METRICS,
) -> List[str]:
    """Compare ``current`` against ``baseline``; returns problems.

    An empty list means the run matches the baseline. Problems are
    human-readable strings: missing points, config-hash drift, or
    out-of-tolerance metrics. ``gated_metrics=None`` gates every metric
    recorded in the baseline point (the model-family convention).
    """
    problems: List[str] = []
    base_points = baseline.get("points", {})
    current_points = current.get("points", {})
    # Coverage must not shrink: a run that silently drops grid points
    # (workload subset, narrowed axes) may not pass the gate.
    for key in base_points:
        if key not in current_points:
            problems.append(
                f"missing from run: {key} (baseline covers this point; "
                "the run's grid shrank)"
            )
    for key, point in current_points.items():
        base = base_points.get(key)
        if base is None:
            problems.append(
                f"missing from baseline: {key} (baseline was written for a "
                "different scale/grid; regenerate with --write-baseline)"
            )
            continue
        if base.get("config_hash") != point.get("config_hash"):
            problems.append(
                f"config drift: {key} hashed {point.get('config_hash')} but "
                f"baseline has {base.get('config_hash')} (simulator or "
                "generator semantics changed; regenerate the baseline)"
            )
            continue
        metrics_to_gate = (
            tuple(base.get("metrics", {})) if gated_metrics is None
            else gated_metrics
        )
        for metric in metrics_to_gate:
            if metric not in base.get("metrics", {}):
                continue
            got_raw = point.get("metrics", {}).get(metric)
            try:
                want = float(base["metrics"][metric])
                got = float("nan") if got_raw is None else float(got_raw)
            except (TypeError, ValueError):
                # Hand-edited values like "0.5%" fail the gate with a
                # problem line, never a traceback.
                problems.append(
                    f"unparseable metric: {key}: {metric} = {got_raw!r} "
                    f"(baseline {base['metrics'][metric]!r})"
                )
                continue
            # NaN compares False against every tolerance, so it must
            # fail explicitly — a missing or NaN metric is a gate
            # failure, never a silent pass.
            if math.isnan(got) or math.isnan(want):
                problems.append(
                    f"metric missing or NaN: {key}: {metric} = {got_raw!r} "
                    f"(baseline {base['metrics'][metric]!r})"
                )
                continue
            if abs(got - want) > atol + rtol * abs(want):
                problems.append(
                    f"metric regression: {key}: {metric} = {got:.6g} "
                    f"(baseline {want:.6g}, rtol={rtol}, atol={atol})"
                )
    return problems


def check_against_baseline(
    artifact: Dict,
    baseline_path: Path,
    rtol: float = DEFAULT_RTOL,
    atol: float = DEFAULT_ATOL,
    schema: str = SCHEMA,
    gated_metrics: Optional[Tuple[str, ...]] = GATED_METRICS,
) -> Tuple[bool, List[str]]:
    """Gate an already-serialized sweep artifact on a baseline file.

    Works for both artifact families: pass ``schema=ATTACK_SCHEMA`` and
    ``gated_metrics=ATTACK_GATED_METRICS`` for attack sweeps.
    """
    path = Path(baseline_path)
    if not path.is_file():
        return False, [
            f"baseline not found: {path} (generate one with "
            "`repro sweep ... --write-baseline`)"
        ]
    try:
        baseline = load_artifact(path, schema=schema)
    except (OSError, ValueError) as exc:
        # Truncated, hand-edited, or wrong-schema baselines must fail
        # the gate with a problem line, not a traceback.
        return False, [f"unreadable baseline: {exc}"]
    problems = diff_artifacts(
        baseline, artifact, rtol=rtol, atol=atol, gated_metrics=gated_metrics
    )
    return not problems, problems
