"""Parallel experiment orchestration for the reproduction harness.

``repro.sweep`` turns the one-off per-figure pytest drivers into a
declarative, cacheable, parallel evaluation backbone:

* :mod:`repro.sweep.spec` — grid specs over workload x ATH x ETH x ABO
  level x mitigation policy, with named presets for every paper
  figure/table (``fig11``, ``fig17``, ``table5``, ``table6``,
  ``table7``, ``ablation``).
* :mod:`repro.sweep.runner` — a ``ProcessPoolExecutor``-based runner
  with per-point result caching keyed on a config hash, deterministic
  seeding (parallel == serial), and resume-on-rerun.
* :mod:`repro.sweep.artifacts` — ``BENCH_sweep.json`` artifact
  emission and baseline diffing for CI gating
  (``repro sweep <preset> --check``).
"""

from repro.sweep.artifacts import (
    SCHEMA,
    check_against_baseline,
    default_baseline_path,
    diff_artifacts,
    load_artifact,
    make_artifact,
    write_artifact,
)
from repro.sweep.runner import PointResult, SweepResult, run_sweep
from repro.sweep.spec import (
    PRESETS,
    SWEEP_WORKLOADS,
    SweepPoint,
    SweepSpec,
    preset,
)

__all__ = [
    "PRESETS",
    "SCHEMA",
    "SWEEP_WORKLOADS",
    "PointResult",
    "SweepPoint",
    "SweepResult",
    "SweepSpec",
    "check_against_baseline",
    "default_baseline_path",
    "diff_artifacts",
    "load_artifact",
    "make_artifact",
    "preset",
    "run_sweep",
    "write_artifact",
]
