"""Parallel experiment orchestration for the reproduction harness.

``repro.sweep`` turns the one-off per-figure pytest drivers into a
declarative, cacheable, parallel evaluation backbone:

* :mod:`repro.sweep.spec` — grid specs over workload x ATH x ETH x ABO
  level x mitigation policy, with named presets for every paper
  figure/table (``fig11``, ``fig17``, ``table5``, ``table6``,
  ``table7``, ``ablation``).
* :mod:`repro.sweep.attack_spec` — attack grids over
  :class:`~repro.attacks.registry.AttackSpec` x sub-channels, with
  named presets for every paper security figure (``fig5``, ``fig10``,
  ``fig13``, ``tsa``, ``feinting``, ``postponement``).
* :mod:`repro.sweep.runner` / :mod:`repro.sweep.attack_runner` —
  ``ProcessPoolExecutor``-based runners with per-point result caching
  keyed on a config hash, deterministic seeding (parallel == serial),
  and resume-on-rerun.
* :mod:`repro.sweep.artifacts` — ``BENCH_sweep.json`` /
  ``BENCH_attack.json`` artifact emission and baseline diffing for CI
  gating (``repro sweep <preset> --check``,
  ``repro attack sweep <preset> --check``).
"""

from repro.sweep.artifacts import (
    ATTACK_SCHEMA,
    SCHEMA,
    check_against_baseline,
    default_baseline_path,
    diff_artifacts,
    load_artifact,
    make_artifact,
    make_attack_artifact,
    write_artifact,
)
from repro.sweep.attack_runner import (
    AttackPointResult,
    AttackSweepResult,
    run_attack_sweep,
)
from repro.sweep.attack_spec import (
    ATTACK_PRESETS,
    AttackSweepPoint,
    AttackSweepSpec,
    attack_preset,
)
from repro.sweep.runner import PointResult, SweepResult, run_sweep
from repro.sweep.spec import (
    PRESETS,
    SWEEP_WORKLOADS,
    SweepPoint,
    SweepSpec,
    preset,
)

__all__ = [
    "ATTACK_PRESETS",
    "ATTACK_SCHEMA",
    "PRESETS",
    "SCHEMA",
    "SWEEP_WORKLOADS",
    "AttackPointResult",
    "AttackSweepPoint",
    "AttackSweepResult",
    "AttackSweepSpec",
    "PointResult",
    "SweepPoint",
    "SweepResult",
    "SweepSpec",
    "attack_preset",
    "check_against_baseline",
    "default_baseline_path",
    "diff_artifacts",
    "load_artifact",
    "make_artifact",
    "make_attack_artifact",
    "preset",
    "run_attack_sweep",
    "run_sweep",
    "write_artifact",
]
