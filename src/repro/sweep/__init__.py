"""Parallel experiment orchestration for the reproduction harness.

``repro.sweep`` turns the one-off per-figure pytest drivers into a
declarative, cacheable, parallel evaluation backbone:

* :mod:`repro.sweep.spec` — grid specs over workload x ATH x ETH x ABO
  level x mitigation policy, with named presets for every paper
  figure/table (``fig11``, ``fig17``, ``table5``, ``table6``,
  ``table7``, ``ablation``).
* :mod:`repro.sweep.attack_spec` — attack grids over
  :class:`~repro.attacks.registry.AttackSpec` x sub-channels, with
  named presets for every paper security figure (``fig5``, ``fig10``,
  ``fig13``, ``tsa``, ``feinting``, ``postponement``).
* :mod:`repro.sweep.system_spec` — named multi-client, multi-channel
  system scenarios (``system-smoke``, ``system-shard``,
  ``system-noisy``) over :class:`~repro.system.sim.SystemRunConfig`.
* :mod:`repro.sweep.runner` / :mod:`repro.sweep.attack_runner` /
  :mod:`repro.sweep.system_runner` —
  ``ProcessPoolExecutor``-based runners with per-point result caching
  keyed on a config hash, deterministic seeding (parallel == serial),
  and resume-on-rerun.
* :mod:`repro.sweep.artifacts` — ``BENCH_sweep.json`` /
  ``BENCH_attack.json`` artifact emission and baseline diffing for CI
  gating (``repro sweep <preset> --check``,
  ``repro attack sweep <preset> --check``).
* :mod:`repro.sweep.family` — the :class:`~repro.sweep.family.
  SweepFamily` registry tying each family's spec class, presets,
  runner, schema, gated metrics, and baseline prefix into one table
  (the CLI and artifact builder derive from it).
"""

from repro.sweep.artifacts import (
    ATTACK_SCHEMA,
    MC_SCHEMA,
    MODEL_SCHEMA,
    SCHEMA,
    SYSTEM_SCHEMA,
    check_against_baseline,
    default_baseline_path,
    diff_artifacts,
    load_artifact,
    make_artifact,
    make_attack_artifact,
    make_mc_artifact,
    make_model_artifact,
    make_system_artifact,
    write_artifact,
)
from repro.sweep.attack_runner import (
    AttackPointResult,
    AttackSweepResult,
    run_attack_sweep,
)
from repro.sweep.attack_spec import (
    ATTACK_PRESETS,
    AttackSweepPoint,
    AttackSweepSpec,
    attack_preset,
)
from repro.sweep.runner import PointResult, SweepResult, run_sweep
from repro.sweep.spec import (
    PRESETS,
    SWEEP_WORKLOADS,
    SweepPoint,
    SweepSpec,
    preset,
)
from repro.sweep.system_runner import (
    SystemPointResult,
    SystemSweepResult,
    run_system_sweep,
)
from repro.sweep.system_spec import (
    SYSTEM_PRESETS,
    SystemSweepPoint,
    SystemSweepSpec,
    system_preset,
)

# Last: the registry imports every family's spec/runner modules above.
from repro.sweep.family import (
    FAMILIES,
    SweepFamily,
    get_family,
    make_family_artifact,
)

__all__ = [
    "ATTACK_PRESETS",
    "ATTACK_SCHEMA",
    "FAMILIES",
    "MC_SCHEMA",
    "MODEL_SCHEMA",
    "PRESETS",
    "SCHEMA",
    "SWEEP_WORKLOADS",
    "SYSTEM_PRESETS",
    "SYSTEM_SCHEMA",
    "AttackPointResult",
    "AttackSweepPoint",
    "AttackSweepResult",
    "AttackSweepSpec",
    "PointResult",
    "SweepFamily",
    "SweepPoint",
    "SweepResult",
    "SweepSpec",
    "SystemPointResult",
    "SystemSweepPoint",
    "SystemSweepResult",
    "SystemSweepSpec",
    "attack_preset",
    "check_against_baseline",
    "default_baseline_path",
    "diff_artifacts",
    "get_family",
    "load_artifact",
    "make_artifact",
    "make_attack_artifact",
    "make_family_artifact",
    "make_mc_artifact",
    "make_model_artifact",
    "make_system_artifact",
    "preset",
    "run_attack_sweep",
    "run_sweep",
    "run_system_sweep",
    "system_preset",
    "write_artifact",
]
