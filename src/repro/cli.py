"""Command-line interface: ``repro <command>`` / ``python -m repro``.

Commands:

* ``attack`` — the security evaluation: ``attack run`` executes one
  registered attack through the channel stack, ``attack sweep`` runs a
  paper security-figure grid in parallel (with ``BENCH_attack.json``
  artifacts and baseline gating), ``attack list`` prints the attack
  registry.
* ``mc`` — the closed-loop memory-controller evaluation: ``mc run``
  serves a synthetic (or trace-replayed) request stream through
  per-bank queues and an FR-FCFS scheduler and prints read-latency
  percentiles, bandwidth, and queue occupancy under ALERT
  back-pressure; ``mc sweep`` runs a scenario grid (policies x ABO
  levels x arrival rates) with ``BENCH_mc.json`` artifacts and
  baseline gating; ``mc list-presets`` prints the grids;
  ``mc list-scheds`` prints the scheduling-policy registry (FCFS,
  FR-FCFS, and the per-client QoS kinds, selected with ``--sched``).
* ``perf`` — evaluate a mitigation policy on a Table 4 workload (or a
  recorded address trace via ``--trace``), optionally across multiple
  sub-channels (``--channels``); ``--list-policies`` prints the
  mitigation registry.
* ``report`` — the unified paper report: ``report all`` (or ``report
  run <figure>...``) renders every registered paper figure/table from
  cached ``BENCH_*`` artifacts as paper-vs-measured tables plus a
  machine-readable ``BENCH_report.json``; ``--check`` gates every
  source artifact against the committed smoke baselines;
  ``report list`` prints the figure registry.
* ``sweep`` — run a named experiment grid (paper figure/table presets)
  in parallel, emit a ``BENCH_sweep.json`` artifact, and optionally
  gate against a committed baseline (``--check``);
  ``--list-presets`` lists the grids.
* ``trace`` — synthesize or inspect physical-address traces for the
  channel-level replay workload.
* ``model`` — print an analytical model's table (Table 2, Figure 10,
  Table 7 Safe-TRH, Section 7 throughput).
* ``workloads`` — list the Table 4 profiles.
* ``obs`` — observability traces: ``obs summarize`` prints the event
  counts / latency histograms / provenance of a recorded
  ``repro.obs/v1`` trace (``mc run --trace-out`` / ``system run
  --trace-out``), ``obs export`` converts one to a pure
  Perfetto/Chrome trace-event JSON file.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.feinting_model import feinting_table
from repro.analysis.ratchet_model import ratchet_sweep
from repro.analysis.throughput import (
    alert_window_throughput,
    continuous_alert_slowdown,
)
from repro.attacks.base import AttackResult, AttackRunConfig
from repro.attacks.registry import (
    AttackSpec,
    attack_descriptions,
    attack_kinds,
)
from repro.mitigations.registry import (
    PolicySpec,
    policy_descriptions,
    policy_kinds,
)
from repro.report.figures import FIGURES
from repro.report.pipeline import (
    ReportOptions,
    SMOKE_N_TREFI,
    check_results,
    make_report_artifact,
    render_figure_text,
    render_markdown,
    run_figures,
    write_baselines,
)
from repro.report.tables import format_table
from repro.mc.controller import ROW_POLICIES, SCHEDULERS
from repro.mc.sched import sched_descriptions
from repro.sim.attack_perf import run_attack
from repro.sim.backend import BACKEND_ENV, BACKEND_NAMES
from repro.sim.mapping import CoffeeLakeMapping
from repro.sim.mc import McRunConfig, run_mc, run_mc_trace
from repro.sim.perf import RunConfig, run_trace, run_workload
from repro.workloads.requests import ARRIVAL_PROCESSES, McWorkload
from repro.trace import AddressTrace, load_trace
from repro.sweep.artifacts import (
    DEFAULT_ATOL,
    DEFAULT_RTOL,
    git_toplevel,
    write_artifact,
)
from repro.sweep.family import (
    ATTACK_FAMILY,
    MC_FAMILY,
    MODEL_FAMILY,
    PERF_FAMILY,
    SYSTEM_FAMILY,
    SweepFamily,
)
from repro.obs import (
    TraceRecorder,
    artifact_events,
    load_obs_artifact,
    make_obs_artifact,
    run_provenance,
    summarize_obs,
    write_perfetto,
)
from repro.sweep.runner import stderr_progress
from repro.system import ClientSpec, STREAMABLE_ATTACKS, SystemRunConfig, run_system
from repro.workloads.profiles import TABLE4_PROFILES, profile_by_name


def _print_attack(result: AttackResult) -> None:
    rows = [
        ("ACTs on attack row", result.acts_on_attack_row),
        ("max victim exposure", result.max_danger),
        ("ALERTs", result.alerts),
        ("total ACTs issued", result.total_acts),
        ("elapsed (us)", round(result.elapsed_ns / 1000.0, 1)),
    ]
    rows += [(key, value) for key, value in sorted(result.details.items())]
    print(format_table(["metric", "value"], rows, title=result.name))


#: Legacy convenience flags of ``repro attack run`` mapped onto the
#: registry parameter they set (only when explicitly provided).
_ATTACK_FLAG_PARAMS = (
    ("threshold", "threshold"),
    ("ath", "ath"),
    ("pool", "pool_size"),
    ("level", "abo_level"),
    ("rate", "trefi_per_mitigation"),
    ("periods", "periods"),
    ("banks", "num_banks"),
)

#: CLI-level parameter defaults applied when the user sets nothing.
#: feinting's library default is a full refresh window (2048 periods,
#: tens of seconds); the CLI keeps the historical 256-period quick run.
#: jailbreak-randomized has no library defaults for its counter state,
#: so the CLI supplies the paper's all-heavy iteration (Figure 5).
_ATTACK_RUN_DEFAULTS = {
    "feinting": {"periods": 256},
    "jailbreak-randomized": {
        "initial_counters": (112,) * 8,
        "attack_row_counter": 96,
    },
}


def _parse_set_value(raw: str):
    # "a,b,c" is a tuple parameter (e.g. jailbreak-randomized's
    # initial_counters); elements go through the scalar parser.
    if "," in raw:
        return tuple(_parse_set_value(part) for part in raw.split(","))
    for parse in (int, float):
        try:
            value = parse(raw)
        except ValueError:
            continue
        # Integral floats ("96.0") mean the integer, in tuple elements
        # exactly as in scalars.
        if isinstance(value, float) and value.is_integer():
            return int(value)
        return value
    return raw


def _cmd_attack_list(_args: argparse.Namespace) -> int:
    rows = [
        (
            kind,
            info["figure"],
            "adaptive" if info["adaptive"] else "open-loop",
            info["description"],
        )
        for kind, info in sorted(attack_descriptions().items())
    ]
    print(format_table(
        ["attack", "paper", "pattern", "description"], rows,
        title="Registered attacks"))
    return 0


def _cmd_attack_run(args: argparse.Namespace) -> int:
    params = {}
    for flag, param in _ATTACK_FLAG_PARAMS:
        value = getattr(args, flag)
        if value is not None:
            params[param] = value
    for item in args.set or []:
        if "=" not in item:
            print(f"error: --set expects name=value, got {item!r}",
                  file=sys.stderr)
            return 2
        name, _, raw = item.partition("=")
        value = _parse_set_value(raw)
        scalars = value if isinstance(value, tuple) else (value,)
        if not all(isinstance(scalar, int) for scalar in scalars):
            # Every registered attack parameter is an integer or a
            # tuple of integers (counts, thresholds, levels); catching
            # this here keeps type errors out of the attack internals.
            print(f"error: --set {name} expects an integer (or "
                  f"comma-separated integers), got {raw!r}",
                  file=sys.stderr)
            return 2
        params[name] = value
    for name, value in _ATTACK_RUN_DEFAULTS.get(args.name, {}).items():
        params.setdefault(name, value)
    if args.subchannels < 1:
        print("error: --subchannels must be at least 1", file=sys.stderr)
        return 2
    run_config = AttackRunConfig(subchannels=args.subchannels, seed=args.seed)
    try:
        result = run_attack(AttackSpec.of(args.name, **params), run_config)
    except ValueError as exc:
        # Bad or missing parameters (AttackSpec validation), impossible
        # geometry, or an adaptive attack at subchannels > 1.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    _print_attack(result)
    return 0


def _attack_overrides(spec, args: argparse.Namespace):
    return spec.with_overrides(seed=args.seed)


def _render_attack_table(result, args: argparse.Namespace) -> None:
    spec = result.spec

    def tput_loss(metrics):
        # Absence of the metric is not a measured zero: only the
        # throughput attacks (kernels, TSA) report a loss at all.
        loss = metrics.get("detail:throughput_loss")
        return "-" if loss is None else f"{loss * 100:.1f}%"

    rows = [
        (
            r.attack,
            r.figure,
            f"{r.metrics.get('acts_on_attack_row', 0.0):.0f}",
            f"{r.metrics.get('max_danger', 0.0):.0f}",
            f"{r.metrics.get('alerts', 0.0):.0f}",
            tput_loss(r.metrics),
            "hit" if r.cached else f"{r.wall_clock_s:.1f}s",
        )
        for r in result.results
    ]
    print(
        format_table(
            ["attack", "paper", "attack-row ACTs", "max danger",
             "ALERTs", "tput loss", "time"],
            rows,
            title=f"Attack sweep {spec.name} (jobs={args.jobs}, "
            f"{result.cache_hits} cached)",
        )
    )


def _cmd_attack_sweep(args: argparse.Namespace) -> int:
    return _run_family_sweep(
        ATTACK_FAMILY, args, _attack_overrides, _render_attack_table
    )


def _cmd_perf(args: argparse.Namespace) -> int:
    if args.list_policies:
        rows = [
            (kind, info["trefi_per_mitigation"], info["description"])
            for kind, info in sorted(policy_descriptions().items())
        ]
        print(format_table(
            ["policy", "tREFI/mitigation", "description"], rows,
            title="Registered mitigation policies"))
        return 0
    if args.channels < 1:
        print("error: --channels must be at least 1", file=sys.stderr)
        return 2
    config = RunConfig(
        ath=args.ath,
        eth=args.eth,
        abo_level=args.level,
        policy=PolicySpec(args.policy),
        subchannels=args.channels,
        n_trefi=args.trefi,
    )
    if args.trace:
        trace = load_trace(args.trace)
        if not isinstance(trace, AddressTrace):
            print(
                f"error: {args.trace} is an activation trace; perf replay "
                "needs an address trace (see `repro trace synth`)",
                file=sys.stderr,
            )
            return 2
        result = run_trace(trace, config)
        display = f"trace {args.trace} ({result.workload})"
    elif args.workload:
        profile = profile_by_name(args.workload)
        result = run_workload(profile, config)
        display = profile.display_name
    else:
        print("error: a workload name (or --trace/--list-policies) is "
              "required", file=sys.stderr)
        return 2
    rows = [
        ("ALERTs per tREFI (sub-channel)", f"{result.alerts_per_trefi:.4f}"),
        ("slowdown", f"{result.slowdown:.3%}"),
        ("mitigations+ALERTs / tREFW / bank",
         f"{result.mitigations_per_trefw_per_bank:.0f}"),
        ("activation overhead", f"{result.activation_overhead:.2%}"),
    ]
    scope = (f", {result.subchannels} sub-channels"
             if result.subchannels > 1 else "")
    title = (f"{display} under {result.policy}-L{args.level} "
             f"(ATH={args.ath}, ETH={result.eth}{scope})")
    print(format_table(["metric", "value"], rows, title=title))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    if args.action == "synth":
        if not args.workload:
            print("error: trace synth needs a workload name", file=sys.stderr)
            return 2
        profile = profile_by_name(args.workload)
        mapping = CoffeeLakeMapping()
        from repro.workloads.generator import generate_address_trace

        try:
            trace = generate_address_trace(
                profile,
                mapping,
                n_trefi=args.trefi,
                seed=args.seed,
                banks_per_subchannel=args.banks,
            )
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        out = args.out or f"{profile.name}.trace.jsonl"
        trace.save(out)
        print(f"wrote {len(trace)} address events "
              f"({trace.duration_ns / 1e6:.2f} ms) to {out}")
        return 0
    # info
    if not args.workload:
        print("error: trace info needs a trace path", file=sys.stderr)
        return 2
    trace = load_trace(args.workload)
    kind = "address" if isinstance(trace, AddressTrace) else "activation"
    rows = [
        ("kind", kind),
        ("events", len(trace)),
        ("duration (ms)", round(trace.duration_ns / 1e6, 3)),
    ]
    rows += [(f"meta:{k}", v) for k, v in sorted(trace.metadata.items())]
    print(format_table(["field", "value"], rows, title=str(args.workload)))
    return 0


def _perf_overrides(spec, args: argparse.Namespace):
    if args.trefi is not None and args.trefi <= 0:
        raise ValueError("--trefi must be positive")
    workloads = tuple(args.workloads.split(",")) if args.workloads else None
    return spec.with_overrides(
        n_trefi=args.trefi, seed=args.seed, workloads=workloads
    )


def _render_perf_table(result, args: argparse.Namespace) -> None:
    spec = result.spec
    rows = [
        (
            r.workload,
            r.policy,
            r.ath,
            r.eth,
            f"L{r.abo_level}",
            f"{r.metrics['slowdown'] * 100:.3f}%",
            f"{r.metrics['alerts_per_trefi']:.4f}",
            "hit" if r.cached else f"{r.wall_clock_s:.1f}s",
        )
        for r in result.results
    ]
    agg = result.aggregates()
    rows.append(
        (
            "AVERAGE",
            "",
            "",
            "",
            "",
            f"{agg['avg_slowdown'] * 100:.3f}%",
            f"{agg['avg_alerts_per_trefi']:.4f}",
            f"{result.wall_clock_s:.1f}s",
        )
    )
    print(
        format_table(
            ["workload", "policy", "ATH", "ETH", "level",
             "slowdown", "ALERT/tREFI", "time"],
            rows,
            title=f"Sweep {spec.name} (n_trefi={spec.n_trefi}, "
            f"jobs={args.jobs}, {result.cache_hits} cached)",
        )
    )


def _cmd_sweep(args: argparse.Namespace) -> int:
    return _run_family_sweep(
        PERF_FAMILY, args, _perf_overrides, _render_perf_table
    )


def _print_mc_result(result) -> None:
    depth = "unbounded" if result.queue_depth is None else result.queue_depth
    rows = [
        ("requests completed", result.requests),
        ("read latency mean (ns)", f"{result.read_mean_ns:.1f}"),
        ("read latency p50 (ns)", f"{result.read_p50_ns:.1f}"),
        ("read latency p99 (ns)", f"{result.read_p99_ns:.1f}"),
        ("read latency max (ns)", f"{result.read_max_ns:.1f}"),
        ("achieved bandwidth (GB/s)", f"{result.achieved_gbps:.3f}"),
        ("avg queue occupancy", f"{result.avg_queue_occupancy:.2f}"),
        ("ALERTs per tREFI (sub-channel)", f"{result.alerts_per_trefi:.4f}"),
        ("ALERT stall fraction", f"{result.stall_fraction:.3%}"),
    ]
    if result.row_policy == "open":
        rows.append(("row-buffer hit rate", f"{result.row_hit_rate:.1%}"))
    scope = (f", {result.subchannels} sub-channels"
             if result.subchannels > 1 else "")
    title = (
        f"{result.workload} through {result.scheduler}/"
        f"{result.row_policy} MC (depth {depth}) under {result.policy} "
        f"L{result.abo_level} (ATH={result.ath}, ETH={result.eth}, "
        f"{result.banks} banks{scope})"
    )
    print(format_table(["metric", "value"], rows, title=title))


def _parse_sched(text: str):
    """Parse ``KIND[:k=v,...]`` into (scheduler, sched_params).

    Values parse as int, then float; anything else is handed to the
    registry validation verbatim for its (numeric-only) error message.
    """
    kind, _, params_text = text.partition(":")
    kind = kind.strip()
    params = []
    if params_text.strip():
        for item in params_text.split(","):
            name, sep, value_text = item.partition("=")
            if not sep or not name.strip():
                raise ValueError(
                    f"bad --sched parameter {item!r}; expected k=v"
                )
            value_text = value_text.strip()
            try:
                value = int(value_text)
            except ValueError:
                try:
                    value = float(value_text)
                except ValueError:
                    value = value_text
            params.append((name.strip(), value))
    return kind, tuple(params)


def _resolve_sched(args: argparse.Namespace):
    """The scheduler/params pair from ``--sched`` or ``--scheduler``."""
    if getattr(args, "sched", None):
        return _parse_sched(args.sched)
    return args.scheduler, ()


def _add_sched_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scheduler", choices=list(SCHEDULERS),
                        default="frfcfs")
    parser.add_argument("--sched", default=None, metavar="KIND[:k=v,...]",
                        help="scheduling policy with parameters, e.g. "
                        "'slo:budget_ns=5000' or 'bw-cap:gbps=8,gbps2=0.1' "
                        "(overrides --scheduler; see "
                        "`repro mc list-scheds`)")


def _cmd_mc_list_scheds(_args: argparse.Namespace) -> int:
    rows = [
        (kind, info["params"] or "-", info["description"])
        for kind, info in sched_descriptions().items()
    ]
    print(format_table(
        ["scheduler", "params (defaults)", "description"], rows,
        title="Registered scheduling policies"))
    return 0


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    """Attach the shared tracing flags of ``mc run``/``system run``."""
    parser.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="record the typed event trace and write a repro.obs/v1 "
        "artifact to PATH (Perfetto-loadable; results are "
        "bit-identical with tracing on or off)")
    parser.add_argument(
        "--obs", action="store_true",
        help="print the observability summary (event counts, latency "
        "histograms, provenance) after the run")


def _run_recorder(args: argparse.Namespace, **meta):
    """A :class:`repro.obs.TraceRecorder` when ``--trace-out``/``--obs``
    was requested, else ``None`` (the run stays on the null recorder)."""
    if not (args.trace_out or args.obs):
        return None
    return TraceRecorder(meta=meta)


def _emit_obs(args: argparse.Namespace, recorder,
              n_trefi: int, t_refi_ns: float) -> None:
    """Write/print the observability outputs of a traced run."""
    artifact = make_obs_artifact(
        recorder, n_trefi=n_trefi, t_refi_ns=t_refi_ns,
    )
    if args.trace_out:
        out_path = Path(args.trace_out)
        write_artifact(out_path, artifact)
        print(f"trace artifact: {out_path} ({len(recorder)} events)",
              file=sys.stderr)
    if args.obs:
        print(format_table(["field", "value"], summarize_obs(artifact),
                           title="Observability summary"))


def _cmd_mc_run(args: argparse.Namespace) -> int:
    depth = None if args.queue_depth == 0 else args.queue_depth
    if depth is not None and depth < 0:
        print("error: --queue-depth must be >= 0 (0 = unbounded)",
              file=sys.stderr)
        return 2
    try:
        scheduler, sched_params = _resolve_sched(args)
        config = McRunConfig(
            ath=args.ath,
            eth=args.eth,
            abo_level=args.level,
            policy=PolicySpec(args.policy),
            workload=McWorkload(
                process=args.process,
                reads_per_trefi_per_bank=args.rate,
                hot_fraction=args.hot_fraction,
                hot_rows=args.hot_rows,
                write_fraction=args.write_fraction,
            ),
            queue_depth=depth,
            scheduler=scheduler,
            sched_params=sched_params,
            row_policy=args.row_policy,
            subchannels=args.subchannels,
            banks=args.banks,
            n_trefi=args.trefi,
            seed=args.seed,
        )
        recorder = _run_recorder(
            args, command="mc run", policy=args.policy,
            scheduler=scheduler, n_trefi=args.trefi, seed=args.seed,
        )
        if args.trace:
            trace = load_trace(args.trace)
            if not isinstance(trace, AddressTrace):
                print(
                    f"error: {args.trace} is an activation trace; mc replay "
                    "needs an address trace (see `repro trace synth`)",
                    file=sys.stderr,
                )
                return 2
            result = run_mc_trace(trace, config, recorder=recorder)
        else:
            result = run_mc(config, recorder=recorder)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    _print_mc_result(result)
    if recorder is not None:
        _emit_obs(args, recorder, n_trefi=config.n_trefi,
                  t_refi_ns=config.timing.t_refi)
    return 0


def _print_system_result(result) -> None:
    config = result.config
    agg = result.aggregate
    rows = [
        (
            c.name,
            c.priority,
            c.requests,
            f"{c.read_p50_ns:.0f}",
            f"{c.read_p99_ns:.0f}",
            f"{c.achieved_gbps:.3f}",
            f"{c.avg_queue_occupancy:.2f}",
        )
        for c in result.clients
    ]
    rows.append(
        (
            "SYSTEM",
            "",
            agg.requests,
            f"{agg.read_p50_ns:.0f}",
            f"{agg.read_p99_ns:.0f}",
            f"{agg.achieved_gbps:.3f}",
            f"{agg.avg_queue_occupancy:.2f}",
        )
    )
    title = (
        f"{len(result.clients)} clients x {config.channels} channels "
        f"under {config.policy.display_name()} L{config.abo_level}, "
        f"{config.sched_display()} "
        f"(ATH={config.ath}, ETH={config.eth_resolved}, "
        f"{config.banks} banks, {agg.alerts} ALERTs)"
    )
    print(format_table(
        ["client", "prio", "requests", "p50 ns", "p99 ns", "GB/s",
         "queue occ"],
        rows, title=title))


def _cmd_system_run(args: argparse.Namespace) -> int:
    if args.clients < 1:
        print("error: --clients must be at least 1", file=sys.stderr)
        return 2
    depth = None if args.queue_depth == 0 else args.queue_depth
    if depth is not None and depth < 0:
        print("error: --queue-depth must be >= 0 (0 = unbounded)",
              file=sys.stderr)
        return 2
    try:
        workload = McWorkload(
            process=args.process,
            reads_per_trefi_per_bank=args.rate,
            hot_fraction=args.hot_fraction,
            hot_rows=args.hot_rows,
            write_fraction=args.write_fraction,
        )
        clients = tuple(
            ClientSpec(name=f"tenant{i}", workload=workload, seed=i)
            for i in range(args.clients)
        )
        if args.attacker:
            # kernel budgets are request counts; trespass sizes itself
            # from its aggressor parameters.
            params = (
                {"total_acts": args.attacker_acts}
                if args.attacker.startswith("kernel") else {}
            )
            clients += (
                ClientSpec(
                    name="attacker",
                    attack=AttackSpec.of(args.attacker, **params),
                ),
            )
        scheduler, sched_params = _resolve_sched(args)
        config = SystemRunConfig(
            clients=clients,
            channels=args.channels,
            ath=args.ath,
            eth=args.eth,
            abo_level=args.level,
            policy=PolicySpec(args.policy),
            queue_depth=depth,
            scheduler=scheduler,
            sched_params=sched_params,
            row_policy=args.row_policy,
            subchannels=args.subchannels,
            banks=args.banks,
            n_trefi=args.trefi,
            seed=args.seed,
        )
        recorder = _run_recorder(
            args, command="system run", policy=args.policy,
            scheduler=scheduler, clients=len(clients),
            channels=args.channels, n_trefi=args.trefi, seed=args.seed,
        )
        result = run_system(
            config,
            jobs=args.jobs,
            cache_dir=Path(args.cache_dir) if args.cache_dir else None,
            progress=stderr_progress(args.quiet),
            recorder=recorder,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    _print_system_result(result)
    if recorder is not None:
        _emit_obs(args, recorder, n_trefi=config.n_trefi,
                  t_refi_ns=config.timing.t_refi)
    return 0


def _scaled_overrides(spec, args: argparse.Namespace):
    """Shared --trefi/--seed override path (mc and system families)."""
    if args.trefi is not None and args.trefi <= 0:
        raise ValueError("--trefi must be positive")
    return spec.with_overrides(n_trefi=args.trefi, seed=args.seed)


def _render_mc_table(result, args: argparse.Namespace) -> None:
    spec = result.spec
    rows = [
        (
            r.workload,
            r.policy,
            f"L{r.abo_level}",
            f"{r.scheduler}/{r.row_policy}",
            f"{r.metrics['read_p50_ns']:.0f}",
            f"{r.metrics['read_p99_ns']:.0f}",
            f"{r.metrics['achieved_gbps']:.2f}",
            f"{r.metrics['alerts_per_trefi']:.3f}",
            "hit" if r.cached else f"{r.wall_clock_s:.1f}s",
        )
        for r in result.results
    ]
    print(
        format_table(
            ["workload", "policy", "level", "MC", "p50 ns", "p99 ns",
             "GB/s", "ALERT/tREFI", "time"],
            rows,
            title=f"MC sweep {spec.name} (n_trefi={spec.n_trefi}, "
            f"jobs={args.jobs}, {result.cache_hits} cached)",
        )
    )


def _cmd_mc_sweep(args: argparse.Namespace) -> int:
    return _run_family_sweep(
        MC_FAMILY, args, _scaled_overrides, _render_mc_table
    )


def _cmd_mc_list(_args: argparse.Namespace) -> int:
    return _list_family_presets(MC_FAMILY)


def _model_overrides(spec, args: argparse.Namespace):
    # Model points are scale-free except workload-stats; no seed axis.
    if args.trefi is not None and args.trefi <= 0:
        raise ValueError("--trefi must be positive")
    return spec.with_overrides(n_trefi=args.trefi)


def _render_model_table(result, args: argparse.Namespace) -> None:
    spec = result.spec

    def param_summary(params):
        if not params:
            return "-"
        return ",".join(f"{k}={v}" for k, v in sorted(params.items()))

    rows = [
        (
            r.kind,
            param_summary(r.params),
            len(r.metrics),
            "hit" if r.cached else f"{r.wall_clock_s:.1f}s",
        )
        for r in result.results
    ]
    print(
        format_table(
            ["kind", "parameters", "metrics", "time"],
            rows,
            title=f"Model sweep {spec.name} (jobs={args.jobs}, "
            f"{result.cache_hits} cached)",
        )
    )


def _cmd_model_sweep(args: argparse.Namespace) -> int:
    return _run_family_sweep(
        MODEL_FAMILY, args, _model_overrides, _render_model_table
    )


def _cmd_model_list(_args: argparse.Namespace) -> int:
    return _list_family_presets(MODEL_FAMILY)


def _render_system_table(result, args: argparse.Namespace) -> None:
    spec = result.spec
    rows = [
        (
            r.scenario,
            len(r.clients),
            r.policy,
            f"ch{r.channels}",
            f"{r.metrics['read_p50_ns']:.0f}",
            f"{r.metrics['read_p99_ns']:.0f}",
            f"{r.metrics['achieved_gbps']:.2f}",
            f"{r.metrics['alerts']:.0f}",
            "hit" if r.cached else f"{r.wall_clock_s:.1f}s",
        )
        for r in result.results
    ]
    print(
        format_table(
            ["scenario", "clients", "policy", "channels", "p50 ns",
             "p99 ns", "GB/s", "ALERTs", "time"],
            rows,
            title=f"System sweep {spec.name} (jobs={args.jobs}, "
            f"{result.cache_hits} cached)",
        )
    )


def _cmd_system_sweep(args: argparse.Namespace) -> int:
    return _run_family_sweep(
        SYSTEM_FAMILY, args, _scaled_overrides, _render_system_table
    )


def _cmd_system_list(_args: argparse.Namespace) -> int:
    return _list_family_presets(SYSTEM_FAMILY)


#: Listing titles of the per-family ``list-presets`` commands (the
#: perf/attack/mc spellings predate the registry and stay stable).
_LIST_TITLES = {
    "sweep": "Sweep presets",
    "attack": "Attack sweep presets",
    "model": "Model sweep presets",
    "mc": "Memory-controller sweep presets",
    "system": "System sweep presets",
}


def _list_family_presets(family: SweepFamily) -> int:
    rows = [
        (spec.name, len(spec.points()), spec.description)
        for spec in family.presets.values()
    ]
    print(format_table(["preset", "points", "description"], rows,
                       title=_LIST_TITLES[family.name]))
    return 0


def _resolve_cache_dir(
    args: argparse.Namespace, family: SweepFamily
) -> Optional[Path]:
    """Point-cache location from --no-cache/--cache-root/--cache-dir.

    ``--cache-root R`` places the cache at ``R/<family>`` (the layout
    ``repro report`` uses); an explicitly overridden ``--cache-dir``
    wins over the root.
    """
    if args.no_cache:
        return None
    if (args.cache_root is not None
            and args.cache_dir == str(family.default_cache_dir)):
        return Path(args.cache_root) / family.cache_subdir
    return Path(args.cache_dir)


def _run_family_sweep(
    family: SweepFamily,
    args: argparse.Namespace,
    apply_overrides,
    render_table,
) -> int:
    """The shared ``<family> sweep`` command body.

    Everything family-specific arrives through the registry entry
    (preset table, runner, schema, gated metrics, baseline naming) and
    two callables: ``apply_overrides(spec, args)`` applying the
    family's scale/subset flags (raising ``ValueError``/``KeyError``
    on bad usage) and ``render_table(result, args)`` printing the
    family's summary table.
    """
    if args.list:
        return _list_family_presets(family)
    if not args.preset:
        print("error: a preset name (or --list-presets) is required",
              file=sys.stderr)
        return 2
    try:
        spec = family.preset(args.preset)
        spec = apply_overrides(spec, args)
    except (KeyError, ValueError) as exc:
        message = exc.args[0] if exc.args else str(exc)
        print(f"error: {message}", file=sys.stderr)
        return 2

    result = family.run(
        spec,
        jobs=args.jobs,
        cache_dir=_resolve_cache_dir(args, family),
        progress=stderr_progress(args.quiet),
    )
    render_table(result, args)

    # Provenance is opt-in (--obs): without it the artifact stays
    # byte-identical run to run, and the gate never sees the block
    # either way (diff_artifacts compares points only).
    provenance = None
    if args.obs:
        seed = getattr(spec, "seed", None)
        provenance = run_provenance(
            config_hash=spec.sweep_hash(),
            seeds=None if seed is None else {"seed": seed},
            cache=result.cache_stats,
            extra={"family": family.name, "preset": spec.name,
                   "jobs": args.jobs},
        )
    artifact = family.make_artifact(result, provenance=provenance)
    return _emit_artifact_and_gate(args, artifact, family, spec.name)


def _emit_artifact_and_gate(
    args: argparse.Namespace,
    artifact: dict,
    family: SweepFamily,
    preset_name: str,
) -> int:
    """Write a sweep artifact and apply --baseline/--write-baseline/
    --check — identical semantics for every sweep family."""
    out_default = f"BENCH_{family.bench_prefix}_{preset_name}.json"
    out_path = Path(args.out) if args.out else Path(out_default)
    write_artifact(out_path, artifact)
    print(f"artifact: {out_path}", file=sys.stderr)

    if args.baseline:
        baseline = Path(args.baseline)
    else:
        # Committed baselines live in the repo; anchor at the git
        # toplevel so the installed `repro` script finds them from
        # any working directory inside the checkout.
        baseline = family.default_baseline_path(preset_name)
        if not baseline.is_file():
            toplevel = git_toplevel()
            if toplevel is not None:
                baseline = family.default_baseline_path(
                    preset_name, root=toplevel
                )
    if args.write_baseline:
        write_artifact(baseline, artifact)
        print(f"baseline written: {baseline}", file=sys.stderr)
        return 0
    if args.check:
        ok, problems = family.check_against_baseline(
            artifact, baseline, rtol=args.rtol, atol=args.atol,
        )
        if not ok:
            print(f"BASELINE CHECK FAILED ({baseline}):", file=sys.stderr)
            for problem in problems:
                print(f"  - {problem}", file=sys.stderr)
            return 1
        print(f"baseline check passed ({baseline})", file=sys.stderr)
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    if args.action == "list":
        rows = [
            (
                spec.name,
                spec.section,
                ", ".join(spec.source_keys()),
                ", ".join(spec.paper_values),
            )
            for spec in FIGURES.values()
        ]
        print(format_table(
            ["figure", "paper section", "sources", "paper values"], rows,
            title="Registered paper figures/tables"))
        return 0

    if args.action == "all":
        names = list(FIGURES)
    else:
        names = args.figures
        if not names:
            print("error: report run needs at least one figure name "
                  "(see 'report list')", file=sys.stderr)
            return 2
        unknown = [name for name in names if name not in FIGURES]
        if unknown:
            print(f"error: unknown figures: {', '.join(unknown)} "
                  f"(known: {', '.join(FIGURES)})", file=sys.stderr)
            return 2
    if args.trefi <= 0:
        print("error: --trefi must be positive", file=sys.stderr)
        return 2

    options = ReportOptions(
        n_trefi=args.trefi,
        jobs=args.jobs,
        cache_root=None if args.no_cache else Path(args.cache_root),
        progress=stderr_progress(args.quiet),
    )
    results = run_figures(names, options)

    if args.write_baselines:
        root = Path(args.baseline_root) if args.baseline_root else None
        for path in write_baselines(results, root=root):
            print(f"baseline written: {path}", file=sys.stderr)
        return 0

    if args.check:
        root = Path(args.baseline_root) if args.baseline_root else None
        check_results(results, baseline_root=root,
                      rtol=args.rtol, atol=args.atol)

    for result in results:
        print(render_figure_text(result))
        print()

    artifact = make_report_artifact(results, options)
    out_path = Path(args.out)
    write_artifact(out_path, artifact)
    print(f"report artifact: {out_path}", file=sys.stderr)
    md_path = Path(args.md)
    md_path.parent.mkdir(parents=True, exist_ok=True)
    md_path.write_text(render_markdown(results) + "\n")
    print(f"report markdown: {md_path}", file=sys.stderr)

    failed = [r for r in results if r.checked and not r.ok]
    if failed:
        print("REPORT BASELINE CHECK FAILED:", file=sys.stderr)
        seen = set()
        for result in failed:
            for problem in result.problems:
                # A drifted source shared by several figures is one
                # defect; print it once (the problem line carries the
                # source key).
                if problem not in seen:
                    seen.add(problem)
                    print(f"  - {problem}", file=sys.stderr)
        return 1
    if args.check:
        print(f"report baseline check passed "
              f"({len(results)} figures)", file=sys.stderr)
    return 0


def _cmd_model(args: argparse.Namespace) -> int:
    if args.name == "table2":
        table = feinting_table()
        rows = [(f"1 per {k} tREFI", round(v)) for k, v in sorted(table.items())]
        print(format_table(["mitigation rate", "feinting T_RH"], rows,
                           title="Table 2 - Feinting bound"))
    elif args.name == "safe-trh":
        sweep = ratchet_sweep(ath_values=[16, 32, 48, 64, 96, 128])
        rows = [
            (ath, sweep[1][ath], sweep[2][ath], sweep[4][ath])
            for ath in sorted(sweep[1])
        ]
        print(format_table(["ATH", "L1", "L2", "L4"], rows,
                           title="Safe T_RH under Ratchet (Appendix A)"))
    elif args.name == "throughput":
        rows = [
            (f"level {level}",
             f"{alert_window_throughput(level):.2f}x",
             f"{continuous_alert_slowdown(level):.1f}x")
            for level in (1, 2, 4)
        ]
        print(format_table(["ABO level", "ALERT-window throughput", "max slowdown"],
                           rows, title="Section 7.1 / Appendix D"))
    return 0


def _cmd_workloads(_args: argparse.Namespace) -> int:
    rows = [
        (p.display_name, p.suite, p.act_pki, p.act_32_plus, p.act_64_plus, p.act_128_plus)
        for p in TABLE4_PROFILES
    ]
    print(format_table(
        ["workload", "suite", "ACT-PKI", "32+", "64+", "128+"],
        rows, title="Table 4 workloads"))
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    """Summarize or export a recorded ``repro.obs/v1`` trace."""
    try:
        artifact = load_obs_artifact(args.path)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.action == "summarize":
        print(format_table(["field", "value"], summarize_obs(artifact),
                           title=str(args.path)))
        return 0
    # export: strip the artifact down to a pure Chrome trace-event file
    # (the artifact itself is already Perfetto-loadable; this drops the
    # repro-specific keys for tools that validate strictly).
    out_path = (Path(args.out) if args.out
                else Path(args.path).with_suffix(".perfetto.json"))
    meta = artifact.get("meta") or None
    write_perfetto(out_path, artifact_events(artifact), meta=meta)
    print(f"perfetto trace: {out_path}", file=sys.stderr)
    return 0


def _split_rule_names(value: Optional[str]) -> Optional[List[str]]:
    """``"a,b"`` -> ``["a", "b"]`` (None/empty stays None)."""
    if not value:
        return None
    return [name.strip() for name in value.split(",") if name.strip()]


def _cmd_lint(args: argparse.Namespace) -> int:
    """Run the static-analysis rules; exit 0 clean / 1 findings."""
    import json

    from repro.analysis.lint import (
        format_findings,
        make_lint_artifact,
        rule_descriptions,
        run_lint,
    )

    if args.list_rules:
        rows = [
            (name, info["scope"], info["description"])
            for name, info in rule_descriptions().items()
        ]
        print(format_table(["rule", "scope", "description"], rows,
                           title="Registered lint rules"))
        return 0

    root = Path(args.root) if args.root else None
    paths = [Path(p) for p in args.paths] if args.paths else None
    try:
        result = run_lint(
            paths=paths,
            select=_split_rule_names(args.select),
            ignore=_split_rule_names(args.ignore),
            root=root,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.out:
        out_path = Path(args.out)
        out_path.parent.mkdir(parents=True, exist_ok=True)
        out_path.write_text(
            json.dumps(make_lint_artifact(result), indent=2,
                       sort_keys=True) + "\n",
            encoding="utf-8",
        )
    if args.format == "json":
        print(json.dumps(make_lint_artifact(result), indent=2,
                         sort_keys=True))
    else:
        print(format_findings(result))
    return 0 if result.clean else 1


#: Rows printed by ``--profile`` (top functions by cumulative time).
_PROFILE_TOP_N = 25


def _add_backend_flag(parser: argparse.ArgumentParser) -> None:
    """Attach the shared ``--backend`` selector.

    The choice is exported through :data:`BACKEND_ENV` rather than
    threaded through every config object, so process-pool workers
    inherit it; every backend is bit-identical by contract (and by
    test), so the flag never changes a result — only its speed.
    """
    parser.add_argument(
        "--backend", choices=list(BACKEND_NAMES), default=None,
        help="hot-path kernel backend (default: $REPRO_BACKEND or "
        "'pure'; 'numba' falls back to 'kernel' semantics in pure "
        "Python if numba is not installed — results are bit-identical "
        "on every backend)")


def _add_profile_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--profile", action="store_true",
        help="profile the command under cProfile and print the top "
        f"{_PROFILE_TOP_N} functions by cumulative time to stderr")


def _add_sweep_common_flags(
    parser: argparse.ArgumentParser,
    family: SweepFamily,
    preset_help: str = "preset name (see --list-presets)",
    list_help: Optional[str] = None,
) -> None:
    """Flag cluster shared by every ``<family> sweep`` command.

    All five families expose identical orchestration/gating semantics
    (jobs, seed, artifact output, baseline check/write, tolerances,
    point cache, progress), with defaults drawn from the family's
    registry entry — declared once so the commands cannot drift.
    ``--write-baselines`` and ``--cache-root`` are the canonical
    spellings shared with ``repro report``; ``--write-baseline`` and
    ``--cache-dir`` remain as compatible aliases of the same
    semantics.
    """
    artifact_default = f"BENCH_{family.bench_prefix}_<preset>.json"
    baseline_default = (
        f"benchmarks/baselines/{family.baseline_prefix}<preset>.json"
    )
    parser.add_argument("preset", nargs="?", default=None, help=preset_help)
    parser.add_argument(
        "--list", "--list-presets", dest="list", action="store_true",
        help=list_help
        or f"list available {family.name} presets and exit")
    parser.add_argument("--jobs", type=int,
                        default=max(1, os.cpu_count() or 1),
                        help="worker processes (default: CPU count)")
    parser.add_argument("--seed", type=int, default=None,
                        help="override the sweep seed")
    parser.add_argument("--out", default=None,
                        help=f"artifact path (default: {artifact_default})")
    gate = parser.add_mutually_exclusive_group()
    gate.add_argument("--check", action="store_true",
                      help="diff against the committed baseline; "
                      "exit 1 on regression")
    gate.add_argument("--write-baselines", "--write-baseline",
                      dest="write_baseline", action="store_true",
                      help="write this run as the new baseline "
                      "(mutually exclusive with --check)")
    parser.add_argument("--baseline", default=None,
                        help=f"baseline path (default: {baseline_default})")
    parser.add_argument("--rtol", type=float, default=DEFAULT_RTOL,
                        help="relative metric tolerance for --check")
    parser.add_argument("--atol", type=float, default=DEFAULT_ATOL,
                        help="absolute metric tolerance for --check")
    parser.add_argument("--cache-dir",
                        default=str(family.default_cache_dir),
                        help="per-point result cache directory")
    parser.add_argument("--cache-root", default=None, metavar="DIR",
                        help="root of the per-family point caches "
                        f"(cache at DIR/{family.cache_subdir}; an "
                        "explicit --cache-dir wins)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the per-point result cache")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-point progress on stderr")
    parser.add_argument("--obs", action="store_true",
                        help="record run provenance (config hash, "
                        "backend, seed schedule, cache hit/miss "
                        "statistics, per-run timing) into the "
                        "artifact's provenance block")
    _add_backend_flag(parser)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MOAT (ASPLOS 2025) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    attack = sub.add_parser(
        "attack",
        help="run or sweep the paper's attacks (security evaluation)",
    )
    attack_sub = attack.add_subparsers(dest="action", required=True)

    attack_run = attack_sub.add_parser(
        "run", help="run one registered attack and print the result"
    )
    attack_run.add_argument("name", choices=sorted(attack_kinds()),
                            help="attack kind (see 'attack list')")
    attack_run.add_argument("--threshold", type=int, default=None,
                            help="Panopticon queueing threshold")
    attack_run.add_argument("--ath", type=int, default=None,
                            help="MOAT ALERT threshold")
    attack_run.add_argument("--pool", type=int, default=None,
                            help="Ratchet pool size")
    attack_run.add_argument("--level", type=int, default=None,
                            choices=[1, 2, 4], help="ABO level")
    attack_run.add_argument("--rate", type=int, default=None,
                            help="feinting: tREFI per proactive mitigation")
    attack_run.add_argument("--periods", type=int, default=None,
                            help="feinting: mitigation periods to attack "
                            "over (CLI default 256; the library default "
                            "is a full window, 2048)")
    attack_run.add_argument("--banks", type=int, default=None,
                            help="TSA bank count")
    attack_run.add_argument("--set", action="append", metavar="NAME=VALUE",
                            help="set any registry parameter "
                            "(repeatable; see 'attack list' for names)")
    attack_run.add_argument("--subchannels", type=int, default=1, metavar="N",
                            help="sub-channels in the simulated channel "
                            "(open-loop patterns replicate across them; "
                            "adaptive attacks require 1)")
    attack_run.add_argument("--seed", type=int, default=0)
    attack_run.set_defaults(func=_cmd_attack_run)

    attack_sweep = attack_sub.add_parser(
        "sweep",
        help="run a paper security-figure attack grid in parallel",
    )
    _add_sweep_common_flags(attack_sweep, ATTACK_FAMILY)
    attack_sweep.set_defaults(func=_cmd_attack_sweep)

    attack_list = attack_sub.add_parser(
        "list", help="list the registered attacks"
    )
    attack_list.set_defaults(func=_cmd_attack_list)

    attack_list_presets = attack_sub.add_parser(
        "list-presets", help="list the attack sweep presets"
    )
    attack_list_presets.set_defaults(
        func=lambda _args: _list_family_presets(ATTACK_FAMILY)
    )

    perf = sub.add_parser("perf", help="evaluate a mitigation policy on a workload")
    perf.add_argument("workload", nargs="?", default=None,
                      help="Table 4 workload name (see 'workloads')")
    perf.add_argument("--ath", type=int, default=64)
    perf.add_argument("--eth", type=int, default=None)
    perf.add_argument("--level", type=int, default=1, choices=[1, 2, 4])
    perf.add_argument("--policy", choices=sorted(policy_kinds()), default="moat",
                      help="mitigation policy (default: moat)")
    perf.add_argument("--list-policies", action="store_true",
                      help="list the registered mitigation policies and exit")
    perf.add_argument("--channels", type=int, default=1, metavar="N",
                      help="sub-channels simulated per run (synthetic "
                      "workloads; trace replay takes its geometry from "
                      "the mapping)")
    perf.add_argument("--trace", default=None, metavar="PATH",
                      help="replay a recorded address trace instead of a "
                      "synthetic workload (see `repro trace synth`)")
    perf.add_argument("--trefi", type=int, default=4096,
                      help="simulated tREFI intervals (8192 = full window)")
    _add_backend_flag(perf)
    _add_profile_flag(perf)
    perf.set_defaults(func=_cmd_perf)

    trace = sub.add_parser(
        "trace",
        help="synthesize or inspect channel-level address traces",
    )
    trace.add_argument("action", choices=["synth", "info"])
    trace.add_argument("workload", nargs="?", default=None,
                       help="workload name (synth) or trace path (info)")
    trace.add_argument("--trefi", type=int, default=256,
                       help="trace length in tREFI intervals (synth)")
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument("--banks", type=int, default=None,
                       help="banks per sub-channel to populate "
                       "(default: all 32)")
    trace.add_argument("--out", default=None,
                       help="output path (default: <workload>.trace.jsonl)")
    trace.set_defaults(func=_cmd_trace)

    mc = sub.add_parser(
        "mc",
        help="closed-loop memory-controller evaluation (request-driven "
        "latency under ALERT back-pressure)",
    )
    mc_sub = mc.add_subparsers(dest="action", required=True)

    mc_run = mc_sub.add_parser(
        "run",
        help="serve one request stream and print latency/bandwidth "
        "metrics",
    )
    mc_run.add_argument("--policy", choices=sorted(policy_kinds()),
                        default="moat",
                        help="mitigation policy (default: moat)")
    mc_run.add_argument("--ath", type=int, default=64)
    mc_run.add_argument("--eth", type=int, default=None)
    mc_run.add_argument("--level", type=int, default=1, choices=[1, 2, 4],
                        help="ABO mitigation level")
    mc_run.add_argument("--process", choices=list(ARRIVAL_PROCESSES),
                        default="poisson", help="arrival process")
    mc_run.add_argument("--rate", type=float, default=24.0,
                        help="mean requests per tREFI per bank")
    mc_run.add_argument("--hot-fraction", type=float, default=0.0,
                        help="fraction of requests to the hot row set")
    mc_run.add_argument("--hot-rows", type=int, default=8,
                        help="hot-set size per bank")
    mc_run.add_argument("--write-fraction", type=float, default=0.0,
                        help="fraction of requests that are writes")
    _add_sched_flags(mc_run)
    mc_run.add_argument("--row-policy", choices=list(ROW_POLICIES),
                        default="closed")
    mc_run.add_argument("--queue-depth", type=int, default=32,
                        help="per-bank queue depth (0 = unbounded)")
    mc_run.add_argument("--banks", type=int, default=4,
                        help="banks simulated per sub-channel")
    mc_run.add_argument("--subchannels", type=int, default=1, metavar="N")
    mc_run.add_argument("--trefi", type=int, default=1024,
                        help="simulated tREFI intervals")
    mc_run.add_argument("--seed", type=int, default=0)
    mc_run.add_argument("--trace", default=None, metavar="PATH",
                        help="replay a recorded address trace as the "
                        "request stream (geometry from the mapping; "
                        "see `repro trace synth`)")
    _add_backend_flag(mc_run)
    _add_profile_flag(mc_run)
    _add_obs_flags(mc_run)
    mc_run.set_defaults(func=_cmd_mc_run)

    mc_sweep = mc_sub.add_parser(
        "sweep",
        help="run a closed-loop scenario grid in parallel",
    )
    mc_sweep.add_argument("--trefi", type=int, default=None,
                          help="override simulated tREFI intervals")
    _add_sweep_common_flags(
        mc_sweep, MC_FAMILY,
        preset_help="preset name (see `repro mc list-presets`)",
    )
    mc_sweep.set_defaults(func=_cmd_mc_sweep)

    mc_list = mc_sub.add_parser(
        "list-presets", help="list the mc sweep presets"
    )
    mc_list.set_defaults(func=_cmd_mc_list)

    mc_list_scheds = mc_sub.add_parser(
        "list-scheds",
        help="list the registered scheduling policies",
    )
    mc_list_scheds.set_defaults(func=_cmd_mc_list_scheds)

    system = sub.add_parser(
        "system",
        help="multi-client, multi-channel system evaluation (crossbar "
        "arbitration, per-client latency tails, noisy neighbors)",
    )
    system_sub = system.add_subparsers(dest="action", required=True)

    system_run = system_sub.add_parser(
        "run",
        help="run one multi-client system configuration and print "
        "per-client metrics",
    )
    system_run.add_argument("--clients", type=int, default=1, metavar="N",
                            help="homogeneous tenant clients sharing the "
                            "crossbar (per-client seeds 0..N-1)")
    system_run.add_argument("--channels", type=int, default=1, metavar="M",
                            help="independent channels (sharded across "
                            "--jobs workers)")
    system_run.add_argument("--attacker", default=None,
                            choices=sorted(STREAMABLE_ATTACKS),
                            help="add one attacker client replaying this "
                            "registered attack kind")
    system_run.add_argument("--attacker-acts", type=int, default=200_000,
                            help="attacker activation budget "
                            "(kernel kinds)")
    system_run.add_argument("--policy", choices=sorted(policy_kinds()),
                            default="moat",
                            help="mitigation policy (default: moat)")
    system_run.add_argument("--ath", type=int, default=64)
    system_run.add_argument("--eth", type=int, default=None)
    system_run.add_argument("--level", type=int, default=1,
                            choices=[1, 2, 4], help="ABO mitigation level")
    system_run.add_argument("--process", choices=list(ARRIVAL_PROCESSES),
                            default="poisson",
                            help="tenant arrival process")
    system_run.add_argument("--rate", type=float, default=24.0,
                            help="mean requests per tREFI per bank "
                            "per tenant")
    system_run.add_argument("--hot-fraction", type=float, default=0.0,
                            help="fraction of requests to the hot row set")
    system_run.add_argument("--hot-rows", type=int, default=8,
                            help="hot-set size per bank")
    system_run.add_argument("--write-fraction", type=float, default=0.0,
                            help="fraction of requests that are writes")
    _add_sched_flags(system_run)
    system_run.add_argument("--row-policy", choices=list(ROW_POLICIES),
                            default="closed")
    system_run.add_argument("--queue-depth", type=int, default=32,
                            help="per-bank queue depth (0 = unbounded)")
    system_run.add_argument("--banks", type=int, default=4,
                            help="banks simulated per sub-channel")
    system_run.add_argument("--subchannels", type=int, default=1,
                            metavar="N")
    system_run.add_argument("--trefi", type=int, default=1024,
                            help="simulated tREFI intervals")
    system_run.add_argument("--seed", type=int, default=0)
    system_run.add_argument("--jobs", type=int,
                            default=max(1, os.cpu_count() or 1),
                            help="shard worker processes "
                            "(default: CPU count)")
    system_run.add_argument("--cache-dir", default=None,
                            help="channel-shard result cache directory "
                            "(default: no cache)")
    system_run.add_argument("--quiet", action="store_true",
                            help="suppress per-shard progress on stderr")
    _add_backend_flag(system_run)
    _add_obs_flags(system_run)
    system_run.set_defaults(func=_cmd_system_run)

    system_sweep = system_sub.add_parser(
        "sweep",
        help="run a named system scenario set in parallel",
    )
    system_sweep.add_argument("--trefi", type=int, default=None,
                              help="override simulated tREFI intervals")
    _add_sweep_common_flags(
        system_sweep, SYSTEM_FAMILY,
        preset_help="preset name (see `repro system list-presets`)",
    )
    system_sweep.set_defaults(func=_cmd_system_sweep)

    system_list = system_sub.add_parser(
        "list-presets", help="list the system sweep presets"
    )
    system_list.set_defaults(func=_cmd_system_list)

    sweep = sub.add_parser(
        "sweep",
        help="run a paper figure/table experiment grid in parallel",
    )
    sweep.add_argument("--trefi", type=int, default=None,
                       help="override simulated tREFI intervals "
                       "(512 = smoke scale, 8192 = full window)")
    sweep.add_argument("--workloads", default=None,
                       help="comma-separated workload subset override")
    _add_sweep_common_flags(
        sweep, PERF_FAMILY,
        list_help="list available presets and exit",
    )
    sweep.set_defaults(func=_cmd_sweep)

    report = sub.add_parser(
        "report",
        help="render the unified paper-vs-measured report from cached "
        "artifacts",
    )
    report_sub = report.add_subparsers(dest="action", required=True)
    report_all = report_sub.add_parser(
        "all", help="render every registered paper figure/table"
    )
    report_run = report_sub.add_parser(
        "run", help="render selected figures (see 'report list')"
    )
    report_run.add_argument("figures", nargs="*", metavar="FIGURE",
                            help="registered figure names")
    for sub_parser in (report_all, report_run):
        sub_parser.add_argument(
            "--trefi", type=int, default=SMOKE_N_TREFI,
            help="window length for the performance sweeps (default "
            f"{SMOKE_N_TREFI} = the committed smoke-baseline scale; "
            "use 8192 for the full paper figure)")
        sub_parser.add_argument(
            "--jobs", type=int, default=max(1, os.cpu_count() or 1),
            help="worker processes (default: CPU count)")
        sub_parser.add_argument(
            "--out", default="BENCH_report.json",
            help="machine-readable report path")
        sub_parser.add_argument(
            "--md", default="BENCH_report.md",
            help="rendered markdown report path")
        gate = sub_parser.add_mutually_exclusive_group()
        gate.add_argument(
            "--check", action="store_true",
            help="gate every source artifact against its committed "
            "baseline; exit 1 on drift")
        gate.add_argument(
            "--write-baselines", action="store_true",
            help="write every source artifact as its committed "
            "baseline (mutually exclusive with --check)")
        sub_parser.add_argument(
            "--baseline-root", default=None,
            help="root containing benchmarks/baselines/ for both "
            "--check and --write-baselines (default: CWD if it holds "
            "the baseline dir, else the repro checkout)")
        sub_parser.add_argument("--rtol", type=float, default=DEFAULT_RTOL,
                                help="relative metric tolerance for --check")
        sub_parser.add_argument("--atol", type=float, default=DEFAULT_ATOL,
                                help="absolute metric tolerance for --check")
        sub_parser.add_argument(
            "--cache-root", default=".repro-cache",
            help="root of the per-family point caches")
        sub_parser.add_argument("--no-cache", action="store_true",
                                help="disable the per-point result caches")
        sub_parser.add_argument("--quiet", action="store_true",
                                help="suppress per-point progress on stderr")
        _add_backend_flag(sub_parser)
    report_list = report_sub.add_parser(
        "list", help="list the registered paper figures/tables"
    )
    report_list.set_defaults(func=_cmd_report)
    report_all.set_defaults(func=_cmd_report)
    report_run.set_defaults(func=_cmd_report)

    model = sub.add_parser(
        "model",
        help="analytical model tables and sweeps (no simulation)",
    )
    model_sub = model.add_subparsers(dest="name", required=True)
    for table_name, table_help in (
        ("table2", "per-policy mitigation overheads (Table 2)"),
        ("safe-trh", "lowest safe TRH per ABO level"),
        ("throughput", "attacker activation-throughput bounds"),
    ):
        model_table = model_sub.add_parser(table_name, help=table_help)
        model_table.set_defaults(func=_cmd_model)

    model_sweep = model_sub.add_parser(
        "sweep", help="run a named analytic model grid"
    )
    model_sweep.add_argument("--trefi", type=int, default=None,
                             help="override simulated tREFI intervals "
                             "(models that take an interval count)")
    _add_sweep_common_flags(
        model_sweep, MODEL_FAMILY,
        preset_help="preset name (see `repro model list-presets`)",
    )
    model_sweep.set_defaults(func=_cmd_model_sweep)

    model_list = model_sub.add_parser(
        "list-presets", help="list the model sweep presets"
    )
    model_list.set_defaults(func=_cmd_model_list)

    workloads = sub.add_parser("workloads", help="list Table 4 profiles")
    workloads.set_defaults(func=_cmd_workloads)

    obs = sub.add_parser(
        "obs",
        help="summarize or export recorded observability traces "
        "(see `mc run --trace-out` / `system run --trace-out`)",
    )
    obs_sub = obs.add_subparsers(dest="action", required=True)
    obs_summarize = obs_sub.add_parser(
        "summarize",
        help="print event counts, latency histograms, and provenance "
        "of a repro.obs/v1 trace",
    )
    obs_summarize.add_argument("path", help="repro.obs/v1 artifact path")
    obs_summarize.set_defaults(func=_cmd_obs)
    obs_export = obs_sub.add_parser(
        "export",
        help="convert a repro.obs/v1 trace to a pure Perfetto/Chrome "
        "trace-event JSON file",
    )
    obs_export.add_argument("path", help="repro.obs/v1 artifact path")
    obs_export.add_argument("--out", default=None, metavar="PATH",
                            help="output path (default: "
                            "<path>.perfetto.json)")
    obs_export.set_defaults(func=_cmd_obs)

    lint = sub.add_parser(
        "lint",
        help="run the repo's static-analysis rules (determinism, "
        "hash-neutrality, numba-subset, registry-coverage, "
        "listener-hygiene, telemetry-purity)",
    )
    lint.add_argument("paths", nargs="*", metavar="PATH",
                      help="files or directories to lint "
                      "(default: <root>/src)")
    lint.add_argument("--select", default=None, metavar="RULES",
                      help="comma-separated rule names to run "
                      "(default: all; see --list-rules)")
    lint.add_argument("--ignore", default=None, metavar="RULES",
                      help="comma-separated rule names to skip")
    lint.add_argument("--format", choices=["text", "json"],
                      default="text",
                      help="report format (json emits the "
                      "repro.lint/v1 artifact)")
    lint.add_argument("--out", default=None, metavar="PATH",
                      help="also write the repro.lint/v1 JSON "
                      "artifact to PATH")
    lint.add_argument("--root", default=None, metavar="DIR",
                      help="repo root for relative paths and "
                      "registry-coverage (default: git toplevel)")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the rule registry and exit")
    lint.set_defaults(func=_cmd_lint)
    return parser


def _run_profiled(args: argparse.Namespace) -> int:
    """Run the command under cProfile; stats go to stderr.

    The table is printed on stderr so the command's own stdout
    (tables, artifacts-to-stdout) stays pipeable.
    """
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    try:
        return profiler.runcall(args.func, args)
    finally:
        stats = pstats.Stats(profiler, stream=sys.stderr)
        print(f"--- cProfile: top {_PROFILE_TOP_N} by cumulative time ---",
              file=sys.stderr)
        stats.sort_stats("cumulative").print_stats(_PROFILE_TOP_N)


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "backend", None):
        # Exported via the environment rather than threaded through the
        # config objects so sweep process-pool workers inherit the
        # selection; bit-identity across backends means this can never
        # change a result or a cache/baseline identity.
        os.environ[BACKEND_ENV] = args.backend
    try:
        if getattr(args, "profile", False):
            return _run_profiled(args)
        return args.func(args)
    except BrokenPipeError:
        # Output piped into a pager/head that exited early. Exit with
        # the conventional SIGPIPE status (not 0: the command may have
        # been cut short before e.g. a --check gate ran).
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 141


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
