"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``attack`` — run one of the paper's attacks and print the result.
* ``perf`` — evaluate MOAT on a Table 4 workload.
* ``model`` — print an analytical model's table (Table 2, Figure 10,
  Table 7 Safe-TRH, Section 7 throughput).
* ``workloads`` — list the Table 4 profiles.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.feinting_model import feinting_table
from repro.analysis.ratchet_model import ratchet_sweep
from repro.analysis.throughput import (
    alert_window_throughput,
    continuous_alert_slowdown,
)
from repro.attacks import (
    run_deterministic_jailbreak,
    run_feinting,
    run_postponement_attack,
    run_ratchet,
    run_tsa,
)
from repro.attacks.base import AttackResult
from repro.report.tables import format_table
from repro.sim.perf import MoatRunConfig, run_workload
from repro.workloads.profiles import TABLE4_PROFILES, profile_by_name


def _print_attack(result: AttackResult) -> None:
    rows = [
        ("ACTs on attack row", result.acts_on_attack_row),
        ("max victim exposure", result.max_danger),
        ("ALERTs", result.alerts),
        ("total ACTs issued", result.total_acts),
        ("elapsed (us)", round(result.elapsed_ns / 1000.0, 1)),
    ]
    rows += [(key, value) for key, value in sorted(result.details.items())]
    print(format_table(["metric", "value"], rows, title=result.name))


def _cmd_attack(args: argparse.Namespace) -> int:
    if args.name == "jailbreak":
        result = run_deterministic_jailbreak(threshold=args.threshold)
    elif args.name == "feinting":
        result = run_feinting(trefi_per_mitigation=args.rate, periods=args.periods)
    elif args.name == "ratchet":
        result = run_ratchet(ath=args.ath, pool_size=args.pool, abo_level=args.level)
    elif args.name == "postponement":
        result = run_postponement_attack(threshold=args.threshold)
    elif args.name == "tsa":
        result = run_tsa(num_banks=args.banks, ath=args.ath)
    else:  # pragma: no cover - argparse restricts choices
        raise ValueError(args.name)
    _print_attack(result)
    return 0


def _cmd_perf(args: argparse.Namespace) -> int:
    profile = profile_by_name(args.workload)
    config = MoatRunConfig(
        ath=args.ath,
        eth=args.eth,
        abo_level=args.level,
        n_trefi=args.trefi,
    )
    result = run_workload(profile, config)
    rows = [
        ("ALERTs per tREFI (sub-channel)", f"{result.alerts_per_trefi:.4f}"),
        ("slowdown", f"{result.slowdown:.3%}"),
        ("mitigations+ALERTs / tREFW / bank",
         f"{result.mitigations_per_trefw_per_bank:.0f}"),
        ("activation overhead", f"{result.activation_overhead:.2%}"),
    ]
    title = (f"{profile.display_name} under MOAT-L{args.level} "
             f"(ATH={args.ath}, ETH={result.eth})")
    print(format_table(["metric", "value"], rows, title=title))
    return 0


def _cmd_model(args: argparse.Namespace) -> int:
    if args.name == "table2":
        table = feinting_table()
        rows = [(f"1 per {k} tREFI", round(v)) for k, v in sorted(table.items())]
        print(format_table(["mitigation rate", "feinting T_RH"], rows,
                           title="Table 2 - Feinting bound"))
    elif args.name == "safe-trh":
        sweep = ratchet_sweep(ath_values=[16, 32, 48, 64, 96, 128])
        rows = [
            (ath, sweep[1][ath], sweep[2][ath], sweep[4][ath])
            for ath in sorted(sweep[1])
        ]
        print(format_table(["ATH", "L1", "L2", "L4"], rows,
                           title="Safe T_RH under Ratchet (Appendix A)"))
    elif args.name == "throughput":
        rows = [
            (f"level {level}",
             f"{alert_window_throughput(level):.2f}x",
             f"{continuous_alert_slowdown(level):.1f}x")
            for level in (1, 2, 4)
        ]
        print(format_table(["ABO level", "ALERT-window throughput", "max slowdown"],
                           rows, title="Section 7.1 / Appendix D"))
    return 0


def _cmd_workloads(_args: argparse.Namespace) -> int:
    rows = [
        (p.display_name, p.suite, p.act_pki, p.act_32_plus, p.act_64_plus, p.act_128_plus)
        for p in TABLE4_PROFILES
    ]
    print(format_table(
        ["workload", "suite", "ACT-PKI", "32+", "64+", "128+"],
        rows, title="Table 4 workloads"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MOAT (ASPLOS 2025) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    attack = sub.add_parser("attack", help="run one of the paper's attacks")
    attack.add_argument(
        "name",
        choices=["jailbreak", "feinting", "ratchet", "postponement", "tsa"],
    )
    attack.add_argument("--threshold", type=int, default=128,
                        help="Panopticon queueing threshold")
    attack.add_argument("--ath", type=int, default=64, help="MOAT ALERT threshold")
    attack.add_argument("--pool", type=int, default=64, help="Ratchet pool size")
    attack.add_argument("--level", type=int, default=1, choices=[1, 2, 4])
    attack.add_argument("--rate", type=int, default=4,
                        help="feinting: tREFI per proactive mitigation")
    attack.add_argument("--periods", type=int, default=256,
                        help="feinting: mitigation periods to attack over")
    attack.add_argument("--banks", type=int, default=4, help="TSA bank count")
    attack.set_defaults(func=_cmd_attack)

    perf = sub.add_parser("perf", help="evaluate MOAT on a workload")
    perf.add_argument("workload", help="Table 4 workload name (see 'workloads')")
    perf.add_argument("--ath", type=int, default=64)
    perf.add_argument("--eth", type=int, default=None)
    perf.add_argument("--level", type=int, default=1, choices=[1, 2, 4])
    perf.add_argument("--trefi", type=int, default=4096,
                      help="simulated tREFI intervals (8192 = full window)")
    perf.set_defaults(func=_cmd_perf)

    model = sub.add_parser("model", help="print an analytical model table")
    model.add_argument("name", choices=["table2", "safe-trh", "throughput"])
    model.set_defaults(func=_cmd_model)

    workloads = sub.add_parser("workloads", help="list Table 4 profiles")
    workloads.set_defaults(func=_cmd_workloads)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
