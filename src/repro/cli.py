"""Command-line interface: ``repro <command>`` / ``python -m repro``.

Commands:

* ``attack`` — run one of the paper's attacks and print the result.
* ``perf`` — evaluate a mitigation policy on a Table 4 workload (or a
  recorded address trace via ``--trace``), optionally across multiple
  sub-channels (``--channels``); ``--list-policies`` prints the
  mitigation registry.
* ``sweep`` — run a named experiment grid (paper figure/table presets)
  in parallel, emit a ``BENCH_sweep.json`` artifact, and optionally
  gate against a committed baseline (``--check``);
  ``--list-presets`` lists the grids.
* ``trace`` — synthesize or inspect physical-address traces for the
  channel-level replay workload.
* ``model`` — print an analytical model's table (Table 2, Figure 10,
  Table 7 Safe-TRH, Section 7 throughput).
* ``workloads`` — list the Table 4 profiles.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.feinting_model import feinting_table
from repro.analysis.ratchet_model import ratchet_sweep
from repro.analysis.throughput import (
    alert_window_throughput,
    continuous_alert_slowdown,
)
from repro.attacks import (
    run_deterministic_jailbreak,
    run_feinting,
    run_postponement_attack,
    run_ratchet,
    run_tsa,
)
from repro.attacks.base import AttackResult
from repro.mitigations.registry import (
    PolicySpec,
    policy_descriptions,
    policy_kinds,
)
from repro.report.tables import format_table
from repro.sim.mapping import CoffeeLakeMapping
from repro.sim.perf import RunConfig, run_trace, run_workload
from repro.trace import AddressTrace, load_trace
from repro.sweep.artifacts import (
    DEFAULT_ATOL,
    DEFAULT_RTOL,
    check_against_baseline,
    default_baseline_path,
    git_toplevel,
    make_artifact,
    write_artifact,
)
from repro.sweep.runner import DEFAULT_CACHE_DIR, run_sweep
from repro.sweep.spec import PRESETS, preset
from repro.workloads.profiles import TABLE4_PROFILES, profile_by_name


def _print_attack(result: AttackResult) -> None:
    rows = [
        ("ACTs on attack row", result.acts_on_attack_row),
        ("max victim exposure", result.max_danger),
        ("ALERTs", result.alerts),
        ("total ACTs issued", result.total_acts),
        ("elapsed (us)", round(result.elapsed_ns / 1000.0, 1)),
    ]
    rows += [(key, value) for key, value in sorted(result.details.items())]
    print(format_table(["metric", "value"], rows, title=result.name))


def _cmd_attack(args: argparse.Namespace) -> int:
    if args.name == "jailbreak":
        result = run_deterministic_jailbreak(threshold=args.threshold)
    elif args.name == "feinting":
        result = run_feinting(trefi_per_mitigation=args.rate, periods=args.periods)
    elif args.name == "ratchet":
        result = run_ratchet(ath=args.ath, pool_size=args.pool, abo_level=args.level)
    elif args.name == "postponement":
        result = run_postponement_attack(threshold=args.threshold)
    elif args.name == "tsa":
        result = run_tsa(num_banks=args.banks, ath=args.ath)
    else:  # pragma: no cover - argparse restricts choices
        raise ValueError(args.name)
    _print_attack(result)
    return 0


def _cmd_perf(args: argparse.Namespace) -> int:
    if args.list_policies:
        rows = [
            (kind, info["trefi_per_mitigation"], info["description"])
            for kind, info in sorted(policy_descriptions().items())
        ]
        print(format_table(
            ["policy", "tREFI/mitigation", "description"], rows,
            title="Registered mitigation policies"))
        return 0
    if args.channels < 1:
        print("error: --channels must be at least 1", file=sys.stderr)
        return 2
    config = RunConfig(
        ath=args.ath,
        eth=args.eth,
        abo_level=args.level,
        policy=PolicySpec(args.policy),
        subchannels=args.channels,
        n_trefi=args.trefi,
    )
    if args.trace:
        trace = load_trace(args.trace)
        if not isinstance(trace, AddressTrace):
            print(
                f"error: {args.trace} is an activation trace; perf replay "
                "needs an address trace (see `repro trace synth`)",
                file=sys.stderr,
            )
            return 2
        result = run_trace(trace, config)
        display = f"trace {args.trace} ({result.workload})"
    elif args.workload:
        profile = profile_by_name(args.workload)
        result = run_workload(profile, config)
        display = profile.display_name
    else:
        print("error: a workload name (or --trace/--list-policies) is "
              "required", file=sys.stderr)
        return 2
    rows = [
        ("ALERTs per tREFI (sub-channel)", f"{result.alerts_per_trefi:.4f}"),
        ("slowdown", f"{result.slowdown:.3%}"),
        ("mitigations+ALERTs / tREFW / bank",
         f"{result.mitigations_per_trefw_per_bank:.0f}"),
        ("activation overhead", f"{result.activation_overhead:.2%}"),
    ]
    scope = (f", {result.subchannels} sub-channels"
             if result.subchannels > 1 else "")
    title = (f"{display} under {result.policy}-L{args.level} "
             f"(ATH={args.ath}, ETH={result.eth}{scope})")
    print(format_table(["metric", "value"], rows, title=title))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    if args.action == "synth":
        if not args.workload:
            print("error: trace synth needs a workload name", file=sys.stderr)
            return 2
        profile = profile_by_name(args.workload)
        mapping = CoffeeLakeMapping()
        from repro.workloads.generator import generate_address_trace

        try:
            trace = generate_address_trace(
                profile,
                mapping,
                n_trefi=args.trefi,
                seed=args.seed,
                banks_per_subchannel=args.banks,
            )
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        out = args.out or f"{profile.name}.trace.jsonl"
        trace.save(out)
        print(f"wrote {len(trace)} address events "
              f"({trace.duration_ns / 1e6:.2f} ms) to {out}")
        return 0
    # info
    if not args.workload:
        print("error: trace info needs a trace path", file=sys.stderr)
        return 2
    trace = load_trace(args.workload)
    kind = "address" if isinstance(trace, AddressTrace) else "activation"
    rows = [
        ("kind", kind),
        ("events", len(trace)),
        ("duration (ms)", round(trace.duration_ns / 1e6, 3)),
    ]
    rows += [(f"meta:{k}", v) for k, v in sorted(trace.metadata.items())]
    print(format_table(["field", "value"], rows, title=str(args.workload)))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    if args.list:
        rows = [
            (spec.name, len(spec.points()), spec.description)
            for spec in PRESETS.values()
        ]
        print(format_table(["preset", "points", "description"], rows,
                           title="Sweep presets"))
        return 0
    if not args.preset:
        print("error: a preset name (or --list-presets) is required",
              file=sys.stderr)
        return 2
    try:
        spec = preset(args.preset)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    if args.trefi is not None and args.trefi <= 0:
        print("error: --trefi must be positive", file=sys.stderr)
        return 2
    workloads = tuple(args.workloads.split(",")) if args.workloads else None
    try:
        spec = spec.with_overrides(
            n_trefi=args.trefi, seed=args.seed, workloads=workloads
        )
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2

    progress = None
    if not args.quiet:
        progress = lambda line: print(line, file=sys.stderr, flush=True)  # noqa: E731
    cache_dir = None if args.no_cache else Path(args.cache_dir)
    result = run_sweep(spec, jobs=args.jobs, cache_dir=cache_dir, progress=progress)

    rows = [
        (
            r.workload,
            r.policy,
            r.ath,
            r.eth,
            f"L{r.abo_level}",
            f"{r.metrics['slowdown'] * 100:.3f}%",
            f"{r.metrics['alerts_per_trefi']:.4f}",
            "hit" if r.cached else f"{r.wall_clock_s:.1f}s",
        )
        for r in result.results
    ]
    agg = result.aggregates()
    rows.append(
        (
            "AVERAGE",
            "",
            "",
            "",
            "",
            f"{agg['avg_slowdown'] * 100:.3f}%",
            f"{agg['avg_alerts_per_trefi']:.4f}",
            f"{result.wall_clock_s:.1f}s",
        )
    )
    print(
        format_table(
            ["workload", "policy", "ATH", "ETH", "level",
             "slowdown", "ALERT/tREFI", "time"],
            rows,
            title=f"Sweep {spec.name} (n_trefi={spec.n_trefi}, "
            f"jobs={args.jobs}, {result.cache_hits} cached)",
        )
    )

    artifact = make_artifact(result)
    out_path = Path(args.out) if args.out else Path(f"BENCH_sweep_{spec.name}.json")
    write_artifact(out_path, artifact)
    print(f"artifact: {out_path}", file=sys.stderr)

    if args.baseline:
        baseline = Path(args.baseline)
    else:
        # Committed baselines live in the repo; anchor at the git
        # toplevel so the installed `repro` script finds them from
        # any working directory inside the checkout.
        baseline = default_baseline_path(spec.name)
        if not baseline.is_file():
            toplevel = git_toplevel()
            if toplevel is not None:
                baseline = default_baseline_path(spec.name, root=toplevel)
    if args.write_baseline:
        write_artifact(baseline, artifact)
        print(f"baseline written: {baseline}", file=sys.stderr)
        return 0
    if args.check:
        ok, problems = check_against_baseline(
            artifact, baseline, rtol=args.rtol, atol=args.atol
        )
        if not ok:
            print(f"BASELINE CHECK FAILED ({baseline}):", file=sys.stderr)
            for problem in problems:
                print(f"  - {problem}", file=sys.stderr)
            return 1
        print(f"baseline check passed ({baseline})", file=sys.stderr)
    return 0


def _cmd_model(args: argparse.Namespace) -> int:
    if args.name == "table2":
        table = feinting_table()
        rows = [(f"1 per {k} tREFI", round(v)) for k, v in sorted(table.items())]
        print(format_table(["mitigation rate", "feinting T_RH"], rows,
                           title="Table 2 - Feinting bound"))
    elif args.name == "safe-trh":
        sweep = ratchet_sweep(ath_values=[16, 32, 48, 64, 96, 128])
        rows = [
            (ath, sweep[1][ath], sweep[2][ath], sweep[4][ath])
            for ath in sorted(sweep[1])
        ]
        print(format_table(["ATH", "L1", "L2", "L4"], rows,
                           title="Safe T_RH under Ratchet (Appendix A)"))
    elif args.name == "throughput":
        rows = [
            (f"level {level}",
             f"{alert_window_throughput(level):.2f}x",
             f"{continuous_alert_slowdown(level):.1f}x")
            for level in (1, 2, 4)
        ]
        print(format_table(["ABO level", "ALERT-window throughput", "max slowdown"],
                           rows, title="Section 7.1 / Appendix D"))
    return 0


def _cmd_workloads(_args: argparse.Namespace) -> int:
    rows = [
        (p.display_name, p.suite, p.act_pki, p.act_32_plus, p.act_64_plus, p.act_128_plus)
        for p in TABLE4_PROFILES
    ]
    print(format_table(
        ["workload", "suite", "ACT-PKI", "32+", "64+", "128+"],
        rows, title="Table 4 workloads"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MOAT (ASPLOS 2025) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    attack = sub.add_parser("attack", help="run one of the paper's attacks")
    attack.add_argument(
        "name",
        choices=["jailbreak", "feinting", "ratchet", "postponement", "tsa"],
    )
    attack.add_argument("--threshold", type=int, default=128,
                        help="Panopticon queueing threshold")
    attack.add_argument("--ath", type=int, default=64, help="MOAT ALERT threshold")
    attack.add_argument("--pool", type=int, default=64, help="Ratchet pool size")
    attack.add_argument("--level", type=int, default=1, choices=[1, 2, 4])
    attack.add_argument("--rate", type=int, default=4,
                        help="feinting: tREFI per proactive mitigation")
    attack.add_argument("--periods", type=int, default=256,
                        help="feinting: mitigation periods to attack over")
    attack.add_argument("--banks", type=int, default=4, help="TSA bank count")
    attack.set_defaults(func=_cmd_attack)

    perf = sub.add_parser("perf", help="evaluate a mitigation policy on a workload")
    perf.add_argument("workload", nargs="?", default=None,
                      help="Table 4 workload name (see 'workloads')")
    perf.add_argument("--ath", type=int, default=64)
    perf.add_argument("--eth", type=int, default=None)
    perf.add_argument("--level", type=int, default=1, choices=[1, 2, 4])
    perf.add_argument("--policy", choices=sorted(policy_kinds()), default="moat",
                      help="mitigation policy (default: moat)")
    perf.add_argument("--list-policies", action="store_true",
                      help="list the registered mitigation policies and exit")
    perf.add_argument("--channels", type=int, default=1, metavar="N",
                      help="sub-channels simulated per run (synthetic "
                      "workloads; trace replay takes its geometry from "
                      "the mapping)")
    perf.add_argument("--trace", default=None, metavar="PATH",
                      help="replay a recorded address trace instead of a "
                      "synthetic workload (see `repro trace synth`)")
    perf.add_argument("--trefi", type=int, default=4096,
                      help="simulated tREFI intervals (8192 = full window)")
    perf.set_defaults(func=_cmd_perf)

    trace = sub.add_parser(
        "trace",
        help="synthesize or inspect channel-level address traces",
    )
    trace.add_argument("action", choices=["synth", "info"])
    trace.add_argument("workload", nargs="?", default=None,
                       help="workload name (synth) or trace path (info)")
    trace.add_argument("--trefi", type=int, default=256,
                       help="trace length in tREFI intervals (synth)")
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument("--banks", type=int, default=None,
                       help="banks per sub-channel to populate "
                       "(default: all 32)")
    trace.add_argument("--out", default=None,
                       help="output path (default: <workload>.trace.jsonl)")
    trace.set_defaults(func=_cmd_trace)

    sweep = sub.add_parser(
        "sweep",
        help="run a paper figure/table experiment grid in parallel",
    )
    sweep.add_argument("preset", nargs="?", default=None,
                       help="preset name (see --list-presets)")
    sweep.add_argument("--list", "--list-presets", dest="list",
                       action="store_true",
                       help="list available presets and exit")
    sweep.add_argument("--jobs", type=int, default=max(1, os.cpu_count() or 1),
                       help="worker processes (default: CPU count)")
    sweep.add_argument("--trefi", type=int, default=None,
                       help="override simulated tREFI intervals "
                       "(512 = smoke scale, 8192 = full window)")
    sweep.add_argument("--seed", type=int, default=None,
                       help="override the sweep seed")
    sweep.add_argument("--workloads", default=None,
                       help="comma-separated workload subset override")
    sweep.add_argument("--out", default=None,
                       help="artifact path (default: BENCH_sweep_<preset>.json)")
    gate = sweep.add_mutually_exclusive_group()
    gate.add_argument("--check", action="store_true",
                      help="diff against the committed baseline; "
                      "exit 1 on regression")
    gate.add_argument("--write-baseline", action="store_true",
                      help="write this run as the new baseline "
                      "(mutually exclusive with --check)")
    sweep.add_argument("--baseline", default=None,
                       help="baseline path (default: "
                       "benchmarks/baselines/<preset>.json)")
    sweep.add_argument("--rtol", type=float, default=DEFAULT_RTOL,
                       help="relative metric tolerance for --check")
    sweep.add_argument("--atol", type=float, default=DEFAULT_ATOL,
                       help="absolute metric tolerance for --check")
    sweep.add_argument("--cache-dir", default=str(DEFAULT_CACHE_DIR),
                       help="per-point result cache directory")
    sweep.add_argument("--no-cache", action="store_true",
                       help="disable the per-point result cache")
    sweep.add_argument("--quiet", action="store_true",
                       help="suppress per-point progress on stderr")
    sweep.set_defaults(func=_cmd_sweep)

    model = sub.add_parser("model", help="print an analytical model table")
    model.add_argument("name", choices=["table2", "safe-trh", "throughput"])
    model.set_defaults(func=_cmd_model)

    workloads = sub.add_parser("workloads", help="list Table 4 profiles")
    workloads.set_defaults(func=_cmd_workloads)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output piped into a pager/head that exited early. Exit with
        # the conventional SIGPIPE status (not 0: the command may have
        # been cut short before e.g. a --check gate ran).
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 141


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
