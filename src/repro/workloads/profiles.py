"""Workload profiles from paper Table 4.

Each profile records the activation rate (ACT-PKI: activations per
kilo-instruction, aggregated over the 8-core rate-mode run) and the
average number of rows per bank per tREFW receiving at least 32, 64,
and 128 activations. These calibrate the synthetic trace generator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class WorkloadProfile:
    """Table 4 row: activation intensity and hot-row histogram."""

    name: str
    suite: str
    act_pki: float
    act_32_plus: int
    act_64_plus: int
    act_128_plus: int
    #: Display name used in the paper's figures (GAP workloads are
    #: plotted under their full names).
    display_name: str = ""

    def __post_init__(self) -> None:
        if self.act_pki < 0:
            raise ValueError("act_pki must be non-negative")
        if not self.act_32_plus >= self.act_64_plus >= self.act_128_plus >= 0:
            raise ValueError("hot-row counts must be non-increasing")
        if not self.display_name:
            object.__setattr__(self, "display_name", self.name)

    def acts_per_ns(self, instructions_per_ns: float = 32.0) -> float:
        """Aggregate activation rate given the instruction rate
        (8 cores x 4 GHz at IPC 1 by default, per Table 3)."""
        return self.act_pki / 1000.0 * instructions_per_ns

    def acts_per_trefi_per_bank(
        self,
        trefi_ns: float = 3900.0,
        total_banks: int = 64,
        instructions_per_ns: float = 32.0,
    ) -> float:
        """Average activations per tREFI landing on one bank."""
        return self.acts_per_ns(instructions_per_ns) * trefi_ns / total_banks


#: The 21 workloads of Table 4 (15 SPEC-2017 + 6 GAP).
TABLE4_PROFILES: List[WorkloadProfile] = [
    WorkloadProfile("bwaves", "spec", 29.3, 1871, 199, 4),
    WorkloadProfile("fotonik3d", "spec", 25.0, 2175, 113, 11),
    WorkloadProfile("lbm", "spec", 20.9, 3145, 1325, 13),
    WorkloadProfile("mcf", "spec", 19.8, 1772, 380, 113),
    WorkloadProfile("omnetpp", "spec", 11.1, 1224, 142, 41),
    WorkloadProfile("roms", "spec", 9.6, 2302, 995, 431),
    WorkloadProfile("parest", "spec", 8.9, 2259, 1014, 406),
    WorkloadProfile("xz", "spec", 8.8, 3409, 1255, 384),
    WorkloadProfile("cactuBSSN", "spec", 3.6, 4187, 1180, 466),
    WorkloadProfile("cam4", "spec", 3.0, 821, 89, 3),
    WorkloadProfile("blender", "spec", 1.1, 1016, 358, 91),
    WorkloadProfile("xalancbmk", "spec", 0.9, 585, 163, 36),
    WorkloadProfile("wrf", "spec", 0.8, 567, 90, 0),
    WorkloadProfile("x264", "spec", 0.6, 310, 59, 0),
    WorkloadProfile("gcc", "spec", 0.6, 424, 107, 19),
    WorkloadProfile("cc", "gap", 71.5, 1357, 215, 18, "ConnComp"),
    WorkloadProfile("pr", "gap", 29.1, 1489, 349, 52, "PageRank"),
    WorkloadProfile("bfs", "gap", 22.8, 529, 64, 16, "BFS"),
    WorkloadProfile("tc", "gap", 18.2, 81, 0, 0, "TriCount"),
    WorkloadProfile("bc", "gap", 9.0, 289, 43, 9, "BC"),
    WorkloadProfile("sssp", "gap", 7.0, 1817, 620, 127, "SSSPath"),
]

_BY_NAME: Dict[str, WorkloadProfile] = {p.name: p for p in TABLE4_PROFILES}
_BY_NAME.update({p.display_name: p for p in TABLE4_PROFILES})


def profile_by_name(name: str) -> WorkloadProfile:
    """Look up a Table 4 profile by short or display name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; known: {sorted(_BY_NAME)}"
        ) from None


def average_profile() -> WorkloadProfile:
    """The Table 4 'Average' row, built from the 21 profiles."""
    n = len(TABLE4_PROFILES)
    return WorkloadProfile(
        name="average",
        suite="all",
        act_pki=round(sum(p.act_pki for p in TABLE4_PROFILES) / n, 1),
        act_32_plus=round(sum(p.act_32_plus for p in TABLE4_PROFILES) / n),
        act_64_plus=round(sum(p.act_64_plus for p in TABLE4_PROFILES) / n),
        act_128_plus=round(sum(p.act_128_plus for p in TABLE4_PROFILES) / n),
    )
