"""Synthetic activation-stream generator calibrated to Table 4.

For each bank and refresh window the generator plans:

* **Hot rows** — the profile's ACT-32+/64+/128+ row counts, each hot
  row receiving an activation count drawn from its bracket ([32,64),
  [64,128), or [128,192]) spread over a burst of a few hundred tREFI
  starting at a random point in the window. Burst pacing is what
  determines whether proactive mitigation catches a row before it
  reaches ATH, so it is an explicit, documented knob.
* **Cold traffic** — the remaining activation budget (from ACT-PKI) as
  short-lived rows with a handful of activations each, modelling the
  long tail of row-buffer misses under a closed-page policy.

The plan is materialized as per-tREFI row lists which the performance
front-end feeds to the sub-channel simulator.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.workloads.profiles import WorkloadProfile


@dataclass
class ActivationSchedule:
    """Planned activation stream for one bank over a window.

    Attributes:
        per_trefi: ``per_trefi[i]`` lists the rows activated (in order)
            during tREFI interval ``i``.
        planned_row_acts: Total planned activations per row (for
            characteristics measurement, Table 4).
    """

    n_trefi: int
    per_trefi: List[List[int]]
    planned_row_acts: Dict[int, int] = field(default_factory=dict)

    @property
    def total_acts(self) -> int:
        return sum(self.planned_row_acts.values())


def generate_schedule(
    profile: WorkloadProfile,
    n_trefi: int = 8192,
    rows_per_bank: int = 64 * 1024,
    seed: int = 0,
    total_banks: int = 64,
    burst_trefi_median: int = 1500,
    cold_row_reuse: int = 6,
    max_hot_acts: int = 192,
) -> ActivationSchedule:
    """Build one bank's activation schedule for ``n_trefi`` intervals.

    Hot-row counts scale with ``n_trefi / 8192`` (the window fraction),
    so a quarter-window run sees a quarter of the hot rows — rates are
    preserved.
    """
    if n_trefi <= 0:
        raise ValueError("n_trefi must be positive")
    rng = random.Random(zlib.crc32(profile.name.encode()) ^ (seed * 0x9E3779B9))
    fraction = n_trefi / 8192.0
    per_trefi: List[List[int]] = [[] for _ in range(n_trefi)]
    planned: Dict[int, int] = {}

    def scaled(count: int) -> int:
        exact = count * fraction
        base = int(exact)
        return base + (1 if rng.random() < exact - base else 0)

    n128 = scaled(profile.act_128_plus)
    n64 = scaled(profile.act_64_plus - profile.act_128_plus)
    n32 = scaled(profile.act_32_plus - profile.act_64_plus)

    used_rows = set()

    def fresh_row() -> int:
        while True:
            row = rng.randrange(rows_per_bank)
            if row not in used_rows:
                used_rows.add(row)
                return row

    def add_burst(row: int, acts: int, duration: int, position: float) -> None:
        duration = max(1, min(duration, n_trefi))
        # Stratified start positions smooth the arrival process of hot
        # rows across the window (real workloads iterate steadily over
        # their working set; clumped arrivals would overload the
        # proactive-mitigation bandwidth and inflate ALERT rates).
        span = max(1, n_trefi - duration)
        start = min(span - 1, int(position * span)) if span > 1 else 0
        planned[row] = planned.get(row, 0) + acts
        for k in range(acts):
            slot = start + (k * duration) // acts
            per_trefi[slot].append(row)

    def burst_duration() -> int:
        # Lognormal spread around the median burst length.
        return max(8, int(rng.lognormvariate(0.0, 0.5) * burst_trefi_median))

    hot_bursts: List[tuple] = []
    for _ in range(n128):
        hot_bursts.append((rng.randint(128, max_hot_acts), burst_duration()))
    for _ in range(n64):
        hot_bursts.append((rng.randint(64, 127), burst_duration()))
    for _ in range(n32):
        hot_bursts.append((rng.randint(32, 63), burst_duration()))
    rng.shuffle(hot_bursts)

    hot_acts = 0
    n_hot = len(hot_bursts)
    for i, (acts, duration) in enumerate(hot_bursts):
        position = (i + rng.random()) / n_hot if n_hot else 0.0
        add_burst(fresh_row(), acts, duration, position)
        hot_acts += acts

    # Cold traffic fills the remaining activation budget. Rows are
    # drawn from a shuffled permutation (revisited round-robin) so no
    # cold row accidentally accumulates into the hot-row brackets and
    # distorts the Table 4 histogram.
    per_bank_rate = profile.acts_per_trefi_per_bank(total_banks=total_banks)
    budget = int(per_bank_rate * n_trefi) - hot_acts
    if budget > 0:
        cold_rows = [row for row in range(rows_per_bank) if row not in used_rows]
        rng.shuffle(cold_rows)
        pointer = 0
        while budget > 0:
            acts = min(budget, max(1, min(cold_row_reuse, 31)))
            row = cold_rows[pointer % len(cold_rows)]
            pointer += 1
            start = rng.randrange(n_trefi)
            planned[row] = planned.get(row, 0) + acts
            for k in range(acts):
                per_trefi[min(n_trefi - 1, start + k // 4)].append(row)
            budget -= acts

    # Shuffle within each interval so hot and cold interleave.
    for rows in per_trefi:
        rng.shuffle(rows)

    return ActivationSchedule(
        n_trefi=n_trefi, per_trefi=per_trefi, planned_row_acts=planned
    )


def generate_channel_schedules(
    profile: WorkloadProfile,
    num_subchannels: int = 1,
    banks_per_subchannel: int = 1,
    n_trefi: int = 8192,
    seed: int = 0,
    **kwargs,
) -> List[List[ActivationSchedule]]:
    """Channel-interleaved schedules: one per (sub-channel, bank).

    Models a channel-interleaved physical layout — every simulated
    (sub-channel, bank) pair receives an independent draw of the same
    Table 4 profile, the way page-granularity interleaving spreads one
    workload's working set across the whole channel. Seeds are assigned
    in sub-channel-major order (``seed + sub * banks + bank``), so
    sub-channel 0 of an N-sub-channel run reproduces the single
    sub-channel run bit-for-bit.

    Returns ``schedules[subchannel][bank]``. Extra keyword arguments
    pass through to :func:`generate_schedule`.
    """
    if num_subchannels < 1:
        raise ValueError("num_subchannels must be at least 1")
    if banks_per_subchannel < 1:
        raise ValueError("banks_per_subchannel must be at least 1")
    return [
        [
            generate_schedule(
                profile,
                n_trefi=n_trefi,
                seed=seed + sub * banks_per_subchannel + bank,
                **kwargs,
            )
            for bank in range(banks_per_subchannel)
        ]
        for sub in range(num_subchannels)
    ]


def generate_address_trace(
    profile: WorkloadProfile,
    mapping,
    n_trefi: int = 8192,
    seed: int = 0,
    banks_per_subchannel: Optional[int] = None,
    trefi_ns: float = 3900.0,
):
    """Synthesize a physical-address trace for a full channel.

    Draws one schedule per (sub-channel, bank) of the mapping's
    geometry (channel-interleaved, like :func:`generate_channel_
    schedules`), composes each activation into a physical byte address
    with ``mapping.compose``, and interleaves the per-bank streams
    round-robin within every tREFI interval — the arrival pattern a
    channel-interleaved physical layout produces. Event timestamps sit
    at their interval's start; the replay engine paces commands inside
    the interval.

    Args:
        profile: Table 4 workload profile.
        mapping: :class:`~repro.sim.mapping.AddressMapping` providing
            the geometry and the compose function.
        n_trefi: Trace length in tREFI intervals.
        seed: Base RNG seed (per-bank seeds derive from it).
        banks_per_subchannel: Banks to populate per sub-channel
            (default: all of the mapping's banks).
        trefi_ns: tREFI used for event timestamps.

    Returns:
        A :class:`repro.trace.AddressTrace`.
    """
    from repro.trace import AddressTrace  # circular-import guard

    subchannels = mapping.num_subchannels
    banks = mapping.num_banks if banks_per_subchannel is None else banks_per_subchannel
    if not 1 <= banks <= mapping.num_banks:
        raise ValueError(
            f"banks_per_subchannel={banks} must be in "
            f"[1, {mapping.num_banks}] for this mapping"
        )
    schedules = generate_channel_schedules(
        profile,
        num_subchannels=subchannels,
        banks_per_subchannel=banks,
        n_trefi=n_trefi,
        seed=seed,
        rows_per_bank=1 << mapping.row_bits,
        total_banks=subchannels * mapping.num_banks,
    )
    events = []
    for interval in range(n_trefi):
        time = interval * trefi_ns
        streams = [
            (sub, bank, schedules[sub][bank].per_trefi[interval])
            for sub in range(subchannels)
            for bank in range(banks)
        ]
        position = 0
        remaining = True
        while remaining:
            remaining = False
            for sub, bank, rows in streams:
                if position < len(rows):
                    remaining = True
                    addr = mapping.compose(sub, bank, rows[position])
                    events.append((time, addr))
            position += 1
    return AddressTrace(
        events=events,
        metadata={
            "workload": profile.name,
            "n_trefi": n_trefi,
            "seed": seed,
            "subchannels": subchannels,
            "banks_per_subchannel": banks,
        },
    )


def measure_characteristics(
    schedule: ActivationSchedule, window_trefi: int = 8192
) -> Dict[str, float]:
    """Table 4 style characteristics of a generated schedule.

    Counts rows at the 32/64/128 thresholds and scales to a full
    refresh window so the numbers are directly comparable to Table 4.
    """
    scale = window_trefi / schedule.n_trefi
    counts = schedule.planned_row_acts.values()
    return {
        "act_32_plus": sum(1 for c in counts if c >= 32) * scale,
        "act_64_plus": sum(1 for c in counts if c >= 64) * scale,
        "act_128_plus": sum(1 for c in counts if c >= 128) * scale,
        "total_acts": schedule.total_acts,
    }
