"""Synthetic activation-stream generator calibrated to Table 4.

For each bank and refresh window the generator plans:

* **Hot rows** — the profile's ACT-32+/64+/128+ row counts, each hot
  row receiving an activation count drawn from its bracket ([32,64),
  [64,128), or [128,192]) spread over a burst of a few hundred tREFI
  starting at a random point in the window. Burst pacing is what
  determines whether proactive mitigation catches a row before it
  reaches ATH, so it is an explicit, documented knob.
* **Cold traffic** — the remaining activation budget (from ACT-PKI) as
  short-lived rows with a handful of activations each, modelling the
  long tail of row-buffer misses under a closed-page policy.

The plan is materialized as per-tREFI row lists which the performance
front-end feeds to the sub-channel simulator.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field
from typing import Dict, List

from repro.workloads.profiles import WorkloadProfile


@dataclass
class ActivationSchedule:
    """Planned activation stream for one bank over a window.

    Attributes:
        per_trefi: ``per_trefi[i]`` lists the rows activated (in order)
            during tREFI interval ``i``.
        planned_row_acts: Total planned activations per row (for
            characteristics measurement, Table 4).
    """

    n_trefi: int
    per_trefi: List[List[int]]
    planned_row_acts: Dict[int, int] = field(default_factory=dict)

    @property
    def total_acts(self) -> int:
        return sum(self.planned_row_acts.values())


def generate_schedule(
    profile: WorkloadProfile,
    n_trefi: int = 8192,
    rows_per_bank: int = 64 * 1024,
    seed: int = 0,
    total_banks: int = 64,
    burst_trefi_median: int = 1500,
    cold_row_reuse: int = 6,
    max_hot_acts: int = 192,
) -> ActivationSchedule:
    """Build one bank's activation schedule for ``n_trefi`` intervals.

    Hot-row counts scale with ``n_trefi / 8192`` (the window fraction),
    so a quarter-window run sees a quarter of the hot rows — rates are
    preserved.
    """
    if n_trefi <= 0:
        raise ValueError("n_trefi must be positive")
    rng = random.Random(zlib.crc32(profile.name.encode()) ^ (seed * 0x9E3779B9))
    fraction = n_trefi / 8192.0
    per_trefi: List[List[int]] = [[] for _ in range(n_trefi)]
    planned: Dict[int, int] = {}

    def scaled(count: int) -> int:
        exact = count * fraction
        base = int(exact)
        return base + (1 if rng.random() < exact - base else 0)

    n128 = scaled(profile.act_128_plus)
    n64 = scaled(profile.act_64_plus - profile.act_128_plus)
    n32 = scaled(profile.act_32_plus - profile.act_64_plus)

    used_rows = set()

    def fresh_row() -> int:
        while True:
            row = rng.randrange(rows_per_bank)
            if row not in used_rows:
                used_rows.add(row)
                return row

    def add_burst(row: int, acts: int, duration: int, position: float) -> None:
        duration = max(1, min(duration, n_trefi))
        # Stratified start positions smooth the arrival process of hot
        # rows across the window (real workloads iterate steadily over
        # their working set; clumped arrivals would overload the
        # proactive-mitigation bandwidth and inflate ALERT rates).
        span = max(1, n_trefi - duration)
        start = min(span - 1, int(position * span)) if span > 1 else 0
        planned[row] = planned.get(row, 0) + acts
        for k in range(acts):
            slot = start + (k * duration) // acts
            per_trefi[slot].append(row)

    def burst_duration() -> int:
        # Lognormal spread around the median burst length.
        return max(8, int(rng.lognormvariate(0.0, 0.5) * burst_trefi_median))

    hot_bursts: List[tuple] = []
    for _ in range(n128):
        hot_bursts.append((rng.randint(128, max_hot_acts), burst_duration()))
    for _ in range(n64):
        hot_bursts.append((rng.randint(64, 127), burst_duration()))
    for _ in range(n32):
        hot_bursts.append((rng.randint(32, 63), burst_duration()))
    rng.shuffle(hot_bursts)

    hot_acts = 0
    n_hot = len(hot_bursts)
    for i, (acts, duration) in enumerate(hot_bursts):
        position = (i + rng.random()) / n_hot if n_hot else 0.0
        add_burst(fresh_row(), acts, duration, position)
        hot_acts += acts

    # Cold traffic fills the remaining activation budget. Rows are
    # drawn from a shuffled permutation (revisited round-robin) so no
    # cold row accidentally accumulates into the hot-row brackets and
    # distorts the Table 4 histogram.
    per_bank_rate = profile.acts_per_trefi_per_bank(total_banks=total_banks)
    budget = int(per_bank_rate * n_trefi) - hot_acts
    if budget > 0:
        cold_rows = [row for row in range(rows_per_bank) if row not in used_rows]
        rng.shuffle(cold_rows)
        pointer = 0
        while budget > 0:
            acts = min(budget, max(1, min(cold_row_reuse, 31)))
            row = cold_rows[pointer % len(cold_rows)]
            pointer += 1
            start = rng.randrange(n_trefi)
            planned[row] = planned.get(row, 0) + acts
            for k in range(acts):
                per_trefi[min(n_trefi - 1, start + k // 4)].append(row)
            budget -= acts

    # Shuffle within each interval so hot and cold interleave.
    for rows in per_trefi:
        rng.shuffle(rows)

    return ActivationSchedule(
        n_trefi=n_trefi, per_trefi=per_trefi, planned_row_acts=planned
    )


def measure_characteristics(
    schedule: ActivationSchedule, window_trefi: int = 8192
) -> Dict[str, float]:
    """Table 4 style characteristics of a generated schedule.

    Counts rows at the 32/64/128 thresholds and scales to a full
    refresh window so the numbers are directly comparable to Table 4.
    """
    scale = window_trefi / schedule.n_trefi
    counts = schedule.planned_row_acts.values()
    return {
        "act_32_plus": sum(1 for c in counts if c >= 32) * scale,
        "act_64_plus": sum(1 for c in counts if c >= 64) * scale,
        "act_128_plus": sum(1 for c in counts if c >= 128) * scale,
        "total_acts": schedule.total_acts,
    }
