"""Synthetic workloads calibrated to the paper's Table 4.

SPEC-2017 and GAP traces are proprietary/huge; the generator produces
activation streams whose two defining features match Table 4 exactly:
the activation intensity (ACT-PKI) and the per-tREFW histogram of hot
rows (rows receiving 32+/64+/128+ activations per bank per refresh
window). These are the only workload features MOAT's behaviour depends
on (Section 6.3 correlates slowdown with the ACT-64+ column).
"""

from repro.workloads.profiles import (
    WorkloadProfile,
    TABLE4_PROFILES,
    profile_by_name,
    average_profile,
)
from repro.workloads.generator import (
    ActivationSchedule,
    generate_schedule,
    measure_characteristics,
)
from repro.workloads.requests import (
    McWorkload,
    generate_requests,
    requests_from_schedule,
    requests_from_trace,
)

__all__ = [
    "WorkloadProfile",
    "TABLE4_PROFILES",
    "profile_by_name",
    "average_profile",
    "ActivationSchedule",
    "generate_schedule",
    "measure_characteristics",
    "McWorkload",
    "generate_requests",
    "requests_from_schedule",
    "requests_from_trace",
]
