"""Closed-loop request-stream generators for the memory controller.

Where :mod:`repro.workloads.generator` plans open-loop activation
schedules (rows per tREFI interval, paced by the engine), this module
synthesizes *timed request streams* for the closed-loop controller
(:mod:`repro.mc`): every request carries its own arrival timestamp, so
queueing delay under REF/ALERT back-pressure is measurable.

An :class:`McWorkload` describes the arrival process declaratively
(hashable and picklable, like :class:`~repro.mitigations.registry.
PolicySpec`, so sweep points can carry it across process boundaries):

* ``poisson`` — memoryless arrivals at a fixed mean rate per bank.
* ``bursty`` — an ON/OFF modulated Poisson process (exponentially
  distributed burst and idle phases); the ON rate is scaled by the
  duty cycle so the long-run mean matches ``reads_per_trefi_per_bank``.

Row selection mixes a hot set (``hot_fraction`` of requests to
``hot_rows`` rows per bank — the Rowhammer-relevant reuse that drives
mitigation policies toward their thresholds) with a uniform cold tail.
Streams are drawn per (sub-channel, bank) with the same seeding
discipline as :func:`~repro.workloads.generator.generate_channel_
schedules` (``seed + sub * banks + bank``, sub-channel-major): adding
sub-channels never perturbs existing streams, and sub-channel 0's
streams (seeded ``seed + bank``) survive a bank-count change; higher
sub-channels re-seed when the bank count changes, exactly as the
schedule generator does.

Recorded traces and open-loop schedules convert to request streams via
:func:`requests_from_trace` and :func:`requests_from_schedule` — the
bridges the round-trip and cross-check tests are built on.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass
from typing import List, Optional

from repro.mc.request import Request

#: Processes implemented by :func:`generate_requests`.
ARRIVAL_PROCESSES = ("poisson", "bursty")


@dataclass(frozen=True)
class McWorkload:
    """Declarative description of a closed-loop request stream.

    Args:
        process: Arrival process (``"poisson"`` or ``"bursty"``).
        reads_per_trefi_per_bank: Long-run mean arrival rate, in
            requests per tREFI per bank (DDR5 caps a bank near
            ``tREFI / tRC`` = 75; sustained rates above ~67 saturate
            once REF overhead is paid).
        hot_fraction: Fraction of requests drawn from the hot set.
        hot_rows: Hot-set size per bank (rows ``0..hot_rows-1``).
        write_fraction: Fraction of requests that are writes.
        burst_trefi: Bursty only — mean ON-phase length in tREFI.
        idle_trefi: Bursty only — mean OFF-phase length in tREFI.
    """

    process: str = "poisson"
    reads_per_trefi_per_bank: float = 24.0
    hot_fraction: float = 0.0
    hot_rows: int = 8
    write_fraction: float = 0.0
    burst_trefi: float = 8.0
    idle_trefi: float = 8.0

    def __post_init__(self) -> None:
        if self.process not in ARRIVAL_PROCESSES:
            raise ValueError(
                f"unknown arrival process {self.process!r}; "
                f"known: {', '.join(ARRIVAL_PROCESSES)}"
            )
        if self.reads_per_trefi_per_bank <= 0:
            raise ValueError("reads_per_trefi_per_bank must be positive")
        if not 0.0 <= self.hot_fraction <= 1.0:
            raise ValueError("hot_fraction must be in [0, 1]")
        if self.hot_rows < 1:
            raise ValueError("hot_rows must be at least 1")
        if not 0.0 <= self.write_fraction <= 1.0:
            raise ValueError("write_fraction must be in [0, 1]")
        if self.burst_trefi <= 0 or self.idle_trefi <= 0:
            raise ValueError("burst_trefi and idle_trefi must be positive")

    def display_name(self) -> str:
        """Stable human-readable identity (sweep keys, CLI tables).

        Injective over behavior-distinct workloads: every parameter
        that shapes the request stream appears whenever it is off its
        default, so sweep-point keys (which deduplicate on this name)
        can never fold two different streams together. ``hot_rows``
        matters even at ``hot_fraction=0`` — it bounds the cold-row
        draw range; the burst knobs only exist for ``bursty``.
        """
        name = f"{self.process}-r{self.reads_per_trefi_per_bank:g}"
        if self.hot_fraction:
            name += f"-hot{self.hot_fraction:g}x{self.hot_rows}"
        elif self.hot_rows != 8:
            name += f"-hotrows{self.hot_rows}"
        if self.write_fraction:
            name += f"-w{self.write_fraction:g}"
        if self.process == "bursty" and (
            self.burst_trefi != 8.0 or self.idle_trefi != 8.0
        ):
            name += f"-b{self.burst_trefi:g}i{self.idle_trefi:g}"
        return name


def generate_requests(
    workload: McWorkload,
    num_subchannels: int = 1,
    banks_per_subchannel: int = 4,
    n_trefi: int = 1024,
    rows_per_bank: int = 64 * 1024,
    seed: int = 0,
    trefi_ns: float = 3900.0,
) -> List[Request]:
    """Synthesize one channel's request stream, merged in time order.

    One independent draw per (sub-channel, bank), seeded in
    sub-channel-major order (``seed + sub * banks + bank``): adding
    sub-channels leaves existing streams untouched, and sub-channel
    0's per-bank streams are independent of the bank count. The merge
    is deterministic: ties on the timestamp resolve in (sub-channel,
    bank, per-bank order) order.
    """
    if num_subchannels < 1:
        raise ValueError("num_subchannels must be at least 1")
    if banks_per_subchannel < 1:
        raise ValueError("banks_per_subchannel must be at least 1")
    if n_trefi < 1:
        raise ValueError("n_trefi must be at least 1")
    if rows_per_bank <= workload.hot_rows:
        raise ValueError("rows_per_bank must exceed the hot set")
    horizon_ns = n_trefi * trefi_ns
    name_salt = zlib.crc32(workload.display_name().encode())
    tagged: List[tuple] = []
    for sub in range(num_subchannels):
        for bank in range(banks_per_subchannel):
            stream_seed = seed + sub * banks_per_subchannel + bank
            rng = random.Random(name_salt ^ (stream_seed * 0x9E3779B9))
            for k, req in enumerate(
                _bank_stream(workload, rng, horizon_ns, trefi_ns,
                             sub, bank, rows_per_bank)
            ):
                tagged.append((req.issue_ns, sub, bank, k, req))
    tagged.sort(key=lambda item: item[:4])
    return [item[4] for item in tagged]


def _bank_stream(
    workload: McWorkload,
    rng: random.Random,
    horizon_ns: float,
    trefi_ns: float,
    subchannel: int,
    bank: int,
    rows_per_bank: int,
) -> List[Request]:
    """Arrivals of one (sub-channel, bank) over ``[0, horizon_ns)``.

    The draw order per arrival is fixed (gap, hot?, row, write?) so
    streams stay reproducible when workload knobs sit at their neutral
    values — a ``hot_fraction=0`` stream draws the hot decision anyway.
    """
    rate_ns = workload.reads_per_trefi_per_bank / trefi_ns
    if workload.process == "bursty":
        duty = workload.burst_trefi / (workload.burst_trefi + workload.idle_trefi)
        on_rate_ns = rate_ns / duty
        arrivals = _bursty_arrivals(
            rng, horizon_ns, on_rate_ns,
            workload.burst_trefi * trefi_ns, workload.idle_trefi * trefi_ns,
        )
    else:
        arrivals = _poisson_arrivals(rng, horizon_ns, rate_ns)

    requests: List[Request] = []
    for t in arrivals:
        if rng.random() < workload.hot_fraction:
            row = rng.randrange(workload.hot_rows)
        else:
            row = rng.randrange(workload.hot_rows, rows_per_bank)
        is_write = rng.random() < workload.write_fraction
        requests.append(
            Request(issue_ns=t, subchannel=subchannel, bank=bank,
                    row=row, is_write=is_write)
        )
    return requests


def _poisson_arrivals(
    rng: random.Random, horizon_ns: float, rate_ns: float
) -> List[float]:
    out: List[float] = []
    t = rng.expovariate(rate_ns)
    while t < horizon_ns:
        out.append(t)
        t += rng.expovariate(rate_ns)
    return out


def _bursty_arrivals(
    rng: random.Random,
    horizon_ns: float,
    on_rate_ns: float,
    burst_ns: float,
    idle_ns: float,
) -> List[float]:
    """ON/OFF modulated Poisson arrivals (exponential phase lengths)."""
    out: List[float] = []
    t = 0.0
    while t < horizon_ns:
        on_end = t + rng.expovariate(1.0 / burst_ns)
        arrival = t + rng.expovariate(on_rate_ns)
        while arrival < on_end and arrival < horizon_ns:
            out.append(arrival)
            arrival += rng.expovariate(on_rate_ns)
        t = on_end + rng.expovariate(1.0 / idle_ns)
    return out


def requests_from_trace(trace, mapping=None) -> List[Request]:
    """Convert a v2 address trace into a timed request stream.

    Every event is demultiplexed through the mapping (default:
    :class:`~repro.sim.mapping.CoffeeLakeMapping`) exactly as
    :func:`repro.trace.replay_addresses` would route it, so replaying
    the result through the controller at infinite queue depth with the
    FCFS scheduler reproduces the open-loop replay bit-for-bit.
    """
    from repro.sim.mapping import CoffeeLakeMapping

    if mapping is None:
        mapping = CoffeeLakeMapping()
    requests: List[Request] = []
    for time, addr in trace.events:
        decoded = mapping.decode(addr)
        requests.append(
            Request(issue_ns=time, subchannel=decoded.subchannel,
                    bank=decoded.bank, row=decoded.row)
        )
    return requests


def requests_from_schedule(
    schedule,
    subchannel: int = 0,
    bank: int = 0,
    trefi_ns: float = 3900.0,
) -> List[Request]:
    """Convert an open-loop activation schedule into a request stream.

    Each interval's rows arrive together at the interval boundary —
    the arrival pattern the performance front-end's tREFI loop
    produces — so a closed-loop run at infinite queue depth issues the
    same ACT sequence as :func:`repro.sim.perf.run_workload` on the
    same schedule (the cross-check between the two front-ends).
    """
    requests: List[Request] = []
    for interval, rows in enumerate(schedule.per_trefi):
        time = interval * trefi_ns
        for row in rows:
            requests.append(
                Request(issue_ns=time, subchannel=subchannel,
                        bank=bank, row=row)
            )
    return requests
