"""Crossbar clients: per-requestor stream synthesis.

The system front-end (:mod:`repro.system.sim`) arbitrates N
independent client streams over one memory controller per channel.
This module owns the *client* side of that crossbar:

* :class:`ClientSpec` — a declarative, hashable, picklable description
  of one requestor: its arrival process (an
  :class:`~repro.workloads.requests.McWorkload`), its crossbar
  priority, its seed salt, and optionally a registered attack kind it
  runs instead of a benign workload (the noisy-neighbor scenario).
* :func:`client_requests` — the one stream synthesizer: benign clients
  draw from :func:`~repro.workloads.requests.generate_requests` under
  the seeding discipline below; attacker clients synthesize a paced
  hammer stream via :func:`attack_request_stream`.

The grant logic itself — priority-first, round-robin-among-equals,
per-client stall on a full bank queue — lives in
:meth:`repro.mc.controller.MemoryController.run_streams`, next to the
per-bank queues it arbitrates over.

Seeding discipline: client ``i`` on channel ``c`` derives its base
seed as ``system_seed + client.seed * CLIENT_SEED_STRIDE +
c * CHANNEL_SEED_STRIDE``. The strides keep distinct clients and
channels in well-separated seed ranges (no accidental stream sharing
through the per-bank ``seed + sub * banks + bank`` offsets), while
client seed 0 on channel 0 collapses to ``system_seed`` exactly — the
anchor of the 1-client == ``run_mc`` identity pin. A client's stream
depends only on its own spec and the system seed, never on the other
clients (pinned by the seeding-invariance tests).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import List, Optional

from repro.attacks.registry import AttackSpec
from repro.dram.timing import DramTiming
from repro.mc.request import Request
from repro.workloads.requests import McWorkload, generate_requests

#: Seed distance between adjacent client seeds (see module docstring).
CLIENT_SEED_STRIDE = 1_000_003

#: Seed distance between adjacent channels.
CHANNEL_SEED_STRIDE = 10_007

#: First row hammered by an attacker client — safely above the benign
#: workloads' hot sets (rows ``0..hot_rows-1``), so the attack rows are
#: disjoint from the victims' reuse without being special-cased.
ATTACK_ROW_BASE = 1024

#: Open-loop attack kinds with a request-stream adapter.
STREAMABLE_ATTACKS = ("kernel-single", "kernel-multi", "trespass")


@dataclass(frozen=True)
class ClientSpec:
    """One crossbar requestor.

    Args:
        name: Unique label; prefixes the client's metrics in system
            artifacts (``"{name}:read_p99_ns"``), so it must not
            contain the ``:`` separator.
        workload: Arrival process of a benign client (ignored when
            ``attack`` is set).
        priority: Crossbar admission priority (higher wins; equals
            round-robin).
        seed: Per-client seed salt (see the module docstring); keep it
            distinct across clients sharing a workload, or their
            streams coincide by construction.
        attack: When set, this client replays the registered open-loop
            attack as a paced hammer stream instead of drawing from
            ``workload`` (see :func:`attack_request_stream`).
    """

    name: str
    workload: McWorkload = field(default_factory=McWorkload)
    priority: int = 0
    seed: int = 0
    attack: Optional[AttackSpec] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("client name must be non-empty")
        if ":" in self.name or "|" in self.name:
            raise ValueError(
                f"client name {self.name!r} may not contain ':' or '|' "
                "(reserved by metric keys and sweep keys)"
            )
        if self.attack is not None and self.attack.adaptive:
            raise ValueError(
                f"adaptive attack {self.attack.kind!r} cannot drive a "
                "system client: it steers on engine feedback the "
                "request-stream adapter cannot observe; streamable "
                f"kinds: {', '.join(STREAMABLE_ATTACKS)}"
            )

    def display_name(self) -> str:
        """Stream identity: the attack or workload this client runs."""
        if self.attack is not None:
            return self.attack.display_name()
        return self.workload.display_name()


def attack_request_stream(
    attack: AttackSpec,
    horizon_ns: float,
    timing: DramTiming,
    rows_per_bank: int,
    client: int = 0,
) -> List[Request]:
    """Render an open-loop attack as a timed request stream.

    The attack's activation pattern is paced at one request per tRC —
    the fastest a single bank sustains — against sub-channel 0, bank 0,
    cycling the pattern's rows from :data:`ATTACK_ROW_BASE`. The act
    count is the attack's own budget (``total_acts``, or aggressors
    times ``acts_per_aggressor`` for trespass) clipped to the horizon,
    so a large budget means "hammer for the whole window".

    Deterministic (no RNG): the same spec always yields the same
    stream, which is what makes the noisy-neighbor baselines
    zero-tolerance gateable. Adaptive attacks are rejected — they
    steer on engine feedback (ALERT timing, counter state) that a
    fixed request stream cannot observe.
    """
    if attack.adaptive:
        raise ValueError(
            f"adaptive attack {attack.kind!r} has no request-stream "
            f"adapter; streamable kinds: {', '.join(STREAMABLE_ATTACKS)}"
        )
    params = attack.param_dict()
    if attack.kind == "kernel-single":
        num_rows = 1
        budget = int(params.get("total_acts", 20_000))
    elif attack.kind == "kernel-multi":
        num_rows = int(params.get("rows", 5))
        budget = int(params.get("total_acts", 20_000))
    elif attack.kind == "trespass":
        num_rows = int(params.get("num_aggressors", 32))
        budget = num_rows * int(params.get("acts_per_aggressor", 512))
    else:  # a future open-loop kind without an adapter yet
        raise ValueError(
            f"open-loop attack {attack.kind!r} has no request-stream "
            f"adapter; streamable kinds: {', '.join(STREAMABLE_ATTACKS)}"
        )
    if ATTACK_ROW_BASE + num_rows > rows_per_bank:
        raise ValueError(
            f"attack {attack.kind!r} needs {num_rows} rows from "
            f"{ATTACK_ROW_BASE} but banks have {rows_per_bank} rows"
        )
    t_rc = timing.t_rc
    count = min(budget, max(0, int(horizon_ns / t_rc) + 1))
    requests = []
    for k in range(count):
        t = k * t_rc
        if t >= horizon_ns:
            break
        requests.append(
            Request(
                issue_ns=t,
                subchannel=0,
                bank=0,
                row=ATTACK_ROW_BASE + (k % num_rows),
                client=client,
            )
        )
    return requests


def client_requests(
    client: ClientSpec,
    index: int,
    subchannels: int,
    banks: int,
    n_trefi: int,
    rows_per_bank: int,
    seed: int,
    channel: int,
    timing: DramTiming,
) -> List[Request]:
    """Synthesize client ``index``'s stream for one channel.

    Benign clients draw from :func:`generate_requests` at the strided
    seed described in the module docstring; attacker clients get the
    deterministic paced stream of :func:`attack_request_stream`.
    Every request is tagged ``client=index`` so completions attribute
    back through the shared controller.
    """
    if client.attack is not None:
        return attack_request_stream(
            client.attack,
            horizon_ns=n_trefi * timing.t_refi,
            timing=timing,
            rows_per_bank=rows_per_bank,
            client=index,
        )
    stream_seed = (
        seed
        + client.seed * CLIENT_SEED_STRIDE
        + channel * CHANNEL_SEED_STRIDE
    )
    requests = generate_requests(
        client.workload,
        num_subchannels=subchannels,
        banks_per_subchannel=banks,
        n_trefi=n_trefi,
        rows_per_bank=rows_per_bank,
        seed=stream_seed,
        trefi_ns=timing.t_refi,
    )
    return [dataclasses.replace(r, client=index) for r in requests]


def record_crossbar_grants(recorder, completed, sub_base: int = 0) -> None:
    """Derive ``grant`` events from a shard's completions, post hoc.

    One event per admission, stamped at the grant instant (the
    request's enqueue time) with the winning client — the arbitration
    outcomes of :meth:`repro.mc.controller.MemoryController.run_streams`
    recovered without touching its grant loop. ``sub_base`` offsets the
    sub-channel index for multi-channel merges (see
    :meth:`repro.sim.channel.ChannelSim.attach_recorder`).
    """
    emit = recorder.emit
    for c in completed:
        req = c.request
        emit("grant", c.enqueue_ns, sub=sub_base + req.subchannel,
             bank=req.bank, client=req.client)
