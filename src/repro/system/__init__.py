"""Multi-requestor, multi-channel system simulation.

``repro.system`` scales the single-stream memory-controller model of
:mod:`repro.sim.mc` out to a system: a front-end crossbar arbitrating
N client streams per channel (:mod:`repro.system.crossbar` for the
clients, :meth:`repro.mc.controller.MemoryController.run_streams` for
the grant logic) and a :class:`~repro.system.sim.SystemSim` sharding
M independent channels across the sweep process pool
(:mod:`repro.system.sim`).
"""

from repro.system.crossbar import (
    ATTACK_ROW_BASE,
    CHANNEL_SEED_STRIDE,
    CLIENT_SEED_STRIDE,
    STREAMABLE_ATTACKS,
    ClientSpec,
    attack_request_stream,
    client_requests,
)
from repro.system.sim import (
    SYSTEM_RESULT_VERSION,
    ChannelShard,
    ClientMetrics,
    ClientShardStats,
    ShardResult,
    SystemResult,
    SystemRunConfig,
    SystemSim,
    execute_system_shard,
    run_system,
    system_config_payload,
)

__all__ = [
    "ATTACK_ROW_BASE",
    "CHANNEL_SEED_STRIDE",
    "CLIENT_SEED_STRIDE",
    "STREAMABLE_ATTACKS",
    "SYSTEM_RESULT_VERSION",
    "ChannelShard",
    "ClientMetrics",
    "ClientShardStats",
    "ClientSpec",
    "ShardResult",
    "SystemResult",
    "SystemRunConfig",
    "SystemSim",
    "attack_request_stream",
    "client_requests",
    "execute_system_shard",
    "run_system",
    "system_config_payload",
]
