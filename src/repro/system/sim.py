"""Sharded multi-channel system simulation.

The fifth evaluation mode of the toolkit: where :func:`repro.sim.mc.
run_mc` drives one request stream into one channel, :class:`SystemSim`
drives N crossbar clients (each an independent
:class:`~repro.system.crossbar.ClientSpec`) into M channels and
reports *per-client* latency and bandwidth alongside the system
aggregate — the scale at which mitigation cost becomes what it really
is: interference between clients.

Decomposition:

* **Channel shard** — one :class:`~repro.sim.channel.ChannelSim` plus
  one :class:`~repro.mc.controller.MemoryController` serving every
  client's stream for that channel through
  :meth:`~repro.mc.controller.MemoryController.run_streams` (the
  crossbar). Channels share no state — DDR channels have independent
  buses, REF streams, and ALERT domains — so shards are perfectly
  parallel.
* **Sharding** — shards execute through the same
  :func:`~repro.sweep.runner.run_cached_grid` process pool the sweep
  families use: deterministic, cached by shard config hash, and
  bit-identical between parallel and serial execution (pinned the
  same way parallel == serial is pinned for sweeps).
* **Merge** — shards return per-client *sorted read-latency lists*
  (not pre-computed percentiles, which cannot merge), so system-level
  p50/p99 are exact over the union of all channels.

Correctness is pinned to the existing stack: a 1-client, 1-channel
:class:`SystemSim` is bit-identical to :func:`~repro.sim.mc.run_mc` —
same stream (the seeding collapses to the system seed), same
controller path (``run_streams`` with one stream degenerates to
``run``), same summary arithmetic (the merge of one shard reproduces
:func:`~repro.sim.mc._summarize` term for term).
"""

from __future__ import annotations

import hashlib
import heapq
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.dram.timing import DramTiming, DDR5_PRAC_TIMING
from repro.mc.controller import MemoryController
from repro.mc.sched import (
    normalize_sched_params,
    sched_display,
    slo_budget_ns,
    validate_sched,
)
from repro.mitigations.registry import PolicySpec
from repro.sim.mc import LINE_BYTES, McResult, McRunConfig, _percentile, build_mc_channel
from repro.sweep.runner import wall_timer
from repro.system.crossbar import ClientSpec, client_requests, record_crossbar_grants
from repro.workloads.requests import McWorkload

#: Bump when controller, crossbar, or engine semantics change in a way
#: that invalidates previously cached system shards.
SYSTEM_RESULT_VERSION = 1


@dataclass(frozen=True)
class SystemRunConfig:
    """Configuration of one multi-client, multi-channel system run.

    The policy/threshold/controller fields mirror
    :class:`~repro.sim.mc.McRunConfig` (every channel is defended and
    scheduled identically); the system axes are ``clients`` — the
    crossbar requestors sharing each channel — and ``channels``, the
    number of independent shards.
    """

    clients: Tuple[ClientSpec, ...] = (ClientSpec(name="client0"),)
    channels: int = 1
    ath: int = 64
    eth: Optional[int] = None  # defaults to ath // 2
    abo_level: int = 1
    policy: PolicySpec = field(default_factory=PolicySpec)
    trefi_per_mitigation: Optional[int] = None
    queue_depth: Optional[int] = 32
    #: Scheduling kind from the :mod:`repro.mc.sched` registry plus
    #: its ``(name, value)`` parameters — the QoS axis: every channel
    #: shard's crossbar and scheduler enforce the same policy.
    scheduler: str = "frfcfs"
    sched_params: Tuple[Tuple[str, object], ...] = ()
    row_policy: str = "closed"
    subchannels: int = 1
    banks: int = 4
    rows_per_bank: int = 64 * 1024
    n_trefi: int = 1024
    seed: int = 0
    timing: DramTiming = field(default_factory=lambda: DDR5_PRAC_TIMING)

    def __post_init__(self) -> None:
        object.__setattr__(self, "clients", tuple(self.clients))
        if not self.clients:
            raise ValueError("a system run needs at least one client")
        names = [client.name for client in self.clients]
        if len(set(names)) != len(names):
            raise ValueError(f"client names must be unique, got {names}")
        if self.channels < 1:
            raise ValueError("channels must be at least 1")
        # Fail fast here rather than inside a shard worker; the sched
        # registry owns the validation (shared with McConfig).
        object.__setattr__(
            self, "sched_params", normalize_sched_params(self.sched_params)
        )
        validate_sched(self.scheduler, self.sched_params)

    @property
    def eth_resolved(self) -> int:
        """ETH with the paper's ATH/2 default applied."""
        return self.ath // 2 if self.eth is None else self.eth

    def mc_run_config(self) -> McRunConfig:
        """The single-channel slice every shard is built from.

        The embedded workload is the first client's (the field is
        unused by channel construction — streams come from the
        crossbar — but keeping it meaningful preserves the 1-client
        configuration round-trip).
        """
        return McRunConfig(
            ath=self.ath,
            eth=self.eth,
            abo_level=self.abo_level,
            policy=self.policy,
            trefi_per_mitigation=self.trefi_per_mitigation,
            workload=self.clients[0].workload,
            queue_depth=self.queue_depth,
            scheduler=self.scheduler,
            sched_params=self.sched_params,
            row_policy=self.row_policy,
            subchannels=self.subchannels,
            banks=self.banks,
            rows_per_bank=self.rows_per_bank,
            n_trefi=self.n_trefi,
            seed=self.seed,
            timing=self.timing,
        )

    def display_name(self) -> str:
        """Stream-level identity of the client mix."""
        if len(self.clients) == 1:
            return self.clients[0].display_name()
        return "+".join(client.name for client in self.clients)

    def sched_display(self) -> str:
        """``kind`` or ``kind(k=v,...)`` — the artifact spelling."""
        return sched_display(self.scheduler, self.sched_params)


def system_config_payload(config: SystemRunConfig) -> Dict[str, object]:
    """Canonical hash payload of a system config.

    Same resolution conventions as the mc family: ETH and the
    proactive cadence hash at their resolved values, and dead knobs
    hash at their defaults — the burst knobs of Poisson client
    workloads, and the whole (ignored) workload of an attacker client
    — so equivalent spellings share one identity.
    """
    from repro.sweep.spec import _canonical

    payload = _canonical(config)
    payload["eth"] = config.eth_resolved
    payload["trefi_per_mitigation"] = (
        config.mc_run_config().trefi_per_mitigation_resolved
    )
    # The sched-params axis landed after the family's baselines were
    # committed; its empty spelling (the kind's defaults, what every
    # pre-existing shard ran) hashes out so they all survive.
    if not payload.get("sched_params"):
        payload.pop("sched_params", None)
    for client, data in zip(config.clients, payload["clients"]):
        if client.attack is not None:
            data["workload"] = _canonical(McWorkload())
        elif client.workload.process != "bursty":
            data["workload"]["burst_trefi"] = 8.0
            data["workload"]["idle_trefi"] = 8.0
    return payload


@dataclass(frozen=True)
class ChannelShard:
    """One grid cell of a system run: a single channel's simulation."""

    config: SystemRunConfig
    channel: int

    def config_hash(self) -> str:
        """Identity of this shard (cache key of the shard pool)."""
        payload = {
            "version": SYSTEM_RESULT_VERSION,
            "channel": self.channel,
            "config": system_config_payload(self.config),
        }
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()[:16]


@dataclass
class ClientShardStats:
    """One client's raw outcome on one channel (mergeable)."""

    requests: int
    reads: int
    writes: int
    row_hits: int
    queue_ns: float
    #: Sorted read latencies — raw, so system percentiles merge exactly.
    read_latencies: List[float]
    #: Reads whose latency exceeded the run's SLO budget (0 unless the
    #: ``slo`` scheduler defined one) — the gating decisions of the
    #: policy, observable in artifacts.
    slo_misses: int = 0

    def to_json(self) -> Dict[str, object]:
        return {
            "requests": self.requests,
            "reads": self.reads,
            "writes": self.writes,
            "row_hits": self.row_hits,
            "queue_ns": self.queue_ns,
            "read_latencies": self.read_latencies,
            "slo_misses": self.slo_misses,
        }

    @staticmethod
    def from_json(data: Dict[str, object]) -> "ClientShardStats":
        return ClientShardStats(
            requests=int(data["requests"]),
            reads=int(data["reads"]),
            writes=int(data["writes"]),
            row_hits=int(data["row_hits"]),
            queue_ns=float(data["queue_ns"]),
            read_latencies=[float(v) for v in data["read_latencies"]],
            # Tolerate shards cached before the counter existed.
            slo_misses=int(data.get("slo_misses", 0)),
        )


@dataclass
class ShardResult:
    """Outcome of one channel shard (raw per-client data + channel
    aggregates; JSON round-trips exactly, so cached shards are
    bit-identical to fresh ones)."""

    key: str
    config_hash: str
    channel: int
    alerts: int
    total_acts: int
    elapsed_ns: float
    per_client: List[ClientShardStats]
    wall_clock_s: float
    cached: bool = False

    def to_json(self) -> Dict[str, object]:
        return {
            "key": self.key,
            "config_hash": self.config_hash,
            "channel": self.channel,
            "alerts": self.alerts,
            "total_acts": self.total_acts,
            "elapsed_ns": self.elapsed_ns,
            "per_client": [stats.to_json() for stats in self.per_client],
            "wall_clock_s": self.wall_clock_s,
        }

    @staticmethod
    def from_json(
        data: Dict[str, object], cached: bool = False
    ) -> "ShardResult":
        return ShardResult(
            key=str(data["key"]),
            config_hash=str(data["config_hash"]),
            channel=int(data["channel"]),
            alerts=int(data["alerts"]),
            total_acts=int(data["total_acts"]),
            elapsed_ns=float(data["elapsed_ns"]),
            per_client=[
                ClientShardStats.from_json(stats)
                for stats in data["per_client"]
            ],
            wall_clock_s=float(data["wall_clock_s"]),
            cached=cached,
        )


def execute_system_shard(shard: ChannelShard, recorder=None) -> ShardResult:
    """Simulate one channel in the current process (worker entry).

    Args:
        shard: The channel cell to simulate.
        recorder: Optional :class:`repro.obs.TraceRecorder`. Traced
            shards run in-process only (recorders do not cross the
            worker-pool pickle boundary); each shard's sub-channels
            are offset by ``channel * subchannels`` so merged traces
            keep globally distinct tracks. Results are bit-identical
            with or without it.
    """
    started = wall_timer()
    config = shard.config
    streams = [
        client_requests(
            client,
            index,
            subchannels=config.subchannels,
            banks=config.banks,
            n_trefi=config.n_trefi,
            rows_per_bank=config.rows_per_bank,
            seed=config.seed,
            channel=shard.channel,
            timing=config.timing,
        )
        for index, client in enumerate(config.clients)
    ]
    mc_config = config.mc_run_config()
    channel = build_mc_channel(mc_config)
    controller = MemoryController(channel, mc_config.mc_config())
    if recorder is not None:
        channel.attach_recorder(
            recorder, base=shard.channel * config.subchannels
        )
        controller.recorder = recorder
    completed = controller.run_streams(
        streams, [client.priority for client in config.clients]
    )
    if recorder is not None:
        record_crossbar_grants(
            recorder, completed,
            sub_base=shard.channel * config.subchannels,
        )
    horizon = config.n_trefi * config.timing.t_refi
    budget = slo_budget_ns(config.scheduler, config.sched_params)
    per_client: List[ClientShardStats] = []
    for index in range(len(config.clients)):
        mine = [c for c in completed if c.request.client == index]
        latencies = sorted(
            c.latency_ns for c in mine if not c.request.is_write
        )
        per_client.append(
            ClientShardStats(
                requests=len(mine),
                reads=len(latencies),
                writes=len(mine) - len(latencies),
                row_hits=sum(1 for c in mine if c.row_hit),
                queue_ns=sum(c.queue_ns for c in mine),
                read_latencies=latencies,
                slo_misses=(
                    sum(1 for lat in latencies if lat > budget)
                    if budget is not None else 0
                ),
            )
        )
    return ShardResult(
        key=f"ch{shard.channel}",
        config_hash=shard.config_hash(),
        channel=shard.channel,
        alerts=channel.alerts,
        total_acts=channel.total_acts,
        elapsed_ns=max(channel.now, horizon),
        per_client=per_client,
        wall_clock_s=wall_timer() - started,
    )


@dataclass
class ClientMetrics:
    """One client's system-wide metrics (merged over every channel)."""

    name: str
    priority: int
    requests: int
    reads: int
    writes: int
    row_hits: int
    read_mean_ns: float
    read_p50_ns: float
    read_p99_ns: float
    read_max_ns: float
    avg_queue_ns: float
    avg_queue_occupancy: float
    achieved_gbps: float
    #: Reads over the run's SLO budget (0 unless the ``slo`` scheduler
    #: defined one).
    slo_misses: int = 0

    @property
    def row_hit_rate(self) -> float:
        if not self.requests:
            return 0.0
        return self.row_hits / self.requests

    def as_metrics(self) -> Dict[str, float]:
        """Flat metric dict (prefixed per client in system artifacts)."""
        return {
            "requests": float(self.requests),
            "reads": float(self.reads),
            "writes": float(self.writes),
            "read_mean_ns": self.read_mean_ns,
            "read_p50_ns": self.read_p50_ns,
            "read_p99_ns": self.read_p99_ns,
            "read_max_ns": self.read_max_ns,
            "avg_queue_ns": self.avg_queue_ns,
            "avg_queue_occupancy": self.avg_queue_occupancy,
            "achieved_gbps": self.achieved_gbps,
            "row_hit_rate": self.row_hit_rate,
            "slo_misses": float(self.slo_misses),
        }


@dataclass
class SystemResult:
    """Per-client metrics plus the system aggregate of one run.

    ``aggregate`` is a regular :class:`~repro.sim.mc.McResult` whose
    ``subchannels`` is the *system-wide* sub-channel count
    (``subchannels * channels``), so its derived stall fraction and
    ALERT rate remain per-sub-channel quantities comparable to the
    single-channel families. For a 1-client, 1-channel run it is
    bit-identical to what :func:`~repro.sim.mc.run_mc` returns.
    """

    config: SystemRunConfig
    aggregate: McResult
    clients: List[ClientMetrics]
    wall_clock_s: float = 0.0
    jobs: int = 1
    cache_hits: int = 0
    #: Shard-pool cache statistics (see
    #: :func:`repro.sweep.runner.run_cached_grid`); empty for traced
    #: runs, which bypass the cache.
    cache_stats: Dict[str, object] = field(default_factory=dict)

    def client(self, name: str) -> ClientMetrics:
        for metrics in self.clients:
            if metrics.name == name:
                return metrics
        known = ", ".join(m.name for m in self.clients)
        raise KeyError(f"unknown client {name!r}; known: {known}")

    def as_metrics(self) -> Dict[str, float]:
        """Aggregate metrics plus ``"{client}:{metric}"`` per client."""
        metrics = dict(self.aggregate.as_metrics())
        metrics["channels"] = float(self.config.channels)
        for client in self.clients:
            for key, value in client.as_metrics().items():
                metrics[f"{client.name}:{key}"] = value
        return metrics


def _merge_sorted(lists: List[List[float]]) -> List[float]:
    if len(lists) == 1:
        return lists[0]
    return list(heapq.merge(*lists))


def _assemble(
    config: SystemRunConfig,
    shards: List[ShardResult],
    wall_clock_s: float,
    jobs: int,
) -> SystemResult:
    elapsed_ns = max(shard.elapsed_ns for shard in shards)
    clients: List[ClientMetrics] = []
    client_latencies: List[List[float]] = []
    for index, spec in enumerate(config.clients):
        stats = [shard.per_client[index] for shard in shards]
        latencies = _merge_sorted([s.read_latencies for s in stats])
        client_latencies.append(latencies)
        requests = sum(s.requests for s in stats)
        reads = len(latencies)
        queue_ns = sum(s.queue_ns for s in stats)
        clients.append(
            ClientMetrics(
                name=spec.name,
                priority=spec.priority,
                requests=requests,
                reads=reads,
                writes=requests - reads,
                row_hits=sum(s.row_hits for s in stats),
                read_mean_ns=(
                    sum(latencies) / reads if reads else float("nan")
                ),
                read_p50_ns=_percentile(latencies, 0.50),
                read_p99_ns=_percentile(latencies, 0.99),
                read_max_ns=latencies[-1] if reads else float("nan"),
                avg_queue_ns=queue_ns / requests if requests else 0.0,
                avg_queue_occupancy=(
                    queue_ns / elapsed_ns if elapsed_ns else 0.0
                ),
                achieved_gbps=(
                    requests * LINE_BYTES / elapsed_ns if elapsed_ns else 0.0
                ),
                slo_misses=sum(s.slo_misses for s in stats),
            )
        )

    # System aggregate: the same arithmetic as run_mc's _summarize over
    # the union of every channel's completions (term-for-term identical
    # for one shard — the identity pin).
    latencies = _merge_sorted(client_latencies)
    requests = sum(c.requests for c in clients)
    reads = len(latencies)
    queue_ns = sum(
        sum(s.queue_ns for s in shard.per_client) for shard in shards
    )
    alerts = sum(shard.alerts for shard in shards)
    aggregate = McResult(
        workload=config.display_name(),
        policy=config.policy.display_name(),
        ath=config.ath,
        eth=config.eth_resolved,
        abo_level=config.abo_level,
        scheduler=config.sched_display(),
        row_policy=config.row_policy,
        queue_depth=config.queue_depth,
        subchannels=config.subchannels * config.channels,
        banks=config.banks,
        n_trefi=config.n_trefi,
        requests=requests,
        reads=reads,
        writes=requests - reads,
        row_hits=sum(c.row_hits for c in clients),
        alerts=alerts,
        total_acts=sum(shard.total_acts for shard in shards),
        elapsed_ns=elapsed_ns,
        stall_ns=alerts * config.abo_level * config.timing.t_rfm,
        read_mean_ns=(sum(latencies) / reads if reads else float("nan")),
        read_p50_ns=_percentile(latencies, 0.50),
        read_p99_ns=_percentile(latencies, 0.99),
        read_max_ns=latencies[-1] if reads else float("nan"),
        avg_queue_ns=queue_ns / requests if requests else 0.0,
        avg_queue_occupancy=queue_ns / elapsed_ns if elapsed_ns else 0.0,
    )
    return SystemResult(
        config=config,
        aggregate=aggregate,
        clients=clients,
        wall_clock_s=wall_clock_s,
        jobs=jobs,
        cache_hits=sum(1 for shard in shards if shard.cached),
    )


class SystemSim:
    """Multi-client, multi-channel simulation over sharded channels.

    Args:
        config: The system to simulate.

    Shards execute through :func:`~repro.sweep.runner.run_cached_grid`
    — serial in-process at ``jobs=1``, a process pool above, cached by
    shard hash when ``cache_dir`` is set — and merge into one
    :class:`SystemResult`. Sharded parallel execution equals serial
    bit for bit (shards are deterministic and independent).
    """

    def __init__(self, config: SystemRunConfig = SystemRunConfig()) -> None:
        self.config = config

    def shards(self) -> List[ChannelShard]:
        """The shard grid: one cell per channel."""
        return [
            ChannelShard(config=self.config, channel=channel)
            for channel in range(self.config.channels)
        ]

    def run(
        self,
        jobs: int = 1,
        cache_dir: Optional[Path] = None,
        progress=None,
        recorder=None,
    ) -> SystemResult:
        """Simulate every channel; parallel when ``jobs > 1``.

        A traced run (``recorder`` set) executes its shards serially
        in-process and bypasses the cache entirely: a cache hit would
        skip event emission, and recorders cannot cross the worker
        pool's pickle boundary. Metrics stay bit-identical; only the
        event stream is additional.
        """
        from repro.sweep.runner import run_cached_grid

        started = wall_timer()
        if recorder is not None:
            shards = [
                execute_system_shard(shard, recorder=recorder)
                for shard in self.shards()
            ]
            return _assemble(
                self.config,
                shards,
                wall_clock_s=wall_timer() - started,
                jobs=1,
            )
        cache_stats: Dict[str, object] = {}
        shards = run_cached_grid(
            self.shards(),
            execute_system_shard,
            ShardResult.from_json,
            jobs=jobs,
            cache_dir=cache_dir,
            progress=progress,
            stats=cache_stats,
        )
        result = _assemble(
            self.config,
            shards,
            wall_clock_s=wall_timer() - started,
            jobs=jobs,
        )
        result.cache_stats = cache_stats
        return result


def run_system(
    config: SystemRunConfig = SystemRunConfig(),
    jobs: int = 1,
    cache_dir: Optional[Path] = None,
    progress=None,
    recorder=None,
) -> SystemResult:
    """Run one system configuration (convenience over :class:`SystemSim`)."""
    return SystemSim(config).run(
        jobs=jobs, cache_dir=cache_dir, progress=progress,
        recorder=recorder,
    )
