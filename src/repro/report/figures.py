"""The paper figure/table registry: one declarative entry per artifact.

Every figure and table the reproduction covers is a :class:`FigureSpec`
that names

* the **sources** that produce its data — sweep, attack, or model
  presets (:data:`repro.sweep.spec.PRESETS`,
  :data:`repro.sweep.attack_spec.ATTACK_PRESETS`,
  :data:`repro.sweep.model_spec.MODEL_PRESETS`) — all executed through
  the shared ``run_cached_grid`` cache/pool core;
* the **extraction** that turns the sources' ``BENCH_*.json`` artifacts
  into paper-vs-measured rows; and
* the **paper values** it owns in :mod:`repro.report.paper_values`.

The ownership declaration is a partition: every public constant in
``paper_values`` belongs to exactly one figure and every figure owns at
least one constant (``tests/report/test_figures.py`` enforces both), so
a paper number can neither be silently dropped from the report nor
double-counted by two figures.

Extractions consume artifacts — never live simulators — so everything
the report renders is cacheable, diffable, and baseline-gated. They may
fold in closed-form arithmetic (a threshold ratio, an energy share),
but any quantity worth gating lives in a source preset.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.energy import activation_energy_overhead
from repro.dram.timing import DDR5_PRAC_TIMING
from repro.report import paper_values as pv

#: Artifact families a figure source can come from, mapped by the
#: pipeline onto (preset table, runner, artifact builder, baseline
#: naming, schema, gated metrics).
FAMILIES = ("sweep", "attack", "model", "system")

Artifacts = Dict[str, Dict]


@dataclass(frozen=True)
class SourceRef:
    """One preset feeding a figure: ``family:preset``."""

    family: str
    preset: str

    def __post_init__(self) -> None:
        if self.family not in FAMILIES:
            raise ValueError(
                f"unknown source family {self.family!r}; known: "
                f"{', '.join(FAMILIES)}"
            )

    @property
    def key(self) -> str:
        return f"{self.family}:{self.preset}"


@dataclass(frozen=True)
class FigureRow:
    """One paper-vs-measured comparison row of a rendered figure."""

    label: str
    paper: Optional[float] = None
    measured: Optional[float] = None
    note: str = ""

    @property
    def rel_delta(self) -> Optional[float]:
        """Relative drift of measured vs paper (None when no paper or
        no measured value exists).

        A paper value of zero makes the usual ratio undefined, but any
        nonzero measurement against it is still full drift — hiding it
        would make a "~0 slowdown" regression invisible in the delta
        column and in ``max_abs_rel_delta``. Those rows report ±100%
        (the difference normalized by the measured magnitude).
        """
        if self.paper is None or self.measured is None:
            return None
        if self.paper == 0:
            if self.measured == 0:
                return 0.0
            return 1.0 if self.measured > 0 else -1.0
        return (self.measured - self.paper) / abs(self.paper)


Extractor = Callable[[Artifacts], List[FigureRow]]


@dataclass(frozen=True)
class FigureSpec:
    """Registry entry for one paper figure/table."""

    name: str
    title: str
    section: str
    sources: Tuple[SourceRef, ...]
    #: Names of the :mod:`repro.report.paper_values` constants this
    #: figure owns (the coverage test enforces the exact partition).
    paper_values: Tuple[str, ...]
    extract: Extractor = field(compare=False)

    def source_keys(self) -> Tuple[str, ...]:
        return tuple(ref.key for ref in self.sources)


# ---------------------------------------------------------------------------
# Artifact point selectors. Extractions select points on the artifact's
# structured fields (axes for sweep points, kind/params for attack and
# model points) — never by parsing key strings.


def _points(artifacts: Artifacts, key: str) -> List[Dict]:
    try:
        artifact = artifacts[key]
    except KeyError:
        raise KeyError(
            f"figure extraction needs source artifact {key!r}; have: "
            f"{', '.join(sorted(artifacts))}"
        ) from None
    return list(artifact["points"].values())


def _one(matches: Sequence[Dict], what: str) -> Dict:
    if len(matches) != 1:
        raise ValueError(
            f"expected exactly one artifact point for {what}, "
            f"found {len(matches)}"
        )
    return matches[0]


def _sweep_points(artifacts: Artifacts, preset: str, **axes) -> List[Dict]:
    """Sweep points whose axis fields match ``axes`` exactly."""
    return [
        p
        for p in _points(artifacts, f"sweep:{preset}")
        if all(p.get(name) == value for name, value in axes.items())
    ]


def _attack_point(
    artifacts: Artifacts, preset: str, kind: str, **params
) -> Dict:
    """The unique attack point of ``kind`` whose params cover ``params``."""
    matches = [
        p
        for p in _points(artifacts, f"attack:{preset}")
        if p.get("kind") == kind
        and all(p.get("params", {}).get(k) == v for k, v in params.items())
    ]
    return _one(matches, f"attack:{preset} {kind} {params}")


def _model_point(
    artifacts: Artifacts, preset: str, kind: str, exact: bool = False, **params
) -> Dict:
    """The unique model point of ``kind`` matching ``params``.

    ``exact=True`` requires the full parameter dict to equal ``params``
    (distinguishes e.g. a full-window bound from its 512-period
    variant, which differ only by an *extra* parameter).
    """
    def matched(p: Dict) -> bool:
        point_params = p.get("params", {})
        if exact:
            return point_params == params
        return all(point_params.get(k) == v for k, v in params.items())

    matches = [
        p
        for p in _points(artifacts, f"model:{preset}")
        if p.get("kind") == kind and matched(p)
    ]
    return _one(matches, f"model:{preset} {kind} {params}")


def _system_point(artifacts: Artifacts, preset: str, scenario: str) -> Dict:
    """The unique system point of the named scenario."""
    matches = [
        p
        for p in _points(artifacts, f"system:{preset}")
        if p.get("scenario") == scenario
    ]
    return _one(matches, f"system:{preset} {scenario}")


def _avg(points: Sequence[Dict], metric: str) -> float:
    if not points:
        raise ValueError(f"no artifact points to average {metric!r} over")
    return sum(p["metrics"][metric] for p in points) / len(points)


# ---------------------------------------------------------------------------
# Extractions, one per registered figure.


def _extract_fig1(arts: Artifacts) -> List[FigureRow]:
    trespass = _attack_point(arts, "fig1", "trespass", num_aggressors=32)
    jailbreak = _attack_point(arts, "fig1", "jailbreak", threshold=128)
    ratchet = _attack_point(arts, "fig1", "ratchet", ath=64, pool_size=64)
    sram = {
        design: _model_point(
            arts, "fig1-sram", "design-sram", design=design
        )["metrics"]["sram_bytes"]
        for design in ("trr", "graphene", "panopticon", "moat")
    }
    target = float(pv.FIG1_TARGET_TRH)
    return [
        FigureRow("TRR-16 SRAM (B/bank)", measured=sram["trr"]),
        FigureRow(
            "TRR-16 worst exposure",
            measured=trespass["metrics"]["max_danger"],
            note=f"unbounded (target T_RH {target:.0f}) — insecure",
        ),
        FigureRow(
            "Graphene-sized SRAM (B/bank)",
            measured=sram["graphene"],
            note="secure by construction, impractical cost",
        ),
        FigureRow("Panopticon SRAM (B/bank)", measured=sram["panopticon"]),
        FigureRow(
            "Panopticon Jailbreak exposure",
            measured=jailbreak["metrics"]["acts_on_attack_row"],
            note=f"breaks target T_RH {target:.0f} — insecure",
        ),
        FigureRow("MOAT SRAM (B/bank)", measured=sram["moat"]),
        FigureRow(
            "MOAT Ratchet exposure",
            paper=target,
            measured=ratchet["metrics"]["acts_on_attack_row"],
            note="bounded at-or-below the target — secure",
        ),
    ]


def _extract_fig5(arts: Artifacts) -> List[FigureRow]:
    det = _attack_point(arts, "fig5", "jailbreak", threshold=128)
    iteration = _attack_point(arts, "fig5", "jailbreak-randomized")
    curve_points = _points(arts, "model:fig5-curve")
    best = max(p["metrics"]["best_acts"] for p in curve_points)
    acts = det["metrics"]["acts_on_attack_row"]
    return [
        FigureRow(
            "deterministic ACTs on attack row",
            paper=float(pv.JAILBREAK_DETERMINISTIC_ACTS),
            measured=acts,
        ),
        FigureRow(
            "x queueing threshold",
            paper=pv.JAILBREAK_DETERMINISTIC_ACTS
            / pv.JAILBREAK_QUEUE_THRESHOLD,
            measured=acts / pv.JAILBREAK_QUEUE_THRESHOLD,
        ),
        FigureRow(
            "deterministic ALERTs",
            paper=0.0,
            measured=det["metrics"]["alerts"],
        ),
        FigureRow(
            "randomized best ACTs (sampled curve)",
            paper=float(pv.JAILBREAK_RANDOMIZED_ACTS),
            measured=best,
            note=f"success prob {pv.JAILBREAK_RANDOMIZED_SUCCESS_PROB:.1e}"
            "/iteration",
        ),
        FigureRow(
            "all-heavy iteration ACTs (simulated)",
            measured=iteration["metrics"]["acts_on_attack_row"],
            note="validates the sampled curve's physics "
            "(well above 6.5x the threshold)",
        ),
    ]


def _extract_fig8(arts: Artifacts) -> List[FigureRow]:
    return [
        FigureRow(
            f"min ACTs between ALERTs (level {level})",
            paper=float(pv.FIG8_MIN_ACTS[level]),
            measured=_model_point(arts, "fig8", "abo-config", level=level)[
                "metrics"
            ]["min_acts_between_alerts"],
        )
        for level in (1, 2, 4)
    ]


def _extract_fig9(arts: Artifacts) -> List[FigureRow]:
    point = _attack_point(arts, "fig9", "ratchet", pool_size=4, abo_level=4)
    acts = point["metrics"]["acts_on_attack_row"]
    return [
        FigureRow(
            "ACTs beyond ATH on last row",
            paper=float(pv.FIG9_EXTRA_ACTS),
            measured=acts - 64,
            note="idealized bookkeeping vs exact DDR5 timing",
        ),
        FigureRow(
            "total ACTs on last row",
            paper=64.0 + pv.FIG9_EXTRA_ACTS,
            measured=acts,
        ),
        FigureRow(
            "ALERTs in chain", paper=4.0, measured=point["metrics"]["alerts"]
        ),
    ]


def _extract_fig10(arts: Artifacts) -> List[FigureRow]:
    def model_trh(ath: int, level: int = 1) -> float:
        return _model_point(
            arts, "fig15", "safe-trh", ath=ath, level=level
        )["metrics"]["safe_trh"]

    rows = []
    for ath in (32, 64, 128):
        point = _attack_point(
            arts, "fig10", "ratchet", ath=ath, pool_size=64
        )
        rows.append(
            FigureRow(
                f"Ratchet exposure @ ATH={ath} (pool 64)",
                measured=point["metrics"]["acts_on_attack_row"],
                note=f"model bound {model_trh(ath):.0f}",
            )
        )
    for ath in (64, 128):
        rows.append(
            FigureRow(
                f"safe T_RH @ ATH={ath} (model)",
                paper=float(pv.FIG10_SAFE_TRH[ath]),
                measured=model_trh(ath),
            )
        )
    l4 = _attack_point(arts, "fig10", "ratchet", ath=64, abo_level=4)
    rows.append(
        FigureRow(
            "exposure @ ATH=64, generalized L4 tracker (pool 8)",
            measured=l4["metrics"]["acts_on_attack_row"],
            note=f"model bound {model_trh(64, level=4):.0f}",
        )
    )
    return rows


def _extract_fig11(arts: Artifacts) -> List[FigureRow]:
    at64 = _sweep_points(arts, "fig11", ath=64)
    at128 = _sweep_points(arts, "fig11", ath=128)
    rows = [
        FigureRow(
            "average slowdown @ ATH=64",
            paper=pv.AVG_SLOWDOWN[64],
            measured=_avg(at64, "slowdown"),
        ),
        FigureRow(
            "average slowdown @ ATH=128",
            paper=pv.AVG_SLOWDOWN[128],
            measured=_avg(at128, "slowdown"),
        ),
        FigureRow(
            "average ALERTs/tREFI @ ATH=64",
            paper=pv.AVG_ALERTS_PER_TREFI_ATH64,
            measured=_avg(at64, "alerts_per_trefi"),
        ),
    ]
    roms = _sweep_points(arts, "fig11", ath=64, workload="roms")
    if roms:
        rows.append(
            FigureRow(
                "roms slowdown @ ATH=64 (worst workload)",
                paper=pv.ROMS_SLOWDOWN_ATH64,
                measured=roms[0]["metrics"]["slowdown"],
            )
        )
    return rows


def _extract_fig12(arts: Artifacts) -> List[FigureRow]:
    rows = []
    for banks in (1, 4, 8, 17):
        point = _attack_point(arts, "fig12", "tsa", num_banks=banks)
        paper = pv.TSA_LOSS.get(banks)
        rows.append(
            FigureRow(
                f"throughput loss @ {banks} banks",
                paper=float(paper) if paper is not None else None,
                measured=point["metrics"]["detail:throughput_loss"],
                note=f"{point['metrics']['alerts']:.0f} ALERTs",
            )
        )
    return rows


def _extract_fig13(arts: Artifacts) -> List[FigureRow]:
    single = _attack_point(arts, "fig13", "kernel-single", ath=64)
    multi = _attack_point(arts, "fig13", "kernel-multi", ath=64)
    model = _model_point(arts, "sec71", "kernel-model", ath=64)
    loss = float(pv.KERNEL_THROUGHPUT_LOSS)
    return [
        FigureRow(
            "(A)^N single-row loss @ ATH=64",
            paper=loss,
            measured=single["metrics"]["detail:throughput_loss"],
        ),
        FigureRow(
            "(ABCDE)^N multi-row loss @ ATH=64",
            paper=loss,
            measured=multi["metrics"]["detail:throughput_loss"],
        ),
        FigureRow(
            "analytic stall-only loss @ ATH=64",
            paper=loss,
            measured=model["metrics"]["throughput_loss"],
        ),
        FigureRow(
            "single-row loss @ ATH=32",
            measured=_attack_point(arts, "fig13", "kernel-single", ath=32)[
                "metrics"
            ]["detail:throughput_loss"],
            note="loss grows as ATH shrinks",
        ),
        FigureRow(
            "single-row loss @ ATH=128",
            measured=_attack_point(arts, "fig13", "kernel-single", ath=128)[
                "metrics"
            ]["detail:throughput_loss"],
        ),
    ]


def _extract_fig15(arts: Artifacts) -> List[FigureRow]:
    return [
        FigureRow(
            f"safe T_RH @ ATH={ath}, level {level}",
            paper=float(paper),
            measured=_model_point(
                arts, "fig15", "safe-trh", ath=ath, level=level
            )["metrics"]["safe_trh"],
        )
        for (ath, level), paper in sorted(pv.TABLE7_SAFE_TRH.items())
    ]


def _extract_fig16(arts: Artifacts) -> List[FigureRow]:
    at128 = _attack_point(arts, "fig16", "postponement", threshold=128)
    acts = at128["metrics"]["acts_on_attack_row"]
    rows = [
        FigureRow(
            "ACTs on attack row (threshold 128)",
            paper=float(pv.POSTPONEMENT_ACTS),
            measured=acts,
        ),
        FigureRow(
            "ACT window between batches",
            paper=float(pv.POSTPONEMENT_ACTS_BETWEEN_BATCHES),
            measured=acts - 128,
        ),
        FigureRow(
            "burst rate (ACTs/tREFI)",
            paper=float(pv.POSTPONEMENT_ACTS_PER_TREFI),
            measured=float(DDR5_PRAC_TIMING.acts_per_trefi),
            note="the postponed window fills at line rate",
        ),
    ]
    for threshold in (64, 256):
        point = _attack_point(
            arts, "fig16", "postponement", threshold=threshold
        )
        rows.append(
            FigureRow(
                f"ACTs on attack row (threshold {threshold})",
                paper=float(threshold + pv.POSTPONEMENT_ACTS_BETWEEN_BATCHES),
                measured=point["metrics"]["acts_on_attack_row"],
                note="expected threshold + 201",
            )
        )
    return rows


def _extract_fig17(arts: Artifacts) -> List[FigureRow]:
    by_level = {
        level: _sweep_points(arts, "fig17", abo_level=level)
        for level in (1, 2, 4)
    }
    rows = [
        FigureRow(
            f"average slowdown MOAT-L{level}",
            paper=pv.FIG17_SLOWDOWN[level],
            measured=_avg(by_level[level], "slowdown"),
        )
        for level in (1, 2, 4)
    ]
    rate_l1 = _avg(by_level[1], "alerts_per_trefi")
    for level in (2, 4):
        measured = (
            _avg(by_level[level], "alerts_per_trefi") / rate_l1
            if rate_l1
            else None
        )
        rows.append(
            FigureRow(
                f"ALERT-rate ratio L{level}/L1",
                paper=pv.ALERT_RATE_VS_L1[level],
                measured=measured,
                note="higher levels service more rows per ALERT",
            )
        )
    return rows


def _extract_table1(arts: Artifacts) -> List[FigureRow]:
    metrics = _model_point(arts, "table1", "timing")["metrics"]
    return [
        FigureRow(name, paper=float(paper), measured=metrics[name])
        for name, paper in pv.TABLE1_TIMINGS.items()
    ]


def _extract_table2(arts: Artifacts) -> List[FigureRow]:
    rows = []
    for rate in (1, 2, 3, 4, 5):
        bound = _model_point(
            arts, "table2-bound", "feinting-bound", exact=True,
            trefi_per_mitigation=rate,
        )["metrics"]["bound"]
        rows.append(
            FigureRow(
                f"T_RH bound, 1 per {rate} tREFI (full window)",
                paper=float(pv.TABLE2_FEINTING[rate]),
                measured=bound,
            )
        )
    for rate in (1, 2, 3, 4, 5):
        prefix_bound = _model_point(
            arts, "table2-bound", "feinting-bound",
            trefi_per_mitigation=rate, periods=512,
        )["metrics"]["bound"]
        simulated = _attack_point(
            arts, "table2", "feinting", trefi_per_mitigation=rate
        )["metrics"]["acts_on_attack_row"]
        rows.append(
            FigureRow(
                f"simulated, 1 per {rate} tREFI (512 periods)",
                measured=simulated,
                note=f"512-period bound {prefix_bound:.0f}",
            )
        )
    return rows


def _extract_table3(arts: Artifacts) -> List[FigureRow]:
    metrics = _model_point(arts, "table3", "system-config")["metrics"]
    return [
        FigureRow(name, paper=float(paper), measured=metrics[name])
        for name, paper in pv.TABLE3_SYSTEM.items()
    ]


def _extract_table4(arts: Artifacts) -> List[FigureRow]:
    points = _points(arts, "model:table4")
    rows = [
        FigureRow(
            "workloads measured",
            paper=float(pv.TABLE4_WORKLOAD_COUNT),
            measured=float(len(points)),
        )
    ]
    for point in points:
        workload = point["params"]["workload"]
        metrics = point["metrics"]
        rows.append(
            FigureRow(
                f"{workload} rows with 64+ ACTs/tREFW",
                paper=metrics["paper_act_64_plus"],
                measured=metrics["act_64_plus"],
                note=(
                    f"32+: {metrics['act_32_plus']:.0f}"
                    f"/{metrics['paper_act_32_plus']:.0f}  "
                    f"128+: {metrics['act_128_plus']:.0f}"
                    f"/{metrics['paper_act_128_plus']:.0f}"
                ),
            )
        )
    return rows


def _extract_table5(arts: Artifacts) -> List[FigureRow]:
    rows = []
    for eth, (mitigations, slowdown) in sorted(pv.TABLE5_ETH.items()):
        points = _sweep_points(arts, "table5", eth=eth)
        rows.append(
            FigureRow(
                f"mitigations+ALERTs/tREFW/bank @ ETH={eth}",
                paper=float(mitigations),
                measured=_avg(points, "mitigations_per_trefw_per_bank"),
            )
        )
        rows.append(
            FigureRow(
                f"average slowdown @ ETH={eth}",
                paper=float(slowdown),
                measured=_avg(points, "slowdown"),
            )
        )
    return rows


def _extract_table6(arts: Artifacts) -> List[FigureRow]:
    rows = []
    for rate, slowdown in pv.TABLE6_MITIGATION_RATE.items():
        points = _sweep_points(arts, "table6", trefi_per_mitigation=rate)
        label = (
            "none (ALERT only)" if rate == 0 else f"1 per {rate} tREFI"
        )
        rows.append(
            FigureRow(
                f"average slowdown, {label}",
                paper=float(slowdown),
                measured=_avg(points, "slowdown"),
            )
        )
    return rows


def _extract_table7(arts: Artifacts) -> List[FigureRow]:
    return [
        FigureRow(
            f"average slowdown @ ATH={ath}, MOAT-L{level}",
            paper=float(paper),
            measured=_avg(
                _sweep_points(arts, "table7", ath=ath, abo_level=level),
                "slowdown",
            ),
        )
        for (ath, level), paper in sorted(pv.TABLE7_SLOWDOWN.items())
    ]


def _extract_motivation(arts: Artifacts) -> List[FigureRow]:
    entries = pv.MOTIVATION_TRACKER_ENTRIES
    blinded = _attack_point(arts, "motivation", "trespass", num_aggressors=32)
    caught = _attack_point(arts, "motivation", "trespass", num_aggressors=4)
    return [
        FigureRow(
            f"exposure: 32 aggressors vs {entries} entries",
            measured=blinded["metrics"]["max_danger"],
            note="tracker blinded — unbounded exposure",
        ),
        FigureRow(
            f"exposure: 4 aggressors vs {entries} entries",
            measured=caught["metrics"]["max_danger"],
            note="tracker keeps up — bounded exposure",
        ),
    ]


def _extract_sec65(arts: Artifacts) -> List[FigureRow]:
    rows = []
    for level in (1, 2, 4):
        metrics = _model_point(
            arts, "sec65-storage", "moat-sram", level=level
        )["metrics"]
        rows.append(
            FigureRow(
                f"MOAT-L{level} SRAM (B/bank)",
                paper=float(pv.MOAT_SRAM_BYTES_PER_BANK[level]),
                measured=metrics["bytes_per_bank"],
            )
        )
        rows.append(
            FigureRow(
                f"MOAT-L{level} SRAM (B/chip)",
                paper=float(pv.MOAT_SRAM_BYTES_PER_CHIP[level]),
                measured=metrics["bytes_per_chip"],
            )
        )
    overhead = _avg(_sweep_points(arts, "sec65"), "activation_overhead")
    energy = activation_energy_overhead(1_000_000, int(1_000_000 * overhead))
    rows.append(
        FigureRow(
            "activation overhead @ ATH=64",
            paper=float(pv.MOAT_ACTIVATION_OVERHEAD_ATH64),
            measured=overhead,
        )
    )
    rows.append(
        FigureRow(
            "total DRAM energy overhead",
            paper=float(pv.MOAT_ENERGY_OVERHEAD_BOUND),
            measured=energy.total_energy_overhead,
            note="paper value is an upper bound",
        )
    )
    return rows


def _extract_sec71(arts: Artifacts) -> List[FigureRow]:
    rows = [
        FigureRow(
            "ALERT-window throughput (level 1)",
            paper=float(pv.ALERT_WINDOW_THROUGHPUT_L1),
            measured=_model_point(
                arts, "sec71", "throughput-model", level=1
            )["metrics"]["alert_window_throughput"],
        )
    ]
    for level in (1, 2, 4):
        metrics = _model_point(
            arts, "sec71", "throughput-model", level=level
        )["metrics"]
        rows.append(
            FigureRow(
                f"continuous-ALERT slowdown (level {level})",
                paper=float(pv.CONTINUOUS_ALERT_SLOWDOWN[level]),
                measured=metrics["continuous_alert_slowdown"],
            )
        )
    return rows


def _extract_qos(arts: Artifacts) -> List[FigureRow]:
    """Fairness/isolation contrast of the QoS scheduling policies.

    The headline quantity is attacker-induced *victim p99
    degradation*: the worst victim's read p99 under the noisy scenario
    divided by the same quantity in the quiet run. The unprotected
    FR-FCFS contrast is gated against the paper-derived floor; each
    QoS policy's row must land below the unprotected degradation
    (asserted by the system-qos baseline tests).
    """

    def worst_victim_p99(scenario: str) -> float:
        metrics = _system_point(arts, "system-qos", scenario)["metrics"]
        return max(
            metrics["victim0:read_p99_ns"], metrics["victim1:read_p99_ns"]
        )

    quiet = worst_victim_p99("quiet")
    unprotected = worst_victim_p99("noisy-frfcfs") / quiet
    rows = [
        FigureRow(
            "victim p99 degradation, frfcfs (unprotected)",
            paper=float(pv.QOS_UNPROTECTED_DEGRADATION_MIN),
            measured=unprotected,
            note="paper value is a floor, not a point",
        )
    ]
    for scenario, label in (
        ("noisy-priority", "priority (victims at priority 1)"),
        ("noisy-bwcap", "bw-cap (attacker capped at 0.1 GB/s)"),
        ("noisy-slo", "slo (10us p99 budget gate)"),
    ):
        rows.append(
            FigureRow(
                f"victim p99 degradation, {label}",
                measured=worst_victim_p99(scenario) / quiet,
                note="must land below the unprotected contrast",
            )
        )
    return rows


# ---------------------------------------------------------------------------
# The registry.


def _refs(*pairs: str) -> Tuple[SourceRef, ...]:
    return tuple(
        SourceRef(*pair.split(":", 1)) for pair in pairs
    )


FIGURES: Dict[str, FigureSpec] = {
    spec.name: spec
    for spec in (
        FigureSpec(
            name="fig1",
            title="Figure 1(a) — In-DRAM tracker design space",
            section="Section 1",
            sources=_refs("attack:fig1", "model:fig1-sram"),
            paper_values=("FIG1_TARGET_TRH",),
            extract=_extract_fig1,
        ),
        FigureSpec(
            name="motivation",
            title="Section 2.4 — Low-cost tracker motivation",
            section="Section 2.4",
            sources=_refs("attack:motivation"),
            paper_values=("MOTIVATION_TRACKER_ENTRIES",),
            extract=_extract_motivation,
        ),
        FigureSpec(
            name="table1",
            title="Table 1 — DRAM timing parameters",
            section="Section 2.2",
            sources=_refs("model:table1"),
            paper_values=("TABLE1_TIMINGS",),
            extract=_extract_table1,
        ),
        FigureSpec(
            name="table2",
            title="Table 2 — Feinting T_RH bound for per-row counters",
            section="Section 2.5",
            sources=_refs("attack:table2", "model:table2-bound"),
            paper_values=("TABLE2_FEINTING",),
            extract=_extract_table2,
        ),
        FigureSpec(
            name="fig5",
            title="Figure 5 — Jailbreak vs Panopticon",
            section="Section 3",
            sources=_refs("attack:fig5", "model:fig5-curve"),
            paper_values=(
                "JAILBREAK_DETERMINISTIC_ACTS",
                "JAILBREAK_RANDOMIZED_ACTS",
                "JAILBREAK_QUEUE_THRESHOLD",
                "JAILBREAK_RANDOMIZED_SUCCESS_PROB",
            ),
            extract=_extract_fig5,
        ),
        FigureSpec(
            name="fig8",
            title="Figure 8 — Minimum ACTs between consecutive ALERTs",
            section="Section 4",
            sources=_refs("model:fig8"),
            paper_values=("FIG8_MIN_ACTS",),
            extract=_extract_fig8,
        ),
        FigureSpec(
            name="fig9",
            title="Figure 9 — Ratchet on a 4-row pool at ABO level 4",
            section="Section 5",
            sources=_refs("attack:fig9"),
            paper_values=("FIG9_EXTRA_ACTS",),
            extract=_extract_fig9,
        ),
        FigureSpec(
            name="fig10",
            title="Figure 10 — Ratchet exposure and the safe-T_RH bound",
            section="Section 5.3",
            sources=_refs("attack:fig10", "model:fig15"),
            paper_values=("FIG10_SAFE_TRH",),
            extract=_extract_fig10,
        ),
        FigureSpec(
            name="fig11",
            title="Figure 11 — MOAT performance and ALERT rate",
            section="Section 6.2/6.3",
            sources=_refs("sweep:fig11"),
            paper_values=(
                "AVG_SLOWDOWN",
                "ROMS_SLOWDOWN_ATH64",
                "AVG_ALERTS_PER_TREFI_ATH64",
            ),
            extract=_extract_fig11,
        ),
        FigureSpec(
            name="fig12",
            title="Figure 12 — TSA throughput loss vs bank count",
            section="Section 7.3",
            sources=_refs("attack:fig12"),
            paper_values=("TSA_LOSS",),
            extract=_extract_fig12,
        ),
        FigureSpec(
            name="fig13",
            title="Figure 13 — Performance-attack kernels",
            section="Section 7.2",
            sources=_refs("attack:fig13", "model:sec71"),
            paper_values=("KERNEL_THROUGHPUT_LOSS",),
            extract=_extract_fig13,
        ),
        FigureSpec(
            name="fig15",
            title="Figure 15 — Safe T_RH under Ratchet per ABO level",
            section="Section 8 / Appendix A",
            sources=_refs("model:fig15"),
            paper_values=("TABLE7_SAFE_TRH",),
            extract=_extract_fig15,
        ),
        FigureSpec(
            name="fig16",
            title="Figure 16 — Refresh postponement vs drain-all "
            "Panopticon",
            section="Appendix B",
            sources=_refs("attack:fig16"),
            paper_values=(
                "POSTPONEMENT_ACTS",
                "POSTPONEMENT_ACTS_PER_TREFI",
                "POSTPONEMENT_ACTS_BETWEEN_BATCHES",
            ),
            extract=_extract_fig16,
        ),
        FigureSpec(
            name="fig17",
            title="Figure 17 — MOAT at ABO levels 1/2/4",
            section="Appendix D",
            sources=_refs("sweep:fig17"),
            paper_values=("FIG17_SLOWDOWN", "ALERT_RATE_VS_L1"),
            extract=_extract_fig17,
        ),
        FigureSpec(
            name="table3",
            title="Table 3 — Baseline system configuration",
            section="Section 6.1",
            sources=_refs("model:table3"),
            paper_values=("TABLE3_SYSTEM",),
            extract=_extract_table3,
        ),
        FigureSpec(
            name="table4",
            title="Table 4 — Workload characteristics",
            section="Section 6.1",
            sources=_refs("model:table4"),
            paper_values=("TABLE4_WORKLOAD_COUNT",),
            extract=_extract_table4,
        ),
        FigureSpec(
            name="table5",
            title="Table 5 — Impact of ETH at ATH=64",
            section="Section 6.4",
            sources=_refs("sweep:table5"),
            paper_values=("TABLE5_ETH",),
            extract=_extract_table5,
        ),
        FigureSpec(
            name="table6",
            title="Table 6 — Impact of the proactive mitigation rate",
            section="Appendix C",
            sources=_refs("sweep:table6"),
            paper_values=("TABLE6_MITIGATION_RATE",),
            extract=_extract_table6,
        ),
        FigureSpec(
            name="table7",
            title="Table 7 — ATH x ABO-level slowdown grid",
            section="Section 8",
            sources=_refs("sweep:table7"),
            paper_values=("TABLE7_SLOWDOWN",),
            extract=_extract_table7,
        ),
        FigureSpec(
            name="sec65",
            title="Section 6.5 — Storage and energy overheads",
            section="Section 6.5 / Appendix D",
            sources=_refs("model:sec65-storage", "sweep:sec65"),
            paper_values=(
                "MOAT_SRAM_BYTES_PER_BANK",
                "MOAT_SRAM_BYTES_PER_CHIP",
                "MOAT_ACTIVATION_OVERHEAD_ATH64",
                "MOAT_ENERGY_OVERHEAD_BOUND",
            ),
            extract=_extract_sec65,
        ),
        FigureSpec(
            name="qos",
            title="QoS — victim p99 isolation under ALERT storms",
            section="Section 7 (extension)",
            sources=_refs("system:system-qos"),
            paper_values=("QOS_UNPROTECTED_DEGRADATION_MIN",),
            extract=_extract_qos,
        ),
        FigureSpec(
            name="sec71",
            title="Section 7.1 — Throughput under continuous ALERTs",
            section="Section 7.1 / Appendix D",
            sources=_refs("model:sec71"),
            paper_values=(
                "ALERT_WINDOW_THROUGHPUT_L1",
                "CONTINUOUS_ALERT_SLOWDOWN",
            ),
            extract=_extract_sec71,
        ),
    )
}


def figure(name: str) -> FigureSpec:
    """Look up a registered figure by name with a helpful error."""
    try:
        return FIGURES[name]
    except KeyError:
        known = ", ".join(sorted(FIGURES))
        raise KeyError(f"unknown figure {name!r}; known: {known}") from None
