"""Plain-text table formatting for the benchmark harness.

The benchmark suite prints paper-vs-measured tables; these helpers keep
the formatting consistent and dependency-free.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned fixed-width table."""
    string_rows: List[List[str]] = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in string_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    out: List[str] = []
    if title:
        out.append(title)
    out.append(line(list(headers)))
    out.append("  ".join("-" * w for w in widths))
    out.extend(line(row) for row in string_rows)
    return "\n".join(out)


def paper_vs_measured(
    title: str,
    label_header: str,
    entries: Iterable[Sequence[object]],
    value_headers: Sequence[str] = ("paper", "measured"),
) -> str:
    """Render a paper-vs-measured comparison table.

    ``entries`` yields ``(label, paper_value, measured_value, ...)``
    rows; extra columns need matching ``value_headers``.
    """
    headers = [label_header, *value_headers]
    return format_table(headers, entries, title=title)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        # Non-finite values are "no data", not numbers: rendering
        # "nan"/"inf" mid-table reads like a measurement.
        if not math.isfinite(cell):
            return "—"
        if cell == 0:
            return "0"
        # Precision keys off the magnitude so negative values get the
        # same treatment as their positive counterparts.
        magnitude = abs(cell)
        if magnitude < 0.01:
            return f"{cell:.4f}"
        if magnitude < 1:
            return f"{cell:.3f}"
        return f"{cell:,.1f}" if magnitude % 1 else f"{int(cell):,}"
    if isinstance(cell, int):
        return f"{cell:,}"
    if cell is None:
        return "—"
    return str(cell)
