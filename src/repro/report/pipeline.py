"""The paper-report pipeline: registry -> cached artifacts -> report.

Orchestrates the figure registry (:mod:`repro.report.figures`) over the
three sweep families. For each requested figure it resolves the source
presets, executes them through the shared ``run_cached_grid`` cache/pool
core (one artifact per preset per run, shared between figures that
reference the same preset), applies the figure's extraction, and
assembles a :class:`FigureResult`.

A report run renders two forms: plain-text/markdown tables for humans
and a machine-readable ``BENCH_report.json`` (schema
:data:`REPORT_SCHEMA`) whose rows carry per-figure relative deltas
against the paper values. ``check`` mode gates every source artifact
against its committed smoke baseline — the same files the ``repro
sweep``/``repro attack sweep`` gates use, plus ``model_<preset>.json``
for the analytic family — so paper-report drift fails CI exactly like
any other sweep regression.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from repro.report.figures import FIGURES, FigureSpec, SourceRef, figure
from repro.report.tables import format_table
from repro.sweep.artifacts import (
    ATTACK_GATED_METRICS,
    ATTACK_SCHEMA,
    BASELINE_DIR,
    DEFAULT_ATOL,
    DEFAULT_RTOL,
    GATED_METRICS,
    MODEL_GATED_METRICS,
    MODEL_SCHEMA,
    SCHEMA,
    SYSTEM_GATED_METRICS,
    SYSTEM_SCHEMA,
    check_against_baseline,
    default_baseline_path,
    git_revision,
    git_toplevel,
    utc_now,
    write_artifact,
)
from repro.sweep.attack_runner import run_attack_sweep
from repro.sweep.attack_spec import attack_preset
from repro.sweep.model_runner import run_model_sweep
from repro.sweep.model_spec import model_preset
from repro.sweep.runner import ProgressFn, run_sweep
from repro.sweep.spec import preset as sweep_preset
from repro.sweep.system_runner import run_system_sweep
from repro.sweep.system_spec import system_preset

#: Schema of the machine-readable report artifact.
REPORT_SCHEMA = "repro.report/v1"

#: Smoke scale: the window length the committed perf baselines were
#: generated at, and therefore the default of ``repro report --check``.
SMOKE_N_TREFI = 512


@dataclass(frozen=True)
class ReportOptions:
    """Scale and orchestration knobs of one report run."""

    #: Window length for the perf sweeps and scale-aware model points.
    n_trefi: int = SMOKE_N_TREFI
    jobs: int = 1
    #: Root of the per-family point caches (``<root>/{sweep,attack,
    #: model}``); ``None`` disables caching.
    cache_root: Optional[Path] = Path(".repro-cache")
    #: Optional workload subset (REPRO_FAST benchmarks); ``None`` runs
    #: each preset's full workload list.
    workloads: Optional[Tuple[str, ...]] = None
    progress: Optional[ProgressFn] = None

    def cache_dir(self, family: str) -> Optional[Path]:
        if self.cache_root is None:
            return None
        return Path(self.cache_root) / family


@dataclass
class FigureResult:
    """One rendered figure: its source artifacts and extracted rows."""

    spec: FigureSpec
    artifacts: Dict[str, Dict]
    rows: List
    #: Baseline-gate findings (empty when unchecked or passing).
    problems: List[str] = field(default_factory=list)
    checked: bool = False

    @property
    def max_abs_rel_delta(self) -> Optional[float]:
        """Largest |relative paper-vs-measured drift| across rows."""
        deltas = [
            abs(row.rel_delta)
            for row in self.rows
            if row.rel_delta is not None
        ]
        return max(deltas) if deltas else None

    @property
    def ok(self) -> bool:
        return not self.problems


def _run_sweep_source(ref: SourceRef, options: ReportOptions) -> Dict:
    from repro.sweep.artifacts import make_artifact

    spec = sweep_preset(ref.preset).with_overrides(
        n_trefi=options.n_trefi, workloads=options.workloads
    )
    result = run_sweep(
        spec,
        jobs=options.jobs,
        cache_dir=options.cache_dir("sweep"),
        progress=options.progress,
    )
    return make_artifact(result)


def _run_attack_source(ref: SourceRef, options: ReportOptions) -> Dict:
    from repro.sweep.artifacts import make_attack_artifact

    result = run_attack_sweep(
        attack_preset(ref.preset),
        jobs=options.jobs,
        cache_dir=options.cache_dir("attack"),
        progress=options.progress,
    )
    return make_attack_artifact(result)


def _run_model_source(ref: SourceRef, options: ReportOptions) -> Dict:
    from repro.sweep.artifacts import make_model_artifact

    spec = model_preset(ref.preset).with_overrides(n_trefi=options.n_trefi)
    if options.workloads is not None:
        spec = dataclasses.replace(
            spec,
            models=tuple(
                m
                for m in spec.models
                if m.kind != "workload-stats"
                or m.param_dict().get("workload") in options.workloads
            ),
        )
    result = run_model_sweep(
        spec,
        jobs=options.jobs,
        cache_dir=options.cache_dir("model"),
        progress=options.progress,
    )
    return make_model_artifact(result)


def _run_system_source(ref: SourceRef, options: ReportOptions) -> Dict:
    from repro.sweep.artifacts import make_system_artifact

    # Scenarios pin their own scale; only an explicit non-smoke
    # ``n_trefi`` rescales them (the committed baselines are generated
    # at the scenarios' native scale).
    spec = system_preset(ref.preset)
    if options.n_trefi != SMOKE_N_TREFI:
        spec = spec.with_overrides(n_trefi=options.n_trefi)
    result = run_system_sweep(
        spec,
        jobs=options.jobs,
        cache_dir=options.cache_dir("system"),
        progress=options.progress,
    )
    return make_system_artifact(result)


#: family -> (source runner, baseline file stem, schema, gated metrics).
_FAMILIES = {
    "sweep": (_run_sweep_source, "{0}", SCHEMA, GATED_METRICS),
    "attack": (_run_attack_source, "attack_{0}", ATTACK_SCHEMA,
               ATTACK_GATED_METRICS),
    "model": (_run_model_source, "model_{0}", MODEL_SCHEMA,
              MODEL_GATED_METRICS),
    "system": (_run_system_source, "system_{0}", SYSTEM_SCHEMA,
               SYSTEM_GATED_METRICS),
}


def baseline_name(ref: SourceRef) -> str:
    """Stem of the committed baseline file for one source preset."""
    return _FAMILIES[ref.family][1].format(ref.preset)


def resolve_baseline_path(
    ref: SourceRef, root: Optional[Path] = None
) -> Path:
    """Committed-baseline location of a source, CWD- then repo-anchored."""
    if root is not None:
        return default_baseline_path(baseline_name(ref), root=root)
    path = default_baseline_path(baseline_name(ref))
    if not path.is_file():
        toplevel = git_toplevel()
        if toplevel is not None:
            return default_baseline_path(baseline_name(ref), root=toplevel)
    return path


def run_figures(
    names: Iterable[str],
    options: ReportOptions = ReportOptions(),
) -> List[FigureResult]:
    """Run the named figures, sharing source artifacts between them.

    Source presets are executed at most once per call (a preset shared
    by two figures — e.g. ``model:fig15`` feeding both fig10 and fig15
    — produces one artifact), and every underlying point additionally
    hits the on-disk cache shared with the ``repro sweep`` /
    ``repro attack sweep`` CLIs and the benchmark harness.
    """
    produced: Dict[str, Dict] = {}
    results: List[FigureResult] = []
    for name in names:
        spec = figure(name)
        artifacts: Dict[str, Dict] = {}
        for ref in spec.sources:
            if ref.key not in produced:
                runner = _FAMILIES[ref.family][0]
                produced[ref.key] = runner(ref, options)
            artifacts[ref.key] = produced[ref.key]
        results.append(
            FigureResult(
                spec=spec, artifacts=artifacts, rows=spec.extract(artifacts)
            )
        )
    return results


def run_figure(
    name: str, options: ReportOptions = ReportOptions()
) -> FigureResult:
    """Run a single registered figure (benchmark-harness entry point)."""
    return run_figures([name], options)[0]


def check_results(
    results: Iterable[FigureResult],
    baseline_root: Optional[Path] = None,
    rtol: float = DEFAULT_RTOL,
    atol: float = DEFAULT_ATOL,
) -> List[FigureResult]:
    """Gate every distinct source artifact against its baseline.

    Each source preset is read and diffed exactly once per call, no
    matter how many figures reference it (mirroring how
    :func:`run_figures` produces shared artifacts once); every figure
    depending on a drifted source still carries the findings, since
    none of its rows can be trusted. Mutates (and returns) the results:
    ``problems`` collects one line per finding, prefixed with the
    source key.
    """
    results = list(results)
    findings_by_source: Dict[str, List[str]] = {}
    for result in results:
        problems: List[str] = []
        for ref in result.spec.sources:
            if ref.key not in findings_by_source:
                _, _, schema, gated = _FAMILIES[ref.family]
                path = resolve_baseline_path(ref, root=baseline_root)
                ok, findings = check_against_baseline(
                    result.artifacts[ref.key],
                    path,
                    rtol=rtol,
                    atol=atol,
                    schema=schema,
                    gated_metrics=gated,
                )
                findings_by_source[ref.key] = (
                    [] if ok else [f"{ref.key}: {f}" for f in findings]
                )
            problems.extend(findings_by_source[ref.key])
        result.problems = problems
        result.checked = True
    return results


def check_result(
    result: FigureResult,
    baseline_root: Optional[Path] = None,
    rtol: float = DEFAULT_RTOL,
    atol: float = DEFAULT_ATOL,
) -> FigureResult:
    """Single-figure convenience wrapper around :func:`check_results`."""
    return check_results(
        [result], baseline_root=baseline_root, rtol=rtol, atol=atol
    )[0]


def write_baselines(
    results: Iterable[FigureResult], root: Optional[Path] = None
) -> List[Path]:
    """Write every distinct source artifact as its committed baseline.

    With no explicit ``root`` the write anchors exactly like the check
    path resolves (CWD when it already holds ``benchmarks/baselines/``,
    otherwise the repro checkout), so regenerating from any working
    directory updates the same files ``--check`` will read.
    """
    if root is None:
        root = Path(".")
        if not (root / BASELINE_DIR).is_dir():
            root = git_toplevel() or root
    written: Dict[str, Path] = {}
    for result in results:
        for ref in result.spec.sources:
            if ref.key in written:
                continue
            path = default_baseline_path(baseline_name(ref), root=root)
            write_artifact(path, result.artifacts[ref.key])
            written[ref.key] = path
    return list(written.values())


# ---------------------------------------------------------------------------
# Rendering.


def _delta_cell(row) -> str:
    delta = row.rel_delta
    return f"{delta:+.1%}" if delta is not None else ""


def render_figure_text(result: FigureResult) -> str:
    """Fixed-width paper-vs-measured table for one figure."""
    rows = [
        (row.label, row.paper, row.measured, _delta_cell(row), row.note)
        for row in result.rows
    ]
    return format_table(
        ["quantity", "paper", "measured", "delta", "note"],
        rows,
        title=f"{result.spec.title} [{result.spec.name}]",
    )


def render_markdown(results: Iterable[FigureResult]) -> str:
    """Full markdown report (the CI build artifact)."""
    lines = [
        "# Paper reproduction report",
        "",
        f"Generated {utc_now()} at `{git_revision()}`.",
        "",
    ]
    for result in results:
        spec = result.spec
        lines.append(f"## {spec.title}")
        lines.append("")
        sources = ", ".join(f"`{key}`" for key in spec.source_keys())
        lines.append(f"*{spec.section}* — sources: {sources}")
        if result.checked:
            status = "passed" if result.ok else "**FAILED**"
            lines.append(f"Baseline gate: {status}.")
        lines.append("")
        lines.append("| quantity | paper | measured | delta | note |")
        lines.append("| --- | ---: | ---: | ---: | --- |")
        for row in result.rows:
            paper = "—" if row.paper is None else f"{row.paper:g}"
            measured = (
                "—" if row.measured is None else f"{row.measured:g}"
            )
            lines.append(
                f"| {row.label} | {paper} | {measured} "
                f"| {_delta_cell(row)} | {row.note} |"
            )
        lines.append("")
        for problem in result.problems:
            lines.append(f"- GATE: {problem}")
        if result.problems:
            lines.append("")
    return "\n".join(lines)


def make_report_artifact(
    results: Iterable[FigureResult],
    options: ReportOptions = ReportOptions(),
) -> Dict:
    """Machine-readable report (schema :data:`REPORT_SCHEMA`)."""
    figures: Dict[str, Dict] = {}
    for result in results:
        spec = result.spec
        figures[spec.name] = {
            "title": spec.title,
            "section": spec.section,
            "sources": {
                key: {
                    "sweep_hash": result.artifacts[key].get("sweep_hash"),
                    "cache_hits": result.artifacts[key].get("cache_hits"),
                    "compute_time_s": result.artifacts[key].get(
                        "compute_time_s"
                    ),
                }
                for key in spec.source_keys()
            },
            "rows": [
                {
                    "label": row.label,
                    "paper": row.paper,
                    "measured": row.measured,
                    "rel_delta": row.rel_delta,
                    "note": row.note,
                }
                for row in result.rows
            ],
            "max_abs_rel_delta": result.max_abs_rel_delta,
            "checked": result.checked,
            "ok": result.ok,
            "problems": list(result.problems),
        }
    return {
        "schema": REPORT_SCHEMA,
        "git_rev": git_revision(),
        "created_utc": utc_now(),
        "n_trefi": options.n_trefi,
        "jobs": options.jobs,
        "figures": figures,
    }
