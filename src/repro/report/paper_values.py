"""Ground-truth numbers published in the paper.

Every constant cites the table/figure/section it comes from, and every
constant is owned by exactly one entry of the figure registry
(:data:`repro.report.figures.FIGURES` declares the ownership;
``tests/report/test_figures.py`` enforces that the partition is exact —
no orphaned paper values, no figure without one).
"""

from __future__ import annotations

#: Table 1 — revised DDR5 timing parameters (JESD79-5C), keyed by the
#: ``timing`` model evaluator's metric names.
TABLE1_TIMINGS = {
    "t_act_ns": 12,
    "t_pre_ns": 36,
    "t_ras_ns": 16,
    "t_rc_ns": 52,
    "t_refw_ms": 32,
    "t_refi_ns": 3900,
    "t_rfc_ns": 410,
    "acts_per_trefi": 67,
    "refs_per_refw": 8192,
    "mitigations_per_refw_rate5": 1638,
}

#: Table 2 — Feinting T_RH bound for per-row counters.
TABLE2_FEINTING = {1: 638, 2: 1188, 3: 1702, 4: 2195, 5: 2669}

#: Table 3 — baseline system configuration, keyed by the
#: ``system-config`` model evaluator's metric names.
TABLE3_SYSTEM = {
    "cores": 8,
    "core_freq_ghz": 4,
    "core_width": 4,
    "rob_entries": 256,
    "llc_mb": 8,
    "llc_ways": 16,
    "line_bytes": 64,
    "memory_gb": 32,
    "banks": 32,
    "subchannels": 2,
    "ranks": 1,
    "rows_per_bank": 64 * 1024,
    "row_kb": 8,
    "closed_page": 1,
    "alert_l1_ns": 530,
}

#: Table 4 — evaluated workload mix (15 SPEC2017 + 6 GAP); the
#: per-workload ACT-PKI and hot-row columns are transcribed as the
#: calibration targets in :mod:`repro.workloads.profiles`.
TABLE4_WORKLOAD_COUNT = 21

#: Table 5 — Impact of ETH (at ATH=64): ETH -> (mitigations+ALERTs per
#: tREFW per bank, average slowdown).
TABLE5_ETH = {
    0: (1729, 0.0021),
    16: (1329, 0.0021),
    32: (835, 0.0028),
    48: (505, 0.0069),
}

#: Table 6 — Impact of mitigation rate on MOAT (ATH=64): tREFI per
#: aggressor -> average slowdown. 0 encodes "none (ALERT only)".
TABLE6_MITIGATION_RATE = {
    1: 0.0,
    3: 0.0012,
    5: 0.0028,
    10: 0.0051,
    0: 0.0091,
}

#: Table 7 — (ATH, level) -> average slowdown.
TABLE7_SLOWDOWN = {
    (32, 1): 0.039,
    (32, 2): 0.056,
    (32, 4): 0.095,
    (64, 1): 0.0028,
    (64, 2): 0.0034,
    (64, 4): 0.0045,
    (128, 1): 0.0,
    (128, 2): 0.0,
    (128, 4): 0.0,
}

#: Table 7 / Figure 15 — (ATH, level) -> safe T_RH under Ratchet.
TABLE7_SAFE_TRH = {
    (32, 1): 69,
    (32, 2): 56,
    (32, 4): 50,
    (64, 1): 99,
    (64, 2): 87,
    (64, 4): 82,
    (128, 1): 161,
    (128, 2): 150,
    (128, 4): 145,
}

#: Figure 1(a) — the design-space quadrant is drawn at T_RH ~ 99 (the
#: MOAT ATH=64 operating point).
FIG1_TARGET_TRH = 99

#: Section 2.4 — tracker capacity assumed by the motivation argument
#: (a many-aggressor pattern with more rows than entries blinds it).
MOTIVATION_TRACKER_ENTRIES = 16

#: Section 3.2 / Figure 5 — Jailbreak against threshold-128 Panopticon.
JAILBREAK_DETERMINISTIC_ACTS = 1152
JAILBREAK_RANDOMIZED_ACTS = 1145
JAILBREAK_QUEUE_THRESHOLD = 128

#: Section 3.3 — randomized Jailbreak success probability per iteration.
JAILBREAK_RANDOMIZED_SUCCESS_PROB = 2.0 ** -16

#: Figure 8 — minimum ACTs between consecutive ALERTs per ABO level.
FIG8_MIN_ACTS = {1: 4, 2: 5, 4: 7}

#: Figure 9 — illustrative Ratchet on 4 rows at ABO level 4: T+15.
FIG9_EXTRA_ACTS = 15

#: Figure 10 / Section 5.3 — MOAT tolerated T_RH at level 1.
FIG10_SAFE_TRH = {64: 99, 128: 161}

#: Section 6.2 — average slowdown.
AVG_SLOWDOWN = {64: 0.0028, 128: 0.0}
ROMS_SLOWDOWN_ATH64 = 0.02

#: Section 6.3 — average ALERTs per tREFI (per sub-channel) at ATH=64.
AVG_ALERTS_PER_TREFI_ATH64 = 0.023

#: Section 6.5 — storage and energy.
MOAT_SRAM_BYTES_PER_BANK = {1: 7, 2: 10, 4: 16}
MOAT_SRAM_BYTES_PER_CHIP = {1: 224, 2: 320, 4: 512}
MOAT_ACTIVATION_OVERHEAD_ATH64 = 0.023
MOAT_ENERGY_OVERHEAD_BOUND = 0.005

#: Section 7.1 — throughput during continuous ALERTs (level 1).
ALERT_WINDOW_THROUGHPUT_L1 = 4.0 / 11.0

#: Section 7.2 / Figure 13 — kernel throughput loss (~10%).
KERNEL_THROUGHPUT_LOSS = 0.10

#: Section 7.3 / Figure 12 — TSA throughput loss.
TSA_LOSS = {4: 0.24, 17: 0.52}

#: Appendix B / Figure 16 — refresh-postponement attack on drain-all
#: Panopticon: 328 activations against a threshold of 128.
POSTPONEMENT_ACTS = 328
POSTPONEMENT_ACTS_PER_TREFI = 67
POSTPONEMENT_ACTS_BETWEEN_BATCHES = 201

#: Appendix D — continuous-ALERT worst-case slowdown per level.
CONTINUOUS_ALERT_SLOWDOWN = {1: 2.8, 2: 3.8, 4: 4.9}

#: Appendix D — ALERT-rate ratios relative to MOAT-L1 (ATH=64).
ALERT_RATE_VS_L1 = {2: 0.52, 4: 0.27}

#: Appendix D — average slowdown per level at ATH=64 (Figure 17a).
FIG17_SLOWDOWN = {1: 0.0028, 2: 0.0034, 4: 0.0044}

#: Section 7 (extension) — the paper shows PRAC performance attacks
#: degrading co-located workloads (Figures 12/13) but publishes no
#: per-client latency tails. The QoS figure gates the *contrast*
#: instead: an unprotected FR-FCFS noisy-neighbor run must degrade
#: victim read p99 by at least this factor over the quiet run (the
#: committed baseline sits near ~350x), and every QoS scheduling
#: policy must land below the unprotected degradation.
QOS_UNPROTECTED_DEGRADATION_MIN = 2.0
