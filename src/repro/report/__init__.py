"""Reporting: paper ground-truth values, the figure registry, the
report pipeline, and table formatting."""

from repro.report import paper_values
from repro.report.figures import FIGURES, FigureRow, FigureSpec, SourceRef
from repro.report.pipeline import (
    REPORT_SCHEMA,
    FigureResult,
    ReportOptions,
    check_result,
    check_results,
    make_report_artifact,
    render_figure_text,
    render_markdown,
    run_figure,
    run_figures,
    write_baselines,
)
from repro.report.tables import format_table, paper_vs_measured

__all__ = [
    "format_table",
    "paper_vs_measured",
    "paper_values",
    "FIGURES",
    "FigureRow",
    "FigureSpec",
    "SourceRef",
    "REPORT_SCHEMA",
    "FigureResult",
    "ReportOptions",
    "check_result",
    "check_results",
    "make_report_artifact",
    "render_figure_text",
    "render_markdown",
    "run_figure",
    "run_figures",
    "write_baselines",
]
