"""Reporting helpers: paper ground-truth values and table formatting."""

from repro.report.tables import format_table, paper_vs_measured
from repro.report import paper_values

__all__ = ["format_table", "paper_vs_measured", "paper_values"]
