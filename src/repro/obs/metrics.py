"""Time-resolved metrics derived from a recorded event stream.

Two reductions of the raw events:

* :class:`LogHistogram` — a power-of-two-bucketed histogram whose
  merge is **exact**: buckets are integer exponents from
  ``math.frexp`` and counts are integers, so merging two histograms is
  bit-identical to histogramming the concatenated samples (the shard
  merge of a multi-channel system trace loses nothing). No float sums
  are stored — only counts and min/max, both order-independent.
* :func:`per_trefi_series` — per-tREFI time series (ALERT count, RFM
  stall time, REF count, ACT count, queue stall time, queue
  occupancy), the "when did the storm hit" view the end-of-run scalars
  cannot express.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Tuple

from repro.obs.events import TraceEvent


class LogHistogram:
    """Log2-bucketed value histogram with exact merge.

    A positive sample ``v`` lands in bucket ``e`` where ``2**(e-1) <=
    v < 2**e`` (``e = math.frexp(v)[1]``); non-positive samples are
    counted separately in ``zeros``. Latencies in nanoseconds resolve
    to ~60 buckets over any practical range, enough for percentile
    estimates within a factor of two.
    """

    __slots__ = ("counts", "zeros", "min_value", "max_value")

    def __init__(self) -> None:
        self.counts: Dict[int, int] = {}
        self.zeros = 0
        self.min_value: Optional[float] = None
        self.max_value: Optional[float] = None

    def add(self, value: float) -> None:
        """Count one sample."""
        if self.min_value is None or value < self.min_value:
            self.min_value = value
        if self.max_value is None or value > self.max_value:
            self.max_value = value
        if value <= 0:
            self.zeros += 1
            return
        exponent = math.frexp(value)[1]
        self.counts[exponent] = self.counts.get(exponent, 0) + 1

    def add_many(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    def merge(self, other: "LogHistogram") -> None:
        """Fold ``other`` into this histogram, exactly."""
        for exponent, count in other.counts.items():
            self.counts[exponent] = self.counts.get(exponent, 0) + count
        self.zeros += other.zeros
        if other.min_value is not None and (
                self.min_value is None or other.min_value < self.min_value):
            self.min_value = other.min_value
        if other.max_value is not None and (
                self.max_value is None or other.max_value > self.max_value):
            self.max_value = other.max_value

    @property
    def total(self) -> int:
        """Total counted samples (including non-positive ones)."""
        return self.zeros + sum(self.counts.values())

    @staticmethod
    def bucket_bounds(exponent: int) -> Tuple[float, float]:
        """Half-open value range ``[lo, hi)`` of bucket ``exponent``."""
        return (2.0 ** (exponent - 1), 2.0 ** exponent)

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile estimate (bucket upper bound).

        Accurate to within the bucket's factor of two — a diagnostic
        number, deliberately coarser than the exact percentiles the
        result objects report.
        """
        total = self.total
        if total == 0:
            return float("nan")
        rank = max(1, math.ceil(q * total))
        seen = self.zeros
        if rank <= seen:
            return 0.0
        for exponent in sorted(self.counts):
            seen += self.counts[exponent]
            if rank <= seen:
                return self.bucket_bounds(exponent)[1]
        return self.max_value if self.max_value is not None else float("nan")

    def to_json(self) -> Dict[str, object]:
        """JSON-stable encoding (bucket exponents as string keys)."""
        return {
            "base": 2,
            "counts": {
                str(exponent): self.counts[exponent]
                for exponent in sorted(self.counts)
            },
            "zeros": self.zeros,
            "min": self.min_value,
            "max": self.max_value,
        }

    @classmethod
    def from_json(cls, data: Dict[str, object]) -> "LogHistogram":
        hist = cls()
        for exponent, count in data.get("counts", {}).items():
            hist.counts[int(exponent)] = int(count)
        hist.zeros = int(data.get("zeros", 0))
        minimum = data.get("min")
        maximum = data.get("max")
        hist.min_value = None if minimum is None else float(minimum)
        hist.max_value = None if maximum is None else float(maximum)
        return hist

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LogHistogram):
            return NotImplemented
        return (self.counts == other.counts
                and self.zeros == other.zeros
                and self.min_value == other.min_value
                and self.max_value == other.max_value)

    def __repr__(self) -> str:
        return (f"LogHistogram(total={self.total}, "
                f"buckets={len(self.counts)}, "
                f"min={self.min_value}, max={self.max_value})")


def histogram_of(events: Iterable[TraceEvent], kind: str,
                 field: str = "value") -> LogHistogram:
    """Histogram one field of every event of ``kind``."""
    hist = LogHistogram()
    for event in events:
        if event.kind == kind:
            hist.add(getattr(event, field))
    return hist


def per_trefi_series(events: Iterable[TraceEvent], n_trefi: int,
                     t_refi_ns: float) -> Dict[str, List[float]]:
    """Per-tREFI time series from an event stream.

    Each event contributes to the window its start time falls in
    (events at or past the horizon fold into the last window — the
    end-of-run flush can finish an episode slightly past it). Series:

    * ``alerts`` / ``refs`` — event counts per window;
    * ``alert_stall_ns`` — summed ALERT window+stall time, attributed
      to the assertion window;
    * ``acts`` — summed ACT-burst sizes;
    * ``queue_stall_ns`` — summed front-end blocking time;
    * ``occupancy`` — Little's-law queued-request average per window
      (summed queued time over the window length, attributed to the
      issue window).
    """
    if n_trefi < 1:
        raise ValueError("n_trefi must be at least 1")
    if t_refi_ns <= 0:
        raise ValueError("t_refi_ns must be positive")
    alerts = [0.0] * n_trefi
    refs = [0.0] * n_trefi
    alert_stall = [0.0] * n_trefi
    acts = [0.0] * n_trefi
    queue_stall = [0.0] * n_trefi
    occupancy = [0.0] * n_trefi
    last = n_trefi - 1
    for event in events:
        window = int(event.ts_ns // t_refi_ns)
        if window > last:
            window = last
        kind = event.kind
        if kind == "alert":
            alerts[window] += 1
            alert_stall[window] += event.dur_ns
        elif kind == "ref":
            refs[window] += 1
        elif kind == "act-burst":
            acts[window] += event.value
        elif kind == "queue-stall":
            queue_stall[window] += event.dur_ns
        elif kind == "queue-issue":
            occupancy[window] += event.value / t_refi_ns
    return {
        "alerts": alerts,
        "refs": refs,
        "alert_stall_ns": alert_stall,
        "acts": acts,
        "queue_stall_ns": queue_stall,
        "occupancy": occupancy,
    }
