"""Chrome/Perfetto trace-event JSON export.

Maps the recorded event stream onto the `Trace Event Format
<https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_
consumed by ``ui.perfetto.dev`` and ``chrome://tracing``: each
sub-channel becomes a process, each event kind becomes a thread-like
track inside it, duration events render as slices ("X") and
zero-duration events as instants ("i"). Timestamps are microseconds in
the format, so simulated nanoseconds are divided by 1000;
``displayTimeUnit`` keeps the UI readout in ns.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional

from repro.obs.events import EVENT_KINDS, TraceEvent

#: Track (tid) index per event kind, in :data:`EVENT_KINDS` order.
_KIND_TID: Dict[str, int] = {kind: i for i, kind in enumerate(EVENT_KINDS)}


def to_perfetto(events: Iterable[TraceEvent],
                meta: Optional[Dict[str, object]] = None
                ) -> Dict[str, object]:
    """Build a Perfetto-loadable trace-event dict from events."""
    trace_events: List[Dict[str, object]] = []
    subs_seen = set()
    kinds_seen = set()
    for event in events:
        tid = _KIND_TID.get(event.kind, len(EVENT_KINDS))
        record: Dict[str, object] = {
            "name": event.kind,
            "cat": "repro",
            "ph": "X" if event.dur_ns > 0 else "i",
            "ts": event.ts_ns / 1000.0,
            "pid": event.sub,
            "tid": tid,
            "args": {
                "bank": event.bank,
                "client": event.client,
                "value": event.value,
            },
        }
        if event.dur_ns > 0:
            record["dur"] = event.dur_ns / 1000.0
        else:
            record["s"] = "t"
        trace_events.append(record)
        subs_seen.add(event.sub)
        kinds_seen.add((event.sub, event.kind, tid))
    for sub in sorted(subs_seen):
        trace_events.append({
            "name": "process_name", "ph": "M", "pid": sub, "tid": 0,
            "args": {"name": f"subchannel {sub}"},
        })
    for sub, kind, tid in sorted(kinds_seen, key=lambda k: (k[0], k[2])):
        trace_events.append({
            "name": "thread_name", "ph": "M", "pid": sub, "tid": tid,
            "args": {"name": kind},
        })
    trace: Dict[str, object] = {
        "traceEvents": trace_events,
        "displayTimeUnit": "ns",
    }
    if meta:
        trace["otherData"] = dict(meta)
    return trace


def write_perfetto(path, events: Iterable[TraceEvent],
                   meta: Optional[Dict[str, object]] = None) -> Path:
    """Write the Perfetto JSON for ``events`` to ``path``."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(
        json.dumps(to_perfetto(events, meta), indent=None,
                   separators=(",", ":"), sort_keys=True) + "\n")
    return target
