"""Run provenance: who produced a result, with what, from where.

A provenance block answers the questions drift debugging always starts
with — which package version, which kernel backend, which git state,
which seed schedule, and (for sweeps) how much of the run came from
the cache. It is **injected** into artifacts as a separate top-level
key: :func:`repro.sweep.artifacts.diff_artifacts` compares ``points``
only, so provenance never perturbs a baseline gate, and artifacts
written without it stay byte-identical to earlier releases.

Wall-clock-derived fields (the ISO timestamp, git state) live here and
in :mod:`repro.sweep.artifacts` — never inside simulation scope — so
the determinism and telemetry-purity lint rules stay clean.
"""

from __future__ import annotations

import platform
from typing import Dict, Optional

#: Version of the provenance block layout itself.
PROVENANCE_VERSION = 1


def run_provenance(
    backend: Optional[str] = None,
    config_hash: Optional[str] = None,
    seeds: Optional[Dict[str, object]] = None,
    cache: Optional[Dict[str, object]] = None,
    extra: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Assemble a provenance block for an artifact.

    Args:
        backend: Requested backend name (``None`` resolves through
            ``REPRO_BACKEND`` exactly like the simulators do, so the
            recorded name is the one that actually ran).
        config_hash: Identity hash of the run's configuration.
        seeds: Seed schedule (e.g. ``{"seed": 0}`` or a per-client
            map) — whatever fully determines the run's randomness.
        cache: Cache statistics from
            :func:`repro.sweep.runner.run_cached_grid` (hits, misses,
            recomputes, elapsed time).
        extra: Additional identity fields merged in verbatim.
    """
    from repro import __version__
    from repro.sim.backend import resolve_backend
    from repro.sweep.artifacts import git_describe, utc_now

    block: Dict[str, object] = {
        "provenance_version": PROVENANCE_VERSION,
        "package_version": __version__,
        "python_version": platform.python_version(),
        "backend": resolve_backend(backend).name,
        "git_describe": git_describe(),
        "created_utc": utc_now(),
    }
    if config_hash is not None:
        block["config_hash"] = config_hash
    if seeds is not None:
        block["seed_schedule"] = dict(seeds)
    if cache is not None:
        block["cache"] = dict(cache)
    if extra:
        block.update(extra)
    return block
