"""The ``repro.obs/v1`` artifact: one recorded run, summarized.

Layout (JSON, written through the shared sweep artifact writer so the
formatting matches every other ``BENCH_*`` file):

* ``schema`` — ``"repro.obs/v1"``;
* ``meta`` — run identity (workload, policy, scheduler, n_trefi, ...);
* ``counts`` — events per kind (every registered kind, zeros kept:
  an absent kind and an unrecorded kind must be distinguishable);
* ``events`` — the full stream as compact rows (see
  :meth:`~repro.obs.events.TraceEvent.to_row`);
* ``histograms`` — exact-merge log histograms (request latency,
  queued time, front-end stall);
* ``series`` — per-tREFI time series when the run's horizon is known;
* ``provenance`` — package/backend/git identity (always present here:
  an observability artifact exists to answer "where did this come
  from", unlike sweep artifacts where the block is opt-in);
* ``traceEvents`` / ``displayTimeUnit`` — the Chrome trace-event view
  of the same stream. The Perfetto/``chrome://tracing`` JSON loader
  reads ``traceEvents`` and ignores unknown keys, so the artifact
  itself loads directly in the trace viewer; ``repro obs export``
  strips it down to a pure trace-event file.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional

from repro.obs.events import EVENT_KINDS, TraceEvent
from repro.obs.metrics import LogHistogram, histogram_of, per_trefi_series
from repro.obs.perfetto import to_perfetto
from repro.obs.provenance import run_provenance
from repro.obs.recorder import TraceRecorder

#: Schema id of the observability artifact.
OBS_SCHEMA = "repro.obs/v1"

#: Histogram name -> (event kind, event field) derivations.
_HISTOGRAMS = (
    ("request_latency_ns", "complete", "value"),
    ("queue_ns", "queue-issue", "value"),
    ("frontend_stall_ns", "queue-stall", "dur_ns"),
)


def make_obs_artifact(
    recorder: TraceRecorder,
    meta: Optional[Dict[str, object]] = None,
    n_trefi: Optional[int] = None,
    t_refi_ns: Optional[float] = None,
    provenance: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Serialize a recorded run into the ``repro.obs/v1`` schema.

    Args:
        recorder: The enabled recorder the run was traced with.
        meta: Run identity; merged over ``recorder.meta``.
        n_trefi: Simulated tREFI count; with ``t_refi_ns`` it enables
            the per-tREFI series.
        t_refi_ns: tREFI length in nanoseconds.
        provenance: Pre-built provenance block (default: built fresh).
    """
    merged_meta = dict(recorder.meta)
    if meta:
        merged_meta.update(meta)
    artifact: Dict[str, object] = {
        "schema": OBS_SCHEMA,
        "meta": merged_meta,
        "counts": recorder.counts(),
        "events": [event.to_row() for event in recorder.events],
        "histograms": {
            name: histogram_of(recorder.events, kind, field).to_json()
            for name, kind, field in _HISTOGRAMS
        },
        "provenance": (
            run_provenance() if provenance is None else provenance
        ),
        # Chrome trace-event view: makes the artifact itself loadable
        # in Perfetto / chrome://tracing (extra keys are ignored there).
        **to_perfetto(recorder.events),
    }
    if n_trefi is not None and t_refi_ns is not None:
        artifact["series"] = {
            "n_trefi": n_trefi,
            "t_refi_ns": t_refi_ns,
            **per_trefi_series(recorder.events, n_trefi, t_refi_ns),
        }
    return artifact


def load_obs_artifact(path) -> Dict[str, object]:
    """Load and schema-check a ``repro.obs/v1`` artifact."""
    from repro.sweep.artifacts import load_artifact

    return load_artifact(Path(path), OBS_SCHEMA)


def artifact_events(artifact: Dict[str, object]) -> List[TraceEvent]:
    """Revive the event stream of a loaded artifact."""
    return [TraceEvent.from_row(row) for row in artifact.get("events", [])]


def artifact_histograms(
    artifact: Dict[str, object]
) -> Dict[str, LogHistogram]:
    """Revive the histograms of a loaded artifact."""
    return {
        name: LogHistogram.from_json(data)
        for name, data in artifact.get("histograms", {}).items()
    }


def summarize_obs(artifact: Dict[str, object]) -> List[tuple]:
    """(field, value) rows for the ``repro obs summarize`` table."""
    counts = artifact.get("counts", {})
    rows: List[tuple] = [
        ("schema", artifact.get("schema", "?")),
        ("events", sum(int(v) for v in counts.values())),
    ]
    for kind in EVENT_KINDS:
        if counts.get(kind):
            rows.append((f"events:{kind}", counts[kind]))
    for name, hist in sorted(artifact_histograms(artifact).items()):
        if hist.total:
            rows.append((
                f"hist:{name}",
                f"n={hist.total} min={hist.min_value:.0f} "
                f"p50~{hist.quantile(0.5):.0f} "
                f"p99~{hist.quantile(0.99):.0f} "
                f"max={hist.max_value:.0f}",
            ))
    series = artifact.get("series")
    if isinstance(series, dict):
        alerts = series.get("alerts", [])
        busiest = max(range(len(alerts)), key=alerts.__getitem__,
                      default=None) if alerts else None
        rows.append(("series windows", series.get("n_trefi", len(alerts))))
        if busiest is not None and alerts[busiest]:
            rows.append((
                "busiest tREFI",
                f"#{busiest} ({alerts[busiest]:.0f} ALERTs)",
            ))
    provenance = artifact.get("provenance", {})
    for key in ("package_version", "backend", "git_describe",
                "created_utc"):
        if key in provenance:
            rows.append((f"prov:{key}", provenance[key]))
    meta = artifact.get("meta", {})
    for key in sorted(meta):
        rows.append((f"meta:{key}", meta[key]))
    return rows
