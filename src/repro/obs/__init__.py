"""Observability: event tracing, time-resolved metrics, provenance.

The package is a strictly optional layer over the simulators:

* :class:`TraceRecorder` collects typed, sim-time-stamped events from
  instrumented components; the default :data:`NULL_RECORDER` keeps the
  disabled path bit-identical and effectively free (one attribute read
  on cold code, nothing in the struct-of-arrays hot loops).
* :class:`LogHistogram` / :func:`per_trefi_series` reduce an event
  stream into exactly-mergeable histograms and per-tREFI time series.
* :func:`make_obs_artifact` serializes a recorded run as a
  ``repro.obs/v1`` artifact; :func:`to_perfetto` exports the stream
  for ``ui.perfetto.dev``.
* :func:`run_provenance` assembles the identity block sweeps and
  benchmarks stamp into their artifacts.

``repro.obs`` imports nothing from ``repro.sim``/``repro.mc`` at
module scope, so the simulators can depend on it without cycles.
"""

from repro.obs.artifact import (
    OBS_SCHEMA,
    artifact_events,
    artifact_histograms,
    load_obs_artifact,
    make_obs_artifact,
    summarize_obs,
)
from repro.obs.events import EVENT_KINDS, TraceEvent
from repro.obs.metrics import LogHistogram, histogram_of, per_trefi_series
from repro.obs.perfetto import to_perfetto, write_perfetto
from repro.obs.provenance import PROVENANCE_VERSION, run_provenance
from repro.obs.recorder import (
    NULL_RECORDER,
    NullRecorder,
    TraceRecorder,
    merged_events,
    record_batch_events,
)

__all__ = [
    "EVENT_KINDS",
    "LogHistogram",
    "NULL_RECORDER",
    "NullRecorder",
    "OBS_SCHEMA",
    "PROVENANCE_VERSION",
    "TraceEvent",
    "TraceRecorder",
    "artifact_events",
    "artifact_histograms",
    "histogram_of",
    "load_obs_artifact",
    "make_obs_artifact",
    "merged_events",
    "per_trefi_series",
    "record_batch_events",
    "run_provenance",
    "summarize_obs",
    "to_perfetto",
    "write_perfetto",
]
