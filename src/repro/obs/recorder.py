"""The trace recorder and its zero-overhead null object.

Every instrumented component (engine, channel, controller, crossbar)
holds a ``recorder`` attribute that defaults to :data:`NULL_RECORDER`,
whose ``enabled`` is ``False``. Emission sites are guarded with ``if
recorder.enabled:`` — on the disabled path that is one attribute read
on *cold* code (REF execution, ALERT assertion, batch-level flushes,
post-hoc passes over served batches), and nothing at all inside the
struct-of-arrays hot loops, which are never instrumented. Attaching a
recorder changes no dispatch decision anywhere (see
:meth:`repro.mc.controller.MemoryController.serve_streams`): results
with tracing enabled are bit-identical to results without.

Per-request queue/crossbar events are not emitted from the serving
loops at all: they are *derived* after the fact from the
:class:`~repro.mc.controller.ServedBatch` struct-of-arrays
(:func:`record_batch_events`), so enabled-tracing overhead is one
linear pass per served stream, and disabled-tracing overhead is one
``enabled`` check per stream.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.obs.events import EVENT_KINDS, TraceEvent


class NullRecorder:
    """The disabled recorder: never collects, never allocates.

    ``enabled`` is a class attribute so the guard is a plain attribute
    read; :meth:`emit` exists only so an unguarded call site would fail
    loudly in tests rather than silently diverge (guarded sites never
    call it).
    """

    __slots__ = ()

    enabled = False

    def emit(self, kind: str, ts_ns: float, dur_ns: float = 0.0,
             sub: int = 0, bank: int = -1, client: int = -1,
             value: float = 0.0) -> None:
        """No-op (the enabled guard should have skipped this call)."""


#: The shared disabled recorder every component starts with.
NULL_RECORDER = NullRecorder()


class TraceRecorder:
    """Collects typed, sim-time-stamped events from an enabled run.

    Distinct from :class:`repro.trace.TraceRecorder` (the
    activation-address trace wrapper): this one records the
    observability event stream. It is deliberately not re-exported at
    the ``repro`` top level — spell it ``repro.obs.TraceRecorder``.

    Args:
        meta: Free-form run identity recorded into the artifact
            (workload name, policy, n_trefi, ...).
    """

    __slots__ = ("events", "meta")

    enabled = True

    def __init__(self, meta: Optional[Dict[str, object]] = None) -> None:
        self.events: List[TraceEvent] = []
        self.meta: Dict[str, object] = dict(meta or {})

    def emit(self, kind: str, ts_ns: float, dur_ns: float = 0.0,
             sub: int = 0, bank: int = -1, client: int = -1,
             value: float = 0.0) -> None:
        """Record one event (see :class:`~repro.obs.events.TraceEvent`)."""
        self.events.append(TraceEvent(
            kind=kind, ts_ns=float(ts_ns), dur_ns=float(dur_ns),
            sub=sub, bank=bank, client=client, value=float(value),
        ))

    def __len__(self) -> int:
        return len(self.events)

    def of_kind(self, kind: str) -> List[TraceEvent]:
        """Every recorded event of ``kind``, in emission order."""
        return [event for event in self.events if event.kind == kind]

    def count(self, kind: str) -> int:
        """Number of recorded events of ``kind``."""
        return sum(1 for event in self.events if event.kind == kind)

    def counts(self) -> Dict[str, int]:
        """Kind -> count over every registered kind (zeros included)."""
        out = {kind: 0 for kind in EVENT_KINDS}
        for event in self.events:
            out[event.kind] = out.get(event.kind, 0) + 1
        return out


def record_batch_events(recorder: TraceRecorder, batch,
                        sub_base: int = 0) -> None:
    """Derive per-request queue events from a served batch, post hoc.

    ``batch`` is a :class:`~repro.mc.controller.ServedBatch` (duck
    typed: ``requests``/``ridx``/``enqueue_ns``/``start_ns``/
    ``complete_ns``). Emits, per completion: ``queue-stall`` (only
    when admission was delayed past arrival), ``queue-admit``,
    ``queue-issue`` (``value`` = queued time), and ``complete``
    (``value`` = end-to-end latency) — everything the serving loops
    know, recovered with zero cost inside them.
    """
    emit = recorder.emit
    requests = batch.requests
    ridx = batch.ridx
    enqueue_ns = batch.enqueue_ns
    start_ns = batch.start_ns
    complete_ns = batch.complete_ns
    for i in range(len(ridx)):
        req = requests[ridx[i]]
        enq = enqueue_ns[i]
        start = start_ns[i]
        complete = complete_ns[i]
        sub = sub_base + req.subchannel
        if enq > req.issue_ns:
            emit("queue-stall", req.issue_ns, enq - req.issue_ns,
                 sub=sub, bank=req.bank, client=req.client)
        emit("queue-admit", enq, sub=sub, bank=req.bank,
             client=req.client)
        emit("queue-issue", start, complete - start, sub=sub,
             bank=req.bank, client=req.client, value=start - enq)
        emit("complete", complete, sub=sub, bank=req.bank,
             client=req.client, value=complete - req.issue_ns)


def merged_events(recorders: Iterable[TraceRecorder]) -> List[TraceEvent]:
    """Concatenate several recorders' event streams (shard merge)."""
    out: List[TraceEvent] = []
    for recorder in recorders:
        out.extend(recorder.events)
    return out
