"""Typed trace events with simulated-time stamps.

One :class:`TraceEvent` records one thing the stack did at a simulated
nanosecond — an ACT burst retiring on a bank, a REF occupying a
sub-channel, an ALERT episode stalling it, a request moving through a
controller queue, a crossbar grant. Events carry **sim time only**
(``ts_ns``/``dur_ns`` are engine-clock nanoseconds, never wall clock):
a trace recorded twice from the same config is identical, so traces
diff like results do.

The registered kinds:

==============  ====================================================
kind            emitted by / meaning
==============  ====================================================
``act-burst``   engine: a run of back-to-back ACTs to one bank
                (``value`` = ACT count, ``ts_ns`` = last issue time)
``ref``         engine: one REF occupying the sub-channel for tRFC
``alert``       engine: an ALERT assertion; ``dur_ns`` spans the ACT
                window plus the RFM stall, ``value`` = ABO level
``queue-admit`` controller: a request entered its per-bank queue
``queue-stall`` controller: front-end blocking before admission
                (``dur_ns`` = arrival to admission)
``queue-issue`` controller: command issue; ``dur_ns`` = service time,
                ``value`` = time spent queued (enqueue to issue)
``grant``       crossbar: a client's request won admission
``complete``    controller: request done; ``value`` = total latency
==============  ====================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

#: Registered event kinds, in display order (Perfetto track order).
EVENT_KINDS: Tuple[str, ...] = (
    "act-burst",
    "ref",
    "alert",
    "queue-admit",
    "queue-stall",
    "queue-issue",
    "grant",
    "complete",
)


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event.

    Attributes:
        kind: One of :data:`EVENT_KINDS`.
        ts_ns: Simulated start time in nanoseconds (engine clock).
        dur_ns: Simulated duration; 0 for instantaneous events.
        sub: Global sub-channel index (channel * subchannels + local).
        bank: Bank index, or -1 when the event has no bank scope.
        client: Crossbar client index, or -1 outside the system layer.
        value: Kind-specific payload (ACT count, ABO level, queue ns,
            latency ns — see the module docstring's table).
    """

    kind: str
    ts_ns: float
    dur_ns: float = 0.0
    sub: int = 0
    bank: int = -1
    client: int = -1
    value: float = 0.0

    def to_row(self) -> List[object]:
        """Compact JSON row (the ``repro.obs/v1`` events encoding)."""
        return [self.kind, self.ts_ns, self.dur_ns, self.sub,
                self.bank, self.client, self.value]

    @classmethod
    def from_row(cls, row: Sequence[object]) -> "TraceEvent":
        """Revive an event from its :meth:`to_row` encoding."""
        kind, ts_ns, dur_ns, sub, bank, client, value = row
        return cls(
            kind=str(kind),
            ts_ns=float(ts_ns),
            dur_ns=float(dur_ns),
            sub=int(sub),
            bank=int(bank),
            client=int(client),
            value=float(value),
        )
