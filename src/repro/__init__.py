"""repro — reproduction of *MOAT: Securely Mitigating Rowhammer with
Per-Row Activation Counters* (Qureshi & Qazi, ASPLOS 2025).

The package models the JEDEC DDR5 PRAC+ABO framework, implements MOAT
and the designs it is compared against (Panopticon, idealized per-row
tracking, low-cost SRAM trackers), the paper's attacks (Jailbreak,
Feinting, Ratchet, TSA, refresh postponement — declarative via
``AttackSpec``/``run_attack``), a workload-driven performance
evaluation calibrated to the paper's Table 4, a closed-loop
memory-controller subsystem (``McRunConfig``/``run_mc``) that measures
ALERT recovery as read-latency percentiles under queueing, and a
multi-client, multi-channel system layer
(``SystemRunConfig``/``run_system``) that arbitrates per-client
request streams through a crossbar and shards channels across worker
processes.

Quickstart::

    from repro import MoatPolicy, SimConfig, SubchannelSim

    sim = SubchannelSim(SimConfig(), lambda: MoatPolicy(ath=64))
    for _ in range(200):
        sim.activate(row=1000)
    print(sim.stats())

See ``examples/`` for complete scenarios and ``benchmarks/`` for the
per-table/figure reproduction harness.
"""

from repro.abo import AboConfig, AboProtocol
from repro.report.figures import FIGURES, FigureSpec
from repro.report.pipeline import ReportOptions, run_figure, run_figures
from repro.dram import (
    Bank,
    CounterResetPolicy,
    DramTiming,
    DDR5_PRAC_TIMING,
    RefreshEngine,
    SystemConfig,
)
from repro.mitigations import (
    IdealPerRowPolicy,
    MitigationPolicy,
    MoatPolicy,
    NullPolicy,
    PanopticonPolicy,
    ParaPolicy,
    PolicySpec,
    TrrTracker,
)
from repro.sim import (
    AddressMapping,
    ChannelConfig,
    ChannelSim,
    CoffeeLakeMapping,
    SimConfig,
    SubchannelSim,
)
from repro.mc import (
    CompletedRequest,
    McConfig,
    MemoryController,
    Request,
)
from repro.sim.attack_perf import (
    AttackResult,
    AttackRunConfig,
    AttackSpec,
    run_attack,
)
from repro.sim.mc import (
    McResult,
    McRunConfig,
    run_mc,
    run_mc_trace,
)
from repro.sim.perf import (
    MoatRunConfig,
    PerfResult,
    RunConfig,
    run_suite,
    run_trace,
    run_workload,
)
from repro.sweep.family import FAMILIES, SweepFamily, get_family
from repro.system import (
    ClientSpec,
    SystemResult,
    SystemRunConfig,
    SystemSim,
    run_system,
)
from repro.trace import (
    ActivationTrace,
    AddressTrace,
    TraceRecorder,
    load_trace,
    replay,
    replay_addresses,
)
from repro.workloads import (
    McWorkload,
    TABLE4_PROFILES,
    WorkloadProfile,
    profile_by_name,
)

__version__ = "1.0.0"

__all__ = [
    "AboConfig",
    "AboProtocol",
    "Bank",
    "CounterResetPolicy",
    "DramTiming",
    "DDR5_PRAC_TIMING",
    "RefreshEngine",
    "SystemConfig",
    "IdealPerRowPolicy",
    "MitigationPolicy",
    "MoatPolicy",
    "NullPolicy",
    "PanopticonPolicy",
    "ParaPolicy",
    "TrrTracker",
    "AddressMapping",
    "ChannelConfig",
    "ChannelSim",
    "CoffeeLakeMapping",
    "SimConfig",
    "SubchannelSim",
    "AttackResult",
    "AttackRunConfig",
    "AttackSpec",
    "ClientSpec",
    "CompletedRequest",
    "McConfig",
    "McResult",
    "McRunConfig",
    "McWorkload",
    "MemoryController",
    "MoatRunConfig",
    "PerfResult",
    "PolicySpec",
    "Request",
    "RunConfig",
    "SweepFamily",
    "SystemResult",
    "SystemRunConfig",
    "SystemSim",
    "FAMILIES",
    "get_family",
    "run_attack",
    "run_mc",
    "run_mc_trace",
    "run_system",
    "run_workload",
    "run_suite",
    "run_trace",
    "ActivationTrace",
    "AddressTrace",
    "TraceRecorder",
    "load_trace",
    "replay",
    "replay_addresses",
    "TABLE4_PROFILES",
    "WorkloadProfile",
    "profile_by_name",
    "FIGURES",
    "FigureSpec",
    "ReportOptions",
    "run_figure",
    "run_figures",
    "__version__",
]
