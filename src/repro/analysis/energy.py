"""Storage and energy overhead accounting (paper Section 6.5, App D).

MOAT's SRAM cost per bank is 3 bytes per tracker entry (row address +
counter copy), 2 bytes for the CMA register, and 2 bytes for the two
safe-reset shadow counters: 7 B at level 1, 10 B at level 2, 16 B at
level 4 (224/320/512 B per 32-bank chip).

The energy overhead is the mitigation activations (victim refreshes and
counter resets) relative to baseline activations; with activation
energy below 20% of DRAM energy, a 2.3% activation increase is a
sub-0.5% total energy increase.
"""

from __future__ import annotations

from dataclasses import dataclass


def moat_sram_bytes(level: int = 1) -> int:
    """SRAM bytes per bank for MOAT at the given ABO level."""
    if level not in (1, 2, 4):
        raise ValueError("level must be 1, 2, or 4")
    return 3 * level + 2 + 2


def moat_sram_bytes_per_chip(level: int = 1, banks: int = 32) -> int:
    """SRAM bytes per chip (32 banks by default)."""
    return moat_sram_bytes(level) * banks


@dataclass(frozen=True)
class EnergyOverhead:
    """Activation-energy overhead of a mitigation run."""

    baseline_activations: int
    mitigation_activations: int
    activation_energy_share: float = 0.20

    @property
    def activation_overhead(self) -> float:
        """Relative increase in total activations."""
        if self.baseline_activations == 0:
            return 0.0
        return self.mitigation_activations / self.baseline_activations

    @property
    def total_energy_overhead(self) -> float:
        """Relative increase in total DRAM energy (Section 6.5 bound)."""
        return self.activation_overhead * self.activation_energy_share


def activation_energy_overhead(
    baseline_activations: int,
    mitigation_activations: int,
    activation_energy_share: float = 0.20,
) -> EnergyOverhead:
    """Build the Section 6.5 energy-overhead record."""
    return EnergyOverhead(
        baseline_activations, mitigation_activations, activation_energy_share
    )
