"""The ``listener-hygiene`` rule: event listeners always detach.

PR 3 fixed a double-counting bug caused by a mitigation listener that
outlived its attack: a reused engine kept feeding a stale log. The
sanctioned idioms since then are the :func:`repro.attacks.base.
subscribed` context manager and owner objects with ``__enter__`` /
``__exit__`` (:class:`~repro.attacks.base.MitigationLog`), both of
which guarantee detachment on every exit path.

This rule flags raw attachments outside those idioms:

* ``<x>.append(...)`` where the target is a ``*listeners`` list
  (``sim.mitigation_listeners.append(cb)``), and
* ``.subscribe(...)`` / ``.add_listener(...)`` /
  ``.register_listener(...)`` / ``.attach_listener(...)`` calls,

unless the attachment happens inside a ``@contextmanager``-decorated
function, inside a method of a class that defines ``__exit__``, or as
the context expression of a ``with`` statement.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.lint.core import FileContext, Finding

NAME = "listener-hygiene"

DESCRIPTION = (
    "listener attachments (*listeners.append / .subscribe-style "
    "calls) happen inside a context-managed helper"
)

_ATTACH_METHODS = frozenset({
    "subscribe", "add_listener", "register_listener", "attach_listener",
})


def _is_listener_list(node: ast.AST) -> bool:
    if isinstance(node, ast.Attribute):
        return node.attr.endswith("listeners")
    if isinstance(node, ast.Name):
        return node.id.endswith("listeners")
    return False


def _is_contextmanager_decorated(fn: ast.AST) -> bool:
    if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return False
    for decorator in fn.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if isinstance(target, ast.Name) and target.id in (
                "contextmanager", "asynccontextmanager"):
            return True
        if isinstance(target, ast.Attribute) and target.attr in (
                "contextmanager", "asynccontextmanager"):
            return True
    return False


def _defines_exit(cls: ast.ClassDef) -> bool:
    return any(
        isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        and stmt.name == "__exit__"
        for stmt in cls.body
    )


def _sanctioned(ctx: FileContext, node: ast.AST) -> bool:
    for ancestor in ctx.ancestors(node):
        if isinstance(ancestor, ast.withitem):
            return True
        if _is_contextmanager_decorated(ancestor):
            return True
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for enclosing in ctx.ancestors(ancestor):
                if isinstance(enclosing, ast.ClassDef):
                    if _defines_exit(enclosing):
                        return True
                    break
    return False


def _attachment_kind(node: ast.Call) -> Optional[str]:
    func = node.func
    if not isinstance(func, ast.Attribute):
        return None
    if func.attr == "append" and _is_listener_list(func.value):
        return "appending to a listener list"
    if func.attr in _ATTACH_METHODS:
        return f".{func.attr}() attachment"
    return None


def check(ctx: FileContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        kind = _attachment_kind(node)
        if kind is None:
            continue
        if _sanctioned(ctx, node):
            continue
        yield ctx.finding(NAME, node, (
            f"{kind} outside a context-managed helper leaks the "
            "listener on the first exception (the PR-3 bug class); "
            "attach via subscribed(...) or an owner with "
            "__enter__/__exit__"
        ))
