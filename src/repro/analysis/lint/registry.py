"""The lint rule registry: one frozen spec per invariant.

Mirrors the repo's registration idiom (``mitigations/registry.py``,
``mc/sched.py``): each rule is a frozen :class:`RuleSpec` carrying its
name, scope, checker, one-line description, and default params, held
in a single ``_REGISTRY`` dict that both the CLI (``repro lint
--list-rules``, ``--select``/``--ignore`` validation) and the runner
read — so the rule list printed to users can never drift from the
rules that actually run.

Two scopes exist:

* ``file`` rules receive a parsed :class:`~repro.analysis.lint.core.
  FileContext` per file and see nothing else;
* ``repo`` rules receive the lint root once and may import the live
  registries (cross-module invariants cannot be judged one file at a
  time).

:func:`run_lint` is the single entry point: it expands paths, parses
files, dispatches both scopes, applies ``# repro-lint:
disable=<rule>`` suppressions centrally, and returns a sorted
:class:`~repro.analysis.lint.core.LintResult`.
"""

from __future__ import annotations

import subprocess
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.lint import (
    determinism,
    hash_neutrality,
    listener_hygiene,
    numba_subset,
    registry_coverage,
    telemetry_purity,
)
from repro.analysis.lint.core import (
    Finding,
    LintResult,
    collect_files,
    load_context,
    parse_suppressions,
)


@dataclass(frozen=True)
class RuleSpec:
    """One registered lint rule.

    Attributes:
        name: Registered rule name (``--select``/``--ignore`` token
            and the ``disable=`` suppression token).
        scope: ``"file"`` (checker runs per parsed file) or
            ``"repo"`` (checker runs once against the lint root).
        checker: The checker callable — ``checker(ctx, **params)``
            for file scope, ``checker(root, **params)`` for repo
            scope — yielding/returning findings.
        description: One-line summary printed by ``--list-rules``.
        params: Default keyword params, as a sorted tuple of pairs so
            the spec stays hashable.
    """

    name: str
    scope: str
    checker: Callable = field(compare=False)
    description: str = ""
    params: Tuple[Tuple[str, object], ...] = ()


_REGISTRY: Dict[str, RuleSpec] = {
    spec.name: spec
    for spec in (
        RuleSpec(
            name=determinism.NAME,
            scope="file",
            checker=determinism.check,
            description=determinism.DESCRIPTION,
            params=(("packages", determinism.DEFAULT_PACKAGES),),
        ),
        RuleSpec(
            name=hash_neutrality.NAME,
            scope="file",
            checker=hash_neutrality.check,
            description=hash_neutrality.DESCRIPTION,
            params=(("exempt", hash_neutrality.DEFAULT_EXEMPT),),
        ),
        RuleSpec(
            name=numba_subset.NAME,
            scope="file",
            checker=numba_subset.check,
            description=numba_subset.DESCRIPTION,
        ),
        RuleSpec(
            name=registry_coverage.NAME,
            scope="repo",
            checker=registry_coverage.check,
            description=registry_coverage.DESCRIPTION,
        ),
        RuleSpec(
            name=listener_hygiene.NAME,
            scope="file",
            checker=listener_hygiene.check,
            description=listener_hygiene.DESCRIPTION,
        ),
        RuleSpec(
            name=telemetry_purity.NAME,
            scope="file",
            checker=telemetry_purity.check,
            description=telemetry_purity.DESCRIPTION,
            params=(("allowed", telemetry_purity.DEFAULT_ALLOWED),),
        ),
    )
}


def rule_names() -> Tuple[str, ...]:
    """Registered rule names, in registration order."""
    return tuple(_REGISTRY)


def rule_descriptions() -> Dict[str, Dict[str, object]]:
    """Name -> {scope, description} for CLI listings."""
    return {
        spec.name: {
            "scope": spec.scope,
            "description": spec.description,
        }
        for spec in _REGISTRY.values()
    }


def resolve_rules(select: Optional[Sequence[str]] = None,
                  ignore: Optional[Sequence[str]] = None
                  ) -> Tuple[RuleSpec, ...]:
    """The rule set a run executes, validating every referenced name.

    ``select`` keeps only the named rules; ``ignore`` then drops
    names. Unknown names in either raise ``ValueError`` with the
    pinned ``unknown lint rule(s): ...`` message.
    """
    unknown = sorted(
        {name for name in (list(select or []) + list(ignore or []))
         if name not in _REGISTRY}
    )
    if unknown:
        raise ValueError(
            f"unknown lint rule(s): {', '.join(unknown)} "
            f"(known: {', '.join(_REGISTRY)})"
        )
    names = list(select) if select else list(_REGISTRY)
    ignored = set(ignore or ())
    return tuple(_REGISTRY[name] for name in names if name not in ignored)


def default_root() -> Path:
    """Git toplevel when available, else the current directory."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--show-toplevel"],
            capture_output=True, text=True, check=True,
        ).stdout.strip()
        if out:
            return Path(out)
    except (OSError, subprocess.CalledProcessError):
        pass
    return Path(".").resolve()


def _repo_suppressed(finding: Finding, root: Path,
                     cache: Dict[str, Dict[int, set]]) -> bool:
    """Same-line suppression check for repo-scope findings, whose
    files were never parsed into a FileContext."""
    if finding.path not in cache:
        try:
            source = (root / finding.path).read_text(encoding="utf-8")
        except OSError:
            source = ""
        cache[finding.path] = parse_suppressions(source)
    names = cache[finding.path].get(finding.line)
    return bool(names) and (finding.rule in names or "all" in names)


def run_lint(paths: Optional[Sequence[Path]] = None,
             select: Optional[Sequence[str]] = None,
             ignore: Optional[Sequence[str]] = None,
             root: Optional[Path] = None) -> LintResult:
    """Run the (selected) rules over ``paths`` and return the result.

    Defaults: root is the git toplevel (else cwd), paths is
    ``<root>/src``. Findings are sorted by (path, line, col, rule);
    same-line ``# repro-lint: disable=`` suppressions are applied
    centrally and counted.
    """
    root = (root or default_root()).resolve()
    rules = resolve_rules(select, ignore)
    if paths is None:
        paths = [root / "src"]
    files = collect_files([Path(p) for p in paths])

    file_rules = [spec for spec in rules if spec.scope == "file"]
    repo_rules = [spec for spec in rules if spec.scope == "repo"]

    findings: List[Finding] = []
    suppressed = 0
    for path in files:
        ctx, parse_finding = load_context(path, root)
        if parse_finding is not None:
            findings.append(parse_finding)
            continue
        assert ctx is not None
        for spec in file_rules:
            for finding in spec.checker(ctx, **dict(spec.params)):
                if ctx.is_suppressed(finding):
                    suppressed += 1
                else:
                    findings.append(finding)

    suppression_cache: Dict[str, Dict[int, set]] = {}
    for spec in repo_rules:
        for finding in spec.checker(root, **dict(spec.params)):
            if _repo_suppressed(finding, root, suppression_cache):
                suppressed += 1
            else:
                findings.append(finding)

    return LintResult(
        root=root,
        rules=tuple(spec.name for spec in rules),
        files=len(files),
        findings=tuple(sorted(findings, key=lambda f: f.sort_key)),
        suppressed=suppressed,
    )
