"""Shared machinery of the ``repro lint`` static-analysis pass.

Everything rule-agnostic lives here: the :class:`Finding` record, the
per-file :class:`FileContext` (source, AST, parent links, suppression
map), ``# repro-lint: disable=<rule>`` suppression parsing, file
collection, and the ``repro.lint/v1`` artifact layout. The rules
themselves are plain checker functions registered in
:mod:`repro.analysis.lint.registry`; none of them import this module's
internals beyond the context helpers.

Suppression syntax: a finding on line ``L`` is suppressed when line
``L`` carries a ``# repro-lint: disable=<rule>[,<rule>...]`` comment
naming its rule (or ``all``). Suppressions are same-line by design —
a justification comment next to the flagged construct — so a stale
suppression is visible exactly where the suppressed code lives.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

#: Schema id of the machine-readable lint artifact (``--format json``).
LINT_SCHEMA = "repro.lint/v1"

#: Pseudo-rule reported for files the parser cannot read. It is not
#: registered (and therefore cannot be ignored or suppressed): a file
#: that does not parse cannot be certified by any rule.
PARSE_RULE = "parse-error"

_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,-]+)")


@dataclass(frozen=True)
class Finding:
    """One lint finding, anchored to ``path:line:col``."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}"

    def payload(self) -> Dict[str, object]:
        """JSON-stable view (the ``repro.lint/v1`` findings entry)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    @property
    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)


def parse_suppressions(source: str) -> Dict[int, Set[str]]:
    """Line -> set of rule names disabled on that line (``all`` wins)."""
    out: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if match:
            names = {part.strip() for part in match.group(1).split(",")}
            out[lineno] = {name for name in names if name}
    return out


class FileContext:
    """One parsed file handed to every file-scope rule checker."""

    def __init__(self, path: Path, rel_path: str, source: str,
                 tree: ast.Module) -> None:
        self.path = path
        self.rel_path = rel_path
        self.source = source
        self.tree = tree
        self.suppressions = parse_suppressions(source)
        self._parents: Dict[int, ast.AST] = {}
        for node in ast.walk(tree):
            for child in ast.iter_child_nodes(node):
                self._parents[id(child)] = node

    @property
    def path_parts(self) -> Tuple[str, ...]:
        """Path segments relative to the lint root (scope matching)."""
        return Path(self.rel_path).parts

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """Enclosing nodes of ``node``, innermost first."""
        current = node
        while id(current) in self._parents:
            current = self._parents[id(current)]
            yield current

    def finding(self, rule: str, node: ast.AST, message: str) -> Finding:
        """A finding anchored at an AST node of this file."""
        return Finding(
            rule=rule,
            path=self.rel_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )

    def is_suppressed(self, finding: Finding) -> bool:
        names = self.suppressions.get(finding.line)
        return bool(names) and (finding.rule in names or "all" in names)


def collect_files(paths: Sequence[Path]) -> List[Path]:
    """Expand files/directories into a deterministic ``*.py`` list."""
    out: List[Path] = []
    seen: Set[Path] = set()
    for path in paths:
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                out.append(candidate)
    return out


def load_context(path: Path, root: Path) -> Tuple[Optional[FileContext],
                                                  Optional[Finding]]:
    """Parse one file; on failure return a :data:`PARSE_RULE` finding."""
    rel = rel_path(path, root)
    try:
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
    except (OSError, SyntaxError, ValueError) as exc:
        message = getattr(exc, "msg", None) or str(exc)
        line = getattr(exc, "lineno", None) or 1
        return None, Finding(PARSE_RULE, rel, line, 1,
                             f"file does not parse: {message}")
    return FileContext(path, rel, source, tree), None


def rel_path(path: Path, root: Path) -> str:
    """``path`` relative to ``root`` when possible, posix-rendered."""
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


@dataclass(frozen=True)
class LintResult:
    """Outcome of one lint run over a set of paths."""

    root: Path
    rules: Tuple[str, ...]
    files: int
    findings: Tuple[Finding, ...]
    suppressed: int

    @property
    def clean(self) -> bool:
        return not self.findings


def make_lint_artifact(result: LintResult) -> Dict[str, object]:
    """Serialize a lint run into the ``repro.lint/v1`` schema."""
    counts: Dict[str, int] = {}
    for finding in result.findings:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    return {
        "schema": LINT_SCHEMA,
        "root": str(result.root),
        "rules": list(result.rules),
        "files": result.files,
        "findings": [finding.payload() for finding in result.findings],
        "counts": counts,
        "suppressed": result.suppressed,
        "clean": result.clean,
    }


def format_findings(result: LintResult) -> str:
    """Human-readable report: one line per finding plus a summary."""
    lines = [finding.render() for finding in result.findings]
    noun = "finding" if len(result.findings) == 1 else "findings"
    summary = (
        f"{len(result.findings)} {noun} in {result.files} files "
        f"({len(result.rules)} rules, {result.suppressed} suppressed)"
    )
    return "\n".join(lines + [summary])


def dotted_chain(node: ast.AST) -> Optional[Tuple[str, ...]]:
    """``a.b.c`` as ``("a", "b", "c")``; ``None`` for non-name bases."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return tuple(reversed(parts))
    return None


def import_aliases(tree: ast.Module) -> Tuple[Dict[str, Tuple[str, ...]],
                                              Dict[str, Tuple[str, ...]]]:
    """(module aliases, member aliases) for normalizing call chains.

    ``import time as t`` maps ``t`` to ``("time",)``; ``from random
    import random as rnd`` maps ``rnd`` to ``("random", "random")`` —
    so rules can recognize renamed and from-imported spellings of the
    constructs they flag.
    """
    modules: Dict[str, Tuple[str, ...]] = {}
    members: Dict[str, Tuple[str, ...]] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                dotted = tuple((alias.name if alias.asname
                                else alias.name.split(".")[0]).split("."))
                modules[local] = dotted
        elif isinstance(node, ast.ImportFrom) and node.module:
            for alias in node.names:
                local = alias.asname or alias.name
                members[local] = tuple(node.module.split(".")) + (alias.name,)
    return modules, members


def normalize_chain(chain: Tuple[str, ...],
                    modules: Dict[str, Tuple[str, ...]],
                    members: Dict[str, Tuple[str, ...]]) -> Tuple[str, ...]:
    """Resolve a call chain through the module's import aliases."""
    head, rest = chain[0], chain[1:]
    if head in members:
        return members[head] + rest
    if head in modules:
        return modules[head] + rest
    return chain
