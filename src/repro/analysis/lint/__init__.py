"""``repro lint``: registry-driven static analysis of repo invariants.

Six AST/reflection rules enforce the contracts the test suite cannot
see from the outside: determinism of simulation code, hash-neutrality
of sweep spec fields, the numba-compatible kernel subset, full
registry coverage (descriptions, CLI reachability, committed
baselines), listener-attachment hygiene, and telemetry purity
(wall-clock reads confined to the sanctioned telemetry scopes). See
``repro lint --list-rules`` and the "Static analysis" section of the
README.
"""

from repro.analysis.lint.core import (
    LINT_SCHEMA,
    PARSE_RULE,
    Finding,
    LintResult,
    format_findings,
    make_lint_artifact,
)
from repro.analysis.lint.registry import (
    RuleSpec,
    default_root,
    resolve_rules,
    rule_descriptions,
    rule_names,
    run_lint,
)

__all__ = [
    "LINT_SCHEMA",
    "PARSE_RULE",
    "Finding",
    "LintResult",
    "RuleSpec",
    "default_root",
    "format_findings",
    "make_lint_artifact",
    "resolve_rules",
    "rule_descriptions",
    "rule_names",
    "run_lint",
]
