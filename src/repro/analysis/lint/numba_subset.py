"""The ``numba-subset`` rule: kernel functions stay co-compilable.

The ``kernel`` and ``numba`` backends execute the *same* source
functions — interpreted in one case, ``numba.njit``-compiled in the
other — and the bit-identity contract between them only holds while
those functions stay inside the numba-compatible subset (flat numpy
arrays and scalars; no dicts, sets, closures, comprehensions,
``**kwargs``, reflection, or context managers). A construct that the
interpreter happily runs but numba cannot compile would silently fork
the two backends the first time someone installs the ``[fast]`` extra.

The rule finds kernel functions structurally rather than by name: any
function referenced as a kernel slot of a ``Backend(...)``
registration (every keyword except the descriptive
``name``/``use_kernels``/``compiled``/``description`` fields) or
passed through an ``njit(...)``/``njit`` wrapper is checked, so new
kernels are covered the moment they are registered.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set, Tuple

from repro.analysis.lint.core import FileContext, Finding

NAME = "numba-subset"

DESCRIPTION = (
    "functions registered as Backend kernels (or njit-wrapped) use "
    "only the numba-compatible subset"
)

#: ``Backend(...)`` keywords that are descriptive, not kernel slots.
_BACKEND_META_KEYWORDS = frozenset({
    "name", "use_kernels", "compiled", "description",
})

#: Reflection / dynamic builtins numba cannot compile.
_FORBIDDEN_CALLS = frozenset({
    "getattr", "setattr", "hasattr", "delattr", "vars", "dir",
    "globals", "locals", "eval", "exec", "compile", "open", "super",
})

_NODE_MESSAGES: Tuple[Tuple[type, str], ...] = (
    (ast.Dict, "a dict literal"),
    (ast.DictComp, "a dict comprehension"),
    (ast.Set, "a set literal"),
    (ast.SetComp, "a set comprehension"),
    (ast.ListComp, "a list comprehension"),
    (ast.GeneratorExp, "a generator expression"),
    (ast.Lambda, "a lambda"),
    (ast.ClassDef, "a class definition"),
    (ast.Try, "a try/except block"),
    (ast.With, "a with block"),
    (ast.Yield, "a yield"),
    (ast.YieldFrom, "a yield from"),
    (ast.Await, "an await"),
    (ast.JoinedStr, "an f-string"),
)


def _is_njit(func: ast.AST) -> bool:
    if isinstance(func, ast.Name):
        return func.id == "njit"
    if isinstance(func, ast.Attribute):
        return func.attr == "njit"
    if isinstance(func, ast.Call):
        return _is_njit(func.func)
    return False


def _kernel_names(tree: ast.Module) -> Set[str]:
    """Names of functions registered as backend kernels."""
    names: Set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        is_backend = (
            (isinstance(func, ast.Name) and func.id == "Backend")
            or (isinstance(func, ast.Attribute) and func.attr == "Backend")
        )
        if is_backend:
            for keyword in node.keywords:
                if (keyword.arg
                        and keyword.arg not in _BACKEND_META_KEYWORDS
                        and isinstance(keyword.value, ast.Name)):
                    names.add(keyword.value.id)
        elif _is_njit(func):
            for arg in node.args:
                if isinstance(arg, ast.Name):
                    names.add(arg.id)
    return names


def _signature_findings(ctx: FileContext, fn: ast.FunctionDef,
                        label: str) -> Iterator[Finding]:
    args = fn.args
    if args.kwarg is not None:
        yield ctx.finding(NAME, fn, f"{label} takes **{args.kwarg.arg}, "
                          "outside the numba-compatible subset")
    if args.vararg is not None:
        yield ctx.finding(NAME, fn, f"{label} takes *{args.vararg.arg}, "
                          "outside the numba-compatible subset")
    if args.kwonlyargs:
        yield ctx.finding(NAME, fn, f"{label} has keyword-only "
                          "arguments, outside the numba-compatible subset")
    if args.defaults or args.kw_defaults:
        yield ctx.finding(NAME, fn, f"{label} has default argument "
                          "values, outside the numba-compatible subset")


def check(ctx: FileContext) -> Iterator[Finding]:
    kernels = _kernel_names(ctx.tree)
    if not kernels:
        return
    functions: List[ast.FunctionDef] = [
        node for node in ast.walk(ctx.tree)
        if isinstance(node, ast.FunctionDef) and node.name in kernels
    ]
    for fn in functions:
        label = f"kernel '{fn.name}'"
        yield from _signature_findings(ctx, fn, label)
        for node in ast.walk(fn):
            if node is fn:
                continue
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield ctx.finding(NAME, node, (
                    f"{label} defines nested function '{node.name}' "
                    "(a closure), outside the numba-compatible subset"
                ))
                continue
            for node_type, what in _NODE_MESSAGES:
                if isinstance(node, node_type):
                    yield ctx.finding(NAME, node, (
                        f"{label} uses {what}, outside the "
                        "numba-compatible subset"
                    ))
                    break
            if isinstance(node, ast.Call):
                if (isinstance(node.func, ast.Name)
                        and node.func.id in _FORBIDDEN_CALLS):
                    yield ctx.finding(NAME, node, (
                        f"{label} calls {node.func.id}(), outside the "
                        "numba-compatible subset"
                    ))
                for keyword in node.keywords:
                    if keyword.arg is None:
                        yield ctx.finding(NAME, node, (
                            f"{label} uses **-unpacking in a call, "
                            "outside the numba-compatible subset"
                        ))
                for arg in node.args:
                    if isinstance(arg, ast.Starred):
                        yield ctx.finding(NAME, node, (
                            f"{label} uses *-unpacking in a call, "
                            "outside the numba-compatible subset"
                        ))
